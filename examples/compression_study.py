"""Compression study: how encoding and skew drive compressibility.

Reproduces the narrative of the paper's §7.1 interactively: equality-
encoded bitmaps are sparse and compress extremely well; interval-
encoded bitmaps are ~50% dense and barely compress; skew helps
everything.  Also compares the paper's byte-aligned codec (BBC) against
the later word-aligned codecs (WAH, EWAH) and the container-based
roaring codec as an ablation.

Run:  python examples/compression_study.py
"""

from __future__ import annotations

from repro import get_codec, get_scheme, zipf_column
from repro.compress import measure_codec

NUM_ROWS = 100_000
CARDINALITY = 50
CODECS = ("bbc", "wah", "ewah", "roaring")


def study(scheme_name: str, skew: float) -> dict[str, float]:
    values = zipf_column(NUM_ROWS, CARDINALITY, skew, seed=5)
    scheme = get_scheme(scheme_name)
    bitmaps = list(scheme.build(values, CARDINALITY).values())
    ratios = {}
    for codec_name in CODECS:
        stats = measure_codec(get_codec(codec_name), bitmaps)
        ratios[codec_name] = stats.ratio
    return ratios


def main() -> None:
    print(f"Compressed/uncompressed ratio, C={CARDINALITY}, N={NUM_ROWS}")
    header = " ".join(f"{name:>8s}" for name in CODECS)
    print(f"{'scheme':8s} {'z':>4s} {header}")
    for scheme_name in ("E", "R", "I"):
        for skew in (0.0, 1.0, 2.0, 3.0):
            ratios = study(scheme_name, skew)
            cells = " ".join(f"{ratios[name]:8.3f}" for name in CODECS)
            print(f"{scheme_name:8s} {skew:4.0f} {cells}")
    print(
        "\nReading: E compresses best (sparse bitmaps), I worst (~50% "
        "density), matching the paper's Figure 6(b); higher skew "
        "improves every scheme, matching Figure 7."
    )


if __name__ == "__main__":
    main()
