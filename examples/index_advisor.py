"""Index advisor: pick the best bitmap index design for a workload.

Section 2 of the paper frames index design as a two-dimensional
optimization (encoding scheme x decomposition); Section 7 adds the
compression decision.  This example uses :func:`repro.index.recommend`
to sweep that design space for a concrete workload under a space
budget and prints the Pareto frontier the paper's Figure 8/9 scatters
visualize.

Run:  python examples/index_advisor.py
"""

from __future__ import annotations

from repro import paper_query_sets, generate_query_set, zipf_column
from repro.index import recommend

CARDINALITY = 50
NUM_ROWS = 120_000


def main() -> None:
    values = zipf_column(NUM_ROWS, CARDINALITY, skew=1.0, seed=11)

    # A range-heavy workload: the paper's N_equ = 0 query sets.
    workload = {
        spec.label: generate_query_set(spec, CARDINALITY, num_queries=10, seed=1)
        for spec in paper_query_sets()
        if spec.num_equalities == 0
    }
    print(f"Workload: {sum(len(q) for q in workload.values())} membership "
          f"queries in {len(workload)} sets (range-heavy)")

    budget = 320 * 1024  # 320 KB of index space
    outcome = recommend(
        values,
        CARDINALITY,
        workload,
        space_budget_bytes=budget,
        schemes=("E", "R", "I", "EI*"),
        component_counts=(1, 2, 3),
        sample_records=60_000,
    )

    print(f"\nAll candidates (budget = {budget / 1024:.0f} KB):")
    print(f"  {'design':16s} {'space KB':>9s} {'avg ms':>9s}  notes")
    frontier_labels = {p.label for p in outcome.frontier}
    for point in outcome.candidates:
        notes = []
        if point.label in frontier_labels:
            notes.append("pareto")
        if outcome.best is not None and point.label == outcome.best.label:
            notes.append("<= RECOMMENDED")
        if point.space_bytes > budget:
            notes.append("over budget")
        print(
            f"  {point.label:16s} {point.space_bytes / 1024:9.1f} "
            f"{point.avg_time_ms:9.2f}  {' '.join(notes)}"
        )

    if outcome.best is not None:
        best = outcome.best
        print(
            f"\nRecommended: {best.label} — {best.space_bytes / 1024:.1f} KB, "
            f"{best.avg_time_ms:.2f} simulated ms/query, "
            f"{best.avg_scans:.1f} bitmap scans/query"
        )
    else:
        print("\nNo design fits the budget; raise it or allow more components.")


if __name__ == "__main__":
    main()
