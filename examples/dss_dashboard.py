"""DSS scenario: ad-hoc slice-and-dice over a sales fact table.

The paper motivates bitmap indexes with decision-support queries.  This
example builds a small star-schema-ish fact table (region, product
category, discount bucket), indexes each dimension column with the
encoding scheme best suited to its query mix, and answers a dashboard's
worth of multi-attribute predicates by ANDing per-attribute bitmap
answers — the classic bitmap-index query plan.

Run:  python examples/dss_dashboard.py
"""

from __future__ import annotations

import numpy as np

from repro import ColumnConfig, IntervalQuery, MembershipQuery, Table
from repro.workload import zipf_column

NUM_ROWS = 200_000

#: Dimension columns: (name, cardinality, skew, scheme, why).
DIMENSIONS = [
    # Regions are queried by membership ("EMEA or APAC") -> equality-rich.
    ("region", 12, 0.5, "E", "membership/equality queries"),
    # Categories see both equality and range ("categories 10-25") mixes.
    ("category", 60, 1.0, "I", "two-sided range queries"),
    # Discount buckets are queried by one-sided ranges ("at least 30%").
    ("discount", 40, 2.0, "I", "range queries, skewed data"),
]


def main() -> None:
    print(f"Generating {NUM_ROWS} fact rows...")
    columns = {
        name: zipf_column(NUM_ROWS, cardinality, skew, seed=seed)
        for seed, (name, cardinality, skew, _, _) in enumerate(DIMENSIONS)
    }
    configs = {
        name: ColumnConfig(cardinality=cardinality, scheme=scheme, codec="bbc")
        for name, cardinality, _, scheme, _ in DIMENSIONS
    }
    print("Building per-dimension bitmap indexes:")
    table = Table.from_columns(columns, configs)
    for name, cardinality, _, scheme, why in DIMENSIONS:
        size_kb = table.index_for(name).size_bytes() / 1024
        print(f"  {name:9s} -> {scheme}<{cardinality}>/bbc {size_kb:8.1f} KB  ({why})")

    dashboard = [
        (
            "EMEA-ish regions, mid categories",
            {
                "region": MembershipQuery.of({1, 3, 7}, 12),
                "category": IntervalQuery(10, 25, 60),
            },
            frozenset(),
        ),
        (
            "deep discounts in any region",
            {"discount": IntervalQuery(30, 39, 40)},
            frozenset(),
        ),
        (
            "three-way slice",
            {
                "region": MembershipQuery.of({0, 2}, 12),
                "category": IntervalQuery(0, 14, 60),
                "discount": IntervalQuery(20, 39, 40),
            },
            frozenset(),
        ),
        (
            "everything EXCEPT low categories",
            {
                "category": IntervalQuery(0, 14, 60),
                "discount": IntervalQuery(35, 39, 40),
            },
            frozenset({"category"}),
        ),
    ]

    print("\nDashboard queries (per-attribute answers combined with AND):")
    for label, predicates, negate in dashboard:
        result = table.select(predicates, negate=negate)
        # Verify against a naive scan of the raw columns.
        mask = np.ones(NUM_ROWS, dtype=bool)
        for attribute, query in predicates.items():
            attr_mask = query.matches(columns[attribute])
            if attribute in negate:
                attr_mask = ~attr_mask
            mask &= attr_mask
        assert result.row_count == int(mask.sum())
        print(
            f"  {label:35s} -> {result.row_count:7d} rows, "
            f"{result.total_scans:2d} bitmap scans, "
            f"{result.simulated_ms:7.2f} simulated ms  [verified]"
        )


if __name__ == "__main__":
    main()
