"""Quickstart: build a bitmap index and run selection queries.

Reproduces the paper's running example (Figures 1, 4 and 5): a
12-record relation over an attribute with cardinality 10, indexed with
each of the three basic encoding schemes, plus a larger Zipf column
queried through the public API.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BitmapIndex,
    IndexSpec,
    IntervalQuery,
    MembershipQuery,
    get_scheme,
    zipf_column,
)

# The paper's Figure 1(a) column: projection of attribute A, C = 10.
PAPER_COLUMN = np.array([3, 2, 1, 2, 8, 2, 9, 0, 7, 5, 6, 4])
CARDINALITY = 10


def show_paper_indexes() -> None:
    """Print the Figure 1 / Figure 5 bitmaps for the example column."""
    for name, figure in (("E", "1(b)"), ("R", "1(c)"), ("I", "5(c)")):
        scheme = get_scheme(name)
        bitmaps = scheme.build(PAPER_COLUMN, CARDINALITY)
        print(f"\n{scheme!r} — paper Figure {figure}, "
              f"{len(bitmaps)} bitmaps:")
        for slot in reversed(list(bitmaps)):
            bits = "".join(
                "1" if b else "0" for b in bitmaps[slot].to_bools()
            )
            values = sorted(scheme.catalog(CARDINALITY)[slot])
            print(f"  {name}^{slot} = {values}: {bits}")


def show_interval_definition() -> None:
    """Print the Figure 4(b) value sets of interval encoding, C = 10."""
    scheme = get_scheme("I")
    print("\nInterval encoding value sets (Figure 4(b), C=10):")
    for slot, values in scheme.catalog(CARDINALITY).items():
        print(f"  I^{slot} = [{min(values)}, {max(values)}]")


def query_demo() -> None:
    """Index a Zipf column and answer the three interval-query kinds."""
    values = zipf_column(num_records=100_000, cardinality=50, skew=1.0, seed=7)
    index = BitmapIndex.build(
        values,
        IndexSpec(cardinality=50, scheme="I", num_components=1, codec="bbc"),
    )
    print(f"\nBuilt {index!r}")
    print(f"  stored size: {index.size_bytes() / 1024:.1f} KB "
          f"(uncompressed would be {index.uncompressed_bytes() / 1024:.1f} KB)")

    queries = [
        IntervalQuery(17, 17, 50),        # equality
        IntervalQuery(0, 9, 50),          # one-sided range
        IntervalQuery(12, 30, 50),        # two-sided range
        MembershipQuery.of({6, 19, 20, 21, 22, 35}, 50),  # paper §5 example
    ]
    for query in queries:
        result = index.query(query)
        expected = int(query.matches(values).sum())
        status = "ok" if result.row_count == expected else "MISMATCH"
        print(
            f"  {str(query):30s} -> {result.row_count:6d} rows, "
            f"{result.stats.scans} bitmap scans, "
            f"{result.simulated_ms:7.2f} simulated ms  [{status}]"
        )


def main() -> None:
    show_paper_indexes()
    show_interval_definition()
    query_demo()


if __name__ == "__main__":
    main()
