"""Compressed-domain query evaluation (extension beyond the paper).

The paper's Figure 9 shows compressed indexes losing to uncompressed
ones at low skew because every query pays a decompression charge.
Word-aligned codecs can evaluate queries *without decompressing*:
logical ops run directly on the compressed payloads, touching only the
"dirty" words.  This example builds the same EWAH index twice the
paper's way (decompress-then-operate) and the compressed-domain way,
and prints the cost model's verdict per skew level.

Run:  python examples/compressed_queries.py
"""

from __future__ import annotations

from repro import BitmapIndex, CompressedQueryEngine, IndexSpec, MembershipQuery
from repro.storage import CostClock
from repro.workload import zipf_column

NUM_ROWS = 150_000
QUERY = MembershipQuery.of({3, 4, 5, 17, 30, 31, 32, 44}, 50)


def run_once(index: BitmapIndex, compressed_domain: bool) -> CostClock:
    clock = CostClock()
    if compressed_domain:
        engine = CompressedQueryEngine(index, clock=clock)
    else:
        engine = index.engine(clock=clock)
    result = engine.execute(QUERY)
    # Both engines must agree exactly.
    assert result.row_count == engine2_expected[id(index)]
    return clock


engine2_expected: dict[int, int] = {}


def main() -> None:
    print(f"Query: {QUERY}")
    print(
        f"{'z':>3s} {'index KB':>9s} "
        f"{'decode cpu ms':>14s} {'comp-dom cpu ms':>16s} {'speedup':>8s}"
    )
    for skew in (0.0, 1.0, 2.0, 3.0):
        values = zipf_column(NUM_ROWS, 50, skew, seed=1)
        index = BitmapIndex.build(
            values, IndexSpec(cardinality=50, scheme="E", codec="ewah")
        )
        engine2_expected[id(index)] = int(QUERY.matches(values).sum())

        standard = run_once(index, compressed_domain=False)
        compressed = run_once(index, compressed_domain=True)
        speedup = standard.cpu_ms / max(compressed.cpu_ms, 1e-9)
        print(
            f"{skew:3.0f} {index.size_bytes() / 1024:9.1f} "
            f"{standard.cpu_ms:14.3f} {compressed.cpu_ms:16.3f} "
            f"{speedup:7.1f}x"
        )
    print(
        "\nReading: the compressed-domain engine never decodes its "
        "operands, so the CPU charge that drives the paper's Figure 9 "
        "crossover largely disappears."
    )


if __name__ == "__main__":
    main()
