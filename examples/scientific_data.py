"""Scientific data: bitmap indexes over continuous measurements.

Interval encoding's descendants (FastBit) made their name on scientific
float columns, where the paper's consecutive-integer domain assumption
fails.  This example indexes a synthetic sensor table with the
dictionary/binning layer: an exact dictionary index for a
low-cardinality status code, and binned indexes (equi-depth vs
equi-width) for a skewed temperature column — showing the candidate
rechecks binning costs and how bin layout changes them.

Run:  python examples/scientific_data.py
"""

from __future__ import annotations

import numpy as np

from repro import AttributeIndex

NUM_ROWS = 150_000


def main() -> None:
    rng = np.random.default_rng(42)
    temperature = rng.gamma(shape=2.0, scale=15.0, size=NUM_ROWS)  # skewed
    status = rng.choice([200, 404, 500, 503], size=NUM_ROWS, p=[0.9, 0.06, 0.03, 0.01])

    print(f"{NUM_ROWS} sensor readings")

    status_index = AttributeIndex(status, scheme="E", codec="bbc")
    print(f"\nstatus  -> {status_index!r}")
    for code in (200, 503):
        result = status_index.equality_query(code)
        assert result.count() == int((status == code).sum())
        print(f"  status == {code}: {result.count():7d} rows  [verified]")

    print("\ntemperature (continuous, ~150k distinct values):")
    for binning in ("equi-depth", "equi-width"):
        index = AttributeIndex(
            temperature,
            scheme="I",
            codec="bbc",
            max_cardinality=256,
            num_bins=64,
            binning=binning,
        )
        queries = [(10.0, 20.0), (50.0, 200.0), (29.9, 30.1)]
        print(f"  {binning:10s} ({index.index.cardinality} bins, "
              f"{index.size_bytes() / 1024:.0f} KB):")
        for low, high in queries:
            result = index.range_query(low, high)
            expected = int(((temperature >= low) & (temperature <= high)).sum())
            assert result.count() == expected
            print(
                f"    {low:6.1f} <= T <= {high:6.1f}: {result.count():7d} "
                f"rows  [verified]"
            )

    print(
        "\nReading: binned answers stay exact because edge bins are "
        "rechecked against the raw column; equi-depth bins keep the "
        "recheck population balanced under skew."
    )


if __name__ == "__main__":
    main()
