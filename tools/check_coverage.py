#!/usr/bin/env python
"""Enforce per-package line-coverage floors over a coverage.py JSON report.

``pytest --cov`` can only enforce one global ``--cov-fail-under``
threshold; this repo holds different packages to different floors
(the codec differential suite keeps ``repro.compress`` at 90%, the
fault-injection suite keeps ``repro.storage`` and the persistence
module at 90%, the index layer at 85%, the concurrency + sharding
suites keep ``repro.serve`` at 92%).  CI runs::

    pytest --cov=repro.compress --cov=repro.expr --cov=repro.storage \
           --cov=repro.index --cov=repro.serve --cov-report=json
    python tools/check_coverage.py coverage.json

Floors may name a package (every file under it counts) or a single
module (``repro/index/persist.py``); a file contributes to every floor
whose path prefix it matches.  Exit status is 1 when any floor is
missed.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Path fragment under ``src/`` (package dir or module) -> minimum
#: line coverage.
FLOORS: dict[str, float] = {
    "repro/compress": 90.0,
    "repro/compress/adaptive.py": 90.0,
    "repro/compress/multiway.py": 90.0,
    "repro/compress/position_list.py": 90.0,
    "repro/compress/range_list.py": 90.0,
    "repro/expr": 90.0,
    "repro/storage": 90.0,
    "repro/index": 85.0,
    "repro/index/persist.py": 90.0,
    "repro/serve": 92.0,
    "repro/table/reorder.py": 90.0,
}


def packages_of(filename: str) -> list[str]:
    """Every gated floor a report file path contributes to."""
    parts = filename.replace("\\", "/").split("/")
    if "repro" not in parts:
        return []
    rel = "/".join(parts[parts.index("repro") :])
    return [
        pkg for pkg in FLOORS if rel == pkg or rel.startswith(pkg + "/")
    ]


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    report_path = Path(args[0]) if args else Path("coverage.json")
    if not report_path.exists():
        print(f"coverage report not found: {report_path}", file=sys.stderr)
        return 1
    report = json.loads(report_path.read_text())

    statements = {pkg: 0 for pkg in FLOORS}
    covered = {pkg: 0 for pkg in FLOORS}
    for filename, data in report["files"].items():
        summary = data["summary"]
        for pkg in packages_of(filename):
            statements[pkg] += summary["num_statements"]
            covered[pkg] += summary["covered_lines"]

    failed = False
    for pkg, floor in FLOORS.items():
        if not statements[pkg]:
            print(f"FAIL {pkg}: no files measured (is --cov missing?)")
            failed = True
            continue
        pct = 100.0 * covered[pkg] / statements[pkg]
        verdict = "ok  " if pct >= floor else "FAIL"
        if pct < floor:
            failed = True
        print(
            f"{verdict} {pkg}: {pct:.1f}% "
            f"({covered[pkg]}/{statements[pkg]} lines, floor {floor:.0f}%)"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
