#!/usr/bin/env python
"""Enforce per-package line-coverage floors over a coverage.py JSON report.

``pytest --cov`` can only enforce one global ``--cov-fail-under``
threshold; this repo holds different packages to different floors
(the codec differential suite keeps ``repro.compress`` at 90%, the
storage and index layers at 85%).  CI runs::

    pytest --cov=repro.compress --cov=repro.storage --cov=repro.index \
           --cov-report=json
    python tools/check_coverage.py coverage.json

Exit status is 1 when any package is under its floor.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Package (as a path fragment under ``src/``) -> minimum line coverage.
FLOORS: dict[str, float] = {
    "repro/compress": 90.0,
    "repro/storage": 85.0,
    "repro/index": 85.0,
}


def package_of(filename: str) -> str | None:
    """Map a report file path onto one of the gated packages."""
    parts = filename.replace("\\", "/").split("/")
    if "repro" not in parts:
        return None
    i = parts.index("repro")
    if i + 1 >= len(parts) - 1:  # a top-level module, not a subpackage
        return None
    return "/".join(parts[i : i + 2])


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    report_path = Path(args[0]) if args else Path("coverage.json")
    if not report_path.exists():
        print(f"coverage report not found: {report_path}", file=sys.stderr)
        return 1
    report = json.loads(report_path.read_text())

    statements = {pkg: 0 for pkg in FLOORS}
    covered = {pkg: 0 for pkg in FLOORS}
    for filename, data in report["files"].items():
        pkg = package_of(filename)
        if pkg not in FLOORS:
            continue
        summary = data["summary"]
        statements[pkg] += summary["num_statements"]
        covered[pkg] += summary["covered_lines"]

    failed = False
    for pkg, floor in FLOORS.items():
        if not statements[pkg]:
            print(f"FAIL {pkg}: no files measured (is --cov missing?)")
            failed = True
            continue
        pct = 100.0 * covered[pkg] / statements[pkg]
        verdict = "ok  " if pct >= floor else "FAIL"
        if pct < floor:
            failed = True
        print(
            f"{verdict} {pkg}: {pct:.1f}% "
            f"({covered[pkg]}/{statements[pkg]} lines, floor {floor:.0f}%)"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
