"""Benchmark + regeneration of Figure 9 (skew vs space-time)."""

import dataclasses

import pytest

from benchmarks.conftest import record_table
from repro.experiments import ExperimentConfig, run_experiment

CONFIG = ExperimentConfig(
    num_records=30_000, component_counts=(1, 2, 3), queries_per_set=5
)


def test_figure9_regenerate(benchmark, bench_workers):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "figure9", dataclasses.replace(CONFIG, workers=bench_workers)
        ),
        rounds=1,
        iterations=1,
    )
    record_table("figure9", result.render())

    def best(z, prefix=None, codec=None):
        rows = [
            r
            for r in result.rows
            if r[0] == z
            and (prefix is None or r[1].startswith(prefix))
            and (codec is None or r[1].endswith(codec))
        ]
        return min(r[3] for r in rows)

    # Paper's reading: compression pays off at high skew — the gap
    # between compressed and uncompressed best-times narrows or flips
    # as z grows (compressed indexes also shrink drastically).
    def frontier_space(z):
        rows = [r for r in result.rows if r[0] == z and r[4] == "*"]
        return min(r[2] for r in rows)

    assert frontier_space("3") < frontier_space("0")
