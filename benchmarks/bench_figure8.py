"""Benchmark + regeneration of Figure 8 (space-time per query set).

The benchmark times the core query-processing kernel (a membership
query through rewrite + buffered evaluation); the full per-set scatter
is regenerated once.
"""

import dataclasses

import pytest

from benchmarks.conftest import record_table
from repro.experiments import ExperimentConfig, run_experiment
from repro.index import BitmapIndex, IndexSpec
from repro.queries import QuerySetSpec, generate_query_set
from repro.workload import zipf_column

CONFIG = ExperimentConfig(
    num_records=30_000, component_counts=(1, 2, 3), queries_per_set=10
)


def test_figure8_regenerate(benchmark, bench_workers):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "figure8", dataclasses.replace(CONFIG, workers=bench_workers)
        ),
        rounds=1,
        iterations=1,
    )
    record_table("figure8", result.render())
    # Paper's reading: on the equality-only sets the fastest design is
    # equality-encoded; on the pure-range single-interval set the
    # frontier contains an interval design.
    eq_rows = [r for r in result.rows if r[0] == "Nint=1,Nequ=1"]
    assert min(eq_rows, key=lambda r: r[3])[1].startswith("E")
    rq_frontier = [
        r for r in result.rows if r[0] == "Nint=1,Nequ=0" and r[4] == "*"
    ]
    assert any(r[1].startswith("I") for r in rq_frontier)


@pytest.fixture(scope="module")
def query_engine():
    values = zipf_column(CONFIG.num_records, 50, 1.0, seed=0)
    index = BitmapIndex.build(
        values, IndexSpec(cardinality=50, scheme="I", codec="bbc")
    )
    queries = generate_query_set(QuerySetSpec(5, 3), 50, num_queries=10, seed=0)
    return index, queries


def test_membership_query_kernel(benchmark, query_engine):
    """End-to-end membership evaluation, cold buffer per query."""
    index, queries = query_engine
    engine = index.engine()

    def run():
        total = 0
        for query in queries:
            engine.pool.clear()
            total += engine.execute(query).row_count
        return total

    benchmark(run)
