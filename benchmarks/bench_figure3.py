"""Benchmark + regeneration of Figure 3 (the performance field)."""

import dataclasses

import pytest

from benchmarks.conftest import record_table
from repro.experiments import ExperimentConfig, run_experiment

CONFIG = ExperimentConfig(cardinality=50, component_counts=(1, 2, 3))


def test_figure3_regenerate(benchmark, bench_workers):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "figure3", dataclasses.replace(CONFIG, workers=bench_workers)
        ),
        rounds=1,
        iterations=1,
    )
    record_table("figure3", result.render())
    # Interval encoding sits on the 2RQ and RQ frontiers; equality
    # encoding on the EQ frontier — Theorems 3.1/4.1 in field form.
    marks = {(r[0], r[1]): r[4] for r in result.rows}
    assert marks[("2RQ", "I<50>")] == "*"
    assert marks[("RQ", "I<50>")] == "*"
    assert marks[("EQ", "E<50>")] == "*"
