"""Ablation: bin count and layout vs candidate-recheck cost.

Binned bitmap indexes (the dictionary-layer extension) trade index size
against candidate rechecks on edge bins.  This bench sweeps the bin
count for both layouts on a skewed float column and reports index size
plus the average number of candidate rows rechecked per query —
equi-depth's advantage under skew is the classic result this verifies.
"""

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.analysis.report import render_table
from repro.dictionary import AttributeIndex, Binner

NUM_ROWS = 60_000


@pytest.fixture(scope="module")
def column():
    rng = np.random.default_rng(0)
    return rng.gamma(shape=2.0, scale=15.0, size=NUM_ROWS)


def recheck_cost(values: np.ndarray, binner: Binner, queries) -> float:
    """Average candidate rows landing in edge bins per query."""
    codes = binner.encode(values)
    total = 0
    for low, high in queries:
        _, edges = binner.range_plan(low, high)
        total += int(np.isin(codes, edges).sum())
    return total / len(queries)


def test_binning_ablation(benchmark, column):
    rng = np.random.default_rng(1)
    queries = [
        tuple(sorted(rng.uniform(0, 150, size=2))) for _ in range(20)
    ]

    def build_rows():
        rows = []
        for num_bins in (8, 32, 128):
            for layout in ("equi-width", "equi-depth"):
                if layout == "equi-width":
                    binner = Binner.equi_width(
                        float(column.min()), float(column.max()), num_bins
                    )
                else:
                    binner = Binner.equi_depth(column, num_bins)
                index = AttributeIndex(
                    column,
                    max_cardinality=4,  # force binning
                    num_bins=num_bins,
                    binning=layout,
                    codec="bbc",
                )
                rows.append(
                    [
                        num_bins,
                        layout,
                        index.size_bytes() / 1024,
                        recheck_cost(column, binner, queries),
                    ]
                )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_table(
        "binning-ablation",
        render_table(
            ["bins", "layout", "index KB", "avg candidates/query"],
            rows,
            title=(
                "Binned-index ablation (gamma-distributed floats, "
                "20 random range queries)"
            ),
        ),
    )
    by_key = {(r[0], r[1]): r for r in rows}
    # More bins -> fewer candidates, for both layouts.
    for layout in ("equi-width", "equi-depth"):
        assert (
            by_key[(128, layout)][3] < by_key[(8, layout)][3]
        )
    # Under skew, equi-depth needs fewer rechecks than equi-width at
    # the same bin count (its worst bins are not over-populated).
    assert by_key[(32, "equi-depth")][3] < by_key[(32, "equi-width")][3]


def test_range_query_kernel(benchmark, column):
    index = AttributeIndex(
        column, max_cardinality=4, num_bins=64, binning="equi-depth"
    )
    benchmark(index.range_query, 20.0, 80.0)
