"""Ablation: BBC vs WAH vs EWAH vs roaring size and speed across skews.

Not a paper figure — the paper fixes the codec to Antoshenkov's
byte-aligned scheme.  This bench shows the choice does not change the
paper's conclusions (compression ratios order the same way for every
codec) while quantifying their encode/decode throughput.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.report import render_table
from repro.compress import get_codec, measure_codec
from repro.encoding import get_scheme
from repro.workload import zipf_column

NUM_RECORDS = 50_000
CODECS = ("bbc", "wah", "ewah", "roaring")


@pytest.fixture(scope="module")
def bitmaps_by_skew():
    out = {}
    for skew in (0.0, 1.0, 2.0, 3.0):
        values = zipf_column(NUM_RECORDS, 50, skew, seed=0)
        out[skew] = {
            scheme: list(get_scheme(scheme).build(values, 50).values())
            for scheme in ("E", "R", "I")
        }
    return out


def test_codec_ablation_table(benchmark, bitmaps_by_skew):
    def build_rows():
        rows = []
        for skew, per_scheme in bitmaps_by_skew.items():
            for scheme, bitmaps in per_scheme.items():
                row = [f"z={skew:g}", scheme]
                for codec_name in CODECS:
                    stats = measure_codec(get_codec(codec_name), bitmaps)
                    row.append(stats.ratio)
                rows.append(row)
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_table(
        "codec-ablation",
        render_table(
            ["skew", "scheme", *CODECS],
            rows,
            title="Codec ablation: compressed/uncompressed ratio",
        ),
    )
    # The paper's Figure 6(b) ordering (E < R < I) holds for all codecs.
    for codec_index in range(len(CODECS)):
        z1 = {row[1]: row[2 + codec_index] for row in rows if row[0] == "z=1"}
        assert z1["E"] < z1["R"] <= z1["I"] * 1.01


@pytest.mark.parametrize("codec_name", CODECS)
def test_encode_throughput(benchmark, bitmaps_by_skew, codec_name):
    codec = get_codec(codec_name)
    bitmaps = bitmaps_by_skew[1.0]["E"]

    def encode_all():
        return sum(len(codec.encode(b)) for b in bitmaps)

    benchmark(encode_all)


@pytest.mark.parametrize("codec_name", CODECS)
def test_decode_throughput(benchmark, bitmaps_by_skew, codec_name):
    codec = get_codec(codec_name)
    bitmaps = bitmaps_by_skew[1.0]["E"]
    payloads = [(codec.encode(b), len(b)) for b in bitmaps]

    def decode_all():
        return sum(codec.decode(p, n).count() for p, n in payloads)

    benchmark(decode_all)
