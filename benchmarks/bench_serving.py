#!/usr/bin/env python
"""Serving-layer benchmark: shared-scan batching vs. serial execution.

Replays the paper's default serving workload — a Zipf(z=1) column at
cardinality 200 with a 1000-query membership mix — through
:class:`repro.serve.QueryService` twice, with identical buffer pools
and the result cache disabled:

* **serial**: ``max_batch=1`` — every query is its own scan (the
  pre-serving behavior);
* **batched**: queries submitted in waves of ``--concurrency`` and
  planned into shared scans (``execute_many``, the deterministic path,
  so the comparison is exact counted pages, not thread-timing noise).

The headline number is buffer-pool **pages read per query**; the gate
(exit 1) requires batched < serial at concurrency >= 8 — the whole
point of the serving layer's shared scans.  A second section
demonstrates the result cache: a repeated mix must be served with zero
bitmap reads until an append invalidates it.

A threaded closed-loop run (the real worker-pool path) is also timed
for throughput/latency reporting; it is not gated.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --quick
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.index import BitmapIndex, IndexSpec
from repro.serve import (
    QueryService,
    ServiceConfig,
    ShardedConfig,
    ShardedQueryService,
    paper_mix,
    run_closed_loop,
)
from repro.workload import zipf_column

#: Paper default workload (PAPER.md Section 7): C=200, Zipf z=1.
CARDINALITY = 200
SKEW = 1.0

#: Near-linear-scaling gate: sharded throughput at SCALING_SHARDS shards
#: must be at least this multiple of the 1-shard throughput.  Enforced
#: only on runners with enough cores to make the claim physically
#: meaningful (shards evaluate in separate processes; a 1-core container
#: cannot scale no matter how good the routing is).
SCALING_SHARDS = 4
SCALING_FACTOR = 2.5
SCALING_MIN_CPUS = 4


def build_index(
    num_records: int, scheme: str, codec: str, seed: int
) -> tuple[BitmapIndex, np.ndarray]:
    values = zipf_column(num_records, CARDINALITY, SKEW, seed=seed)
    spec = IndexSpec(cardinality=CARDINALITY, scheme=scheme, codec=codec)
    return BitmapIndex.build(values, spec), values


def pages_per_query(
    index: BitmapIndex,
    queries: list,
    wave: int,
    buffer_pages: int,
    engine: str,
) -> tuple[float, int]:
    """Counted pages/query executing ``queries`` in waves of ``wave``."""
    config = ServiceConfig(
        workers=1,
        max_batch=max(1, wave),
        buffer_pages=buffer_pages,
        cache_entries=0,  # isolate batching from caching
        engine=engine,
    )
    service = QueryService(index, config)
    try:
        for start in range(0, len(queries), max(1, wave)):
            service.execute_many(queries[start : start + max(1, wave)])
        pages = service.clock.pages_read
    finally:
        service.close()
    return pages / len(queries), pages


def run_serving_bench(
    num_records: int = 20_000,
    num_queries: int = 1000,
    concurrency: int = 8,
    buffer_pages: int = 16,
    scheme: str = "E",
    codec: str = "raw",
    engine: str = "decoded",
    seed: int = 0,
) -> dict:
    """The full serving comparison; returns a JSON-ready result dict."""
    index, _ = build_index(num_records, scheme, codec, seed)
    queries = paper_mix(CARDINALITY, num_queries, seed=seed)
    params = {
        "num_records": num_records,
        "num_queries": num_queries,
        "cardinality": CARDINALITY,
        "skew": SKEW,
        "concurrency": concurrency,
        "buffer_pages": buffer_pages,
        "scheme": scheme,
        "codec": codec,
        "engine": engine,
    }

    serial_ppq, serial_pages = pages_per_query(
        index, queries, 1, buffer_pages, engine
    )
    batched_ppq, batched_pages = pages_per_query(
        index, queries, concurrency, buffer_pages, engine
    )

    # Result cache: a repeated mix is free until an append invalidates.
    config = ServiceConfig(
        workers=1,
        max_batch=concurrency,
        buffer_pages=buffer_pages,
        cache_entries=num_queries + 1,
        engine=engine,
    )
    service = QueryService(index, config)
    try:
        service.execute_many(queries)
        pages_first = service.clock.pages_read
        service.execute_many(queries)
        pages_repeat = service.clock.pages_read - pages_first
        service.append(np.zeros(1, dtype=np.int64))
        service.execute_many(queries[:1])
        pages_after_append = service.clock.pages_read - pages_first - pages_repeat
    finally:
        service.close()

    # Threaded closed-loop pass for wall-clock throughput (not gated).
    config = ServiceConfig(
        workers=2,
        max_batch=concurrency,
        max_queue=max(64, concurrency * 4),
        buffer_pages=buffer_pages,
        cache_entries=0,
        engine=engine,
    )
    service = QueryService(index, config)
    try:
        report = run_closed_loop(service, queries, concurrency=concurrency)
    finally:
        service.close()

    return {
        "params": params,
        "serial_pages_per_query": serial_ppq,
        "batched_pages_per_query": batched_ppq,
        "serial_pages": serial_pages,
        "batched_pages": batched_pages,
        "pages_saved_pct": 100.0 * (1.0 - batched_ppq / serial_ppq)
        if serial_ppq
        else 0.0,
        "cache_pages_first_pass": pages_first,
        "cache_pages_repeat_pass": pages_repeat,
        "cache_pages_after_append": pages_after_append,
        "closed_loop": {
            "throughput_qps": report.throughput_qps,
            "completed": report.completed,
            "mean_batch_size": report.mean_batch_size,
            "pages_per_query": report.pages_per_query,
            "latency_ms": report.latency_ms,
            "simulated_ms": report.simulated_ms,
        },
    }


def run_sharded_bench(
    num_records: int = 20_000,
    num_queries: int = 400,
    shards: int = SCALING_SHARDS,
    concurrency: int = 8,
    scheme: str = "E",
    codec: str = "raw",
    transport: str = "process",
    seed: int = 0,
) -> dict:
    """Throughput at 1 shard vs ``shards`` shards, plus a differential.

    Caches are disabled so every query is evaluated, the closed loop
    offers ``concurrency`` clients, and the same query mix replays at
    both shard counts.  A sample of the answers is checked bit-for-bit
    against the naive column scan at *both* shard counts — the scaling
    number is meaningless if sharding changes answers.

    The scaling gate itself is enforced only when the runner has at
    least :data:`SCALING_MIN_CPUS` cores (``gate_enforced`` records the
    decision); the differential is enforced everywhere.
    """
    values = zipf_column(num_records, CARDINALITY, SKEW, seed=seed)
    spec = IndexSpec(cardinality=CARDINALITY, scheme=scheme, codec=codec)
    queries = paper_mix(CARDINALITY, num_queries, seed=seed)
    sample = queries[: min(16, len(queries))]
    naive = [
        np.flatnonzero(query.matches(values)).tolist() for query in sample
    ]

    throughput: dict[str, float] = {}
    mismatches: list[str] = []
    for n in (1, shards):
        config = ShardedConfig(
            shards=n,
            transport=transport,
            workers=2,
            max_batch=concurrency,
            max_queue=max(64, concurrency * 4),
            cache_entries=0,
        )
        with ShardedQueryService(values, spec, config) as service:
            report = run_closed_loop(
                service, queries, concurrency=concurrency
            )
            throughput[str(n)] = report.throughput_qps
            for query, expected in zip(sample, naive):
                got = service.execute(query).row_ids()
                if list(got) != expected:
                    mismatches.append(
                        f"{n}-shard answer for {query} disagrees with "
                        f"the naive scan"
                    )
                    break

    speedup = (
        throughput[str(shards)] / throughput["1"] if throughput["1"] else 0.0
    )
    cpus = os.cpu_count() or 1
    return {
        "params": {
            "num_records": num_records,
            "num_queries": num_queries,
            "shards": shards,
            "concurrency": concurrency,
            "scheme": scheme,
            "codec": codec,
            "transport": transport,
            "cpus": cpus,
        },
        "throughput_qps": throughput,
        "speedup": speedup,
        "scaling_factor_required": SCALING_FACTOR,
        "gate_enforced": cpus >= SCALING_MIN_CPUS,
        "mismatches": mismatches,
    }


def check_sharded_gates(results: dict) -> list[str]:
    """Sharded-tier gates; returns failure messages (empty = pass)."""
    failures = list(results["mismatches"])
    if results["gate_enforced"]:
        if results["speedup"] < results["scaling_factor_required"]:
            failures.append(
                f"sharded throughput scaled only "
                f"{results['speedup']:.2f}x at "
                f"{results['params']['shards']} shards "
                f"(gate: >= {results['scaling_factor_required']:.1f}x on a "
                f"{results['params']['cpus']}-cpu runner)"
            )
    return failures


def check_gates(results: dict) -> list[str]:
    """The serving gates; returns failure messages (empty = pass)."""
    failures = []
    if results["batched_pages_per_query"] >= results["serial_pages_per_query"]:
        failures.append(
            f"shared-scan batching read "
            f"{results['batched_pages_per_query']:.2f} pages/query, not "
            f"strictly fewer than serial "
            f"({results['serial_pages_per_query']:.2f})"
        )
    if results["cache_pages_repeat_pass"] != 0:
        failures.append(
            f"result cache read {results['cache_pages_repeat_pass']} pages "
            f"on a repeated mix (expected 0)"
        )
    if results["cache_pages_after_append"] <= 0:
        failures.append(
            "append did not invalidate the result cache (post-append query "
            "read no pages)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for a CI smoke run")
    parser.add_argument("--num-records", type=int, default=None)
    parser.add_argument("--num-queries", type=int, default=None)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--buffer-pages", type=int, default=16)
    parser.add_argument("--scheme", default="E")
    parser.add_argument("--codec", default="raw")
    parser.add_argument("--engine", default="decoded",
                        choices=("decoded", "compressed"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-sharded",
        action="store_true",
        help="skip the sharded-tier scaling section",
    )
    parser.add_argument(
        "--shards", type=int, default=SCALING_SHARDS,
        help="shard count for the sharded scaling section",
    )
    args = parser.parse_args(argv)

    num_records = args.num_records or (2_000 if args.quick else 20_000)
    num_queries = args.num_queries or (200 if args.quick else 1000)

    results = run_serving_bench(
        num_records=num_records,
        num_queries=num_queries,
        concurrency=args.concurrency,
        buffer_pages=args.buffer_pages,
        scheme=args.scheme,
        codec=args.codec,
        engine=args.engine,
        seed=args.seed,
    )
    print(
        f"serial:   {results['serial_pages_per_query']:.2f} pages/query "
        f"({results['serial_pages']} pages)"
    )
    print(
        f"batched:  {results['batched_pages_per_query']:.2f} pages/query "
        f"({results['batched_pages']} pages, concurrency "
        f"{args.concurrency}) — {results['pages_saved_pct']:.1f}% fewer"
    )
    print(
        f"cache:    first pass {results['cache_pages_first_pass']} pages, "
        f"repeat {results['cache_pages_repeat_pass']} pages, "
        f"post-append {results['cache_pages_after_append']} pages"
    )
    loop = results["closed_loop"]
    print(
        f"threaded: {loop['throughput_qps']:.0f} q/s, mean batch "
        f"{loop['mean_batch_size']:.1f}, "
        f"{loop['pages_per_query']:.2f} pages/query"
    )
    if loop["latency_ms"]:
        print(
            "latency:  p50={p50:.2f} p95={p95:.2f} p99={p99:.2f} ms (wall)"
            .format(**loop["latency_ms"])
        )

    failures = check_gates(results)

    if not args.no_sharded:
        sharded = run_sharded_bench(
            num_records=num_records,
            num_queries=min(num_queries, 400),
            shards=args.shards,
            concurrency=args.concurrency,
            scheme=args.scheme,
            codec=args.codec,
            seed=args.seed,
        )
        qps = sharded["throughput_qps"]
        enforced = "enforced" if sharded["gate_enforced"] else (
            f"report-only: {sharded['params']['cpus']} cpu(s)"
        )
        print(
            f"sharded:  {qps['1']:.0f} q/s at 1 shard -> "
            f"{qps[str(args.shards)]:.0f} q/s at {args.shards} shards "
            f"({sharded['speedup']:.2f}x, gate "
            f">={sharded['scaling_factor_required']:.1f}x {enforced})"
        )
        failures.extend(check_sharded_gates(sharded))

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
