#!/usr/bin/env python
"""Benchmark-regression driver: codec kernels, compressed ops, one e2e run.

Times encode/decode for every codec, compressed-domain AND/OR, the
fused-vs-materializing expression evaluators, and one end-to-end
figure regeneration, then writes ``BENCH_PR10.json`` at the repo root.
Prior recorded numbers are merged in under prefixed names — ``seed:``
for the pre-vectorization baseline (``benchmarks/results/
seed_baseline.json``) and ``pr1:`` through ``pr9:`` for each PR's
recorded numbers (``BENCH_PR<n>.json``) — so a single file shows
current medians next to every baseline.

Schema: ``{bench_name: {"median_s": float, "iterations": int,
"params": {...}}}``, plus two special entries: ``obs_export`` holds the
full :mod:`repro.obs` export of an instrumented end-to-end figure run
(the per-figure span tree and ``clock.*``/``buffer.*`` counters), and
``serving_shared_scan`` holds the counted-pages serving comparison from
:mod:`benchmarks.bench_serving`, so the uploaded artifact doubles as an
observability sample.  ``serving_sharded_scaling`` records the sharded
tier's 1-shard vs 4-shard closed-loop throughput and a naive-scan
differential.

Gates that can fail the run (exit 1):

* the serving layer's shared-scan batching reading as many or more
  buffer-pool pages per query than serial execution at concurrency 8
  (or its result cache reading pages on a repeated mix / surviving an
  append) — counted pages, deterministic, so this gate runs in
  ``--quick`` mode too;
* the sharded tier returning any answer that differs from a naive
  column scan (always enforced), or 4 shards failing to reach a 2.5x
  closed-loop speedup over 1 shard — the scaling half enforces only on
  runners with at least 4 CPUs (``gate_enforced`` in the recorded
  entry says which mode applied);

* the 1-of-16 threshold plan disagreeing with the expanded OR-chain
  bit-for-bit, or failing to operate strictly fewer words than the
  chain's pairwise fold on the compressed engine — one counting pass
  over the N payloads is the point of the threshold algebra (counted
  words, deterministic, so this gate runs in ``--quick`` mode too);
* a ``reorder="lexicographic"`` build failing to come out strictly
  smaller than the unordered build for WAH/EWAH/BBC at any measured
  Zipf skew z >= 1, or any reordered query answer differing from the
  unordered build after permutation mapping — shrinking every
  word-aligned codec with bit-identical answers is the point of the
  row-reordering pass (sizes and answers are deterministic, so this
  gate runs in ``--quick`` mode too; the ``reorder_skew_benefit``
  entry carries the full skew-vs-benefit curve per codec);
* roaring's compressed-domain AND slower than WAH's at the measured
  configuration — the speed of per-container dispatch over matching
  chunks is the point of the roaring extension, so losing to a
  word-aligned run-length codec is a regression;
* fused block-at-a-time evaluation slower than the materializing
  evaluator on the large-tree workload, or the fused run allocating
  any full-length intermediate (``expr.intermediate_allocs`` with
  ``mode=fused`` must read 0 — counted via :mod:`repro.obs`, so the
  allocation half of the gate is deterministic and runs in ``--quick``
  mode too; the timing half is full-mode only);
* installing a :class:`repro.obs.Observability` instance slows the
  codec kernel workload by more than 5% — the instrumentation must
  stay effectively free.  (The overhead is measured in ``--quick``
  mode too but only reported there: one-iteration timings are too
  noisy to gate on.)
* the ``auto`` meta-codec losing its reason to exist on the Markov
  (density x clustering) grid: in any cell ``auto`` coming out more
  than 5% larger than the best fixed codec, any fixed codec beating
  ``auto``'s summed total across the grid, or fewer than 3 distinct
  fixed codecs winning cells (if one codec won everywhere, per-bitmap
  selection would be pointless).  Sizes are deterministic but the
  grid shrinks with ``--quick``, so the gate enforces in full mode
  and reports only in ``--quick``.

Usage::

    PYTHONPATH=src python benchmarks/bench_regression.py
    PYTHONPATH=src python benchmarks/bench_regression.py --quick
    PYTHONPATH=src python benchmarks/bench_regression.py --workers 4

``--quick`` shrinks the bit-vector size and the e2e record count so CI
can smoke the driver in seconds; quick numbers are not comparable to
the recorded baselines and are therefore not written unless an
``--output`` is named explicitly.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

import numpy as np

from repro import obs
from repro.bitmap import BitVector
from repro.compress import get_codec
from repro.expr import evaluate, evaluate_fused, leaf
from repro.compress.bbc_ops import bbc_logical
from repro.compress.compressed_ops import ewah_logical
from repro.compress.roaring_ops import roaring_logical
from repro.compress.wah_ops import wah_logical
from repro.experiments import ExperimentConfig, run_experiment

from benchmarks.bench_serving import check_gates as serving_gates
from benchmarks.bench_serving import check_sharded_gates, run_serving_bench
from benchmarks.bench_serving import run_sharded_bench

SEED_BASELINE = Path(__file__).parent / "results" / "seed_baseline.json"
PR1_BASELINE = REPO_ROOT / "BENCH_PR1.json"
PR2_BASELINE = REPO_ROOT / "BENCH_PR2.json"
PR3_BASELINE = REPO_ROOT / "BENCH_PR3.json"
PR4_BASELINE = REPO_ROOT / "BENCH_PR4.json"
PR5_BASELINE = REPO_ROOT / "BENCH_PR5.json"
PR6_BASELINE = REPO_ROOT / "BENCH_PR6.json"
PR7_BASELINE = REPO_ROOT / "BENCH_PR7.json"
PR8_BASELINE = REPO_ROOT / "BENCH_PR8.json"
PR9_BASELINE = REPO_ROOT / "BENCH_PR9.json"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR10.json"

#: Maximum tolerated slowdown of the kernel workload with obs installed.
OBS_OVERHEAD_LIMIT_PCT = 5.0


def timeit(fn, iterations: int) -> float:
    """Median wall-clock seconds over ``iterations`` calls."""
    samples = []
    for _ in range(iterations):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def make_vector(n: int, density: float, seed: int) -> BitVector:
    rng = np.random.default_rng(seed)
    return BitVector.from_bools(rng.random(n) < density)


def run_benchmarks(
    n_bits: int, density: float, num_records: int, workers: int, iters: int
) -> dict[str, dict]:
    results: dict[str, dict] = {}
    codec_params = {"n_bits": n_bits, "density": density}
    vec = make_vector(n_bits, density, 0)
    vec2 = make_vector(n_bits, density, 1)

    payloads = {}
    for name in ("wah", "ewah", "bbc", "roaring"):
        codec = get_codec(name)
        payloads[name] = (codec.encode(vec), codec.encode(vec2))
        results[f"{name}_encode"] = {
            "median_s": timeit(lambda c=codec: c.encode(vec), iters),
            "iterations": iters,
            "params": codec_params,
        }
        payload = payloads[name][0]
        results[f"{name}_decode"] = {
            "median_s": timeit(
                lambda c=codec, p=payload: c.decode(p, n_bits), iters
            ),
            "iterations": iters,
            "params": codec_params,
        }

    wah_a, wah_b = payloads["wah"]
    ewah_a, ewah_b = payloads["ewah"]
    bbc_a, bbc_b = payloads["bbc"]
    roar_a, roar_b = payloads["roaring"]
    op_benches = {
        "wah_and": lambda: wah_logical("and", wah_a, wah_b),
        "ewah_and": lambda: ewah_logical("and", ewah_a, ewah_b),
        "ewah_or": lambda: ewah_logical("or", ewah_a, ewah_b),
        "bbc_and": lambda: bbc_logical("and", bbc_a, bbc_b, n_bits),
        "roaring_and": lambda: roaring_logical("and", roar_a, roar_b, n_bits),
        "roaring_or": lambda: roaring_logical("or", roar_a, roar_b, n_bits),
    }
    for bench_name, fn in op_benches.items():
        results[bench_name] = {
            "median_s": timeit(fn, iters),
            "iterations": iters,
            "params": codec_params,
        }

    config = ExperimentConfig(num_records=num_records, workers=workers)
    results["figure6_e2e"] = {
        "median_s": timeit(lambda: run_experiment("figure6", config), 1),
        "iterations": 1,
        "params": {"num_records": num_records, "workers": workers},
    }

    # Separate instrumented run so the timing above stays comparable to
    # the recorded baselines; its export ships with the results.
    with obs.observed() as o:
        run_experiment("figure6", config)
    results["obs_export"] = o.export()

    results["obs_overhead"] = measure_obs_overhead(n_bits, density)

    # Fused evaluation wants vectors much larger than one block, so it
    # gets its own size: 16x the codec size keeps the materializing
    # intermediates out of cache at the full configuration.
    results.update(run_fused_eval_bench(n_bits * 16, density, iters))

    # Serving layer: counted pages, deterministic at any size.
    results["serving_shared_scan"] = run_serving_bench(
        num_records=num_records, num_queries=min(200, 10 * num_records)
    )

    # Sharded tier: 1-shard vs 4-shard closed-loop throughput plus a
    # naive-scan differential (the scaling half of the gate enforces
    # itself only on runners with enough cores; the differential always
    # enforces).
    results["serving_sharded_scaling"] = run_sharded_bench(
        num_records=num_records,
        num_queries=min(200, 10 * num_records),
    )

    # Threshold algebra: k-of-N as one counting pass vs the expanded
    # OR-chain.  Counted words, deterministic at any size.
    results["threshold_vs_or_chain"] = run_threshold_bench(num_records)

    # Row reordering: size and AND/OR throughput before/after the
    # build-time sort, per codec, over the Zipf skew sweep (the
    # skew-vs-benefit curve).  Sizes and answers are deterministic, so
    # the shrink + bit-identical gate runs in --quick mode too.
    results["reorder_skew_benefit"] = run_reorder_bench(num_records, iters)

    # Adaptive selection: auto vs every fixed codec over the Markov
    # (density x clustering) grid.  Sized like the fused bench so the
    # sparse cells still hold thousands of set bits.
    results["adaptive_codec_selection"] = run_adaptive_bench(n_bits * 16)
    return results


REORDER_CODECS = ("wah", "ewah", "bbc", "roaring")
#: Codecs the shrink gate enforces: the word-aligned run-length family,
#: where sorting must pay off at every z >= 1 (roaring is recorded but
#: not gated — its array containers are already order-insensitive at
#: low density).
REORDER_GATED_CODECS = ("wah", "ewah", "bbc")


def run_reorder_bench(
    num_records: int,
    iters: int,
    cardinality: int = 64,
    skews: tuple[float, ...] = (0.0, 1.0, 2.0),
) -> dict:
    """Index size and compressed AND/OR time, unordered vs reordered.

    For every codec and Zipf skew the same column is indexed twice —
    arrival order and `reorder="lexicographic"` — and the entry records
    both stored sizes, the shrink factor, median compressed-domain
    AND/OR wall time over the two largest equality bitmaps, and whether
    a mixed query workload answered bit-identically after permutation
    mapping.  The skew axis is the Kaser/Lemire skew-vs-benefit curve.
    """
    from repro.compress import CompressedBitmap
    from repro.index import BitmapIndex, IndexSpec
    from repro.queries import IntervalQuery, MembershipQuery
    from repro.workload import zipf_column

    curves: dict[str, dict] = {}
    identical = True
    for codec in REORDER_CODECS:
        curve = []
        for skew in skews:
            values = zipf_column(num_records, cardinality, skew, seed=9)
            spec = IndexSpec(cardinality=cardinality, scheme="E", codec=codec)
            plain = BitmapIndex.build(values, spec)
            sorted_ = BitmapIndex.build(
                values,
                IndexSpec(
                    cardinality=cardinality,
                    scheme="E",
                    codec=codec,
                    reorder="lexicographic",
                ),
            )
            queries = [
                IntervalQuery(4, cardinality // 2, cardinality),
                MembershipQuery.of({1, 5, cardinality - 2}, cardinality),
            ]
            for query in queries:
                if plain.query(query).bitmap != sorted_.query(query).bitmap:
                    identical = False

            def op_time(index: BitmapIndex) -> dict[str, float]:
                # The two heaviest equality bitmaps: most frequent values.
                counts = np.bincount(values, minlength=cardinality)
                a, b = np.argsort(counts)[-2:]
                left = CompressedBitmap(
                    *index.store.get_payload((0, int(a))), codec
                )
                right = CompressedBitmap(
                    *index.store.get_payload((0, int(b))), codec
                )
                return {
                    "and_s": timeit(lambda: left & right, max(iters, 3)),
                    "or_s": timeit(lambda: left | right, max(iters, 3)),
                }

            curve.append(
                {
                    "skew": skew,
                    "unordered_bytes": plain.size_bytes(),
                    "reordered_bytes": sorted_.size_bytes(),
                    "shrink_factor": plain.size_bytes()
                    / max(1, sorted_.size_bytes()),
                    "unordered": op_time(plain),
                    "reordered": op_time(sorted_),
                }
            )
        curves[codec] = {"curve": curve}
    return {
        "params": {
            "num_records": num_records,
            "cardinality": cardinality,
            "scheme": "E",
            "skews": list(skews),
        },
        "bit_identical": identical,
        "codecs": curves,
    }


def check_reorder_gates(entry: dict) -> list[str]:
    """Failures of the reorder gate: shrink at z >= 1, identical answers.

    The reordered build must be strictly smaller than the unordered one
    for every word-aligned codec at every measured skew >= 1, and the
    query answers must match bit-for-bit after permutation mapping —
    a smaller index with different answers would be worse than useless.
    """
    failures = []
    if not entry["bit_identical"]:
        failures.append(
            "reordered index answered a query differently from the "
            "unordered build after permutation mapping"
        )
    for codec in REORDER_GATED_CODECS:
        for point in entry["codecs"][codec]["curve"]:
            if point["skew"] < 1.0:
                continue
            if point["reordered_bytes"] >= point["unordered_bytes"]:
                failures.append(
                    f"reordered {codec} index is not smaller at "
                    f"z={point['skew']:g}: {point['reordered_bytes']} vs "
                    f"{point['unordered_bytes']} bytes unordered"
                )
    return failures


ADAPTIVE_DENSITIES = (0.0001, 0.001, 0.01, 0.1, 0.5)
ADAPTIVE_CLUSTERINGS = (1.0, 8.0, 64.0)
#: Per-cell slack for ``auto`` over the best fixed codec (the one-byte
#: dispatch tag plus selection misses on borderline shapes).
ADAPTIVE_SLACK = 1.05
#: Cells whose best fixed payload is smaller than this are excluded from
#: the per-cell ratio gate — a one-byte tag on a 10-byte payload is 10%
#: by arithmetic, not by regression.
ADAPTIVE_MIN_GATED_BYTES = 20
ADAPTIVE_MIN_DISTINCT_WINNERS = 3


def run_adaptive_bench(n_bits: int) -> dict:
    """``auto`` vs every fixed codec over the Markov (d, f) grid.

    Each cell draws one clustered bitmap, records every concrete
    codec's encoded size plus ``auto``'s actual payload (tag byte
    included), and names the winner.  Everything is a deterministic
    function of the seed, so re-runs are exactly reproducible; the
    encode wall time for the full ``auto`` pass rides along for the
    record but is not gated.
    """
    from repro.compress import available_codecs
    from repro.workload import markov_bitmap

    fixed = [name for name in available_codecs() if name != "auto"]
    auto = get_codec("auto")
    cells = []
    totals = dict.fromkeys(fixed, 0)
    auto_total = 0
    t0 = time.perf_counter()
    for density in ADAPTIVE_DENSITIES:
        for clustering in ADAPTIVE_CLUSTERINGS:
            if density < 1.0 and clustering < density / (1.0 - density):
                continue
            vector = markov_bitmap(n_bits, density, clustering, seed=7)
            sizes = {
                name: get_codec(name).encoded_size(vector) for name in fixed
            }
            auto_bytes = len(auto.encode(vector))
            winner = min(sorted(sizes), key=sizes.get)
            for name in fixed:
                totals[name] += sizes[name]
            auto_total += auto_bytes
            cells.append(
                {
                    "density": density,
                    "clustering": clustering,
                    "sizes": sizes,
                    "auto_bytes": auto_bytes,
                    "winner": winner,
                    "winner_bytes": sizes[winner],
                }
            )
    return {
        "params": {
            "n_bits": n_bits,
            "densities": list(ADAPTIVE_DENSITIES),
            "clusterings": list(ADAPTIVE_CLUSTERINGS),
            "seed": 7,
        },
        "encode_wall_s": time.perf_counter() - t0,
        "cells": cells,
        "fixed_totals": totals,
        "auto_total": auto_total,
        "distinct_winners": sorted({cell["winner"] for cell in cells}),
    }


def check_adaptive_gates(entry: dict) -> list[str]:
    """Failures of the adaptive gate: per-cell ratio, totals, diversity.

    ``auto`` must stay within :data:`ADAPTIVE_SLACK` of the best fixed
    codec in every (gated) cell, beat every fixed codec's summed total
    across the grid, and the grid must crown at least
    :data:`ADAPTIVE_MIN_DISTINCT_WINNERS` distinct fixed codecs —
    otherwise per-bitmap selection adds a dispatch byte for nothing.
    """
    failures = []
    for cell in entry["cells"]:
        best = cell["winner_bytes"]
        if best < ADAPTIVE_MIN_GATED_BYTES:
            continue
        if cell["auto_bytes"] > ADAPTIVE_SLACK * best:
            failures.append(
                f"auto payload {cell['auto_bytes']} B exceeds "
                f"{ADAPTIVE_SLACK:.2f}x the best fixed codec "
                f"({cell['winner']}, {best} B) at d={cell['density']:g}, "
                f"f={cell['clustering']:g}"
            )
    for name, total in entry["fixed_totals"].items():
        if entry["auto_total"] >= total:
            failures.append(
                f"auto grid total {entry['auto_total']} B does not beat "
                f"fixed codec {name} ({total} B)"
            )
    if len(entry["distinct_winners"]) < ADAPTIVE_MIN_DISTINCT_WINNERS:
        failures.append(
            f"only {entry['distinct_winners']} win grid cells; adaptive "
            f"selection needs at least {ADAPTIVE_MIN_DISTINCT_WINNERS} "
            f"distinct winners to pay for itself"
        )
    return failures


def run_threshold_bench(num_records: int, fanin: int = 16) -> dict:
    """1-of-N threshold vs the equivalent pairwise OR-chain, in words.

    Both plans evaluate the same N = 16 equality bitmaps on the
    compressed engine.  The chain folds them through binary ORs, paying
    for every materialized intermediate; the threshold plan streams all
    N payloads through the bit-sliced counter once, so its
    ``words_operated`` must be strictly lower and the answers must be
    bit-identical.  Counted via :class:`~repro.storage.CostClock`, so
    the gate is deterministic and runs in ``--quick`` mode too.
    """
    from functools import reduce

    from repro.expr import EvalStats, Threshold
    from repro.index import BitmapIndex, CompressedQueryEngine, IndexSpec
    from repro.queries import IntervalQuery
    from repro.storage import CostClock
    from repro.workload import zipf_column

    cardinality = fanin + 4
    values = zipf_column(num_records, cardinality, 1.2, seed=8)
    index = BitmapIndex.build(
        values, IndexSpec(cardinality=cardinality, scheme="E", codec="bbc")
    )
    leaves = [
        index.rewriter.rewrite_interval(IntervalQuery(v, v, cardinality))
        for v in range(fanin)
    ]
    clock = CostClock()
    engine = CompressedQueryEngine(index, clock=clock)

    def run(expr):
        start = clock.words_operated
        bitmap = engine.evaluate_shared([expr], {}, EvalStats())
        return bitmap, clock.words_operated - start

    chain_bitmap, chain_words = run(reduce(lambda a, b: a | b, leaves))
    threshold_bitmap, threshold_words = run(Threshold(1, tuple(leaves)))
    return {
        "params": {
            "num_records": num_records,
            "fanin": fanin,
            "cardinality": cardinality,
            "codec": "bbc",
            "scheme": "E",
        },
        "or_chain_words_operated": chain_words,
        "threshold_words_operated": threshold_words,
        "words_saved_pct": (1.0 - threshold_words / chain_words) * 100.0,
        "bit_identical": bool(chain_bitmap == threshold_bitmap),
    }


def run_fused_eval_bench(n_bits: int, density: float, iters: int) -> dict[str, dict]:
    """Fused vs. materializing evaluation of a deep tree over large vectors.

    The vectors are sized well past the block size so the fused walk's
    cache residency can pay off; the tree mixes AND/OR/XOR and interior
    NOTs so the materializing evaluator allocates several full-length
    intermediates that the fused path must avoid entirely.  Allocation
    counts come from the ``expr.intermediate_allocs`` obs counter and
    ride along in each entry for the zero-allocation gate.
    """
    block_words = 8192  # MAX_BLOCK_WORDS: 64 KiB blocks, the tuned size
    rng = np.random.default_rng(4)
    bitmaps = {
        key: BitVector.from_bools(rng.random(n_bits) < density)
        for key in "abcdef"
    }
    expr = ((~leaf("a") | leaf("b")) & ~(leaf("c") ^ leaf("d"))) ^ (
        leaf("e") & ~leaf("f")
    )
    fetch = bitmaps.get
    params = {"n_bits": n_bits, "density": density, "leaves": 6}

    def fused():
        return evaluate_fused(expr, fetch, n_bits, block_words=block_words)

    def materialized():
        return evaluate(expr, fetch, n_bits)

    if not np.array_equal(fused().words, materialized().words):
        raise AssertionError("fused/materializing evaluators disagree")

    def allocs(mode: str, fn) -> int:
        with obs.observed() as o:
            fn()
        metric = o.metrics.find("expr.intermediate_allocs", mode=mode)
        return -1 if metric is None else int(metric.value)

    return {
        "materialized_eval": {
            "median_s": timeit(materialized, iters),
            "iterations": iters,
            "params": params,
            "intermediate_allocs": allocs("materialize", materialized),
        },
        "fused_eval": {
            "median_s": timeit(fused, iters),
            "iterations": iters,
            "params": dict(params, block_words=block_words),
            "intermediate_allocs": allocs("fused", fused),
        },
    }


def measure_obs_overhead(n_bits: int, density: float, pairs: int = 15) -> dict:
    """Kernel workload timed with observability off vs. installed.

    The workload exercises the instrumented hot paths (codec encode and
    decode).  Off/on samples are *interleaved* so clock-frequency drift
    hits both sides equally, and the medians are compared.
    """
    codec = get_codec("wah")
    vec = make_vector(n_bits, density, 2)

    def workload():
        for _ in range(3):
            codec.decode(codec.encode(vec), n_bits)

    workload()  # warm-up
    baseline_samples = []
    installed_samples = []
    for _ in range(pairs):
        t0 = time.perf_counter()
        workload()
        baseline_samples.append(time.perf_counter() - t0)
        with obs.observed():
            t0 = time.perf_counter()
            workload()
            installed_samples.append(time.perf_counter() - t0)
    baseline_s = statistics.median(baseline_samples)
    installed_s = statistics.median(installed_samples)
    return {
        "median_s": installed_s,
        "baseline_s": baseline_s,
        "overhead_pct": (installed_s / baseline_s - 1.0) * 100.0,
        "iterations": pairs,
        "params": {"n_bits": n_bits, "density": density, "codec": "wah"},
    }


def merge_baseline(results: dict[str, dict], path: Path, prefix: str) -> None:
    """Add ``prefix:``-prefixed entries from a recorded baseline file.

    Already-prefixed entries and non-bench entries (``obs_export``) of
    the prior file are skipped; each baseline merges from its own file.
    """
    if not path.exists():
        return
    baseline = json.loads(path.read_text())
    for bench_name, entry in baseline.items():
        if ":" in bench_name or "median_s" not in entry:
            continue
        results[f"{prefix}:{bench_name}"] = entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny sizes for a CI smoke run (results not written unless "
        "--output is given)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the end-to-end experiment run (1 = serial)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    if args.quick:
        n_bits, num_records, iters = 100_000, 2_000, 1
    else:
        n_bits, num_records, iters = 1_000_000, 20_000, 3

    results = run_benchmarks(
        n_bits=n_bits,
        density=0.10,
        num_records=num_records,
        workers=args.workers,
        iters=iters,
    )
    merge_baseline(results, SEED_BASELINE, "seed")
    merge_baseline(results, PR1_BASELINE, "pr1")
    merge_baseline(results, PR2_BASELINE, "pr2")
    merge_baseline(results, PR3_BASELINE, "pr3")
    merge_baseline(results, PR4_BASELINE, "pr4")
    merge_baseline(results, PR5_BASELINE, "pr5")
    merge_baseline(results, PR6_BASELINE, "pr6")
    merge_baseline(results, PR7_BASELINE, "pr7")
    merge_baseline(results, PR8_BASELINE, "pr8")
    merge_baseline(results, PR9_BASELINE, "pr9")

    output = args.output
    if output is None and not args.quick:
        output = DEFAULT_OUTPUT
    if output is not None:
        output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
        print(f"wrote {output}", file=sys.stderr)

    timed = {
        name: entry for name, entry in results.items() if "median_s" in entry
    }
    width = max(len(name) for name in timed)
    for name in sorted(timed):
        print(f"{name:{width}s}  {timed[name]['median_s']:.6f}s")

    wah_new = results["wah_encode"]["median_s"] + results["wah_decode"]["median_s"]
    seed_enc = results.get("seed:wah_encode")
    seed_dec = results.get("seed:wah_decode")
    if seed_enc and seed_dec and not args.quick:
        wah_seed = seed_enc["median_s"] + seed_dec["median_s"]
        print(f"wah encode+decode speedup vs seed: {wah_seed / wah_new:.1f}x")

    serving = results["serving_shared_scan"]
    print(
        f"serving shared-scan pages/query: "
        f"{serving['batched_pages_per_query']:.2f} batched vs "
        f"{serving['serial_pages_per_query']:.2f} serial "
        f"({serving['pages_saved_pct']:.1f}% fewer)"
    )
    serving_failures = serving_gates(serving)
    for failure in serving_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if serving_failures:
        return 1

    sharded = results["serving_sharded_scaling"]
    qps = sharded["throughput_qps"]
    enforced = (
        "enforced"
        if sharded["gate_enforced"]
        else f"report-only: {sharded['params']['cpus']} cpu(s)"
    )
    print(
        f"sharded scaling: {qps['1']:.0f} q/s at 1 shard -> "
        f"{qps[str(sharded['params']['shards'])]:.0f} q/s at "
        f"{sharded['params']['shards']} shards ({sharded['speedup']:.2f}x, "
        f"gate >={sharded['scaling_factor_required']:.1f}x {enforced})"
    )
    sharded_failures = check_sharded_gates(sharded)
    for failure in sharded_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if sharded_failures:
        return 1

    threshold = results["threshold_vs_or_chain"]
    print(
        f"threshold 1-of-{threshold['params']['fanin']} vs OR-chain: "
        f"{threshold['threshold_words_operated']} vs "
        f"{threshold['or_chain_words_operated']} words operated "
        f"({threshold['words_saved_pct']:.1f}% fewer)"
    )
    if not threshold["bit_identical"]:
        print(
            "FAIL: threshold plan and expanded OR-chain disagree bit-for-bit",
            file=sys.stderr,
        )
        return 1
    if threshold["threshold_words_operated"] >= threshold["or_chain_words_operated"]:
        print(
            f"FAIL: threshold plan operated "
            f"{threshold['threshold_words_operated']} words, not strictly "
            f"fewer than the OR-chain's "
            f"{threshold['or_chain_words_operated']}",
            file=sys.stderr,
        )
        return 1

    reorder = results["reorder_skew_benefit"]
    for codec in REORDER_GATED_CODECS:
        points = [
            f"z={p['skew']:g}: {p['shrink_factor']:.1f}x"
            for p in reorder["codecs"][codec]["curve"]
        ]
        print(f"reorder shrink {codec}: {', '.join(points)}")
    reorder_failures = check_reorder_gates(reorder)
    for failure in reorder_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if reorder_failures:
        return 1

    roaring_and = results["roaring_and"]["median_s"]
    wah_and = results["wah_and"]["median_s"]
    print(f"roaring AND vs wah AND: {wah_and / roaring_and:.1f}x faster")
    if roaring_and > wah_and:
        print(
            f"FAIL: roaring AND ({roaring_and:.6f}s) is slower than "
            f"wah AND ({wah_and:.6f}s)",
            file=sys.stderr,
        )
        return 1

    fused = results["fused_eval"]
    materialized = results["materialized_eval"]
    print(
        f"fused vs materialized eval: "
        f"{materialized['median_s'] / fused['median_s']:.2f}x faster, "
        f"{fused['intermediate_allocs']} intermediate allocs "
        f"(vs {materialized['intermediate_allocs']} materializing)"
    )
    if not args.quick and fused["median_s"] > materialized["median_s"]:
        print(
            f"FAIL: fused eval ({fused['median_s']:.6f}s) is slower than "
            f"materializing eval ({materialized['median_s']:.6f}s)",
            file=sys.stderr,
        )
        return 1
    if fused["intermediate_allocs"] != 0:
        print(
            f"FAIL: fused eval reported "
            f"{fused['intermediate_allocs']} full-length intermediate "
            f"allocations (expr.intermediate_allocs mode=fused must be 0)",
            file=sys.stderr,
        )
        return 1

    adaptive = results["adaptive_codec_selection"]
    best_total = min(adaptive["fixed_totals"].values())
    print(
        f"adaptive selection: winners {adaptive['distinct_winners']} over "
        f"{len(adaptive['cells'])} cells; auto total "
        f"{adaptive['auto_total']} B vs best fixed total {best_total} B"
    )
    adaptive_failures = check_adaptive_gates(adaptive)
    for failure in adaptive_failures:
        level = "FAIL" if not args.quick else "WARN (quick, not gated)"
        print(f"{level}: {failure}", file=sys.stderr)
    if adaptive_failures and not args.quick:
        return 1

    overhead = results["obs_overhead"]
    print(
        f"obs instrumentation overhead on kernels: "
        f"{overhead['overhead_pct']:+.2f}% "
        f"({overhead['baseline_s']:.6f}s -> {overhead['median_s']:.6f}s)"
    )
    if not args.quick and overhead["overhead_pct"] > OBS_OVERHEAD_LIMIT_PCT:
        print(
            f"FAIL: obs instrumentation overhead "
            f"{overhead['overhead_pct']:.2f}% exceeds the "
            f"{OBS_OVERHEAD_LIMIT_PCT:.0f}% gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
