"""Benchmark-harness plumbing.

Each benchmark regenerates one of the paper's tables/figures and
registers the rendered text via :func:`record_table`; a terminal-summary
hook prints everything after the benchmark table so the rows survive
pytest's output capture (and land in bench_output.txt).  Rendered
tables are also written to ``benchmarks/results/``.

``pytest benchmarks/ --workers N`` fans the experiment regenerations
out over N processes (see :mod:`repro.parallel`); the default of 1
keeps benchmark numbers comparable to earlier serial runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_TABLES: list[tuple[str, str]] = []
_RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=1,
        help="processes for independent experiment data points "
        "(1 = serial, 0 = one per CPU)",
    )


@pytest.fixture(scope="session")
def bench_workers(request) -> int:
    """Worker count requested via ``--workers`` (default serial)."""
    return int(request.config.getoption("--workers"))


def record_table(name: str, text: str) -> None:
    """Register a rendered experiment table for end-of-run printing."""
    _TABLES.append((name, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter) -> None:
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "regenerated paper tables and figures")
    for name, text in _TABLES:
        terminalreporter.write_sep("-", name)
        terminalreporter.write_line(text)
    _TABLES.clear()
