"""Benchmark + regeneration of Figure 6 (space and compressibility).

The benchmark measures the index-build-and-encode kernel (the work
behind every Figure 6 point); the full ratio table is regenerated once
and printed in the terminal summary.
"""

import dataclasses

import pytest

from benchmarks.conftest import record_table
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.figure6 import build_point
from repro.workload import zipf_column

CONFIG = ExperimentConfig(num_records=50_000, component_counts=(1, 2, 3, 4, 5))


@pytest.fixture(scope="module")
def values():
    return zipf_column(CONFIG.num_records, CONFIG.cardinality, CONFIG.skew, seed=0)


def test_figure6_regenerate(benchmark, bench_workers):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "figure6", dataclasses.replace(CONFIG, workers=bench_workers)
        ),
        rounds=1,
        iterations=1,
    )
    record_table("figure6", result.render())
    # Headline shapes (the paper's Figure 6 reading).
    by_key = {(r[0], r[1]): r for r in result.rows}
    assert by_key[("I", 1)][3] == pytest.approx(0.5)
    assert by_key[("E", 1)][4] < by_key[("R", 1)][4] < by_key[("I", 1)][4]


@pytest.mark.parametrize("scheme", ["E", "R", "I"])
def test_build_compressed_index_kernel(benchmark, values, scheme):
    """Time to build + BBC-encode a one-component index (C=50, z=1)."""
    benchmark(build_point, values, 50, scheme, 1, "bbc")
