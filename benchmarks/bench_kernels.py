"""Micro-benchmarks of the substrate kernels (bit ops, popcount,
index build, rewrite) — the raw-throughput context for every simulated
number in the figure benches."""

import pytest

from repro.bitmap import BitVector
from repro.encoding import get_scheme
from repro.index import BitmapIndex, IndexSpec
from repro.index.rewrite import QueryRewriter
from repro.queries import IntervalQuery
from repro.workload import zipf_column

N = 1_000_000


@pytest.fixture(scope="module")
def vectors(rng=None):
    import numpy as np

    r = np.random.default_rng(0)
    a = BitVector.from_bools(r.random(N) < 0.5)
    b = BitVector.from_bools(r.random(N) < 0.5)
    return a, b


def test_and_1m_bits(benchmark, vectors):
    a, b = vectors
    benchmark(lambda: a & b)


def test_or_1m_bits(benchmark, vectors):
    a, b = vectors
    benchmark(lambda: a | b)


def test_not_1m_bits(benchmark, vectors):
    a, _ = vectors
    benchmark(lambda: ~a)


def test_popcount_1m_bits(benchmark, vectors):
    a, _ = vectors
    benchmark(a.count)


def test_build_interval_index_100k(benchmark):
    values = zipf_column(100_000, 50, 1.0, seed=0)
    benchmark(
        BitmapIndex.build, values, IndexSpec(cardinality=50, scheme="I")
    )


def test_rewrite_throughput(benchmark):
    rewriter = QueryRewriter(10_000, (10, 10, 10, 10), get_scheme("E"))

    def rewrite_many():
        total = 0
        for low in range(0, 9000, 500):
            expr = rewriter.rewrite_interval(
                IntervalQuery(low, low + 777, 10_000)
            )
            total += len(expr.leaf_keys())
        return total

    benchmark(rewrite_many)
