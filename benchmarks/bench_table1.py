"""Benchmark + regeneration of Table 1 (optimality verification).

The exhaustive search over complete encoding schemes is the kernel;
C = 6 is the largest cardinality the full search covers (it is also
exactly where "R optimal for EQ iff C <= 5" flips).
"""

import dataclasses

import pytest

from benchmarks.conftest import record_table
from repro.analysis.optimality import verify_scheme_optimality
from repro.encoding import get_scheme
from repro.experiments import ExperimentConfig, run_experiment
import repro.experiments.table1 as table1_module


def test_table1_regenerate(benchmark, bench_workers):
    # C in (4, 5) for the timed run; the C = 6 entries are added by the
    # dedicated tests below so the bench stays minutes-fast.
    original = table1_module.SEARCH_CARDINALITIES
    table1_module.SEARCH_CARDINALITIES = (4, 5)
    try:
        result = benchmark.pedantic(
            lambda: run_experiment(
                "table1", ExperimentConfig(workers=bench_workers)
            ),
            rounds=1,
            iterations=1,
        )
    finally:
        table1_module.SEARCH_CARDINALITIES = original
    record_table("table1", result.render())
    verdicts = {(r[0], r[1], r[2]): r[3] for r in result.rows}
    assert verdicts[(4, "EQ", "R")] == "optimal"
    assert verdicts[(5, "EQ", "R")] == "optimal"
    assert verdicts[(4, "2RQ", "I")] == "optimal"
    assert verdicts[(4, "2RQ", "R")] == "not optimal"


def test_search_r_eq_c6_flips(benchmark):
    """Theorem 3.1(1)'s boundary: the search finds a dominator at C=6."""
    result = benchmark.pedantic(
        lambda: verify_scheme_optimality(get_scheme("R"), 6, "EQ"),
        rounds=1,
        iterations=1,
    )
    record_table(
        "table1-c6-r-eq",
        f"R at C=6 for EQ: optimal={result.optimal}\n"
        f"dominator: {result.dominator}",
    )
    assert result.optimal is False


def test_search_i_2rq_c6_optimal(benchmark):
    """Theorem 4.1(3) at C=6: interval is exhaustively optimal."""
    result = benchmark.pedantic(
        lambda: verify_scheme_optimality(get_scheme("I"), 6, "2RQ"),
        rounds=1,
        iterations=1,
    )
    assert result.optimal is True
