"""Ablation: how the paper's compression conclusions age with hardware.

Figure 9's crossover (compressed indexes win only at medium-to-high
skew) is a statement about the 1999 I/O : CPU cost ratio.  Re-running
the same measurement under newer disk-model presets shows the
conclusion shifting: as positioning costs collapse, decompression CPU
stops being amortized by saved seeks and uncompressed (or
compressed-domain) evaluation wins more broadly.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.report import render_table
from repro.analysis.spacetime import measure_design
from repro.index import IndexSpec
from repro.queries import QuerySetSpec, generate_query_set
from repro.storage import DISK_MODEL_PRESETS, get_disk_model
from repro.workload import zipf_column

#: Large enough that an uncompressed bitmap spans many pages (25 at the
#: default page size) — otherwise compression cannot save transfers and
#: the comparison is vacuous.
NUM_RECORDS = 200_000


@pytest.fixture(scope="module")
def setup():
    values = zipf_column(NUM_RECORDS, 50, 1.0, seed=0)
    query_sets = {
        "mixed": generate_query_set(QuerySetSpec(2, 1), 50, num_queries=10, seed=0)
    }
    return values, query_sets


def test_hardware_sensitivity(benchmark, setup):
    values, query_sets = setup

    def build_rows():
        rows = []
        for preset in ("hdd-1999", "hdd-2005", "ssd-2015", "nvme-2020"):
            model = get_disk_model(preset)
            raw = measure_design(
                values,
                IndexSpec(cardinality=50, scheme="E", codec="raw"),
                query_sets,
                disk_model=model,
            )
            bbc = measure_design(
                values,
                IndexSpec(cardinality=50, scheme="E", codec="bbc"),
                query_sets,
                disk_model=model,
            )
            rows.append(
                [
                    preset,
                    raw.avg_time_ms,
                    bbc.avg_time_ms,
                    bbc.avg_time_ms / raw.avg_time_ms,
                ]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_table(
        "hardware-sensitivity",
        render_table(
            ["disk model", "raw ms", "bbc ms", "bbc/raw"],
            rows,
            title=(
                "Compression payoff vs hardware generation "
                "(E<50>, z=1, N=200k, mixed queries; <1 means "
                "compression wins)"
            ),
        ),
    )
    # On the 1999 profile compression wins (saved transfer amortizes
    # decompression); on NVMe the relationship is inverted — the paper's
    # Figure 9 conclusion is a statement about its hardware era.
    by_preset = {row[0]: row[3] for row in rows}
    assert by_preset["hdd-1999"] < 1.0
    assert by_preset["nvme-2020"] > by_preset["hdd-1999"]


def test_presets_registry():
    assert set(DISK_MODEL_PRESETS) == {
        "hdd-1999",
        "hdd-2005",
        "ssd-2015",
        "nvme-2020",
    }
    with pytest.raises(KeyError):
        get_disk_model("floppy-1985")


def test_io_costs_collapse_across_presets():
    order = ["hdd-1999", "hdd-2005", "ssd-2015", "nvme-2020"]
    seeks = [get_disk_model(name).seek_ms for name in order]
    assert seeks == sorted(seeks, reverse=True)
