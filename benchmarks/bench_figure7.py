"""Benchmark + regeneration of Figure 7 (skew vs compressed space)."""

import dataclasses

import pytest

from benchmarks.conftest import record_table
from repro.experiments import ExperimentConfig, run_experiment

CONFIG = ExperimentConfig(num_records=50_000)


def test_figure7_regenerate(benchmark, bench_workers):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "figure7", dataclasses.replace(CONFIG, workers=bench_workers)
        ),
        rounds=1,
        iterations=1,
    )
    record_table("figure7", result.render())
    # Skew improves compression for every (n, scheme) series.
    for row in result.rows:
        assert row[-1] < row[2], row
