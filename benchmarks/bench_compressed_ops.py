"""Ablation: compressed-domain evaluation vs decompress-then-operate.

The paper's Figure 9 crossover exists because compressed indexes pay a
decompression charge per query.  Compressed-domain EWAH evaluation
(extension) removes that charge; this bench measures both engines on
the same EWAH index across skews — simulated cost and wall clock.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.report import render_table
from repro.index import BitmapIndex, CompressedQueryEngine, IndexSpec
from repro.queries import QuerySetSpec, generate_query_set
from repro.storage import CostClock
from repro.workload import zipf_column

NUM_RECORDS = 30_000


def build(skew: float) -> tuple[BitmapIndex, list]:
    values = zipf_column(NUM_RECORDS, 50, skew, seed=0)
    index = BitmapIndex.build(
        values, IndexSpec(cardinality=50, scheme="E", codec="ewah")
    )
    queries = generate_query_set(QuerySetSpec(2, 1), 50, num_queries=10, seed=0)
    return index, queries


def simulated_cost(index, queries, compressed: bool) -> tuple[float, float]:
    clock = CostClock()
    if compressed:
        engine = CompressedQueryEngine(index, clock=clock)
    else:
        engine = index.engine(clock=clock)
    for query in queries:
        if compressed:
            engine.pool.clear()
        else:
            engine.pool.clear()
        engine.execute(query)
    return clock.cpu_ms, clock.total_ms


def test_compressed_domain_ablation(benchmark):
    def build_rows():
        rows = []
        for skew in (0.0, 1.0, 2.0, 3.0):
            index, queries = build(skew)
            std_cpu, std_total = simulated_cost(index, queries, compressed=False)
            cmp_cpu, cmp_total = simulated_cost(index, queries, compressed=True)
            rows.append(
                [f"z={skew:g}", std_cpu, cmp_cpu, std_total, cmp_total]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_table(
        "compressed-ops-ablation",
        render_table(
            [
                "skew",
                "cpu ms (decode-then-op)",
                "cpu ms (compressed-domain)",
                "total ms (decode)",
                "total ms (compressed)",
            ],
            rows,
            title=(
                "Compressed-domain EWAH evaluation vs decompress-then-"
                "operate (E<50>/ewah, 10 membership queries)"
            ),
        ),
    )
    # Compressed-domain CPU is never worse, and at low skew (where the
    # standard engine decodes near-incompressible payloads in full) it
    # wins by multiples.
    for row in rows:
        assert row[2] <= row[1] * 1.05, row
    assert rows[0][2] < rows[0][1] / 2


@pytest.mark.parametrize("compressed", [False, True], ids=["decode", "comp-dom"])
def test_engine_wall_clock(benchmark, compressed):
    index, queries = build(2.0)

    def run():
        if compressed:
            engine = CompressedQueryEngine(index)
        else:
            engine = index.engine()
        total = 0
        for query in queries:
            total += engine.execute(query).row_count
        return total

    benchmark(run)
