"""Regeneration of the §4.2 update-cost comparison.

The paper quotes best/expected/worst bitmap updates per inserted record
for the three basic schemes; this bench computes them analytically from
the catalogs and times the corresponding bulk index-append kernel.
"""

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.analysis.report import render_table
from repro.encoding import get_scheme
from repro.encoding.costmodel import update_costs
from repro.workload import zipf_column


def test_update_costs_table(benchmark):
    def build_rows():
        rows = []
        for c in (50, 200):
            for name in ("E", "R", "I", "EI*", "O"):
                costs = update_costs(get_scheme(name), c)
                rows.append([c, name, costs.best, costs.expected, costs.worst])
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_table(
        "update-costs",
        render_table(
            ["C", "scheme", "best", "expected", "worst"],
            rows,
            title="Section 4.2 update costs (bitmaps touched per insert)",
        ),
    )
    by_key = {(r[0], r[1]): r for r in rows}
    # Paper: E is (1,1,1); R expects (C-1)/2 with worst C-1; I expects
    # C/4 with worst floor(C/2).
    assert by_key[(50, "E")][2:] == [1, 1.0, 1]
    assert by_key[(50, "R")][3] == pytest.approx(24.5)
    assert by_key[(50, "R")][4] == 49
    assert by_key[(50, "I")][3] == pytest.approx(12.5)
    assert by_key[(50, "I")][4] == 25


@pytest.mark.parametrize("scheme", ["E", "R", "I"])
def test_batch_append_kernel(benchmark, scheme):
    """Rebuilding the affected bitmaps for a 5k-record batch insert."""
    base = zipf_column(20_000, 50, 1.0, seed=0)
    batch = zipf_column(5_000, 50, 1.0, seed=1)
    merged = np.concatenate([base, batch])
    encoder = get_scheme(scheme)

    benchmark(encoder.build, merged, 50)


@pytest.mark.parametrize("layout", ["monolithic", "segmented"])
def test_append_path_kernel(benchmark, layout):
    """Appending 2k records to a 100k-record index.

    The monolithic path decodes, extends and re-encodes every bitmap;
    the segmented path only touches the (small) tail segment — the
    append-friendliness the segmented layout exists for.
    """
    from repro.index import BitmapIndex, IndexSpec, SegmentedBitmapIndex

    base = zipf_column(100_000, 50, 1.0, seed=0)
    batch = zipf_column(2_000, 50, 1.0, seed=1)
    spec = IndexSpec(cardinality=50, scheme="I", codec="bbc")

    def setup():
        if layout == "monolithic":
            index = BitmapIndex.build(base, spec)
        else:
            index = SegmentedBitmapIndex.build(base, spec, segment_size=16_384)
        return (index,), {}

    benchmark.pedantic(
        lambda index: index.append(batch), setup=setup, rounds=5, iterations=1
    )
