"""Parity check at C = 200.

Section 7: "We present results only for C = 50 as the results for
C = 200 were similar."  This bench re-runs the Figure 6 ratio sweep at
C = 200 and asserts the same qualitative shapes, making that sentence a
tested claim rather than a remark.
"""

import pytest

from benchmarks.conftest import record_table
from repro.experiments import ExperimentConfig, run_experiment

CONFIG = ExperimentConfig(
    cardinality=200, num_records=30_000, component_counts=(1, 2, 3)
)


def test_figure6_shapes_hold_at_c200(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("figure6", CONFIG), rounds=1, iterations=1
    )
    record_table("figure6-c200", result.render())
    by_key = {(r[0], r[1]): r for r in result.rows}

    # (a) uncompressed: I = 0.5, R just under 1, E = 1 at n=1; I leads
    # at every component count.
    assert by_key[("I", 1)][3] == pytest.approx(0.5, abs=0.01)
    assert by_key[("E", 1)][3] == pytest.approx(1.0)
    assert 0.98 < by_key[("R", 1)][3] < 1.0
    for n in (1, 2, 3):
        assert by_key[("I", n)][3] <= by_key[("R", n)][3] <= by_key[("E", n)][3]

    # (b) compressibility ordering: E best, I worst at n=1.
    assert by_key[("E", 1)][4] < by_key[("R", 1)][4] < by_key[("I", 1)][4]

    # (c) compressed: interval smallest for multi-component indexes.
    for n in (2, 3):
        assert by_key[("I", n)][5] <= by_key[("E", n)][5]
        assert by_key[("I", n)][5] <= by_key[("R", n)][5]
