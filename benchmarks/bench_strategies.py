"""Ablation: §6.3 evaluation strategies under varying buffer sizes.

The paper describes query-wise vs component-wise evaluation as the two
extremes of the buffer-aware scheduling problem and uses component-wise
throughout.  This bench quantifies the difference: disk reads per query
for both strategies as the buffer shrinks.
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.report import render_table
from repro.index import BitmapIndex, IndexSpec
from repro.queries import QuerySetSpec, generate_query_set
from repro.storage import CostClock
from repro.workload import zipf_column

NUM_RECORDS = 30_000


@pytest.fixture(scope="module")
def setup():
    values = zipf_column(NUM_RECORDS, 50, 1.0, seed=0)
    index = BitmapIndex.build(
        values, IndexSpec(cardinality=50, scheme="R", bases=(7, 8), codec="raw")
    )
    # Membership queries whose constituents cluster inside the same
    # digit blocks, so different constituents need the same prefix
    # bitmaps — the sharing that distinguishes the two strategies.
    from repro.queries import MembershipQuery

    queries = [
        MembershipQuery.of({10, 11, 12, 14, 15, 17, 18, 20, 21, 23}, 50),
        MembershipQuery.of({8, 9, 11, 12, 13, 15}, 50),
        MembershipQuery.of({32, 33, 35, 36, 38, 39, 41}, 50),
        MembershipQuery.of({1, 3, 4, 6, 7, 46, 47, 49}, 50),
    ] + generate_query_set(QuerySetSpec(5, 0), 50, num_queries=6, seed=0)
    return index, queries


def run_strategy(index, queries, strategy, buffer_pages):
    clock = CostClock()
    engine = index.engine(
        buffer_pages=buffer_pages, clock=clock, strategy=strategy
    )
    for query in queries:
        engine.execute(query)
    return clock.read_requests, clock.total_ms


def test_strategy_ablation_table(benchmark, setup):
    index, queries = setup

    def build_rows():
        rows = []
        for buffer_pages in (2, 4, 8, 64):
            cw_reads, _ = run_strategy(
                index, queries, "component-wise", buffer_pages
            )
            sc_reads, _ = run_strategy(index, queries, "scheduled", buffer_pages)
            qw_reads, _ = run_strategy(
                index, queries, "query-wise", buffer_pages
            )
            rows.append([buffer_pages, cw_reads, sc_reads, qw_reads])
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_table(
        "strategy-ablation",
        render_table(
            [
                "buffer pages",
                "reads (component-wise)",
                "reads (scheduled)",
                "reads (query-wise)",
            ],
            rows,
            title=(
                "Section 6.3 evaluation strategies (disk reads, 10 "
                "membership queries; 'scheduled' is the future-work "
                "heuristic implemented as an extension)"
            ),
        ),
    )
    # With a tight buffer query-wise pays strictly more (its shared
    # bitmaps are evicted between constituents); with a roomy buffer
    # all strategies converge.  The scheduled heuristic helps once the
    # pool can hold at least one constituent's working set (the 4- and
    # 8-page rows); below that no ordering can save a read, and at
    # mid sizes component-wise's bulk prefetch can itself evict.
    assert rows[0][1] < rows[0][3]
    assert rows[1][2] <= rows[1][3]
    assert rows[2][2] <= rows[2][3]
    assert rows[-1][1] == rows[-1][3] == rows[-1][2]


@pytest.mark.parametrize("strategy", ["component-wise", "query-wise", "scheduled"])
def test_strategy_kernel(benchmark, setup, strategy):
    index, queries = setup

    def run():
        engine = index.engine(buffer_pages=4, strategy=strategy)
        for query in queries:
            engine.execute(query)
        return engine.buffer_stats.misses

    benchmark(run)
