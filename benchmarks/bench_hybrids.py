"""Verification of §7's hybrid-scheme remark.

"We do not present any results for hybrid encoding schemes, as they
rarely offered a better index than non-hybrid ones (occasionally such
an index had a slightly lower time at the expense of much higher
space)."  This bench runs the Figure 8 measurement with all seven
schemes and counts, per query set, how often a hybrid design sits on
the space-time Pareto frontier — quantifying "rarely".
"""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.pareto import pareto_frontier
from repro.analysis.report import render_table
from repro.analysis.spacetime import measure_design
from repro.encoding import HYBRID_SCHEME_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure8 import design_specs
from repro.queries import generate_query_set, paper_query_sets
from repro.workload import DatasetSpec, generate_dataset

CONFIG = ExperimentConfig(
    num_records=20_000,
    component_counts=(1, 2),
    queries_per_set=5,
    schemes=("E", "R", "I", "ER", "O", "EI", "EI*"),
)


def test_hybrids_rarely_on_frontier(benchmark):
    def run():
        values = generate_dataset(
            DatasetSpec(
                cardinality=CONFIG.cardinality,
                skew=CONFIG.skew,
                num_records=CONFIG.num_records,
                seed=CONFIG.seed,
            )
        )
        query_sets = {
            spec.label: generate_query_set(
                spec,
                CONFIG.cardinality,
                num_queries=CONFIG.queries_per_set,
                seed=CONFIG.seed,
            )
            for spec in paper_query_sets()
        }
        points = [
            measure_design(values, spec, query_sets)
            for spec in design_specs(CONFIG)
        ]
        basics = [p for p in points if p.spec.scheme not in HYBRID_SCHEME_NAMES]
        hybrids = [p for p in points if p.spec.scheme in HYBRID_SCHEME_NAMES]
        rows = []
        for set_label in query_sets:
            def time_of(p, lbl=set_label):
                return p.per_set_ms[lbl]

            # Hybrids that strictly dominate some basic *frontier* design
            # — i.e. genuinely "offer a better index than non-hybrid".
            basic_frontier = pareto_frontier(
                basics, space=lambda p: p.space_bytes, time=time_of
            )
            dominating = sorted(
                {
                    h.label
                    for h in hybrids
                    for b in basic_frontier
                    if h.space_bytes <= b.space_bytes
                    and time_of(h) <= time_of(b)
                    and (
                        h.space_bytes < b.space_bytes
                        or time_of(h) < time_of(b)
                    )
                }
            )
            fastest = min(points, key=time_of)
            rows.append(
                [
                    set_label,
                    len(dominating),
                    " ".join(dominating) or "-",
                    fastest.label,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "hybrid-dominance",
        render_table(
            [
                "query set",
                "hybrids dominating a basic frontier design",
                "which",
                "fastest overall",
            ],
            rows,
            title=(
                "§7's hybrid remark: hybrids that beat the basic schemes "
                "outright, per query set (C=50, z=1)"
            ),
        ),
    )
    # "Rarely offered a better index": hybrids dominate a basic
    # frontier design in at most a couple of the 8 query sets.
    sets_with_dominating_hybrid = sum(1 for row in rows if row[1] > 0)
    assert sets_with_dominating_hybrid <= 3
