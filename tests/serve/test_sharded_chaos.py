"""Chaos tests: shard workers crash or hang mid-query, never lie.

The process transport's failure contract: a dead worker surfaces as
``WorkerCrashed``, a silent one as ``WorkerUnresponsive`` after
``call_timeout_s``, and either fails the affected requests with a
typed :class:`ShardFailed` — the scatter fails whole, so the router
never returns a partial or wrong answer.  Recovery (automatic or via
:meth:`recover`) rebuilds the shard from the router's acknowledged
rows, after which answers must again equal the naive scan.

Crash points are deterministic :class:`repro.parallel.WorkerFault`
plans shipped to the child at spawn (mirroring the
``repro.storage.faults`` style), plus one external ``SIGKILL`` through
the pid the router exposes.  Sizes are tiny: every test forks real
processes.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.bitmap import BitVector
from repro.errors import ShardFailed
from repro.index import IndexSpec
from repro.parallel import WorkerFault
from repro.queries import IntervalQuery, MembershipQuery
from repro.serve import ShardedConfig, ShardedQueryService

CARDINALITY = 12


def make_spec():
    return IndexSpec(cardinality=CARDINALITY, scheme="E", codec="raw")


def process_config(**overrides):
    defaults = dict(
        shards=2,
        transport="process",
        segment_size=8,
        buffer_pages=8,
        workers=2,
    )
    defaults.update(overrides)
    return ShardedConfig(**defaults)


def naive(query, values):
    return BitVector.from_bools(query.matches(values))


@pytest.fixture
def values(rng):
    return rng.integers(0, CARDINALITY, size=48)


class TestCrash:
    def test_crash_mid_query_fails_typed_then_recovers(self, values):
        faults = {0: WorkerFault(kind="crash", at_task=0)}
        query = IntervalQuery(2, 9, CARDINALITY)
        with ShardedQueryService(
            values, make_spec(), process_config(), faults=faults
        ) as s:
            with pytest.raises(ShardFailed):
                s.execute(query)
            assert s.stats.shard_failures == 1
            # auto_recover rebuilt the shard from its acked rows.
            result = s.execute(query)
            assert result.bitmap == naive(query, values)
            assert s.stats.shard_recoveries == 1
            assert not any(i["failed"] for i in s.shard_info())

    def test_crash_at_later_task_spares_earlier_queries(self, values):
        # Two clean scatters first (tasks 0 and 1 on each worker), then
        # the third trips the fault on shard 1.
        faults = {1: WorkerFault(kind="crash", at_task=2)}
        queries = [
            IntervalQuery(0, 4, CARDINALITY),
            MembershipQuery.of({1, 7}, CARDINALITY),
            IntervalQuery(5, 11, CARDINALITY),
        ]
        with ShardedQueryService(
            values, make_spec(), process_config(cache_entries=0),
            faults=faults,
        ) as s:
            assert s.execute(queries[0]).bitmap == naive(queries[0], values)
            assert s.execute(queries[1]).bitmap == naive(queries[1], values)
            with pytest.raises(ShardFailed):
                s.execute(queries[2])
            assert s.execute(queries[2]).bitmap == naive(queries[2], values)

    def test_no_auto_recover_stays_failed_until_recover(self, values):
        faults = {0: WorkerFault(kind="crash", at_task=0)}
        query = IntervalQuery(1, 8, CARDINALITY)
        config = process_config(auto_recover=False)
        with ShardedQueryService(
            values, make_spec(), config, faults=faults
        ) as s:
            with pytest.raises(ShardFailed):
                s.execute(query)
            # Still failed: the dispatcher fast-fails without touching
            # the dead worker.
            with pytest.raises(ShardFailed):
                s.execute(query)
            failed = [i for i in s.shard_info() if i["failed"]]
            assert len(failed) == 1
            assert s.recover(failed[0]["id"])
            assert s.execute(query).bitmap == naive(query, values)
            assert s.stats.shard_recoveries == 1

    def test_external_sigkill_recovers(self, values):
        query = IntervalQuery(3, 10, CARDINALITY)
        with ShardedQueryService(values, make_spec(), process_config()) as s:
            assert s.execute(query).bitmap == naive(query, values)
            victim = s.shard_info()[0]
            os.kill(victim["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            recovered = None
            while time.monotonic() < deadline:
                try:
                    recovered = s.execute(query)
                    break
                except ShardFailed:
                    continue  # the kill landed mid-call; retry
            assert recovered is not None, "shard never recovered"
            assert recovered.bitmap == naive(query, values)
            assert s.stats.shard_failures >= 1
            assert s.stats.shard_recoveries >= 1
            # The rebuilt worker is a different process.
            assert s.shard_info()[0]["pid"] != victim["pid"]


class TestHang:
    def test_hang_fails_typed_after_timeout_then_recovers(self, values):
        faults = {1: WorkerFault(kind="hang", at_task=0)}
        query = MembershipQuery.of({0, 6, 11}, CARDINALITY)
        config = process_config(call_timeout_s=0.75)
        with ShardedQueryService(
            values, make_spec(), config, faults=faults
        ) as s:
            start = time.monotonic()
            with pytest.raises(ShardFailed):
                s.execute(query)
            # Typed and prompt: the timeout bounds the stall.
            assert time.monotonic() - start < 10.0
            assert s.stats.shard_failures == 1
            result = s.execute(query)
            assert result.bitmap == naive(query, values)
            assert s.stats.shard_recoveries == 1


class TestAppendFailures:
    def test_crashed_append_is_cleanly_unapplied(self, values):
        # Fault the tail shard; its first task is the append itself.
        faults = {1: WorkerFault(kind="crash", at_task=0)}
        with ShardedQueryService(
            values, make_spec(), process_config(), faults=faults
        ) as s:
            before = [i["num_records"] for i in s.shard_info()]
            with pytest.raises(ShardFailed):
                s.append(np.array([3, 3, 3]))
            # The batch never acked, so the router's authoritative rows
            # — and the rebuilt shard — exclude it.
            assert [i["num_records"] for i in s.shard_info()] == before
            query = MembershipQuery.of({3}, CARDINALITY)
            assert s.execute(query).bitmap == naive(query, values)
            # A retry against the recovered shard lands normally.
            report = s.append(np.array([3, 3, 3]))
            assert report.records_appended == 3
            combined = np.concatenate([values, [3, 3, 3]])
            assert s.execute(query).bitmap == naive(query, combined)

    def test_acked_appends_survive_crash_recovery(self, values):
        # Ack two appends, then kill the tail worker: the rebuild must
        # reproduce both (and the epoch must not regress).
        query = MembershipQuery.of({5}, CARDINALITY)
        with ShardedQueryService(values, make_spec(), process_config()) as s:
            s.append(np.array([5, 5]))
            s.append(np.array([5]))
            tail = s.shard_info()[-1]
            combined = np.concatenate([values, [5, 5, 5]])
            assert s.execute(query).bitmap == naive(query, combined)
            os.kill(tail["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            recovered = None
            while time.monotonic() < deadline:
                try:
                    recovered = s.execute(query)
                    break
                except ShardFailed:
                    continue
            assert recovered is not None, "shard never recovered"
            assert recovered.bitmap == naive(query, combined)
            after = [i for i in s.shard_info() if i["id"] == tail["id"]][0]
            assert after["epoch"] >= tail["epoch"]
            assert after["num_records"] == tail["num_records"]


class TestNeverWrong:
    def test_chaos_round_never_returns_wrong_answers(self, rng):
        """Crash, hang, recover, append — every answer right or typed."""
        values = rng.integers(0, CARDINALITY, size=40)
        faults = {0: WorkerFault(kind="crash", at_task=1)}
        config = process_config(call_timeout_s=2.0)
        queries = [
            IntervalQuery(0, 5, CARDINALITY),
            MembershipQuery.of({2, 8}, CARDINALITY),
            IntervalQuery(6, 11, CARDINALITY),
        ]
        column = np.array(values)
        with ShardedQueryService(
            values, make_spec(), config, faults=faults
        ) as s:
            answered = failures = 0
            for round_no in range(4):
                for query in queries:
                    try:
                        result = s.execute(query)
                    except ShardFailed:
                        failures += 1
                        continue
                    assert result.bitmap == naive(query, column), query
                    answered += 1
                appended = rng.integers(0, CARDINALITY, size=3)
                try:
                    s.append(appended)
                    column = np.concatenate([column, appended])
                except ShardFailed:
                    failures += 1
            assert failures >= 1  # the fault actually fired
            assert answered >= len(queries)  # and service kept serving
