"""End-to-end serving over an ``auto`` index with mixed inner codecs.

The adaptive codec's whole point is that one index holds bitmaps under
*different* concrete encodings; both serving tiers must combine them
transparently.  A skewed clustered column forces the selector to mix
inner codecs (dense head values vs an ultra-sparse tail), and single
plus sharded services are checked against the naive scan — decoded
(fused) and compressed (threshold-capable) engines both.
"""

import numpy as np
import pytest

from repro.bitmap import BitVector
from repro.compress import split_payload
from repro.index import BitmapIndex, IndexSpec
from repro.index.compressed_engine import CompressedQueryEngine
from repro.queries import IntervalQuery, MembershipQuery, ThresholdQuery
from repro.serve import (
    QueryService,
    ServiceConfig,
    ShardedConfig,
    ShardedQueryService,
)
from repro.workload import markov_column

CARDINALITY = 48


@pytest.fixture(scope="module")
def column():
    return markov_column(
        6000, CARDINALITY, clustering_factor=8.0, skew=2.0, seed=13
    )


@pytest.fixture(scope="module")
def auto_index(column):
    spec = IndexSpec(cardinality=CARDINALITY, scheme="E", codec="auto")
    return BitmapIndex.build(column, spec)


def naive(query, values):
    return BitVector.from_bools(query.matches(values))


QUERIES = [
    IntervalQuery(1, 30, CARDINALITY),
    IntervalQuery(0, CARDINALITY - 1, CARDINALITY),
    MembershipQuery.of({0, 1, 40, 47}, CARDINALITY),
    ThresholdQuery(
        2,
        (
            IntervalQuery(0, 10, CARDINALITY),
            IntervalQuery(5, 20, CARDINALITY),
            MembershipQuery.of({1, 2, 3}, CARDINALITY),
        ),
    ),
]


def test_index_actually_mixes_inner_codecs(auto_index):
    inners = set()
    for key in auto_index.store.keys():
        payload, _ = auto_index.store.get_payload(key)
        inners.add(split_payload(payload)[0])
    assert len(inners) >= 2, inners


@pytest.mark.parametrize("engine", ["decoded", "compressed"])
def test_single_service_auto(auto_index, column, engine):
    config = ServiceConfig(engine=engine, buffer_pages=16, fused=True)
    with QueryService(auto_index, config) as service:
        results = service.execute_many(QUERIES)
    for query, result in zip(QUERIES, results):
        assert result.bitmap == naive(query, column), query


@pytest.mark.parametrize("engine", ["decoded", "compressed"])
def test_sharded_service_auto(column, engine):
    spec = IndexSpec(cardinality=CARDINALITY, scheme="E", codec="auto")
    config = ShardedConfig(
        shards=3,
        transport="inline",
        segment_size=512,
        buffer_pages=16,
        engine=engine,
    )
    with ShardedQueryService(column, spec, config) as service:
        results = service.execute_many(QUERIES)
    for query, result in zip(QUERIES, results):
        assert result.bitmap == naive(query, column), query


def test_compressed_engine_direct_threshold(auto_index, column):
    engine = CompressedQueryEngine(auto_index)
    query = QUERIES[3]
    assert engine.execute(query).bitmap == naive(query, column)
