"""Linearizability of the serving layer under interleaved appends.

The service claims a simple consistency contract: every answer reflects
exactly one index epoch (``ServeResult.epoch``), that epoch is between
the epoch observed at submission and the final epoch, and the answer
equals a from-scratch oracle evaluated over the records present at that
epoch.  Appends and shared scans serialize on the service's scan lock,
which is what makes the history linearizable — these tests drive real
worker threads against main-thread appends and check the contract on
every completed request.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector
from repro.index import BitmapIndex, IndexSpec
from repro.queries import IntervalQuery, MembershipQuery
from repro.serve import QueryService, ServiceConfig

CARDINALITY = 12


def op_strategy():
    membership = st.frozensets(
        st.integers(min_value=0, max_value=CARDINALITY - 1),
        min_size=1,
        max_size=4,
    ).map(lambda vs: ("query", MembershipQuery(vs, CARDINALITY)))
    interval = st.tuples(
        st.integers(min_value=0, max_value=CARDINALITY - 1),
        st.integers(min_value=0, max_value=CARDINALITY - 1),
    ).map(
        lambda lh: (
            "query",
            IntervalQuery(min(lh), max(lh), CARDINALITY),
        )
    )
    append = st.integers(min_value=0, max_value=15).map(
        lambda size: ("append", size)
    )
    return st.lists(
        st.one_of(membership, interval, append), min_size=1, max_size=12
    )


@given(seed=st.integers(min_value=0, max_value=2**31 - 1), ops=op_strategy())
@settings(max_examples=20, deadline=None)
def test_interleaved_appends_and_queries_linearize(seed, ops):
    rng = np.random.default_rng(seed)
    base = rng.integers(0, CARDINALITY, size=40)
    index = BitmapIndex.build(
        base, IndexSpec(cardinality=CARDINALITY, scheme="E", codec="raw")
    )
    # prefixes[e] = the column contents at epoch e.
    prefixes = [np.array(base)]
    in_flight = []  # (query, epoch_at_submit, ticket)

    config = ServiceConfig(workers=2, max_batch=4, buffer_pages=8)
    with QueryService(index, config) as service:
        for kind, payload in ops:
            if kind == "append":
                batch = rng.integers(0, CARDINALITY, size=payload)
                service.append(batch)
                if batch.size:
                    # Zero-row appends are no-ops: no new epoch, no
                    # cache sweep, nothing for the oracle to model.
                    prefixes.append(np.concatenate([prefixes[-1], batch]))
            else:
                # Tickets are not awaited here, so these queries race
                # with every later append in the op sequence.
                in_flight.append(
                    (payload, index.epoch, service.submit(payload))
                )
        final_epoch = index.epoch

    assert final_epoch == len(prefixes) - 1
    for query, submit_epoch, ticket in in_flight:
        result = ticket.result(timeout=10)
        assert submit_epoch <= result.epoch <= final_epoch
        column = prefixes[result.epoch]
        assert len(result.bitmap) == len(column)
        expected = BitVector.from_bools(query.matches(column))
        assert result.bitmap == expected, (query, result.epoch)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_oracle_agrees_with_rebuilt_index(seed):
    """The naive-scan oracle above equals a rebuild-from-scratch index."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, CARDINALITY, size=30)
    batch = rng.integers(0, CARDINALITY, size=10)
    spec = IndexSpec(cardinality=CARDINALITY, scheme="E", codec="raw")
    merged = np.concatenate([base, batch])
    rebuilt = BitmapIndex.build(merged, spec)
    query = MembershipQuery.of({1, 5, 9}, CARDINALITY)
    assert rebuilt.query(query).bitmap == BitVector.from_bools(
        query.matches(merged)
    )
