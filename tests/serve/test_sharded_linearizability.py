"""Cross-shard linearizability of the sharded serving tier.

Every :class:`ShardedResult` names its composite snapshot: per shard,
the ``(shard_id, epoch)`` it reflects.  The router mirrors each shard's
acknowledged rows, so a test can maintain its own per-``(shard,
epoch)`` row history — seeded from the initial partition, extended on
every acknowledged append, forked on every split — and replay any
answer's snapshot through a naive scan.  The contract checked here:

* every ``(shard_id, epoch)`` an answer names exists in the history
  built purely from acknowledged operations (no answer reflects a row
  state that was never acknowledged);
* the answer's bitmap equals the naive scan over the history rows of
  its snapshot, concatenated in shard order;
* this holds while appends and splits race in-flight queries (real
  router workers, real dispatcher threads), on both transports.

The deterministic sequential version is hypothesis-driven over random
op sequences; the racing versions interleave mutations with live
tickets.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector
from repro.errors import ServeError
from repro.index import IndexSpec
from repro.queries import IntervalQuery, MembershipQuery
from repro.serve import ShardedConfig, ShardedQueryService

CARDINALITY = 12


def make_spec():
    return IndexSpec(cardinality=CARDINALITY, scheme="E", codec="raw")


class ShardOracle:
    """Per-``(shard, epoch)`` row history mirroring acknowledged ops."""

    def __init__(self, service: ShardedQueryService, values: np.ndarray):
        self.history: dict[tuple[int, int], np.ndarray] = {}
        #: Current rows per live shard id (the acked state).
        self.current: dict[int, np.ndarray] = {}
        offset = 0
        for info in service.shard_info():
            rows = np.array(values[offset : offset + info["num_records"]])
            offset += info["num_records"]
            self.history[(info["id"], info["epoch"])] = rows
            self.current[info["id"]] = rows
        assert offset == len(values)

    def record_append(self, report, appended: np.ndarray) -> None:
        rows = np.concatenate([self.current[report.shard], appended])
        self.current[report.shard] = rows
        self.history[(report.shard, report.epoch)] = rows

    def record_split(self, report, service: ShardedQueryService) -> None:
        parent_rows = self.current[report.parent]
        left_rows = np.array(parent_rows[: report.row])
        right_rows = np.array(parent_rows[report.row :])
        self.current[report.left] = left_rows
        self.current[report.right] = right_rows
        epochs = {i["id"]: i["epoch"] for i in service.shard_info()}
        self.history[(report.left, epochs[report.left])] = left_rows
        self.history[(report.right, epochs[report.right])] = right_rows

    def check(self, query, result) -> None:
        column_parts = []
        for shard_id, epoch in result.epochs:
            key = (shard_id, epoch)
            assert key in self.history, (
                f"answer names unacknowledged snapshot {key}; "
                f"known: {sorted(self.history)}"
            )
            column_parts.append(self.history[key])
        column = (
            np.concatenate(column_parts)
            if column_parts
            else np.array([], dtype=int)
        )
        expected = BitVector.from_bools(query.matches(column))
        assert result.bitmap == expected, (query, result.epochs)


def op_strategy():
    membership = st.frozensets(
        st.integers(min_value=0, max_value=CARDINALITY - 1),
        min_size=1,
        max_size=4,
    ).map(lambda vs: ("query", MembershipQuery(vs, CARDINALITY)))
    interval = st.tuples(
        st.integers(min_value=0, max_value=CARDINALITY - 1),
        st.integers(min_value=0, max_value=CARDINALITY - 1),
    ).map(
        lambda lh: ("query", IntervalQuery(min(lh), max(lh), CARDINALITY))
    )
    append = st.integers(min_value=0, max_value=10).map(
        lambda size: ("append", size)
    )
    split = st.just(("split", None))
    return st.lists(
        st.one_of(membership, interval, append, split),
        min_size=1,
        max_size=14,
    )


@given(seed=st.integers(min_value=0, max_value=2**31 - 1), ops=op_strategy())
@settings(max_examples=15, deadline=None)
def test_sequential_ops_linearize(seed, ops):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, CARDINALITY, size=40)
    config = ShardedConfig(
        shards=2, transport="inline", segment_size=8, buffer_pages=8
    )
    with ShardedQueryService(values, make_spec(), config) as service:
        oracle = ShardOracle(service, values)
        for kind, arg in ops:
            if kind == "query":
                oracle.check(arg, service.execute(arg))
            elif kind == "append":
                appended = rng.integers(0, CARDINALITY, size=arg)
                report = service.append(appended)
                oracle.record_append(report, appended)
            else:
                try:
                    report = service.split()
                except ServeError:
                    continue  # every shard too small to split
                oracle.record_split(report, service)
        # Final sweep: the full column must be visible as one snapshot.
        probe = IntervalQuery(0, CARDINALITY - 1, CARDINALITY)
        oracle.check(probe, service.execute(probe))


def racing_queries():
    return [
        IntervalQuery(2, 8, CARDINALITY),
        MembershipQuery.of({0, 5, 11}, CARDINALITY),
        IntervalQuery(0, 0, CARDINALITY),
        MembershipQuery.of({3}, CARDINALITY),
    ]


def run_race(service, oracle, rng, mutate, rounds=6):
    """Interleave live tickets with ``mutate`` calls; validate all."""
    inflight = []
    for _ in range(rounds):
        for query in racing_queries():
            inflight.append((query, service.submit(query)))
        mutate()
    for query, ticket in inflight:
        oracle.check(query, ticket.result())


def test_appends_race_inflight_queries(rng):
    values = rng.integers(0, CARDINALITY, size=60)
    config = ShardedConfig(
        shards=3, transport="inline", segment_size=8, buffer_pages=8,
        workers=3,
    )
    with ShardedQueryService(values, make_spec(), config) as service:
        oracle = ShardOracle(service, values)

        def mutate():
            appended = rng.integers(0, CARDINALITY, size=5)
            oracle.record_append(service.append(appended), appended)

        run_race(service, oracle, rng, mutate)


def test_splits_race_inflight_queries(rng):
    values = rng.integers(0, CARDINALITY, size=80)
    config = ShardedConfig(
        shards=2, transport="inline", segment_size=8, buffer_pages=8,
        workers=3,
    )
    with ShardedQueryService(values, make_spec(), config) as service:
        oracle = ShardOracle(service, values)

        def mutate():
            try:
                oracle.record_split(service.split(), service)
            except ServeError:
                pass

        run_race(service, oracle, rng, mutate, rounds=4)


def test_appends_and_splits_race_inflight_queries(rng):
    values = rng.integers(0, CARDINALITY, size=60)
    config = ShardedConfig(
        shards=2, transport="inline", segment_size=8, buffer_pages=8,
        workers=3,
    )
    with ShardedQueryService(values, make_spec(), config) as service:
        oracle = ShardOracle(service, values)
        step = {"n": 0}

        def mutate():
            step["n"] += 1
            if step["n"] % 2:
                appended = rng.integers(0, CARDINALITY, size=4)
                oracle.record_append(service.append(appended), appended)
            else:
                try:
                    oracle.record_split(service.split(), service)
                except ServeError:
                    pass

        run_race(service, oracle, rng, mutate)


def test_concurrent_submitters_observe_consistent_snapshots(rng):
    """Many client threads, main-thread appends, every answer checked."""
    values = rng.integers(0, CARDINALITY, size=60)
    config = ShardedConfig(
        shards=2, transport="inline", segment_size=8, buffer_pages=8,
        workers=2, max_queue=256,
    )
    with ShardedQueryService(values, make_spec(), config) as service:
        oracle = ShardOracle(service, values)
        collected: list = []
        lock = threading.Lock()

        def client():
            for query in racing_queries() * 3:
                result = service.execute(query)
                with lock:
                    collected.append((query, result))

        threads = [threading.Thread(target=client) for _ in range(3)]
        for thread in threads:
            thread.start()
        for _ in range(5):
            appended = rng.integers(0, CARDINALITY, size=3)
            oracle.record_append(service.append(appended), appended)
        for thread in threads:
            thread.join()
        for query, result in collected:
            oracle.check(query, result)


def test_process_transport_appends_race_inflight_queries(rng):
    """The same contract holds across real worker processes."""
    values = rng.integers(0, CARDINALITY, size=40)
    config = ShardedConfig(
        shards=2, transport="process", segment_size=8, buffer_pages=8,
        workers=2,
    )
    with ShardedQueryService(values, make_spec(), config) as service:
        oracle = ShardOracle(service, values)

        def mutate():
            appended = rng.integers(0, CARDINALITY, size=4)
            oracle.record_append(service.append(appended), appended)

        run_race(service, oracle, rng, mutate, rounds=3)


def test_process_transport_split_preserves_snapshots(rng):
    values = rng.integers(0, CARDINALITY, size=40)
    config = ShardedConfig(
        shards=2, transport="process", segment_size=8, buffer_pages=8
    )
    with ShardedQueryService(values, make_spec(), config) as service:
        oracle = ShardOracle(service, values)
        query = IntervalQuery(1, 9, CARDINALITY)
        oracle.check(query, service.execute(query))
        oracle.record_split(service.split(), service)
        oracle.check(query, service.execute(query))
        appended = rng.integers(0, CARDINALITY, size=6)
        oracle.record_append(service.append(appended), appended)
        oracle.check(query, service.execute(query))
