"""Tests for shared-scan batch planning (union-find over leaf keys)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.batcher import plan_batches, sharing_groups


def sets(*groups):
    return [frozenset(g) for g in groups]


class TestSharingGroups:
    def test_empty(self):
        assert sharing_groups([]) == []

    def test_disjoint_requests_stay_separate(self):
        groups = sharing_groups(sets({"a"}, {"b"}, {"c"}))
        assert groups == [[0], [1], [2]]

    def test_direct_overlap_merges(self):
        groups = sharing_groups(sets({"a", "b"}, {"b", "c"}))
        assert groups == [[0, 1]]

    def test_transitive_overlap_merges(self):
        # 0 and 2 share nothing directly but both overlap 1.
        groups = sharing_groups(sets({"a"}, {"a", "b"}, {"b"}))
        assert groups == [[0, 1, 2]]

    def test_first_appearance_order(self):
        groups = sharing_groups(sets({"x"}, {"y"}, {"x", "z"}, {"y"}))
        assert groups == [[0, 2], [1, 3]]

    def test_empty_keyset_is_own_group(self):
        groups = sharing_groups(sets(set(), {"a"}, set()))
        assert groups == [[0], [1], [2]]

    def test_deterministic(self):
        keysets = sets({1, 2}, {3}, {2, 4}, {5, 3}, {6})
        assert sharing_groups(keysets) == sharing_groups(keysets)


class TestPlanBatches:
    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError):
            plan_batches([], 0)

    def test_empty(self):
        assert plan_batches([], 4) == []

    def test_group_larger_than_max_batch_is_chunked(self):
        keysets = sets(*({"shared", i} for i in range(5)))
        batches = plan_batches(keysets, 2)
        assert [sorted(b) for b in batches] == [[0, 1], [2, 3], [4]]

    def test_small_groups_merge_first_fit(self):
        # Three disjoint singletons ride in one scan, not three.
        batches = plan_batches(sets({"a"}, {"b"}, {"c"}), 4)
        assert batches == [[0, 1, 2]]

    def test_merge_respects_max_batch(self):
        batches = plan_batches(sets({"a"}, {"b"}, {"c"}), 2)
        assert batches == [[0, 1], [2]]

    def test_sharing_groups_not_split_below_cap(self):
        # A sharing pair must land in one batch when it fits.
        keysets = sets({"a", "b"}, {"c"}, {"b", "d"})
        batches = plan_batches(keysets, 2)
        shared_batch = next(b for b in batches if 0 in b)
        assert 2 in shared_batch

    @given(
        keysets=st.lists(
            st.frozensets(st.integers(min_value=0, max_value=8), max_size=4),
            max_size=12,
        ),
        max_batch=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_plan_is_a_partition(self, keysets, max_batch):
        batches = plan_batches(keysets, max_batch)
        flat = [i for batch in batches for i in batch]
        assert sorted(flat) == list(range(len(keysets)))
        assert all(1 <= len(batch) <= max_batch for batch in batches)
