"""Tests for :class:`repro.serve.QueryService`.

Correctness against the naive scan under both engines, the cache fast
path, admission control (typed :class:`Overloaded`), deadlines (typed
:class:`DeadlineExceeded`), close semantics and the obs mirror.  Tests
that need a request to stay in flight hold the service's scan lock from
the test thread — the worker then blocks at the top of its shared scan,
which is exactly the window the behavior under test lives in.
"""

import threading

import numpy as np
import pytest

from repro import obs
from repro.bitmap import BitVector
from repro.errors import (
    DeadlineExceeded,
    Overloaded,
    QueryError,
    ServeError,
    ServiceClosed,
)
from repro.index import BitmapIndex, IndexSpec
from repro.queries import IntervalQuery, MembershipQuery
from repro.serve import QueryService, ServiceConfig

CARDINALITY = 20


@pytest.fixture
def values(rng):
    return rng.integers(0, CARDINALITY, size=400)


def make_index(values, codec="raw"):
    spec = IndexSpec(cardinality=CARDINALITY, scheme="E", codec=codec)
    return BitmapIndex.build(values, spec)


def sample_queries():
    return [
        IntervalQuery(3, 11, CARDINALITY),
        IntervalQuery(0, 0, CARDINALITY),
        MembershipQuery.of({0, 5, 19}, CARDINALITY),
        MembershipQuery.of({2, 3, 4, 5, 6, 7}, CARDINALITY),
        MembershipQuery.of({1}, CARDINALITY),
    ]


class TestCorrectness:
    @pytest.mark.parametrize(
        "engine,codec", [("decoded", "raw"), ("compressed", "wah")]
    )
    def test_execute_matches_naive_scan(self, values, engine, codec):
        config = ServiceConfig(workers=2, engine=engine, buffer_pages=8)
        with QueryService(make_index(values, codec), config) as service:
            for query in sample_queries():
                result = service.execute(query)
                expected = BitVector.from_bools(query.matches(values))
                assert result.bitmap == expected, query
                assert result.row_count == int(query.matches(values).sum())

    @pytest.mark.parametrize(
        "engine,codec", [("decoded", "raw"), ("compressed", "wah")]
    )
    def test_execute_many_matches_naive_scan(self, values, engine, codec):
        config = ServiceConfig(engine=engine, buffer_pages=8, max_batch=4)
        queries = sample_queries() * 3
        with QueryService(make_index(values, codec), config) as service:
            results = service.execute_many(queries)
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            assert result.bitmap == BitVector.from_bools(query.matches(values))

    def test_concurrent_submissions(self, values):
        queries = sample_queries() * 8
        with QueryService(make_index(values), ServiceConfig(workers=3)) as s:
            tickets = [s.submit(q) for q in queries]
            for query, ticket in zip(queries, tickets):
                result = ticket.result(timeout=10)
                assert result.bitmap == BitVector.from_bools(
                    query.matches(values)
                )
        assert s.stats.completed == len(queries)

    def test_unsupported_query_type(self, values):
        with QueryService(make_index(values)) as service:
            with pytest.raises(QueryError):
                service.submit("not a query")


class TestBatching:
    def test_batched_reads_fewer_pages_than_serial(self, values):
        index = make_index(values)
        queries = sample_queries() * 4
        serial_cfg = ServiceConfig(
            max_batch=1, buffer_pages=4, cache_entries=0
        )
        with QueryService(index, serial_cfg) as serial:
            for query in queries:
                serial.execute_many([query])
        batched_cfg = ServiceConfig(
            max_batch=8, buffer_pages=4, cache_entries=0
        )
        with QueryService(index, batched_cfg) as batched:
            batched.execute_many(queries)
        assert batched.clock.pages_read < serial.clock.pages_read

    def test_batch_size_recorded(self, values):
        config = ServiceConfig(max_batch=8, cache_entries=0)
        with QueryService(make_index(values), config) as service:
            results = service.execute_many(sample_queries())
        assert all(r.batch_size >= 1 for r in results)
        assert service.stats.batches >= 1
        assert service.stats.batched_queries == len(results)


class TestResultCache:
    def test_cache_fast_path_reads_no_pages(self, values):
        query = IntervalQuery(2, 9, CARDINALITY)
        with QueryService(make_index(values)) as service:
            first = service.execute(query)
            pages_after_first = service.clock.pages_read
            second = service.execute(query)
            assert not first.cached
            assert second.cached
            assert second.bitmap == first.bitmap
            assert service.clock.pages_read == pages_after_first

    def test_append_invalidates_cache(self, values):
        query = MembershipQuery.of({4, 7}, CARDINALITY)
        with QueryService(make_index(values)) as service:
            before = service.execute(query)
            service.append(np.array([4, 4, 7]))
            pages_before = service.clock.pages_read
            after = service.execute(query)
            assert not after.cached
            assert service.clock.pages_read > pages_before
            assert after.epoch == before.epoch + 1
            merged = np.concatenate([values, [4, 4, 7]])
            assert after.bitmap == BitVector.from_bools(query.matches(merged))
            assert service.cache.stats.invalidated >= 1

    def test_empty_append_preserves_cache(self, values):
        """A zero-row append changes nothing — cached answers survive.

        Regression: an unconditional epoch bump on empty batches swept
        every cached entry (the cache is keyed on the epoch) without a
        single bitmap having changed.
        """
        query = IntervalQuery(2, 9, CARDINALITY)
        with QueryService(make_index(values)) as service:
            epoch_before = service.index.epoch
            first = service.execute(query)
            report = service.append(np.array([], dtype=np.int64))
            assert report.records_appended == 0
            assert service.index.epoch == epoch_before
            assert service.cache.stats.invalidated == 0
            second = service.execute(query)
            assert second.cached
            assert second.bitmap == first.bitmap

    def test_cache_disabled(self, values):
        query = IntervalQuery(2, 9, CARDINALITY)
        config = ServiceConfig(cache_entries=0)
        with QueryService(make_index(values), config) as service:
            service.execute(query)
            result = service.execute(query)
            assert not result.cached


class TestAdmissionControl:
    def test_overload_sheds_with_typed_error(self, values):
        config = ServiceConfig(
            workers=1, max_queue=2, max_batch=1, cache_entries=0
        )
        service = QueryService(make_index(values), config)
        try:
            with service._scan_lock:  # wedge the worker mid-scan
                with pytest.raises(Overloaded):
                    for query in sample_queries() * 4:
                        service.submit(query)
            assert service.stats.shed == 1
        finally:
            service.close()

    def test_deadline_exceeded_before_evaluation(self, values):
        config = ServiceConfig(workers=1, cache_entries=0)
        service = QueryService(make_index(values), config)
        try:
            with service._scan_lock:
                ticket = service.submit(
                    IntervalQuery(1, 5, CARDINALITY), timeout_s=0.001
                )
                threading.Event().wait(0.05)  # let the deadline lapse
            with pytest.raises(DeadlineExceeded):
                ticket.result(timeout=10)
            assert service.stats.timeouts == 1
        finally:
            service.close()

    def test_ticket_wait_timeout_is_not_a_deadline(self, values):
        service = QueryService(make_index(values), ServiceConfig(workers=1))
        query = IntervalQuery(1, 5, CARDINALITY)
        try:
            with service._scan_lock:
                ticket = service.submit(query)
                with pytest.raises(TimeoutError):
                    ticket.result(timeout=0.01)
            result = ticket.result(timeout=10)  # no deadline: still answers
            assert result.bitmap == BitVector.from_bools(query.matches(values))
        finally:
            service.close()


class TestCacheAccounting:
    """One hit or one miss per completed request — never both, never two.

    Regression for the double-count bug: the submit-path fast probe and
    the worker's re-probe both touched the cache, so a queued request
    that missed at submit and hit (or missed) again at evaluation was
    counted twice.  The fast probe no longer records misses.
    """

    def test_hits_plus_misses_equals_completed(self, values):
        queries = sample_queries() * 4  # repeats guarantee hits
        with QueryService(make_index(values)) as service:
            for query in queries:
                service.execute(query)
            snapshot = service.metrics_snapshot()
        assert (
            snapshot["cache_hits"] + snapshot["cache_misses"]
            == snapshot["completed"]
            == len(queries)
        )
        assert snapshot["cache_hits"] > 0

    def test_queued_duplicate_counts_one_miss_one_hit(self, values):
        # Wedge the worker so both submissions miss the fast probe and
        # queue; at evaluation the first misses, the second re-probes
        # and hits.  Exactly one miss + one hit, not two misses.
        query = IntervalQuery(3, 11, CARDINALITY)
        service = QueryService(
            make_index(values), ServiceConfig(workers=1, max_batch=1)
        )
        try:
            with service._scan_lock:
                first = service.submit(query)
                second = service.submit(query)
            first.result(timeout=10)
            result = second.result(timeout=10)
            assert result.cached
            assert service.cache.stats.misses == 1
            assert service.cache.stats.hits == 1
        finally:
            service.close()

    def test_obs_mirror_matches_completed(self, values):
        queries = sample_queries() * 3
        with obs.observed() as o:
            with QueryService(make_index(values)) as service:
                for query in queries:
                    service.execute(query)
        metrics = o.metrics
        hits = metrics.find("serve.cache.hits")
        misses = metrics.find("serve.cache.misses")
        total = (hits.value if hits else 0) + (misses.value if misses else 0)
        assert total == metrics.find("serve.completed").value == len(queries)


class TestClose:
    def test_submit_after_close_raises(self, values):
        service = QueryService(make_index(values))
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(IntervalQuery(1, 5, CARDINALITY))
        with pytest.raises(ServiceClosed):
            service.execute_many([IntervalQuery(1, 5, CARDINALITY)])

    def test_close_is_idempotent(self, values):
        service = QueryService(make_index(values))
        service.close()
        service.close()
        assert service.closed

    def test_concurrent_close_while_queued(self, values):
        """Racing closers against a wedged queue: one drain, no hang."""
        service = QueryService(make_index(values), ServiceConfig(workers=1))
        queries = sample_queries()
        with service._scan_lock:
            tickets = [service.submit(q) for q in queries]
            closers = [
                threading.Thread(target=service.close) for _ in range(3)
            ]
            for closer in closers:
                closer.start()
        for closer in closers:
            closer.join(10.0)
            assert not closer.is_alive()
        assert service.closed
        for query, ticket in zip(queries, tickets):
            assert ticket.result(timeout=10).bitmap == BitVector.from_bools(
                query.matches(values)
            )

    def test_close_drains_queued_requests(self, values):
        service = QueryService(make_index(values), ServiceConfig(workers=1))
        queries = sample_queries()
        with service._scan_lock:
            tickets = [service.submit(q) for q in queries]
        service.close(drain=True)
        for query, ticket in zip(queries, tickets):
            assert ticket.result(timeout=10).bitmap == BitVector.from_bools(
                query.matches(values)
            )

    def test_close_without_drain_cancels_queued(self, values):
        service = QueryService(
            make_index(values), ServiceConfig(workers=1, cache_entries=0)
        )
        with service._scan_lock:
            tickets = [service.submit(q) for q in sample_queries()]
            service.close(drain=False, timeout=0.1)
        service.close()
        cancelled = 0
        for ticket in tickets:
            try:
                ticket.result(timeout=10)
            except ServiceClosed:
                cancelled += 1
        # The worker may have grabbed a prefix of the queue before the
        # close; everything still queued must fail typed, not hang.
        assert cancelled == service.stats.cancelled
        assert cancelled >= len(tickets) - service.config.max_batch


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue": 0},
            {"workers": 0},
            {"max_batch": 0},
            {"engine": "quantum"},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ServeError):
            ServiceConfig(**kwargs)


class TestObservability:
    def test_serve_metrics_emitted(self, values):
        queries = sample_queries()
        with obs.observed() as o:
            with QueryService(make_index(values)) as service:
                for query in queries:
                    service.execute(query)
                service.execute(queries[0])  # cache hit
                service.append(np.array([3]))
        metrics = o.metrics
        assert metrics.find("serve.submitted").value == len(queries) + 1
        assert metrics.find("serve.completed").value == len(queries) + 1
        assert metrics.find("serve.cache.hits").value == 1
        assert metrics.find("serve.appends").value == 1
        assert metrics.find("serve.cache.invalidated").value >= 1
        assert metrics.find("serve.batch_size").count >= 1
        assert metrics.find("serve.latency_ms").count == len(queries) + 1
        assert metrics.find("serve.queue_depth") is not None

    def test_metrics_snapshot_is_flat_and_consistent(self, values):
        with QueryService(make_index(values)) as service:
            service.execute_many(sample_queries())
            snapshot = service.metrics_snapshot()
        assert snapshot["submitted"] == len(sample_queries())
        assert snapshot["completed"] == len(sample_queries())
        assert snapshot["pages_read"] == service.clock.pages_read
        assert snapshot["pool_misses"] == service.engine.pool.stats.misses
        for value in snapshot.values():
            assert isinstance(value, (int, float))
