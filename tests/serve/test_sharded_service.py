"""Tests for :class:`repro.serve.ShardedQueryService` (router core).

Correctness of scatter-gather against the naive scan and against the
single-process :class:`QueryService` (the differential suite sweeps
every codec x every scheme at a shard-boundary row count), shard
boundary row ids at ``k * shard_size +/- 1`` for query/append/split,
the empty-tail-shard layout, per-request cache accounting (a request
is a global hit only when every shard part was cached), close
semantics under queued work, and the obs mirror.  Everything here runs
on the inline transport — deterministic, single-process — except where
a test says otherwise; the chaos suite owns the process transport's
failure paths.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.bitmap import BitVector
from repro.compress import available_codecs
from repro.encoding import ALL_SCHEME_NAMES
from repro.errors import (
    Overloaded,
    QueryError,
    ServeError,
    ServiceClosed,
)
from repro.index import BitmapIndex, IndexSpec
from repro.queries import IntervalQuery, MembershipQuery
from repro.serve import (
    QueryService,
    ServiceConfig,
    ShardedConfig,
    ShardedQueryService,
)

CARDINALITY = 20


@pytest.fixture
def values(rng):
    return rng.integers(0, CARDINALITY, size=400)


def make_spec(codec="raw", scheme="E"):
    return IndexSpec(cardinality=CARDINALITY, scheme=scheme, codec=codec)


def inline_config(**overrides):
    defaults = dict(
        shards=3,
        transport="inline",
        segment_size=32,
        buffer_pages=8,
        workers=2,
    )
    defaults.update(overrides)
    return ShardedConfig(**defaults)


def sample_queries():
    return [
        IntervalQuery(3, 11, CARDINALITY),
        IntervalQuery(0, 0, CARDINALITY),
        MembershipQuery.of({0, 5, 19}, CARDINALITY),
        MembershipQuery.of({2, 3, 4, 5, 6, 7}, CARDINALITY),
        MembershipQuery.of({1}, CARDINALITY),
    ]


def naive(query, values):
    return BitVector.from_bools(query.matches(values))


class TestConfig:
    def test_defaults_valid(self):
        config = ShardedConfig()
        assert config.shards == 2
        assert config.transport == "inline"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"transport": "carrier-pigeon"},
            {"max_queue": 0},
            {"workers": 0},
            {"max_batch": 0},
            {"call_timeout_s": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ServeError):
            ShardedConfig(**kwargs)


class TestCorrectness:
    def test_execute_matches_naive_scan(self, values):
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            for query in sample_queries():
                result = s.execute(query)
                assert result.bitmap == naive(query, values), query
                assert result.shard_count == 3
                assert result.row_count == int(query.matches(values).sum())

    def test_execute_many_matches_naive_scan(self, values):
        queries = sample_queries() * 3
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            results = s.execute_many(queries)
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            assert result.bitmap == naive(query, values)

    def test_row_ids_are_global(self, values):
        query = IntervalQuery(5, 9, CARDINALITY)
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            result = s.execute(query)
        expected = np.flatnonzero(query.matches(values))
        assert np.array_equal(result.row_ids(), expected)

    def test_concurrent_submissions(self, values):
        queries = sample_queries() * 8
        with ShardedQueryService(
            values, make_spec(), inline_config(workers=3)
        ) as s:
            tickets = [s.submit(q) for q in queries]
            for query, ticket in zip(queries, tickets):
                assert ticket.result().bitmap == naive(query, values)

    def test_single_shard_degenerates_to_whole_column(self, values):
        with ShardedQueryService(
            values, make_spec(), inline_config(shards=1)
        ) as s:
            assert len(s.shard_info()) == 1
            query = IntervalQuery(2, 13, CARDINALITY)
            assert s.execute(query).bitmap == naive(query, values)

    def test_process_transport_matches_naive_scan(self, rng):
        values = rng.integers(0, CARDINALITY, size=120)
        config = ShardedConfig(
            shards=2, transport="process", segment_size=32, buffer_pages=8
        )
        with ShardedQueryService(values, make_spec(), config) as s:
            for query in sample_queries():
                assert s.execute(query).bitmap == naive(query, values)

    def test_compressed_engine_matches_naive_scan(self, values):
        config = inline_config(engine="compressed")
        with ShardedQueryService(values, make_spec("wah"), config) as s:
            for query in sample_queries():
                assert s.execute(query).bitmap == naive(query, values)

    def test_domain_mismatch_rejected(self, values):
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            with pytest.raises(QueryError):
                s.execute(IntervalQuery(0, 1, CARDINALITY + 1))


class TestDifferential:
    """Sharded == single-process QueryService == naive, every codec x scheme.

    The row count (97 over 3 shards, chunk 33) puts the last shard one
    row short of the others and cuts shard 0 / shard 1 mid-segment
    (segment_size 16), so the sweep also exercises non-word-aligned
    concatenation at every merge.
    """

    @pytest.mark.parametrize("codec", sorted(available_codecs()))
    @pytest.mark.parametrize("scheme", ALL_SCHEME_NAMES)
    def test_codec_scheme_matrix(self, rng, codec, scheme):
        values = rng.integers(0, 12, size=97)
        spec = IndexSpec(cardinality=12, scheme=scheme, codec=codec)
        engine = "decoded" if codec == "raw" else "compressed"
        queries = [
            IntervalQuery(2, 7, 12),
            IntervalQuery(0, 11, 12),
            MembershipQuery.of({0, 4, 11}, 12),
        ]
        sharded_config = ShardedConfig(
            shards=3,
            transport="inline",
            segment_size=16,
            buffer_pages=8,
            engine=engine,
        )
        with ShardedQueryService(values, spec, sharded_config) as sharded:
            sharded_results = sharded.execute_many(queries)
        single_config = ServiceConfig(engine=engine, buffer_pages=8)
        index = BitmapIndex.build(values, spec)
        with QueryService(index, single_config) as single:
            single_results = single.execute_many(queries)
        for query, ours, theirs in zip(
            queries, sharded_results, single_results
        ):
            expected = naive(query, values)
            assert ours.bitmap == expected, (codec, scheme, query)
            assert theirs.bitmap == expected, (codec, scheme, query)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    scheme=st.sampled_from(ALL_SCHEME_NAMES),
    codec=st.sampled_from(sorted(available_codecs())),
    shards=st.integers(min_value=1, max_value=4),
    boundary_offset=st.integers(min_value=-1, max_value=1),
)
@settings(max_examples=15, deadline=None)
def test_sharded_differential_property(
    seed, scheme, codec, shards, boundary_offset
):
    """sharded == single-process == naive at drawn boundary row counts.

    The row count is k * chunk + offset for offset in {-1, 0, +1}: the
    shard layout lands exactly on, one short of, or one past an even
    partition, so the drawn space concentrates on the row counts where
    merge arithmetic can go wrong.
    """
    rng = np.random.default_rng(seed)
    num_rows = max(2, shards * 24 + boundary_offset)
    values = rng.integers(0, 12, size=num_rows)
    spec = IndexSpec(cardinality=12, scheme=scheme, codec=codec)
    engine = "decoded" if codec == "raw" else "compressed"
    low = int(rng.integers(0, 12))
    high = int(rng.integers(low, 12))
    queries = [
        IntervalQuery(low, high, 12),
        MembershipQuery.of(
            set(rng.choice(12, size=3, replace=False).tolist()), 12
        ),
    ]
    config = ShardedConfig(
        shards=shards,
        transport="inline",
        segment_size=16,
        buffer_pages=8,
        engine=engine,
    )
    with ShardedQueryService(values, spec, config) as sharded:
        sharded_results = sharded.execute_many(queries)
    index = BitmapIndex.build(values, spec)
    with QueryService(
        index, ServiceConfig(engine=engine, buffer_pages=8)
    ) as single:
        single_results = single.execute_many(queries)
    for query, ours, theirs in zip(queries, sharded_results, single_results):
        expected = naive(query, values)
        assert ours.bitmap == expected, (scheme, codec, shards, query)
        assert theirs.bitmap == expected, (scheme, codec, shards, query)


class TestShardBoundaries:
    """Row ids at ``k * shard_size +/- 1`` survive query/append/split."""

    SHARDS = 4

    def column(self, num_rows):
        # Row i holds i % CARDINALITY: every global row id is
        # reconstructible from its value, so an off-by-one anywhere in
        # the merge shows up as a wrong id, not a wrong count.
        return np.arange(num_rows) % CARDINALITY

    def boundary_row_counts(self):
        # chunk = ceil(n / shards); exercise n = k*chunk exactly and
        # one row either side of every multiple near it.
        return [
            self.SHARDS * 32 - 1,
            self.SHARDS * 32,
            self.SHARDS * 32 + 1,
        ]

    @pytest.mark.parametrize("num_rows", [127, 128, 129])
    def test_query_at_boundary_row_counts(self, num_rows):
        values = self.column(num_rows)
        config = inline_config(shards=self.SHARDS, segment_size=16)
        with ShardedQueryService(values, make_spec(), config) as s:
            for target in (0, 1, 7, CARDINALITY - 1):
                query = MembershipQuery.of({target}, CARDINALITY)
                result = s.execute(query)
                expected = np.flatnonzero(values == target)
                assert np.array_equal(result.row_ids(), expected), num_rows

    @pytest.mark.parametrize("num_rows", [127, 128, 129])
    def test_append_at_boundary_row_counts(self, num_rows):
        values = self.column(num_rows)
        config = inline_config(shards=self.SHARDS, segment_size=16)
        with ShardedQueryService(values, make_spec(), config) as s:
            tail_before = s.shard_info()[-1]
            extra = self.column(33)
            report = s.append(extra)
            assert report.shard == tail_before["id"]
            assert report.records_appended == 33
            combined = np.concatenate([values, extra])
            query = MembershipQuery.of({3}, CARDINALITY)
            result = s.execute(query)
            assert np.array_equal(
                result.row_ids(), np.flatnonzero(combined == 3)
            )

    def test_append_bumps_only_tail_epoch(self, values):
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            before = {i["id"]: i["epoch"] for i in s.shard_info()}
            report = s.append(np.array([1, 2, 3]))
            after = {i["id"]: i["epoch"] for i in s.shard_info()}
            tail = s.shard_info()[-1]["id"]
            assert report.shard == tail
            assert after[tail] == before[tail] + 1
            for shard_id, epoch in before.items():
                if shard_id != tail:
                    assert after[shard_id] == epoch

    def test_append_into_empty_tail_shard(self):
        # n=8 over 5 shards: chunk 2 -> 2,2,2,2,0; the tail starts empty
        # at epoch 0 and must still accept the append.
        values = self.column(8)
        config = inline_config(shards=5, segment_size=4)
        with ShardedQueryService(values, make_spec(), config) as s:
            info = s.shard_info()
            assert info[-1]["num_records"] == 0
            assert info[-1]["epoch"] == 0
            report = s.append(np.array([9, 9, 9]))
            assert report.shard == info[-1]["id"]
            assert report.epoch == 1
            combined = np.concatenate([values, [9, 9, 9]])
            query = MembershipQuery.of({9}, CARDINALITY)
            assert np.array_equal(
                s.execute(query).row_ids(), np.flatnonzero(combined == 9)
            )

    def test_query_with_empty_tail_shard(self):
        values = self.column(8)
        config = inline_config(shards=5, segment_size=4)
        with ShardedQueryService(values, make_spec(), config) as s:
            query = IntervalQuery(0, CARDINALITY - 1, CARDINALITY)
            result = s.execute(query)
            assert result.shard_count == 5
            assert result.row_count == 8

    @pytest.mark.parametrize("offset", [-1, 0, 1])
    def test_split_at_segment_boundary_and_neighbors(self, offset):
        values = self.column(160)
        config = inline_config(shards=2, segment_size=16)
        query = MembershipQuery.of({5}, CARDINALITY)
        expected = np.flatnonzero(values == 5)
        with ShardedQueryService(values, make_spec(), config) as s:
            before = s.execute(query)
            assert np.array_equal(before.row_ids(), expected)
            parent = s.shard_info()[0]
            report = s.split(shard_id=parent["id"], at_row=48 + offset)
            assert report.parent == parent["id"]
            assert len(s.shard_info()) == 3
            after = s.execute(query)
            assert np.array_equal(after.row_ids(), expected)

    def test_split_default_targets_largest_shard(self, values):
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            sizes = {i["id"]: i["num_records"] for i in s.shard_info()}
            largest = max(sizes, key=sizes.get)
            report = s.split()
            assert report.parent == largest
            assert report.row == sizes[largest] // 2

    def test_split_validation(self, values):
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            with pytest.raises(ServeError):
                s.split(shard_id=999)
            parent = s.shard_info()[0]
            with pytest.raises(ServeError):
                s.split(shard_id=parent["id"], at_row=0)
            with pytest.raises(ServeError):
                s.split(
                    shard_id=parent["id"], at_row=parent["num_records"]
                )

    def test_repeated_splits_preserve_answers(self):
        values = self.column(96)
        config = inline_config(shards=1, segment_size=8)
        query = IntervalQuery(4, 9, CARDINALITY)
        expected = naive(query, values)
        with ShardedQueryService(values, make_spec(), config) as s:
            for _ in range(4):
                s.split()
                assert s.execute(query).bitmap == expected
            assert len(s.shard_info()) == 5
            assert sum(i["num_records"] for i in s.shard_info()) == 96


class TestCacheAccounting:
    def test_repeat_is_global_hit_once_per_request(self, values):
        query = IntervalQuery(3, 11, CARDINALITY)
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            first = s.execute(query)
            second = s.execute(query)
            assert not first.cached
            assert second.cached
            assert s.stats.cache_hits == 1
            assert s.stats.cache_misses == 1

    def test_hits_plus_misses_equals_completed(self, values):
        queries = sample_queries() * 4
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            s.execute_many(queries)
            snapshot = s.metrics_snapshot()
        assert (
            snapshot["cache_hits"] + snapshot["cache_misses"]
            == snapshot["completed"]
            == len(queries)
        )

    def test_append_invalidates_only_tail_part(self, values):
        query = IntervalQuery(3, 11, CARDINALITY)
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            s.execute(query)
            s.append(np.array([4, 4]))
            combined = np.concatenate([values, [4, 4]])
            result = s.execute(query)
            # Tail part re-evaluated -> not a global hit, but the other
            # shards served from cache (visible in the shard sums).
            assert not result.cached
            assert result.bitmap == naive(query, combined)
            snapshot = s.metrics_snapshot()
            assert snapshot["shard_cache_hits"] >= 2

    def test_global_hit_requires_every_shard_part(self, values):
        # Epoch vector of a cached answer must match the first answer's.
        query = MembershipQuery.of({2, 9}, CARDINALITY)
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            first = s.execute(query)
            second = s.execute(query)
            assert second.cached
            assert second.epochs == first.epochs


class TestAdmissionAndClose:
    def test_overload_sheds_typed(self, values):
        # Stall the single router worker so submissions pile up past the
        # queue bound and shed with a typed Overloaded.
        config = inline_config(max_queue=2, workers=1, max_batch=1)
        s = ShardedQueryService(values, make_spec(), config)
        blocker = threading.Event()
        original = s._evaluate_requests

        def stalled(requests):
            blocker.wait(5.0)
            original(requests)

        s._evaluate_requests = stalled
        try:
            tickets = [s.submit(q) for q in sample_queries()[:2]]
            with pytest.raises(Overloaded):
                for query in sample_queries() * 3:
                    tickets.append(s.submit(query))
            assert s.stats.shed >= 1
            blocker.set()
            for ticket in tickets:
                ticket.result()
        finally:
            blocker.set()
            s.close()

    def test_close_is_idempotent(self, values):
        s = ShardedQueryService(values, make_spec(), inline_config())
        s.close()
        s.close()
        assert s.closed

    def test_submit_after_close_raises(self, values):
        s = ShardedQueryService(values, make_spec(), inline_config())
        s.close()
        with pytest.raises(ServiceClosed):
            s.submit(IntervalQuery(0, 5, CARDINALITY))

    def test_close_drains_queued_requests(self, values):
        """Close while requests are queued: drain completes them all."""
        config = inline_config(workers=1, max_batch=1)
        s = ShardedQueryService(values, make_spec(), config)
        gate = threading.Event()
        original = s._evaluate_requests

        def gated(requests):
            gate.wait(10.0)
            original(requests)

        s._evaluate_requests = gated
        queries = sample_queries()
        tickets = [s.submit(q) for q in queries]
        closer = threading.Thread(target=s.close)
        closer.start()
        gate.set()
        closer.join(10.0)
        assert not closer.is_alive()
        for query, ticket in zip(queries, tickets):
            assert ticket.result().bitmap == naive(query, values)
        assert s.stats.completed == len(queries)

    def test_close_without_drain_cancels_queued(self, values):
        config = inline_config(workers=1, max_batch=1)
        s = ShardedQueryService(values, make_spec(), config)
        gate = threading.Event()
        original = s._evaluate_requests

        def gated(requests):
            gate.wait(10.0)
            original(requests)

        s._evaluate_requests = gated
        tickets = [s.submit(q) for q in sample_queries()]
        closer = threading.Thread(
            target=lambda: s.close(drain=False, timeout=0.2)
        )
        closer.start()
        gate.set()
        closer.join(10.0)
        s.close()
        outcomes = []
        for ticket in tickets:
            try:
                ticket.result()
                outcomes.append("ok")
            except ServiceClosed:
                outcomes.append("cancelled")
        assert "cancelled" in outcomes
        assert s.stats.cancelled >= 1

    def test_append_and_split_after_close_raise(self, values):
        s = ShardedQueryService(values, make_spec(), inline_config())
        s.close()
        with pytest.raises(ServiceClosed):
            s.append(np.array([1]))
        with pytest.raises(ServiceClosed):
            s.split()


class TestMetricsAndObs:
    def test_snapshot_has_driver_keys(self, values):
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            s.execute_many(sample_queries())
            snapshot = s.metrics_snapshot()
        for key in (
            "submitted",
            "completed",
            "pages_read",
            "read_requests",
            "cache_hits",
            "batches",
            "batched_queries",
            "shards",
            "shard_cache_hits",
            "shard_cache_misses",
        ):
            assert key in snapshot, key
        assert snapshot["pages_read"] > 0
        assert snapshot["shards"] == 3

    def test_obs_mirror(self, values):
        query = IntervalQuery(3, 11, CARDINALITY)
        with obs.observed() as o:
            with ShardedQueryService(
                values, make_spec(), inline_config()
            ) as s:
                s.execute(query)
                s.execute(query)
                s.append(np.array([5]))
                s.split()
        metrics = o.metrics
        assert metrics.find("serve.submitted").value == 2
        assert metrics.find("serve.completed").value == 2
        assert metrics.find("serve.cache.hits").value == 1
        assert metrics.find("serve.cache.misses").value == 1
        assert metrics.find("serve.appends").value == 1
        assert metrics.total("serve.shard.appends") == 1
        assert metrics.find("serve.shard.splits").value == 1
        # 2 requests x 3 shards, per-shard behavior in tagged series.
        assert metrics.total("serve.shard.queries") == 6
        assert metrics.total("serve.shard.cache.hits") == 3
        assert metrics.total("serve.shard.cache.misses") == 3
        assert metrics.find("serve.shard.count") is not None
