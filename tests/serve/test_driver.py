"""Tests for the closed/open-loop workload drivers and the paper mix."""

import pytest

from repro.index import BitmapIndex, IndexSpec
from repro.queries.model import MembershipQuery
from repro.serve import (
    QueryService,
    ServiceConfig,
    paper_mix,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.driver import DriverReport

CARDINALITY = 50


@pytest.fixture
def service(rng):
    values = rng.integers(0, CARDINALITY, size=300)
    index = BitmapIndex.build(
        values, IndexSpec(cardinality=CARDINALITY, scheme="E", codec="raw")
    )
    with QueryService(
        index, ServiceConfig(workers=2, max_batch=8, buffer_pages=8)
    ) as svc:
        yield svc


class TestPaperMix:
    def test_length_and_types(self):
        mix = paper_mix(CARDINALITY, 37, seed=1)
        assert len(mix) == 37
        assert all(isinstance(q, MembershipQuery) for q in mix)
        assert all(q.cardinality == CARDINALITY for q in mix)

    def test_deterministic(self):
        assert paper_mix(CARDINALITY, 24, seed=7) == paper_mix(
            CARDINALITY, 24, seed=7
        )
        assert paper_mix(CARDINALITY, 24, seed=7) != paper_mix(
            CARDINALITY, 24, seed=8
        )

    def test_interleaves_query_shapes(self):
        # Consecutive queries come from different (N_int, N_equ) specs,
        # so a prefix is not all one shape.
        mix = paper_mix(200, 16, seed=0)
        sizes = {len(q.values) for q in mix[:8]}
        assert len(sizes) > 1


class TestClosedLoop:
    def test_completes_all_queries(self, service):
        queries = paper_mix(CARDINALITY, 40, seed=2)
        report = run_closed_loop(service, queries, concurrency=4)
        assert report.mode == "closed-loop"
        assert report.submitted == len(queries)
        assert report.completed == len(queries)
        assert report.shed == 0 and report.timeouts == 0
        assert report.throughput_qps > 0
        assert report.pages_read > 0
        assert report.batches >= 1
        assert report.mean_batch_size >= 1.0
        assert set(report.latency_ms) == {"p50", "p95", "p99"}
        assert set(report.simulated_ms) == {"p50", "p95", "p99"}

    def test_rejects_bad_concurrency(self, service):
        with pytest.raises(ValueError):
            run_closed_loop(service, [], concurrency=0)

    def test_render_mentions_throughput(self, service):
        report = run_closed_loop(
            service, paper_mix(CARDINALITY, 8, seed=3), concurrency=2
        )
        text = report.render()
        assert "closed-loop" in text
        assert "q/s" in text
        assert "p95" in text


class TestOpenLoop:
    def test_completes_at_feasible_rate(self, service):
        queries = paper_mix(CARDINALITY, 30, seed=4)
        report = run_open_loop(service, queries, rate_qps=10_000.0)
        assert report.mode == "open-loop"
        assert report.completed + report.shed + report.timeouts == len(queries)
        assert report.completed > 0

    def test_rejects_bad_rate(self, service):
        with pytest.raises(ValueError):
            run_open_loop(service, [], rate_qps=0.0)


class TestDriverReport:
    def test_zero_division_guards(self):
        report = DriverReport(mode="closed-loop")
        assert report.throughput_qps == 0.0
        assert report.pages_per_query == 0.0
        assert report.mean_batch_size == 0.0
