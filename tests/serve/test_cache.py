"""Tests for the epoch-keyed result cache."""

import pytest

from repro.bitmap import BitVector
from repro.serve.cache import ResultCache


def bits(n):
    return BitVector.ones(n)


EXPR_A = ("a",)
EXPR_B = ("b",)


class TestResultCache:
    def test_get_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get(0, EXPR_A) is None
        cache.put(0, EXPR_A, bits(3))
        assert cache.get(0, EXPR_A) == bits(3)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_epoch_is_part_of_the_key(self):
        cache = ResultCache(4)
        cache.put(0, EXPR_A, bits(3))
        assert cache.get(1, EXPR_A) is None

    def test_invalidate_below_drops_only_stale(self):
        cache = ResultCache(8)
        cache.put(0, EXPR_A, bits(1))
        cache.put(0, EXPR_B, bits(2))
        cache.put(1, EXPR_A, bits(3))
        dropped = cache.invalidate_below(1)
        assert dropped == 2
        assert cache.stats.invalidated == 2
        assert len(cache) == 1
        assert cache.get(1, EXPR_A) == bits(3)

    def test_lru_eviction(self):
        cache = ResultCache(2)
        cache.put(0, EXPR_A, bits(1))
        cache.put(0, EXPR_B, bits(2))
        cache.get(0, EXPR_A)  # A is now most recently used
        cache.put(0, ("c",), bits(3))
        assert cache.get(0, EXPR_B) is None  # B was the LRU victim
        assert cache.get(0, EXPR_A) is not None
        assert cache.stats.evictions == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(0)
        cache.put(0, EXPR_A, bits(1))
        assert len(cache) == 0
        assert cache.get(0, EXPR_A) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)

    def test_put_replaces_existing_entry(self):
        cache = ResultCache(2)
        cache.put(0, EXPR_A, bits(1))
        cache.put(0, EXPR_A, bits(5))
        assert len(cache) == 1
        assert cache.get(0, EXPR_A) == bits(5)

    def test_clear_keeps_stats(self):
        cache = ResultCache(4)
        cache.put(0, EXPR_A, bits(1))
        cache.get(0, EXPR_A)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
