"""Threshold (k-of-N) queries through the sharded serving tier.

Counting is per row and shards are row-disjoint, so scatter-gathering
a ``ThresholdQuery`` — each shard answers k-of-N over its own rows and
the router concatenates in shard order — must be exact.  The suite
drives row counts at ``shards * chunk +/- 1`` (the boundary layouts
where merge arithmetic can go wrong) against the naive count scan,
sweeps codecs on the compressed engine, and checks the
``(epoch, expression)`` cache: a repeated threshold query is a global
hit, and an append invalidates exactly the tail shard's part.
"""

import numpy as np
import pytest

from repro.bitmap import BitVector
from repro.errors import QueryError
from repro.index import BitmapIndex, IndexSpec
from repro.queries import IntervalQuery, MembershipQuery, ThresholdQuery
from repro.serve import (
    QueryService,
    ServiceConfig,
    ShardedConfig,
    ShardedQueryService,
)

CARDINALITY = 16
SHARDS = 4


def make_spec(codec="raw", scheme="E"):
    return IndexSpec(cardinality=CARDINALITY, scheme=scheme, codec=codec)


def inline_config(**overrides):
    defaults = dict(
        shards=SHARDS,
        transport="inline",
        segment_size=16,
        buffer_pages=8,
        workers=2,
    )
    defaults.update(overrides)
    return ShardedConfig(**defaults)


def column(num_rows):
    # Row i holds i % C: every matching row id is reconstructible from
    # its value, so merge off-by-ones surface as wrong ids.
    return np.arange(num_rows) % CARDINALITY


def sample_threshold_queries():
    p = [
        IntervalQuery(0, 5, CARDINALITY),
        IntervalQuery(3, 9, CARDINALITY),
        MembershipQuery.of({1, 4, 11, 15}, CARDINALITY),
        MembershipQuery.of({0, 7}, CARDINALITY),
    ]
    return [
        ThresholdQuery.of(1, p),           # degenerate OR
        ThresholdQuery.of(2, p),           # true k-of-N
        ThresholdQuery.of(3, p),           # N-1
        ThresholdQuery.of(4, p),           # degenerate AND
        ThresholdQuery.of(2, [p[0], p[0], p[1]]),  # duplicate predicate
    ]


def naive(query, values):
    return BitVector.from_bools(query.matches(values))


class TestBoundaries:
    """Exactness at ``shards * chunk +/- 1`` row layouts."""

    @pytest.mark.parametrize("num_rows", [127, 128, 129])
    def test_threshold_at_boundary_row_counts(self, num_rows):
        values = column(num_rows)
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            for query in sample_threshold_queries():
                result = s.execute(query)
                expected = naive(query, values)
                assert result.bitmap == expected, (num_rows, str(query))
                assert np.array_equal(
                    result.row_ids(), np.flatnonzero(query.matches(values))
                ), (num_rows, str(query))

    def test_empty_tail_shard(self):
        # n=8 over 5 shards: chunk 2 -> 2,2,2,2,0; the empty tail must
        # contribute an empty partial bitmap, not an error.
        values = column(8)
        config = inline_config(shards=5, segment_size=4)
        query = sample_threshold_queries()[1]
        with ShardedQueryService(values, make_spec(), config) as s:
            result = s.execute(query)
            assert result.shard_count == 5
            assert result.bitmap == naive(query, values)

    def test_matches_single_process_service(self):
        values = column(97)
        query = sample_threshold_queries()[1]
        with ShardedQueryService(
            values, make_spec(), inline_config(shards=3)
        ) as sharded:
            ours = sharded.execute(query)
        index = BitmapIndex.build(values, make_spec())
        with QueryService(index, ServiceConfig(buffer_pages=8)) as single:
            theirs = single.execute(query)
        assert ours.bitmap == theirs.bitmap == naive(query, values)

    @pytest.mark.parametrize("codec", ["bbc", "wah", "ewah", "roaring"])
    def test_compressed_engine_codecs(self, codec):
        values = column(129)
        config = inline_config(engine="compressed")
        with ShardedQueryService(values, make_spec(codec), config) as s:
            for query in sample_threshold_queries():
                assert s.execute(query).bitmap == naive(query, values), (
                    codec,
                    str(query),
                )

    def test_process_transport(self):
        values = column(97)
        config = ShardedConfig(
            shards=2, transport="process", segment_size=32, buffer_pages=8
        )
        with ShardedQueryService(values, make_spec(), config) as s:
            for query in sample_threshold_queries()[:2]:
                assert s.execute(query).bitmap == naive(query, values)

    def test_domain_mismatch_rejected(self):
        values = column(64)
        bad = ThresholdQuery.of(
            1, [IntervalQuery(0, 1, CARDINALITY + 1)]
        )
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            with pytest.raises(QueryError):
                s.execute(bad)


class TestEpochCache:
    """(epoch, expression) caching of threshold answers."""

    def test_repeat_is_global_hit(self):
        values = column(128)
        query = sample_threshold_queries()[1]
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            first = s.execute(query)
            second = s.execute(query)
            assert not first.cached
            assert second.cached
            assert second.epochs == first.epochs
            assert second.bitmap == first.bitmap

    def test_append_invalidates_only_tail_part(self):
        values = column(128)
        query = sample_threshold_queries()[1]
        extra = column(16)
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            s.execute(query)
            hits_before = s.metrics_snapshot()["shard_cache_hits"]
            s.append(extra)
            combined = np.concatenate([values, extra])
            result = s.execute(query)
            # The tail shard's epoch moved, so its cached part is stale
            # and the request is not a global hit — but the untouched
            # shards still serve their parts from cache.
            assert not result.cached
            assert result.bitmap == naive(query, combined)
            hits_after = s.metrics_snapshot()["shard_cache_hits"]
            assert hits_after - hits_before >= SHARDS - 1

    def test_append_changes_threshold_answer(self):
        # Appended rows that satisfy >= k predicates must show up in
        # the re-evaluated tail part immediately after the append.
        values = column(127)
        p = [IntervalQuery(0, 5, CARDINALITY), IntervalQuery(3, 9, CARDINALITY)]
        query = ThresholdQuery.of(2, p)
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            before = s.execute(query)
            extra = np.array([4, 4, 12])  # 4 satisfies both, 12 neither
            s.append(extra)
            after = s.execute(query)
            assert after.row_count == before.row_count + 2
            combined = np.concatenate([values, extra])
            assert after.bitmap == naive(query, combined)

    def test_distinct_k_cached_separately(self):
        # Same predicates, different k: different expressions, so one
        # must never serve the other's cached answer.
        values = column(128)
        p = [
            IntervalQuery(0, 5, CARDINALITY),
            IntervalQuery(3, 9, CARDINALITY),
            MembershipQuery.of({1, 4, 11}, CARDINALITY),
        ]
        with ShardedQueryService(values, make_spec(), inline_config()) as s:
            for k in (1, 2, 3):
                query = ThresholdQuery.of(k, p)
                assert s.execute(query).bitmap == naive(query, values), k
