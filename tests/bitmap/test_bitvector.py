"""Unit tests for the BitVector substrate."""

import numpy as np
import pytest

from repro.bitmap import BitVector
from repro.errors import BitmapError


class TestConstruction:
    def test_zeros_has_no_set_bits(self):
        vec = BitVector.zeros(100)
        assert len(vec) == 100
        assert vec.count() == 0
        assert not vec.any()

    def test_ones_sets_every_bit(self):
        vec = BitVector.ones(100)
        assert vec.count() == 100
        assert vec.all()

    def test_ones_respects_padding_invariant(self):
        # 70 bits spill into a second word; padding bits must stay 0.
        vec = BitVector.ones(70)
        assert vec.count() == 70
        assert int(vec.words[1]) == (1 << 6) - 1

    def test_zero_length_vector(self):
        vec = BitVector.zeros(0)
        assert len(vec) == 0
        assert vec.count() == 0
        assert vec.density() == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(BitmapError):
            BitVector(-1)

    def test_from_indices(self):
        vec = BitVector.from_indices(10, [0, 3, 9])
        assert vec.to_indices().tolist() == [0, 3, 9]

    def test_from_indices_empty(self):
        vec = BitVector.from_indices(10, [])
        assert vec.count() == 0

    def test_from_indices_out_of_range(self):
        with pytest.raises(BitmapError):
            BitVector.from_indices(10, [10])
        with pytest.raises(BitmapError):
            BitVector.from_indices(10, [-1])

    def test_from_bools_roundtrip(self):
        bits = np.array([True, False, True, True, False])
        vec = BitVector.from_bools(bits)
        assert vec.to_bools().tolist() == bits.tolist()

    def test_from_bools_rejects_2d(self):
        with pytest.raises(BitmapError):
            BitVector.from_bools(np.zeros((2, 2), dtype=bool))

    def test_bytes_roundtrip(self):
        vec = BitVector.from_indices(130, [0, 64, 129])
        again = BitVector.from_bytes(130, vec.to_bytes())
        assert again == vec

    def test_from_bytes_wrong_size(self):
        with pytest.raises(BitmapError):
            BitVector.from_bytes(130, b"\x00" * 8)

    def test_copy_is_independent(self):
        vec = BitVector.from_indices(10, [1])
        dup = vec.copy()
        dup[2] = True
        assert vec.count() == 1
        assert dup.count() == 2


class TestIndexing:
    def test_get_and_set(self):
        vec = BitVector.zeros(70)
        vec[69] = True
        assert vec[69]
        assert not vec[0]
        vec[69] = False
        assert vec.count() == 0

    def test_negative_index(self):
        vec = BitVector.zeros(10)
        vec[-1] = True
        assert vec[9]

    def test_out_of_range_index(self):
        vec = BitVector.zeros(10)
        with pytest.raises(BitmapError):
            vec[10]
        with pytest.raises(BitmapError):
            vec[-11] = True


class TestLogicalOps:
    def setup_method(self):
        self.a = BitVector.from_indices(10, [0, 1, 2])
        self.b = BitVector.from_indices(10, [1, 2, 3])

    def test_and(self):
        assert (self.a & self.b).to_indices().tolist() == [1, 2]

    def test_or(self):
        assert (self.a | self.b).to_indices().tolist() == [0, 1, 2, 3]

    def test_xor(self):
        assert (self.a ^ self.b).to_indices().tolist() == [0, 3]

    def test_not(self):
        assert (~self.a).to_indices().tolist() == [3, 4, 5, 6, 7, 8, 9]

    def test_not_preserves_padding(self):
        vec = ~BitVector.zeros(70)
        assert vec.count() == 70
        assert (~vec).count() == 0

    def test_inplace_ops(self):
        acc = self.a.copy()
        acc &= self.b
        assert acc.to_indices().tolist() == [1, 2]
        acc |= self.a
        assert acc.to_indices().tolist() == [0, 1, 2]
        acc ^= self.a
        assert acc.count() == 0

    def test_invert_inplace(self):
        vec = BitVector.zeros(10)
        result = vec.invert_inplace()
        assert result is vec
        assert vec.count() == 10

    def test_length_mismatch_raises(self):
        with pytest.raises(BitmapError):
            self.a & BitVector.zeros(11)
        with pytest.raises(BitmapError):
            self.a | BitVector.zeros(9)

    def test_operands_unchanged(self):
        before_a = self.a.copy()
        before_b = self.b.copy()
        _ = self.a & self.b
        _ = self.a | self.b
        _ = self.a ^ self.b
        _ = ~self.a
        assert self.a == before_a
        assert self.b == before_b


class TestQueries:
    def test_count_across_word_boundary(self):
        vec = BitVector.from_indices(200, [0, 63, 64, 127, 128, 199])
        assert vec.count() == 6

    def test_density(self):
        vec = BitVector.from_indices(10, [0, 1])
        assert vec.density() == pytest.approx(0.2)

    def test_any_all(self):
        assert not BitVector.zeros(5).any()
        assert BitVector.ones(5).all()
        assert not BitVector.from_indices(5, [0]).all()

    def test_iter_set_bits(self):
        vec = BitVector.from_indices(100, [7, 70, 99])
        assert list(vec.iter_set_bits()) == [7, 70, 99]

    def test_equality_and_hash(self):
        a = BitVector.from_indices(10, [1, 5])
        b = BitVector.from_indices(10, [1, 5])
        c = BitVector.from_indices(11, [1, 5])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a vector"

    def test_repr_small_and_large(self):
        assert "101" in repr(BitVector.from_bools([True, False, True]))
        assert "popcount=1" in repr(BitVector.from_indices(1000, [3]))
