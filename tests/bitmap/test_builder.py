"""Unit tests for BitVectorBuilder and column_bitmaps."""

import numpy as np
import pytest

from repro.bitmap import BitVector, BitVectorBuilder
from repro.bitmap.builder import column_bitmaps
from repro.errors import BitmapError


class TestBuilder:
    def test_append_single_bits(self):
        builder = BitVectorBuilder()
        for bit in (True, False, True):
            builder.append(bit)
        assert builder.finish() == BitVector.from_bools([True, False, True])

    def test_append_run(self):
        builder = BitVectorBuilder()
        builder.append_run(True, 3)
        builder.append_run(False, 2)
        builder.append_run(True, 0)  # no-op
        vec = builder.finish()
        assert vec.to_bools().tolist() == [True] * 3 + [False] * 2

    def test_append_bools(self):
        builder = BitVectorBuilder()
        builder.append_bools(np.array([True, True, False]))
        builder.append_bools(np.array([], dtype=bool))
        builder.append_bools(np.array([False, True]))
        assert builder.finish().to_indices().tolist() == [0, 1, 4]

    def test_len_tracks_appended(self):
        builder = BitVectorBuilder()
        builder.append_run(False, 7)
        builder.append(True)
        assert len(builder) == 8

    def test_empty_finish(self):
        assert len(BitVectorBuilder().finish()) == 0

    def test_negative_run_rejected(self):
        builder = BitVectorBuilder()
        with pytest.raises(BitmapError):
            builder.append_run(True, -1)

    def test_2d_bools_rejected(self):
        builder = BitVectorBuilder()
        with pytest.raises(BitmapError):
            builder.append_bools(np.zeros((2, 2), dtype=bool))

    def test_use_after_finish_rejected(self):
        builder = BitVectorBuilder()
        builder.finish()
        with pytest.raises(BitmapError):
            builder.append(True)
        with pytest.raises(BitmapError):
            builder.finish()


class TestColumnBitmaps:
    def test_one_bitmap_per_value(self, paper_column):
        bitmaps = column_bitmaps(paper_column, 10)
        assert len(bitmaps) == 10
        # Figure 1(b): E^2 marks records 2, 4, 6 (1-based) = rows 1, 3, 5.
        assert bitmaps[2].to_indices().tolist() == [1, 3, 5]
        # E^9 marks only row 7 (1-based record 7).
        assert bitmaps[9].to_indices().tolist() == [6]

    def test_bitmaps_partition_records(self, paper_column):
        bitmaps = column_bitmaps(paper_column, 10)
        total = sum(b.count() for b in bitmaps)
        assert total == len(paper_column)

    def test_out_of_domain_rejected(self):
        with pytest.raises(BitmapError):
            column_bitmaps(np.array([0, 5]), 5)
