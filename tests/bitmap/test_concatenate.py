"""Property tests for word-level bit-vector concatenation."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector, concatenate


def reference_concat(vectors):
    if not vectors:
        return BitVector(0)
    bools = np.concatenate([v.to_bools() for v in vectors])
    return BitVector.from_bools(bools)


@st.composite
def vector_lists(draw):
    pieces = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.integers(min_value=0, max_value=2**31 - 1),
            ),
            min_size=0,
            max_size=6,
        )
    )
    vectors = []
    for length, seed in pieces:
        rng = np.random.default_rng(seed)
        vectors.append(BitVector.from_bools(rng.random(length) < 0.5))
    return vectors


@given(vectors=vector_lists())
@settings(max_examples=300)
def test_concatenate_matches_reference(vectors):
    assert concatenate(vectors) == reference_concat(vectors)


@given(vectors=vector_lists())
@settings(max_examples=150)
def test_concatenate_preserves_counts_and_length(vectors):
    joined = concatenate(vectors)
    assert len(joined) == sum(len(v) for v in vectors)
    assert joined.count() == sum(v.count() for v in vectors)


def test_word_aligned_fast_path():
    a = BitVector.from_indices(128, [0, 127])
    b = BitVector.from_indices(64, [63])
    joined = concatenate([a, b])
    assert joined.to_indices().tolist() == [0, 127, 191]


def test_unaligned_spill_across_words():
    a = BitVector.from_indices(65, [64])       # one bit in the second word
    b = BitVector.from_indices(64, [0, 63])
    joined = concatenate([a, b])
    assert joined.to_indices().tolist() == [64, 65, 128]


def test_inputs_untouched():
    a = BitVector.ones(10)
    b = BitVector.zeros(10)
    before = a.copy()
    concatenate([a, b])
    assert a == before
