"""Unit tests for bulk bitmap operations and run iteration."""

import pytest

from repro.bitmap import BitVector, and_all, iter_runs, or_all, xor_all
from repro.errors import BitmapError


class TestReductions:
    def setup_method(self):
        self.vectors = [
            BitVector.from_indices(8, [0, 1]),
            BitVector.from_indices(8, [1, 2]),
            BitVector.from_indices(8, [1, 3]),
        ]

    def test_and_all(self):
        assert and_all(self.vectors).to_indices().tolist() == [1]

    def test_or_all(self):
        assert or_all(self.vectors).to_indices().tolist() == [0, 1, 2, 3]

    def test_xor_all(self):
        assert xor_all(self.vectors).to_indices().tolist() == [0, 1, 2, 3]

    def test_single_operand_is_copy(self):
        result = or_all(self.vectors[:1])
        assert result == self.vectors[0]
        result[4] = True
        assert not self.vectors[0][4]

    def test_empty_reduction_rejected(self):
        with pytest.raises(BitmapError):
            and_all([])
        with pytest.raises(BitmapError):
            or_all([])


class TestIterRuns:
    def test_alternating(self):
        vec = BitVector.from_bools([True, False, False, True, True, True])
        assert list(iter_runs(vec)) == [(True, 1), (False, 2), (True, 3)]

    def test_uniform(self):
        assert list(iter_runs(BitVector.zeros(100))) == [(False, 100)]
        assert list(iter_runs(BitVector.ones(100))) == [(True, 100)]

    def test_empty(self):
        assert list(iter_runs(BitVector.zeros(0))) == []

    def test_runs_reconstruct_vector(self, rng):
        from tests.conftest import random_bitvector

        vec = random_bitvector(rng, 500, density=0.3)
        total = 0
        bits = []
        for value, length in iter_runs(vec):
            bits.extend([value] * length)
            total += length
        assert total == 500
        assert BitVector.from_bools(bits) == vec
