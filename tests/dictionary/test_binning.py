"""Tests for the binner and its range plans."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dictionary import Binner
from repro.errors import ReproError


class TestConstruction:
    def test_equi_width(self):
        binner = Binner.equi_width(0.0, 100.0, 4)
        assert binner.num_bins == 4
        assert binner.boundaries.tolist() == [25.0, 50.0, 75.0]

    def test_equi_depth_balances_population(self, rng):
        values = rng.exponential(scale=10.0, size=20_000)
        binner = Binner.equi_depth(values, 10)
        codes = binner.encode(values)
        counts = np.bincount(codes, minlength=binner.num_bins)
        # Quantile boundaries keep every bin within 2x of the mean.
        assert counts.max() < 2 * values.size / binner.num_bins

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            Binner.equi_width(0.0, 100.0, 1)
        with pytest.raises(ReproError):
            Binner.equi_width(5.0, 5.0, 4)
        with pytest.raises(ReproError):
            Binner(np.array([1.0, 1.0]))
        with pytest.raises(ReproError):
            Binner.equi_depth(np.array([]), 4)

    def test_equi_depth_collapses_duplicate_quantiles(self):
        # All-identical samples collapse to a single boundary (2 bins).
        binner = Binner.equi_depth(np.array([7.0, 7.0, 7.0]), 4)
        assert binner.num_bins == 2


class TestEncode:
    def test_boundary_goes_up(self):
        binner = Binner(np.array([10.0, 20.0]))
        assert binner.encode(np.array([9.9, 10.0, 19.9, 20.0])).tolist() == [
            0,
            1,
            1,
            2,
        ]

    def test_extremes(self):
        binner = Binner(np.array([0.0]))
        assert binner.encode(np.array([-1e30, 1e30])).tolist() == [0, 1]


class TestRangePlan:
    def setup_method(self):
        # Bins: [-inf,10) [10,20) [20,30) [30,inf)
        self.binner = Binner(np.array([10.0, 20.0, 30.0]))

    def test_nearly_aligned_single_bin_still_rechecks(self):
        # Bin 1 is [10, 20); high = 19.999 leaves (19.999, 20) outside
        # the query, so the bin must be rechecked.
        inner, edges = self.binner.range_plan(10.0, 19.999)
        assert inner is None
        assert edges == [1]

    def test_exactly_aligned_bin_is_inner(self):
        # [10, 20] covers bin 1 entirely (20 itself lives in bin 2).
        inner, edges = self.binner.range_plan(10.0, 20.0)
        assert inner == (1, 1)
        assert edges == [2]

    def test_fully_covering_range(self):
        # Only the unbounded range makes the outer bins inner bins —
        # any finite bound leaves tail values to recheck.
        inner, edges = self.binner.range_plan(-np.inf, np.inf)
        assert inner == (0, 3)
        assert edges == []

    def test_finite_wide_range_rechecks_outer_bins(self):
        inner, edges = self.binner.range_plan(-1e30, 1e30)
        assert inner == (1, 2)
        assert set(edges) == {0, 3}

    def test_interior_range(self):
        # 12..27: bins 1 and 2 both straddle; no inner bins.
        inner, edges = self.binner.range_plan(12.0, 27.0)
        assert inner is None
        assert set(edges) == {1, 2}

    def test_single_bin_query(self):
        inner, edges = self.binner.range_plan(21.0, 22.0)
        assert inner is None
        assert edges == [2]

    def test_low_aligned(self):
        # low exactly at a boundary: bin 1 fully included from below.
        inner, edges = self.binner.range_plan(10.0, 35.0)
        assert inner == (1, 2)
        assert edges == [3]

    def test_reversed_rejected(self):
        with pytest.raises(ReproError):
            self.binner.range_plan(5.0, 1.0)


@given(
    boundaries=st.lists(
        st.integers(min_value=-50, max_value=50), min_size=1, max_size=8, unique=True
    ),
    low=st.floats(min_value=-60, max_value=60),
    span=st.floats(min_value=0, max_value=60),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=300)
def test_range_plan_partitions_matches(boundaries, low, span, seed):
    """Inner bins hold only matches; every match is in an inner or edge
    bin; edge bins are the only place non-matches can share a bin with
    matches."""
    binner = Binner(np.array(sorted(boundaries), dtype=np.float64))
    rng = np.random.default_rng(seed)
    values = rng.uniform(-70, 70, size=300)
    codes = binner.encode(values)
    high = low + span
    inner, edges = binner.range_plan(low, high)

    in_range = (values >= low) & (values <= high)
    if inner is not None:
        inner_mask = (codes >= inner[0]) & (codes <= inner[1])
        # Every record in an inner bin matches the raw range.
        assert np.all(in_range[inner_mask])
    else:
        inner_mask = np.zeros_like(in_range)
    edge_mask = np.isin(codes, edges)
    # Every matching record is covered by inner or edge bins.
    assert np.all(inner_mask[in_range] | edge_mask[in_range])
    # At most two edge bins ever.
    assert len(edges) <= 2
