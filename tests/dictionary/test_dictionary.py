"""Tests for order-preserving value dictionaries."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dictionary import ValueDictionary
from repro.errors import ReproError


class TestBuild:
    def test_from_integer_column(self):
        dictionary = ValueDictionary.from_column(np.array([30, 10, 20, 10]))
        assert dictionary.cardinality == 3
        assert dictionary.values.tolist() == [10, 20, 30]

    def test_from_string_column(self):
        dictionary = ValueDictionary.from_column(
            np.array(["cherry", "apple", "banana", "apple"])
        )
        assert dictionary.values.tolist() == ["apple", "banana", "cherry"]

    def test_empty_column_rejected(self):
        with pytest.raises(ReproError):
            ValueDictionary.from_column(np.array([]))


class TestCoding:
    def setup_method(self):
        self.dictionary = ValueDictionary.from_column(
            np.array([100, 300, 500, 700])
        )

    def test_encode_decode_roundtrip(self):
        column = np.array([500, 100, 700, 100, 300])
        codes = self.dictionary.encode(column)
        assert codes.tolist() == [2, 0, 3, 0, 1]
        assert self.dictionary.decode(codes).tolist() == column.tolist()

    def test_order_preserved(self):
        codes = self.dictionary.encode(np.array([100, 300, 500, 700]))
        assert codes.tolist() == sorted(codes.tolist())

    def test_unknown_value_rejected(self):
        with pytest.raises(ReproError):
            self.dictionary.encode(np.array([200]))

    def test_bad_codes_rejected(self):
        with pytest.raises(ReproError):
            self.dictionary.decode(np.array([4]))

    def test_contains(self):
        assert self.dictionary.contains(300)
        assert not self.dictionary.contains(301)
        assert not self.dictionary.contains(999)


class TestCodeRange:
    def setup_method(self):
        self.dictionary = ValueDictionary.from_column(
            np.array([100, 300, 500, 700])
        )

    def test_exact_endpoints(self):
        assert self.dictionary.code_range(100, 500) == (0, 2)

    def test_between_values(self):
        # 150..650 selects {300, 500}.
        assert self.dictionary.code_range(150, 650) == (1, 2)

    def test_empty_range(self):
        assert self.dictionary.code_range(301, 499) is None
        assert self.dictionary.code_range(701, 900) is None

    def test_full_range(self):
        assert self.dictionary.code_range(0, 10_000) == (0, 3)

    def test_reversed_rejected(self):
        with pytest.raises(ReproError):
            self.dictionary.code_range(500, 100)


@given(
    values=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=60),
    low=st.integers(min_value=-1200, max_value=1200),
    span=st.integers(min_value=0, max_value=800),
)
@settings(max_examples=300)
def test_code_range_property(values, low, span):
    """code_range selects exactly the dictionary values in the range."""
    column = np.array(values)
    dictionary = ValueDictionary.from_column(column)
    high = low + span
    expected = [v for v in dictionary.values.tolist() if low <= v <= high]
    got = dictionary.code_range(low, high)
    if not expected:
        assert got is None
    else:
        lo, hi = got
        assert dictionary.values[lo : hi + 1].tolist() == expected
