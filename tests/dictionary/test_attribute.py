"""Tests for AttributeIndex over raw domains."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dictionary import AttributeIndex
from repro.errors import QueryError, ReproError


class TestDictionaryStrategy:
    @pytest.fixture(scope="class")
    def sparse_ints(self):
        rng = np.random.default_rng(4)
        domain = np.array([5, 100, 1000, 10_000, 99_999])
        return domain[rng.integers(0, 5, size=3000)]

    def test_exact_strategy_chosen(self, sparse_ints):
        index = AttributeIndex(sparse_ints)
        assert index.is_exact
        assert index.index.cardinality == 5

    def test_range_query_raw_values(self, sparse_ints):
        index = AttributeIndex(sparse_ints)
        result = index.range_query(100, 10_000)
        expected = (sparse_ints >= 100) & (sparse_ints <= 10_000)
        assert result.to_bools().tolist() == expected.tolist()

    def test_range_between_dictionary_values(self, sparse_ints):
        index = AttributeIndex(sparse_ints)
        result = index.range_query(6, 99)
        assert result.count() == 0

    def test_equality_query(self, sparse_ints):
        index = AttributeIndex(sparse_ints)
        assert index.equality_query(1000).count() == int(
            (sparse_ints == 1000).sum()
        )
        assert index.equality_query(777).count() == 0

    def test_membership_query(self, sparse_ints):
        index = AttributeIndex(sparse_ints)
        result = index.membership_query([5, 99_999, 12345])
        expected = np.isin(sparse_ints, [5, 99_999])
        assert result.count() == int(expected.sum())

    def test_string_column(self):
        values = np.array(["red", "green", "blue", "green", "red", "red"])
        index = AttributeIndex(values, scheme="E")
        assert index.is_exact
        assert index.equality_query("red").count() == 3
        # Lexicographic range: blue..green.
        assert index.range_query("blue", "green").count() == 3

    def test_empty_column_rejected(self):
        with pytest.raises(ReproError):
            AttributeIndex(np.array([]))

    def test_reversed_range_rejected(self):
        index = AttributeIndex(np.array([1, 2, 3]))
        with pytest.raises(QueryError):
            index.range_query(3, 1)


class TestBinnedStrategy:
    @pytest.fixture(scope="class")
    def floats(self):
        rng = np.random.default_rng(5)
        return rng.normal(loc=50.0, scale=20.0, size=5000)

    @pytest.fixture(scope="class", params=["equi-depth", "equi-width"])
    def binned_index(self, request, floats):
        return AttributeIndex(
            floats, max_cardinality=100, num_bins=32, binning=request.param
        )

    def test_binned_strategy_chosen(self, binned_index):
        assert not binned_index.is_exact
        assert binned_index.index.cardinality == binned_index.index.cardinality

    def test_range_queries_exact_despite_binning(self, binned_index, floats):
        for low, high in [(30.0, 70.0), (49.5, 50.5), (-10.0, 200.0), (85.0, 90.0)]:
            result = binned_index.range_query(low, high)
            expected = (floats >= low) & (floats <= high)
            assert result.to_bools().tolist() == expected.tolist(), (low, high)

    def test_equality_on_floats(self, binned_index, floats):
        target = float(floats[17])
        result = binned_index.equality_query(target)
        assert result.count() == int((floats == target).sum())
        assert result[17]

    def test_non_numeric_high_cardinality_rejected(self):
        values = np.array([f"user-{i}" for i in range(100)])
        with pytest.raises(ReproError):
            AttributeIndex(values, max_cardinality=10)

    def test_unknown_binning_rejected(self, floats):
        with pytest.raises(ReproError):
            AttributeIndex(floats, max_cardinality=10, binning="kmeans")

    def test_repr(self, binned_index):
        assert "binned" in repr(binned_index)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    max_cardinality=st.sampled_from([4, 1000]),
    low=st.floats(min_value=-3, max_value=3),
    span=st.floats(min_value=0, max_value=4),
)
@settings(max_examples=80, deadline=None)
def test_attribute_index_property(seed, max_cardinality, low, span):
    """Dictionary and binned strategies both answer raw ranges exactly."""
    rng = np.random.default_rng(seed)
    values = np.round(rng.normal(size=400), 1)
    index = AttributeIndex(
        values, max_cardinality=max_cardinality, num_bins=8
    )
    high = low + span
    result = index.range_query(low, high)
    expected = (values >= low) & (values <= high)
    assert result.to_bools().tolist() == expected.tolist()
