"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def column_file(tmp_path, rng):
    values = rng.integers(0, 20, size=2000)
    path = tmp_path / "col.npy"
    np.save(path, values)
    return path, values


class TestGenerate:
    def test_generates_npy(self, tmp_path, capsys):
        out = tmp_path / "data.npy"
        code = main(
            [
                "generate",
                str(out),
                "--num-records",
                "500",
                "--cardinality",
                "10",
                "--skew",
                "2",
            ]
        )
        assert code == 0
        values = np.load(out)
        assert values.size == 500
        assert values.max() < 10
        assert "wrote 500 values" in capsys.readouterr().out

    def test_deterministic_by_seed(self, tmp_path):
        a, b = tmp_path / "a.npy", tmp_path / "b.npy"
        main(["generate", str(a), "--num-records", "100", "--seed", "5"])
        main(["generate", str(b), "--num-records", "100", "--seed", "5"])
        assert np.array_equal(np.load(a), np.load(b))


class TestBuildInfoQuery:
    def test_full_cycle(self, tmp_path, column_file, capsys):
        path, values = column_file
        index_dir = tmp_path / "idx"

        assert main(
            [
                "build",
                str(path),
                str(index_dir),
                "--scheme",
                "I",
                "--codec",
                "bbc",
            ]
        ) == 0
        capsys.readouterr()

        assert main(["info", str(index_dir)]) == 0
        info = capsys.readouterr().out
        assert "I<20>/bbc" in info
        assert "records:      2000" in info

        assert main(
            ["query", str(index_dir), "--low", "3", "--high", "11"]
        ) == 0
        out = capsys.readouterr().out
        expected = int(((values >= 3) & (values <= 11)).sum())
        assert f"matching rows: {expected}" in out

    def test_membership_query_and_rows(self, tmp_path, column_file, capsys):
        path, values = column_file
        index_dir = tmp_path / "idx"
        main(["build", str(path), str(index_dir), "--scheme", "E"])
        capsys.readouterr()
        assert main(
            ["query", str(index_dir), "--values", "1,5,9", "--show-rows", "5"]
        ) == 0
        out = capsys.readouterr().out
        expected = int(np.isin(values, [1, 5, 9]).sum())
        assert f"matching rows: {expected}" in out
        assert "row ids:" in out

    def test_text_column_input(self, tmp_path, capsys):
        path = tmp_path / "col.txt"
        path.write_text("0\n1\n2\n2\n1\n")
        index_dir = tmp_path / "idx"
        assert main(["build", str(path), str(index_dir), "--scheme", "R"]) == 0
        capsys.readouterr()
        main(["query", str(index_dir), "--low", "1", "--high", "2"])
        assert "matching rows: 4" in capsys.readouterr().out

    def test_missing_column_file(self, tmp_path, capsys):
        code = main(["build", str(tmp_path / "nope.npy"), str(tmp_path / "i")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_reordered_build(self, tmp_path, column_file, capsys):
        path, values = column_file
        index_dir = tmp_path / "idx"
        assert main(
            [
                "build",
                str(path),
                str(index_dir),
                "--scheme",
                "E",
                "--codec",
                "wah",
                "--reorder",
                "lexicographic",
            ]
        ) == 0
        capsys.readouterr()

        assert main(["info", str(index_dir)]) == 0
        info = capsys.readouterr().out
        assert "reorder:" in info
        assert "lexicographic" in info

        # Answers stay in original row order despite the sorted layout.
        assert main(
            ["query", str(index_dir), "--low", "3", "--high", "11"]
        ) == 0
        out = capsys.readouterr().out
        expected = int(((values >= 3) & (values <= 11)).sum())
        assert f"matching rows: {expected}" in out


class TestAppend:
    def test_append_updates_index(self, tmp_path, column_file, capsys):
        path, values = column_file
        index_dir = tmp_path / "idx"
        main(["build", str(path), str(index_dir), "--scheme", "I"])

        batch = tmp_path / "batch.npy"
        np.save(batch, np.array([3, 3, 3]))
        assert main(["append", str(index_dir), str(batch)]) == 0
        capsys.readouterr()

        main(["query", str(index_dir), "--low", "3", "--high", "3"])
        out = capsys.readouterr().out
        expected = int((values == 3).sum()) + 3
        assert f"matching rows: {expected}" in out


class TestTheorems:
    def test_theorems_command(self, capsys):
        assert main(["theorems"]) == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out
        assert "PAPER-PROVED" in out
        assert "R optimal for EQ iff C <= 5" in out

    def test_verbose_shows_details(self, capsys):
        assert main(["theorems", "--verbose"]) == 0
        assert "C=4" in capsys.readouterr().out


class TestExperimentAndAdvise:
    def test_experiment_prints_table(self, capsys):
        assert main(["experiment", "figure6", "--num-records", "4000"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "scheme" in out

    def test_advise_prints_recommendation(self, tmp_path, capsys):
        path = tmp_path / "col.npy"
        np.save(path, np.random.default_rng(0).integers(0, 50, size=3000))
        assert main(["advise", str(path), "--budget-kb", "100000"]) == 0
        out = capsys.readouterr().out
        assert "recommended:" in out


class TestTrace:
    def build(self, tmp_path, column_file):
        path, _ = column_file
        index_dir = tmp_path / "idx"
        main(["build", str(path), str(index_dir), "--scheme", "I", "--codec", "wah"])
        return index_dir

    def test_trace_prints_json_export(self, tmp_path, column_file, capsys):
        import json

        index_dir = self.build(tmp_path, column_file)
        capsys.readouterr()
        assert main(
            ["query", str(index_dir), "--low", "2", "--high", "9", "--trace"]
        ) == 0
        out = capsys.readouterr().out
        # Command output first, then the export document.
        assert "matching rows:" in out
        export = json.loads(out[out.index("{"):])
        assert set(export) == {"metrics", "trace"}
        assert export["metrics"]["clock.pages_read"]["_"]["value"] > 0
        (span,) = [
            s for s in export["trace"]["spans"] if s["name"] == "query"
        ]
        assert span["tags"]["scheme"] == "I"
        assert span["metrics"]["clock.read_requests"] > 0

    def test_trace_out_writes_file(self, tmp_path, column_file, capsys):
        import json

        index_dir = self.build(tmp_path, column_file)
        trace_path = tmp_path / "trace.json"
        assert main(
            [
                "query",
                str(index_dir),
                "--low",
                "2",
                "--high",
                "9",
                "--trace-out",
                str(trace_path),
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "wrote trace to" in captured.err
        assert "{" not in captured.out  # export not printed
        export = json.loads(trace_path.read_text())
        assert export["metrics"]["query.executed"]

    def test_untraced_run_installs_nothing(self, tmp_path, column_file, capsys):
        from repro import obs

        index_dir = self.build(tmp_path, column_file)
        assert main(["query", str(index_dir), "--low", "2", "--high", "9"]) == 0
        assert obs.active() is None


class TestVerifyIndex:
    def build(self, tmp_path, column_file):
        path, _ = column_file
        index_dir = tmp_path / "idx"
        assert main(["build", str(path), str(index_dir)]) == 0
        return index_dir

    def test_clean_index_passes(self, tmp_path, column_file, capsys):
        index_dir = self.build(tmp_path, column_file)
        assert main(["verify-index", str(index_dir)]) == 0
        out = capsys.readouterr().out
        assert "format:  v2" in out
        assert "ok:" in out

    def test_corrupt_blob_fails_with_typed_error(
        self, tmp_path, column_file, capsys
    ):
        index_dir = self.build(tmp_path, column_file)
        blob = sorted(index_dir.glob("*.bm"))[0]
        data = bytearray(blob.read_bytes())
        data[len(data) // 2] ^= 0xFF
        blob.write_bytes(bytes(data))
        assert main(["verify-index", str(index_dir)]) == 1
        out = capsys.readouterr().out
        assert "ChecksumMismatchError" in out
        assert "CORRUPT" in out

    def test_missing_blob_fails(self, tmp_path, column_file, capsys):
        index_dir = self.build(tmp_path, column_file)
        sorted(index_dir.glob("*.bm"))[0].unlink()
        assert main(["verify-index", str(index_dir)]) == 1
        assert "MissingBlobError" in capsys.readouterr().out

    def test_orphans_reported_but_not_fatal(
        self, tmp_path, column_file, capsys
    ):
        index_dir = self.build(tmp_path, column_file)
        (index_dir / "stray.bm").write_bytes(b"junk")
        assert main(["verify-index", str(index_dir)]) == 0
        assert "orphan:  stray.bm" in capsys.readouterr().out

    def test_unreadable_manifest_is_a_cli_error(self, tmp_path, capsys):
        (tmp_path / "manifest.json").write_text("{broken")
        assert main(["verify-index", str(tmp_path)]) == 1
        assert "error:" in capsys.readouterr().err
