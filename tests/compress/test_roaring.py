"""Unit tests for the roaring container codec.

Pins the container-type selection rule (array below/bitmap above the
4096-cardinality threshold, run containers when ``4 * num_runs`` bytes
win), the chunked roundtrip behaviour on degenerate vectors, the size
accounting through :class:`CompressionStats`, and the stream
validation error paths.
"""

import numpy as np
import pytest

from repro.bitmap import BitVector
from repro.compress import get_codec, measure_codec
from repro.compress.roaring import (
    ARRAY,
    ARRAY_MAX_CARD,
    BITMAP,
    CHUNK_BITS,
    CHUNK_WORDS,
    RUN,
    containers_from_roaring,
    containers_from_vector,
    roaring_bytes,
)
from repro.errors import CodecError
from tests.conftest import random_bitvector


@pytest.fixture
def codec():
    return get_codec("roaring")


def kinds_of(payload: bytes) -> list[int]:
    return [c.kind for c in containers_from_roaring(payload)]


def encode_indices(codec, length: int, indices) -> bytes:
    return codec.encode(BitVector.from_indices(length, indices))


class TestContainerSelection:
    def test_sparse_chunk_is_array(self, codec):
        # Isolated bits, cardinality far below the threshold.
        payload = encode_indices(codec, CHUNK_BITS, range(0, 1000, 3))
        assert kinds_of(payload) == [ARRAY]

    def test_array_at_threshold_cardinality(self, codec):
        # Every other bit: 4096 single-bit runs, exactly ARRAY_MAX_CARD.
        payload = encode_indices(
            codec, CHUNK_BITS, range(0, 2 * ARRAY_MAX_CARD, 2)
        )
        (container,) = containers_from_roaring(payload)
        assert container.kind == ARRAY
        assert container.data.size == ARRAY_MAX_CARD

    def test_bitmap_just_above_threshold_cardinality(self, codec):
        payload = encode_indices(
            codec, CHUNK_BITS, range(0, 2 * (ARRAY_MAX_CARD + 1), 2)
        )
        (container,) = containers_from_roaring(payload)
        assert container.kind == BITMAP
        assert container.data.shape[0] == CHUNK_WORDS

    def test_dense_random_chunk_is_bitmap(self, codec, rng):
        vector = random_bitvector(rng, CHUNK_BITS, density=0.5)
        assert kinds_of(codec.encode(vector)) == [BITMAP]

    def test_full_chunk_is_run(self, codec):
        # One maximal run: 4 bytes beat both the array and the bitmap.
        assert kinds_of(codec.encode(BitVector.ones(CHUNK_BITS))) == [RUN]

    def test_few_long_runs_is_run(self, codec):
        indices = list(range(0, 5000)) + list(range(30000, 42000))
        payload = encode_indices(codec, CHUNK_BITS, indices)
        (container,) = containers_from_roaring(payload)
        assert container.kind == RUN
        starts, lengths = container.data
        assert starts.tolist() == [0, 30000]
        assert lengths.tolist() == [5000, 12000]

    def test_mixed_chunks_select_independently(self, codec):
        length = 3 * CHUNK_BITS
        vector = BitVector.zeros(length)
        vector[5] = True  # chunk 0: sparse -> array
        for i in range(CHUNK_BITS, 2 * CHUNK_BITS):  # chunk 1: full -> run
            vector[i] = True
        assert kinds_of(codec.encode(vector)) == [ARRAY, RUN]

    def test_empty_chunks_get_no_container(self, codec):
        payload = encode_indices(codec, 10 * CHUNK_BITS, [9 * CHUNK_BITS])
        (container,) = containers_from_roaring(payload)
        assert container.key == 9

    def test_tail_chunk_bitmap_is_truncated(self, codec, rng):
        # A dense final chunk only stores the words the length needs,
        # not the full 8 KB chunk.
        length = 10_000
        vector = random_bitvector(rng, length, density=0.5)
        (container,) = containers_from_roaring(codec.encode(vector))
        assert container.kind == BITMAP
        assert container.data.shape[0] == (length + 63) // 64


class TestRoundtrip:
    def test_all_zeros(self, codec):
        vector = BitVector.zeros(500_000)
        payload = codec.encode(vector)
        assert payload == roaring_bytes([])  # just the empty directory
        assert len(payload) == 4
        assert codec.decode(payload, 500_000) == vector

    def test_all_ones(self, codec):
        for length in (1, 64, CHUNK_BITS - 1, CHUNK_BITS, CHUNK_BITS + 1):
            vector = BitVector.ones(length)
            assert codec.decode(codec.encode(vector), length) == vector

    def test_alternating(self, codec):
        length = 2 * CHUNK_BITS + 100
        vector = BitVector.from_bools([True, False] * (length // 2))
        assert codec.decode(codec.encode(vector), len(vector)) == vector

    def test_every_container_kind_roundtrips(self, codec, rng):
        length = 3 * CHUNK_BITS
        vector = BitVector.zeros(length)
        vector[10] = True  # array
        for i in range(CHUNK_BITS, CHUNK_BITS + 40_000):  # run
            vector[i] = True
        dense = np.flatnonzero(rng.random(CHUNK_BITS) < 0.5)
        for i in dense:
            vector[2 * CHUNK_BITS + int(i)] = True  # bitmap
        payload = codec.encode(vector)
        assert sorted(kinds_of(payload)) == [ARRAY, BITMAP, RUN]
        assert codec.decode(payload, length) == vector

    def test_canonical_reencode(self, codec, rng):
        vector = random_bitvector(rng, CHUNK_BITS + 123, density=0.1)
        payload = codec.encode(vector)
        assert codec.encode(codec.decode(payload, len(vector))) == payload


class TestStatsAccounting:
    def test_encoded_bytes_match_payload_sizes(self, codec, rng):
        vectors = [
            random_bitvector(rng, 20_000, density)
            for density in (0.001, 0.1, 0.5)
        ]
        stats = measure_codec(codec, vectors)
        assert stats.codec == "roaring"
        assert stats.num_bitmaps == 3
        assert stats.raw_bytes == sum(v.num_words * 8 for v in vectors)
        assert stats.encoded_bytes == sum(
            len(codec.encode(v)) for v in vectors
        )

    def test_directory_overhead_accounted(self, codec):
        # One single-bit array container: 4 (header) + 2 (key) + 1 (kind)
        # + 4 (count) + 2 (offset payload) bytes.
        vector = BitVector.from_indices(CHUNK_BITS, [77])
        assert codec.encoded_size(vector) == 13


class TestValidation:
    def directory(self, keys, kinds, counts) -> bytes:
        n = len(keys)
        return b"".join(
            [
                np.asarray([n], dtype="<u4").tobytes(),
                np.asarray(keys, dtype="<u2").tobytes(),
                np.asarray(kinds, dtype=np.uint8).tobytes(),
                np.asarray(counts, dtype="<u4").tobytes(),
            ]
        )

    def test_too_short(self, codec):
        with pytest.raises(CodecError, match="too short"):
            codec.decode(b"\x01\x00", 64)

    def test_truncated_directory(self, codec):
        with pytest.raises(CodecError, match="directory"):
            codec.decode(np.asarray([3], dtype="<u4").tobytes(), 64)

    def test_keys_must_ascend(self, codec):
        payload = self.directory([1, 0], [ARRAY, ARRAY], [1, 1]) + b"\x00" * 4
        with pytest.raises(CodecError, match="ascending"):
            codec.decode(payload, 2 * CHUNK_BITS)

    def test_empty_container_rejected(self, codec):
        payload = self.directory([0], [ARRAY], [0])
        with pytest.raises(CodecError, match="empty"):
            codec.decode(payload, CHUNK_BITS)

    def test_unknown_kind_rejected(self, codec):
        payload = self.directory([0], [7], [1]) + b"\x00\x00"
        with pytest.raises(CodecError, match="kind"):
            codec.decode(payload, CHUNK_BITS)

    def test_oversized_bitmap_container_rejected(self, codec):
        payload = self.directory([0], [BITMAP], [CHUNK_WORDS + 1])
        payload += b"\x00" * 8 * (CHUNK_WORDS + 1)
        with pytest.raises(CodecError, match="exceeds a chunk"):
            codec.decode(payload, CHUNK_BITS)

    def test_truncated_payload_rejected(self, codec):
        good = encode_indices(codec, CHUNK_BITS, [1, 2, 3])
        with pytest.raises(CodecError, match="truncated"):
            codec.decode(good[:-2], CHUNK_BITS)

    def test_trailing_bytes_rejected(self, codec):
        good = encode_indices(codec, CHUNK_BITS, [1, 2, 3])
        with pytest.raises(CodecError, match="trailing"):
            codec.decode(good + b"\x00\x00", CHUNK_BITS)

    def test_unsorted_array_rejected(self, codec):
        payload = self.directory([0], [ARRAY], [2])
        payload += np.asarray([5, 4], dtype="<u2").tobytes()
        with pytest.raises(CodecError, match="sorted"):
            codec.decode(payload, CHUNK_BITS)

    def test_overlapping_runs_rejected(self, codec):
        payload = self.directory([0], [RUN], [2])
        payload += np.asarray([0, 5], dtype="<u2").tobytes()  # starts
        payload += np.asarray([9, 9], dtype="<u2").tobytes()  # lengths - 1
        with pytest.raises(CodecError, match="overlap"):
            codec.decode(payload, CHUNK_BITS)

    def test_run_overrunning_chunk_rejected(self, codec):
        payload = self.directory([0], [RUN], [1])
        payload += np.asarray([CHUNK_BITS - 1], dtype="<u2").tobytes()
        payload += np.asarray([1], dtype="<u2").tobytes()  # length 2
        with pytest.raises(CodecError, match="overruns its chunk"):
            codec.decode(payload, CHUNK_BITS)

    def test_container_beyond_declared_length_rejected(self, codec):
        payload = encode_indices(codec, 2 * CHUNK_BITS, [CHUNK_BITS + 5])
        with pytest.raises(CodecError, match="overruns the declared length"):
            codec.decode(payload, CHUNK_BITS)

    def test_position_beyond_declared_length_rejected(self, codec):
        payload = encode_indices(codec, CHUNK_BITS, [500])
        with pytest.raises(CodecError, match="overruns the declared length"):
            codec.decode(payload, 100)

    def test_wrong_bitmap_word_count_rejected(self, codec, rng):
        # A full-chunk bitmap container presented for a shorter tail.
        payload = codec.encode(random_bitvector(rng, CHUNK_BITS, 0.5))
        with pytest.raises(CodecError, match="words"):
            codec.decode(payload, CHUNK_BITS - 64)


def test_containers_from_vector_empty():
    assert containers_from_vector(BitVector.zeros(0)) == []
