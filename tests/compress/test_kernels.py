"""Unit tests for the shared run-array kernels and codec fallbacks."""

import numpy as np
import pytest

from repro.bitmap import BitVector
from repro.compress import bbc_logical, bbc_not, get_codec, kernels
from repro.compress import ewah as ewah_module
from repro.compress import wah as wah_module
from repro.compress.kernels import DIRTY, FILL_ONE, FILL_ZERO, Runs
from repro.errors import CodecError


def make_runs(spec, dtype=np.uint8):
    """Build a Runs from ``[(type, length, [values...]), ...]``."""
    types, lengths, values = [], [], []
    for t, length, *vals in spec:
        types.append(t)
        lengths.append(length)
        if vals:
            values.extend(vals[0])
    return Runs(
        np.array(types, dtype=np.int8),
        np.array(lengths, dtype=np.int64),
        np.array(values, dtype=dtype),
    )


class TestExpandRanges:
    def test_basic(self):
        out = kernels.expand_ranges([0, 10], [3, 2])
        assert out.tolist() == [0, 1, 2, 10, 11]

    def test_empty(self):
        assert kernels.expand_ranges([], []).size == 0

    def test_zero_length_ranges_skipped(self):
        out = kernels.expand_ranges([5, 7, 9], [2, 0, 1])
        assert out.tolist() == [5, 6, 9]


class TestRunsRoundtrip:
    def test_elements_roundtrip(self):
        rng = np.random.default_rng(0)
        elements = rng.choice(
            np.array([0, 0, 0, 0xFF, 0xFF, 0x5A], dtype=np.uint8), size=500
        )
        runs = kernels.runs_from_elements(elements, 0xFF)
        back = kernels.elements_from_runs(runs, 0xFF, np.uint8)
        assert np.array_equal(back, elements)

    def test_canonical_no_adjacent_equal_types(self):
        elements = np.array([0, 0, 0xFF, 0xFF, 1, 2, 0], dtype=np.uint8)
        runs = kernels.runs_from_elements(elements, 0xFF)
        assert runs.types.tolist() == [FILL_ZERO, FILL_ONE, DIRTY, FILL_ZERO]
        assert runs.lengths.tolist() == [2, 2, 2, 1]
        assert runs.values.tolist() == [1, 2]

    def test_empty_elements(self):
        runs = kernels.runs_from_elements(np.empty(0, dtype=np.uint8), 0xFF)
        assert runs.total == 0
        assert runs.num_runs == 0


class TestNormalize:
    def test_drops_zero_length_runs(self):
        raw = make_runs([(FILL_ZERO, 0), (DIRTY, 2, [1, 2]), (FILL_ONE, 0)])
        runs = kernels.normalize(raw.types, raw.lengths, raw.values, 0xFF)
        assert runs.types.tolist() == [DIRTY]
        assert runs.lengths.tolist() == [2]

    def test_redetects_fills_inside_dirty(self):
        raw = make_runs([(DIRTY, 5, [0, 0, 7, 0xFF, 0xFF])])
        runs = kernels.normalize(raw.types, raw.lengths, raw.values, 0xFF)
        assert runs.types.tolist() == [FILL_ZERO, DIRTY, FILL_ONE]
        assert runs.lengths.tolist() == [2, 1, 2]
        assert runs.values.tolist() == [7]

    def test_merges_adjacent_equal_types(self):
        raw = make_runs([(FILL_ZERO, 3), (FILL_ZERO, 4), (DIRTY, 1, [9])])
        runs = kernels.normalize(raw.types, raw.lengths, raw.values, 0xFF)
        assert runs.types.tolist() == [FILL_ZERO, DIRTY]
        assert runs.lengths.tolist() == [7, 1]


class TestCombine:
    def test_unknown_op_rejected_before_decoding(self):
        a = kernels.empty_runs(np.uint8)
        with pytest.raises(CodecError, match="unknown compressed operation"):
            kernels.combine("nand", a, a, 0xFF, np.uint8)

    def test_length_mismatch_rejected(self):
        a = make_runs([(FILL_ZERO, 3)])
        b = make_runs([(FILL_ZERO, 4)])
        with pytest.raises(CodecError, match="different element counts"):
            kernels.combine("and", a, b, 0xFF, np.uint8)

    def test_combine_matches_elementwise(self):
        rng = np.random.default_rng(1)
        pool = np.array([0, 0, 0xFF, 0xFF, 0x0F, 0xA5], dtype=np.uint8)
        ea = rng.choice(pool, size=300)
        eb = rng.choice(pool, size=300)
        runs_a = kernels.runs_from_elements(ea, 0xFF)
        runs_b = kernels.runs_from_elements(eb, 0xFF)
        for op, fn in (
            ("and", np.bitwise_and),
            ("or", np.bitwise_or),
            ("xor", np.bitwise_xor),
        ):
            out = kernels.combine(op, runs_a, runs_b, 0xFF, np.uint8)
            assert np.array_equal(
                kernels.elements_from_runs(out, 0xFF, np.uint8), fn(ea, eb)
            )


class TestComplement:
    def test_swaps_fills_and_inverts_dirty(self):
        elements = np.array([0, 0xFF, 0x0F], dtype=np.uint8)
        runs = kernels.runs_from_elements(elements, 0xFF)
        out = kernels.complement(runs, 0xFF, np.uint8)
        assert kernels.elements_from_runs(out, 0xFF, np.uint8).tolist() == [
            0xFF,
            0,
            0xF0,
        ]

    def test_tail_mask_clears_padding(self):
        elements = np.array([0, 0], dtype=np.uint8)
        runs = kernels.runs_from_elements(elements, 0xFF)
        out = kernels.complement(runs, 0xFF, np.uint8, tail_mask=0x07)
        assert kernels.elements_from_runs(out, 0xFF, np.uint8).tolist() == [
            0xFF,
            0x07,
        ]


class TestPopcount:
    def test_counts_fills_and_dirty(self):
        runs = make_runs([(FILL_ONE, 3), (DIRTY, 2, [0x0F, 0x01]), (FILL_ZERO, 4)])
        assert kernels.runs_popcount(runs, 8) == 3 * 8 + 4 + 1

    def test_empty(self):
        assert kernels.runs_popcount(kernels.empty_runs(np.uint8), 8) == 0


class TestChunkedFallbacks:
    """Counter-overflow paths, exercised by shrinking the counter caps."""

    def test_wah_fill_chunking(self, monkeypatch):
        monkeypatch.setattr(wah_module, "_MAX_FILL", 3)
        codec = get_codec("wah")
        vector = BitVector.from_indices(31 * 20 + 5, [31 * 20 + 1])
        payload = codec.encode(vector)
        # The 20-group zero fill must be split into ceil(20/3) fill words.
        assert len(payload) > 3 * 4
        assert codec.decode(payload, len(vector)) == vector

    def test_ewah_clean_and_dirty_chunking(self, monkeypatch):
        monkeypatch.setattr(ewah_module, "_MAX_CLEAN", 7)
        monkeypatch.setattr(ewah_module, "_MAX_DIRTY", 3)
        codec = get_codec("ewah")
        # 20 clean words, then 6 dirty words, then 10 one-fill words.
        bits = np.zeros(64 * 36, dtype=bool)
        bits[64 * 20 + 1 :: 64] = True  # one bit per word -> dirty words
        bits[64 * 26 : 64 * 36] = True
        vector = BitVector.from_bools(bits)
        payload = codec.encode(vector)
        assert codec.decode(payload, len(vector)) == vector

    def test_wah_long_fill_roundtrip_via_real_cap(self, monkeypatch):
        # A fill exactly at the cap stays on the vectorized path.
        monkeypatch.setattr(wah_module, "_MAX_FILL", 4)
        codec = get_codec("wah")
        vector = BitVector.zeros(31 * 4)
        assert codec.decode(codec.encode(vector), len(vector)) == vector


class TestBbcOpsErrors:
    def test_overlong_stream_rejected(self):
        codec = get_codec("bbc")
        payload = codec.encode(BitVector.ones(1000))
        with pytest.raises(CodecError, match="declared"):
            bbc_not(payload, 8)

    def test_unknown_op_rejected(self):
        with pytest.raises(CodecError, match="unknown compressed operation"):
            bbc_logical("nand", b"", b"", 0)

    def test_trimmed_payloads_repad(self):
        # Encoder trims trailing zero bytes; ops must re-pad before
        # combining payloads that cover different byte counts.
        codec = get_codec("bbc")
        a = BitVector.from_indices(1000, [3])      # trims after byte 0
        b = BitVector.from_indices(1000, [900])    # covers ~113 bytes
        out = bbc_logical("or", codec.encode(a), codec.encode(b), 1000)
        assert codec.decode(out, 1000) == a | b
