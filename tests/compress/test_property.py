"""Property-based tests: codec roundtrips on arbitrary bit patterns."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector
from repro.compress import get_codec

bit_lists = st.lists(st.booleans(), min_size=0, max_size=600)

# Run-structured vectors: alternating runs with random lengths, the
# adversarial shape for run-length codecs.
run_lists = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=1, max_value=200)),
    min_size=0,
    max_size=20,
)


def vector_from_runs(runs) -> BitVector:
    bits = []
    for value, length in runs:
        bits.extend([value] * length)
    return BitVector.from_bools(np.array(bits, dtype=bool))


@given(bits=bit_lists)
@settings(max_examples=150)
def test_bbc_roundtrip(bits):
    vector = BitVector.from_bools(np.array(bits, dtype=bool))
    codec = get_codec("bbc")
    assert codec.decode(codec.encode(vector), len(vector)) == vector


@given(bits=bit_lists)
@settings(max_examples=150)
def test_wah_roundtrip(bits):
    vector = BitVector.from_bools(np.array(bits, dtype=bool))
    codec = get_codec("wah")
    assert codec.decode(codec.encode(vector), len(vector)) == vector


@given(bits=bit_lists)
@settings(max_examples=150)
def test_ewah_roundtrip(bits):
    vector = BitVector.from_bools(np.array(bits, dtype=bool))
    codec = get_codec("ewah")
    assert codec.decode(codec.encode(vector), len(vector)) == vector


@given(runs=run_lists)
@settings(max_examples=150)
def test_run_structured_roundtrips_all_codecs(runs):
    vector = vector_from_runs(runs)
    for name in ("raw", "bbc", "wah", "ewah"):
        codec = get_codec(name)
        assert codec.decode(codec.encode(vector), len(vector)) == vector


@given(runs=run_lists)
@settings(max_examples=100)
def test_popcount_preserved(runs):
    vector = vector_from_runs(runs)
    for name in ("bbc", "wah", "ewah"):
        codec = get_codec(name)
        assert codec.decode(codec.encode(vector), len(vector)).count() == (
            vector.count()
        )
