"""Differential property tests: compressed-domain ops vs the oracle.

Every compressed-domain operation (AND/OR/XOR/NOT and popcount for the
raw, BBC, WAH, EWAH and roaring codecs) must agree bit-for-bit with
the obvious oracle — decompress, operate on the plain
:class:`BitVector`, and recompress — and all codecs must agree with
*each other* on the same inputs.  Lengths deliberately hit the codecs'
alignment boundaries: n = 0, 1, 31·k ± 1 (WAH packs 31-bit groups),
32/33, 63/64/65 (EWAH and raw use 64-bit words; BBC bytes), and
2^16 ± 1 (roaring splits the domain into 2^16-bit containers).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector
from repro.compress import (
    bbc_count,
    bbc_logical,
    bbc_not,
    ewah_count,
    ewah_logical,
    ewah_not,
    get_codec,
    raw_count,
    raw_logical,
    raw_not,
    roaring_count,
    roaring_logical,
    roaring_not,
    wah_count,
    wah_logical,
    wah_not,
)

CODEC_NAMES = ("raw", "bbc", "wah", "ewah", "roaring")

#: op(name, payload_a, payload_b, length) -> payload, per codec.
LOGICAL = {
    "raw": raw_logical,
    "bbc": bbc_logical,
    "wah": lambda op, a, b, length: wah_logical(op, a, b),
    "ewah": lambda op, a, b, length: ewah_logical(op, a, b),
    "roaring": roaring_logical,
}
NOT = {
    "raw": raw_not,
    "bbc": bbc_not,
    "wah": wah_not,
    "ewah": ewah_not,
    "roaring": roaring_not,
}
COUNT = {
    "raw": raw_count,
    "bbc": bbc_count,
    "wah": wah_count,
    "ewah": ewah_count,
    "roaring": roaring_count,
}

# Alignment-boundary lengths for 31-bit groups, 32/64-bit words, bytes
# and 2^16-bit roaring containers, mixed with arbitrary lengths.
BOUNDARY_LENGTHS = sorted(
    {0, 1, 7, 8, 9, 32, 33, 63, 64, 65, 127, 128, 129}
    | {31 * k + d for k in (1, 2, 3, 8) for d in (-1, 0, 1)}
    | {2**16 - 1, 2**16, 2**16 + 1}
)
lengths = st.one_of(
    st.sampled_from(BOUNDARY_LENGTHS),
    st.integers(min_value=0, max_value=1500),
)
densities = st.sampled_from([0.0, 0.02, 0.1, 0.5, 0.9, 0.98, 1.0])


def random_pair(length: int, density_a: float, density_b: float, seed: int):
    rng = np.random.default_rng(seed)
    a = BitVector.from_bools(rng.random(length) < density_a)
    b = BitVector.from_bools(rng.random(length) < density_b)
    return a, b


@given(
    length=lengths,
    density=densities,
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=150, deadline=None)
def test_roundtrip_all_codecs(length, density, seed):
    vector, _ = random_pair(length, density, density, seed)
    for name in CODEC_NAMES:
        codec = get_codec(name)
        assert codec.decode(codec.encode(vector), length) == vector


@pytest.mark.parametrize("name", CODEC_NAMES)
@pytest.mark.parametrize("op", ["and", "or", "xor"])
@given(
    length=lengths,
    density_a=densities,
    density_b=densities,
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=60, deadline=None)
def test_logical_matches_oracle(name, op, length, density_a, density_b, seed):
    vec_a, vec_b = random_pair(length, density_a, density_b, seed)
    codec = get_codec(name)
    result = LOGICAL[name](
        op, codec.encode(vec_a), codec.encode(vec_b), length
    )
    if op == "and":
        oracle = vec_a & vec_b
    elif op == "or":
        oracle = vec_a | vec_b
    else:
        oracle = vec_a ^ vec_b
    assert codec.decode(result, length) == oracle
    # Compressed-domain output is canonical: identical to recompression.
    assert result == codec.encode(oracle)


@pytest.mark.parametrize("name", CODEC_NAMES)
@given(
    length=lengths,
    density=densities,
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=60, deadline=None)
def test_not_matches_oracle(name, length, density, seed):
    vector, _ = random_pair(length, density, density, seed)
    codec = get_codec(name)
    result = NOT[name](codec.encode(vector), length)
    oracle = ~vector
    assert codec.decode(result, length) == oracle
    assert result == codec.encode(oracle)


@pytest.mark.parametrize("name", CODEC_NAMES)
@given(
    length=lengths,
    density=densities,
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=60, deadline=None)
def test_count_matches_oracle(name, length, density, seed):
    vector, _ = random_pair(length, density, density, seed)
    codec = get_codec(name)
    assert COUNT[name](codec.encode(vector)) == vector.count()


@pytest.mark.parametrize("op", ["and", "or", "xor"])
@given(
    length=lengths,
    density_a=densities,
    density_b=densities,
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=60, deadline=None)
def test_all_codecs_agree(op, length, density_a, density_b, seed):
    """Every codec's compressed-domain pipeline yields the same bits.

    Each codec encodes the same pair, operates in its own compressed
    domain, and decodes; all five results — and the counts of the
    results — must be identical.  This pits five independent
    implementations against each other rather than against one oracle.
    """
    vec_a, vec_b = random_pair(length, density_a, density_b, seed)
    decoded = {}
    counts = {}
    for name in CODEC_NAMES:
        codec = get_codec(name)
        result = LOGICAL[name](
            op, codec.encode(vec_a), codec.encode(vec_b), length
        )
        decoded[name] = codec.decode(result, length)
        counts[name] = COUNT[name](result)
    reference = decoded[CODEC_NAMES[0]]
    for name in CODEC_NAMES[1:]:
        assert decoded[name] == reference, name
    assert len(set(counts.values())) == 1, counts


@given(
    length=st.sampled_from(
        [2**16 - 1, 2**16, 2**16 + 1, 2 * 2**16, 3 * 2**16 + 17]
    ),
    density=densities,
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=30, deadline=None)
def test_container_boundary_roundtrip_all_codecs(length, density, seed):
    """Lengths at/around the 2^16 container boundary roundtrip everywhere."""
    vector, _ = random_pair(length, density, density, seed)
    for name in CODEC_NAMES:
        codec = get_codec(name)
        assert codec.decode(codec.encode(vector), length) == vector
