"""A codec registered at runtime flows through every dispatch layer.

The adaptive PR replaced the last codec-name conditionals with registry
lookups: :func:`register_codec` + :func:`register_compressed_ops` +
:func:`register_stream` must be *all* a new codec needs for stats
tables, :class:`CompressedBitmap`, the compressed query engine, the
multiway kernels and the fused block streams to pick it up.  A fake
codec (trivial raw clone under a new name) proves it end to end.
"""

import numpy as np
import pytest

from repro.bitmap import BitVector
from repro.compress import (
    COMPRESSED_DOMAIN_CODECS,
    CompressedBitmap,
    Codec,
    available_codecs,
    get_codec,
    measure_all_codecs,
    open_stream,
    raw_count,
    raw_logical,
    raw_not,
    register_codec,
    register_compressed_ops,
    register_stream,
)
from repro.compress.base import _REGISTRY
from repro.compress.compressed_ops import COUNT_OPS, LOGICAL_OPS, NOT_OPS
from repro.compress.multiway import multiway_threshold
from repro.compress.streams import _STREAMS, RawStream
from repro.errors import CodecError


class FakeCodec(Codec):
    """Raw words under a different registry name."""

    name = "fake64"

    def _encode(self, vector):
        return vector.to_bytes()

    def _decode(self, payload, length):
        return BitVector.from_bytes(length, payload)


@pytest.fixture
def fake_codec():
    codec = register_codec(FakeCodec())
    register_compressed_ops("fake64", raw_logical, raw_not, raw_count)
    register_stream("fake64", RawStream)
    try:
        yield codec
    finally:
        del _REGISTRY["fake64"]
        del LOGICAL_OPS["fake64"]
        del NOT_OPS["fake64"]
        del COUNT_OPS["fake64"]
        COMPRESSED_DOMAIN_CODECS.discard("fake64")
        del _STREAMS["fake64"]


def test_measure_all_codecs_includes_registered_codec(fake_codec, rng):
    vectors = [
        BitVector.from_bools(rng.random(500) < d) for d in (0.01, 0.5)
    ]
    stats = measure_all_codecs(vectors)
    assert "fake64" in stats
    assert list(stats) == available_codecs()
    assert stats["fake64"].encoded_bytes == stats["raw"].encoded_bytes


def test_compressed_bitmap_dispatches_registered_codec(fake_codec, rng):
    vec_a = BitVector.from_bools(rng.random(300) < 0.2)
    vec_b = BitVector.from_bools(rng.random(300) < 0.6)
    a = CompressedBitmap.from_vector(vec_a, "fake64")
    b = CompressedBitmap.from_vector(vec_b, "fake64")
    assert (a & b).decode() == (vec_a & vec_b)
    assert (~a).decode() == ~vec_a
    assert a.count() == vec_a.count()


def test_open_stream_and_multiway_dispatch_registered_codec(fake_codec, rng):
    length = 5000
    vectors = [
        BitVector.from_bools(rng.random(length) < d) for d in (0.1, 0.5, 0.9)
    ]
    payloads = [fake_codec.encode(v) for v in vectors]
    stream = open_stream("fake64", payloads[0], length)
    assert BitVector(length, stream.block(0, stream.num_words).copy()) == vectors[0]
    got = multiway_threshold(2, "fake64", payloads, length)
    raw = get_codec("raw")
    want = multiway_threshold(
        2, "raw", [raw.encode(v) for v in vectors], length
    )
    assert got == want


def test_compressed_engine_accepts_registered_codec(fake_codec, rng):
    from repro.index import BitmapIndex, IndexSpec
    from repro.index.compressed_engine import CompressedQueryEngine
    from repro.queries import IntervalQuery

    values = rng.integers(0, 12, size=400)
    index = BitmapIndex.build(
        values, IndexSpec(cardinality=12, scheme="E", codec="fake64")
    )
    engine = CompressedQueryEngine(index)
    query = IntervalQuery(2, 9, 12)
    want = np.flatnonzero((values >= 2) & (values <= 9))
    got = engine.execute(query).bitmap.to_indices()
    assert np.array_equal(got, want)


def test_unregistered_name_still_rejected():
    with pytest.raises(CodecError):
        get_codec("fake64")
    with pytest.raises(CodecError):
        open_stream("fake64", b"", 0)
    assert "fake64" not in COMPRESSED_DOMAIN_CODECS
