"""Unit tests for the adaptive (``auto``) meta-codec."""

import numpy as np
import pytest

from repro import obs
from repro.bitmap import BitVector
from repro.compress import get_codec
from repro.compress.adaptive import (
    CODEC_IDS,
    ID_CODECS,
    _combine_blockwise,
    candidate_sizes,
    measure,
    payload_codec_name,
    rle_floor,
    select_codec,
    split_payload,
)
from repro.compress.position_list import (
    position_list_count,
    position_list_logical,
)
from repro.compress.range_list import range_list_count, range_list_logical
from repro.errors import CodecError
from repro.workload.markov import markov_bitmap


class TestMeasure:
    def test_empty_vector(self):
        stats = measure(BitVector.zeros(1000))
        assert stats.count == 0 and stats.runs == 0
        assert stats.dirty_words == 0 and stats.dirty_bytes == 0
        assert stats.roaring_floor == 0

    def test_counts_and_runs(self):
        vector = BitVector.from_indices(200, [0, 1, 2, 10, 63, 64, 199])
        stats = measure(vector)
        assert stats.count == 7
        assert stats.runs == 4  # [0,3), [10,11), [63,65), [199,200)
        assert stats.length == 200

    def test_run_spanning_word_boundary_is_one_run(self):
        vector = BitVector.from_indices(130, list(range(60, 70)))
        assert measure(vector).runs == 1

    def test_dirty_units_exclude_full_and_empty(self):
        # Word 0 all ones, word 1 empty, word 2 mixed.
        vector = BitVector.from_indices(192, list(range(64)) + [130])
        stats = measure(vector)
        assert stats.dirty_words == 1
        # 8 full bytes + 1 dirty byte (bit 130 in byte 16).
        assert stats.dirty_bytes == 1

    def test_partial_tail_word_full_is_not_dirty(self):
        # 70 bits all set: word 1 holds 6 logical bits, all set — its
        # capacity is 6, so it is "full", not dirty.
        stats = measure(BitVector.ones(70))
        assert stats.dirty_words == 0

    def test_density_and_clustering(self):
        vector = BitVector.from_indices(100, [1, 2, 3, 4, 50, 51])
        stats = measure(vector)
        assert stats.density == pytest.approx(0.06)
        assert stats.clustering == pytest.approx(3.0)

    def test_roaring_floor_is_a_true_lower_bound(self):
        rng = np.random.default_rng(5)
        for density in (0.0001, 0.01, 0.3, 0.9):
            vector = BitVector.from_bools(rng.random(3 * 2**16 + 100) < density)
            floor = measure(vector).roaring_floor
            actual = get_codec("roaring").encoded_size(vector)
            assert floor <= actual

    def test_rle_floor_bounds_every_rle_codec(self):
        rng = np.random.default_rng(6)
        for density, clustering in ((0.001, 1.0), (0.01, 16.0), (0.4, 8.0)):
            vector = markov_bitmap(2**17, density, clustering, seed=11)
            floor = rle_floor(measure(vector))
            for name in ("bbc", "wah", "ewah", "roaring"):
                assert floor <= get_codec(name).encoded_size(vector), name


class TestSelection:
    def test_arithmetic_sizes_are_exact(self):
        vector = BitVector.from_indices(1000, [3, 4, 5, 500])
        sizes = candidate_sizes(measure(vector))
        assert sizes["position_list"] == 4 * 4
        assert sizes["range_list"] == 8 * 2
        assert sizes["raw"] == 8 * 16

    def test_auto_always_picks_the_global_minimum(self):
        rng = np.random.default_rng(1)
        auto = get_codec("auto")
        concrete = [name for name in CODEC_IDS]
        for trial in range(25):
            n = int(rng.integers(1, 200000))
            density = float(rng.random()) ** 3
            vector = BitVector.from_bools(rng.random(n) < density)
            best = min(get_codec(c).encoded_size(vector) for c in concrete)
            assert len(auto.encode(vector)) == best + 1

    def test_decision_table_corners(self):
        n = 2**20
        # Ultra-sparse scattered: flat positions beat roaring's
        # 7-bytes-per-chunk directory.
        scattered = BitVector.from_indices(n, list(range(0, n, 2**16)))
        assert select_codec(scattered) == "position_list"
        # A handful of long runs: the run list wins.
        runs = BitVector.from_indices(
            n, list(range(1000, 3000)) + list(range(500000, 502000))
        )
        assert select_codec(runs) == "range_list"
        # Dense unclustered: nothing compresses, raw wins.
        rng = np.random.default_rng(2)
        dense = BitVector.from_bools(rng.random(n) < 0.5)
        assert select_codec(dense) == "raw"

    def test_empty_and_full(self):
        assert select_codec(BitVector.zeros(10000)) == "position_list"
        # All-ones is a single fill atom for the byte-RLE codec —
        # smaller than the 8-byte run pair.
        full = BitVector.ones(10000)
        chosen = select_codec(full)
        sizes = {
            name: get_codec(name).encoded_size(full) for name in CODEC_IDS
        }
        assert sizes[chosen] == min(sizes.values())

    def test_fast_path_matches_dry_encode_choice(self):
        # Whether or not the fast path triggers, the chosen codec's
        # size must equal the brute-force minimum (tie-broken sizes may
        # differ in codec name but never in size).
        rng = np.random.default_rng(3)
        for density, clustering in ((0.00001, 1.0), (0.001, 64.0), (0.2, 4.0)):
            vector = markov_bitmap(2**18, density, clustering, seed=7)
            chosen = select_codec(vector)
            sizes = {
                name: get_codec(name).encoded_size(vector)
                for name in CODEC_IDS
            }
            assert sizes[chosen] == min(sizes.values())


class TestPayloadFormat:
    def test_tag_roundtrip(self):
        vector = BitVector.from_indices(100, [1, 5])
        payload = get_codec("auto").encode(vector)
        name, body = split_payload(payload)
        assert name == payload_codec_name(payload)
        assert payload[0] == CODEC_IDS[name]
        assert get_codec(name).decode(body, 100) == vector

    def test_codec_ids_are_stable(self):
        # On-disk format: these ids are persisted in blob tag bytes and
        # cross-checked against the v2 manifest.  Never renumber.
        assert CODEC_IDS == {
            "raw": 0,
            "bbc": 1,
            "wah": 2,
            "ewah": 3,
            "roaring": 4,
            "position_list": 5,
            "range_list": 6,
        }
        assert ID_CODECS == {v: k for k, v in CODEC_IDS.items()}

    def test_empty_payload_rejected(self):
        with pytest.raises(CodecError, match="tag byte"):
            split_payload(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError, match="unknown auto codec tag 250"):
            split_payload(bytes([250]) + b"junk")

    def test_decode_rejects_corrupt_inner(self):
        vector = BitVector.from_indices(100, [1, 5])
        payload = get_codec("auto").encode(vector)
        with pytest.raises(CodecError):
            get_codec("auto").decode(payload[:1] + b"\x01", 100)

    def test_mapped_payload_kinds(self):
        # Persistence hands codecs memoryviews and uint8 arrays.
        vector = BitVector.from_indices(100, [1, 5, 64])
        auto = get_codec("auto")
        payload = auto.encode(vector)
        assert auto.decode(memoryview(payload), 100) == vector
        assert auto.decode(np.frombuffer(payload, dtype=np.uint8), 100) == vector


class TestObsCounter:
    def test_selection_counter_tagged_by_inner_codec(self):
        auto = get_codec("auto")
        sparse = BitVector.from_indices(2**18, [17])
        rng = np.random.default_rng(4)
        dense = BitVector.from_bools(rng.random(2**18) < 0.5)
        with obs.observed() as o:
            auto.encode(sparse)
            auto.encode(dense)
            auto.encode(dense)
        selected = o.metrics.to_dict()["compress.auto.selected"]
        by_tag = {
            tags: entry["value"] for tags, entry in selected.items()
        }
        assert by_tag == {"codec=position_list": 1.0, "codec=raw": 2.0}


class TestMalformedPayloads:
    """Typed errors on corrupt position/range-list payloads."""

    def test_position_list_misaligned(self):
        with pytest.raises(CodecError, match="whole number"):
            get_codec("position_list").decode(b"\x01\x02\x03", 100)
        with pytest.raises(CodecError, match="whole number"):
            position_list_count(b"\x01\x02\x03")

    def test_position_list_not_ascending(self):
        payload = np.asarray([5, 5], dtype="<u4").tobytes()
        with pytest.raises(CodecError, match="ascending"):
            get_codec("position_list").decode(payload, 100)

    def test_position_list_overruns_length(self):
        payload = np.asarray([99], dtype="<u4").tobytes()
        with pytest.raises(CodecError, match="overruns"):
            get_codec("position_list").decode(payload, 50)

    def test_position_list_unknown_op(self):
        with pytest.raises(CodecError, match="unknown compressed operation"):
            position_list_logical("nand", b"", b"", 64)

    def test_range_list_misaligned(self):
        with pytest.raises(CodecError, match="whole number"):
            get_codec("range_list").decode(b"\x01\x02\x03\x04\x05", 100)
        with pytest.raises(CodecError, match="whole number"):
            range_list_count(b"\x01\x02\x03\x04\x05")

    def test_range_list_zero_run(self):
        payload = np.asarray([[3, 0]], dtype="<u4").tobytes()
        with pytest.raises(CodecError, match="at least 1"):
            get_codec("range_list").decode(payload, 100)

    def test_range_list_overruns_length(self):
        payload = np.asarray([[90, 20]], dtype="<u4").tobytes()
        with pytest.raises(CodecError, match="overruns"):
            get_codec("range_list").decode(payload, 100)

    def test_range_list_adjacent_runs_rejected(self):
        # [0, 5) followed by [5, 8) should have been one maximal run.
        payload = np.asarray([[0, 5], [5, 3]], dtype="<u4").tobytes()
        with pytest.raises(CodecError, match="non-adjacent"):
            get_codec("range_list").decode(payload, 100)

    def test_range_list_unknown_op(self):
        with pytest.raises(CodecError, match="unknown compressed operation"):
            range_list_logical("nand", b"", b"", 64)

    def test_mixed_combine_unknown_op(self):
        raw_body = get_codec("raw").encode(BitVector.ones(64))
        with pytest.raises(CodecError, match="unknown compressed operation"):
            _combine_blockwise("nand", "raw", raw_body, "position_list", b"", 64)
