"""Differential property tests for the position/range-list and auto codecs.

Mirrors ``test_differential.py`` for the PR-10 codecs: every operation
must agree bit-for-bit with the decompress-operate oracle.  Lengths hit
the new alignment boundaries on top of the old ones — 2^16 ± 1 (the
roaring container edge the auto selector measures per chunk) and
131072 ± 1 bits (the fused evaluator's 2048-word default block, which
the mixed-codec combine and the two new streams must straddle).  Auto
gets the extra mixed-codec cases: operand pairs whose payloads carry
*different* inner codecs, which no fixed codec ever faces.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector
from repro.compress import (
    CODEC_IDS,
    COUNT_OPS,
    LOGICAL_OPS,
    NOT_OPS,
    get_codec,
    open_stream,
    split_payload,
)
from repro.compress.multiway import multiway_logical, multiway_threshold
from repro.workload.markov import markov_bitmap

NEW_CODECS = ("position_list", "range_list", "auto")

# Old boundaries plus the roaring-chunk and fused-block edges.
BOUNDARY_LENGTHS = sorted(
    {0, 1, 7, 8, 9, 63, 64, 65, 127, 128, 129}
    | {2**16 - 1, 2**16, 2**16 + 1}
    | {2048 * 64 - 1, 2048 * 64, 2048 * 64 + 1}
)
lengths = st.one_of(
    st.sampled_from(BOUNDARY_LENGTHS),
    st.integers(min_value=0, max_value=1500),
)
densities = st.sampled_from([0.0, 0.001, 0.02, 0.1, 0.5, 0.9, 1.0])
clusterings = st.sampled_from([1.0, 4.0, 32.0])


def clustered(length, density, clustering, seed):
    if density < 1.0:
        clustering = max(clustering, density / (1.0 - density))
    return markov_bitmap(length, density, clustering, seed=seed)


@pytest.mark.parametrize("name", NEW_CODECS)
@given(
    length=lengths,
    density=densities,
    clustering=clusterings,
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=80, deadline=None)
def test_roundtrip(name, length, density, clustering, seed):
    vector = clustered(length, density, clustering, seed)
    codec = get_codec(name)
    assert codec.decode(codec.encode(vector), length) == vector


@pytest.mark.parametrize("name", NEW_CODECS)
@pytest.mark.parametrize("op", ["and", "or", "xor"])
@given(
    length=lengths,
    density_a=densities,
    density_b=densities,
    clustering=clusterings,
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=50, deadline=None)
def test_logical_matches_oracle(
    name, op, length, density_a, density_b, clustering, seed
):
    vec_a = clustered(length, density_a, clustering, seed)
    vec_b = clustered(length, density_b, clustering, seed + 1)
    codec = get_codec(name)
    result = LOGICAL_OPS[name](
        op, codec.encode(vec_a), codec.encode(vec_b), length
    )
    if op == "and":
        oracle = vec_a & vec_b
    elif op == "or":
        oracle = vec_a | vec_b
    else:
        oracle = vec_a ^ vec_b
    assert codec.decode(result, length) == oracle
    if name != "auto":
        # Canonical forms: the compressed-domain output is identical to
        # recompression.  (Auto's op result keeps the operands' inner
        # codec, which a fresh selection need not pick.)
        assert result == codec.encode(oracle)


@pytest.mark.parametrize("name", NEW_CODECS)
@given(
    length=lengths,
    density=densities,
    clustering=clusterings,
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=50, deadline=None)
def test_not_and_count_match_oracle(name, length, density, clustering, seed):
    vector = clustered(length, density, clustering, seed)
    codec = get_codec(name)
    payload = codec.encode(vector)
    assert codec.decode(NOT_OPS[name](payload, length), length) == ~vector
    assert COUNT_OPS[name](payload) == vector.count()


@pytest.mark.parametrize("name", NEW_CODECS)
@given(
    length=st.sampled_from(
        [1, 100, 2**16 - 1, 2**16 + 1, 2048 * 64 - 1, 2048 * 64 + 1]
    ),
    k=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=30, deadline=None)
def test_multiway_threshold_matches_raw(name, length, k, seed):
    """k-of-N streamed off the new codecs == the same run off raw."""
    rng = np.random.default_rng(seed)
    vectors = [
        BitVector.from_bools(rng.random(length) < d)
        for d in (0.01, 0.2, 0.5, 0.8)
    ]
    codec = get_codec(name)
    raw = get_codec("raw")
    got = multiway_threshold(
        k, name, [codec.encode(v) for v in vectors], length
    )
    want = multiway_threshold(
        k, "raw", [raw.encode(v) for v in vectors], length
    )
    assert got == want


@pytest.mark.parametrize("inner_a", ["position_list", "range_list", "raw", "roaring"])
@pytest.mark.parametrize("inner_b", ["position_list", "bbc", "ewah", "wah"])
@pytest.mark.parametrize("op", ["and", "or", "xor"])
def test_auto_mixed_inner_codecs(inner_a, inner_b, op):
    """Auto ops over payloads with *forced*, differing inner codecs.

    The selector would rarely pick some of these pairings itself, so
    the payloads are hand-tagged; every pairing must still agree with
    the plain-vector oracle, same-inner or mixed.
    """
    length = 3 * 2**16 + 17
    rng = np.random.default_rng(hash((inner_a, inner_b, op)) % 2**32)
    vec_a = BitVector.from_bools(rng.random(length) < 0.01)
    vec_b = BitVector.from_bools(rng.random(length) < 0.4)
    payload_a = bytes([CODEC_IDS[inner_a]]) + get_codec(inner_a).encode(vec_a)
    payload_b = bytes([CODEC_IDS[inner_b]]) + get_codec(inner_b).encode(vec_b)
    result = LOGICAL_OPS["auto"](op, payload_a, payload_b, length)
    if op == "and":
        oracle = vec_a & vec_b
    elif op == "or":
        oracle = vec_a | vec_b
    else:
        oracle = vec_a ^ vec_b
    auto = get_codec("auto")
    assert auto.decode(result, length) == oracle
    # The result is a well-formed auto payload: tagged, streamable.
    inner, _ = split_payload(result)
    assert inner in CODEC_IDS
    stream = open_stream("auto", result, length)
    assert BitVector(length, stream.block(0, stream.num_words).copy()) == oracle


def test_auto_multiway_mixed_inners_matches_raw():
    """Multiway ops over an auto set whose inners genuinely differ."""
    length = 2**17 + 5
    rng = np.random.default_rng(9)
    vectors = [
        BitVector.from_bools(rng.random(length) < d)
        for d in (0.00005, 0.3, 0.9)
    ]
    auto = get_codec("auto")
    payloads = [auto.encode(v) for v in vectors]
    inners = {split_payload(p)[0] for p in payloads}
    assert len(inners) > 1, inners
    raw = get_codec("raw")
    raw_payloads = [raw.encode(v) for v in vectors]
    for op in ("and", "or", "xor"):
        got = multiway_logical(op, "auto", payloads, length)
        want = multiway_logical(op, "raw", raw_payloads, length)
        assert got == want
    got = multiway_threshold(2, "auto", payloads, length)
    want = multiway_threshold(2, "raw", raw_payloads, length)
    assert got == want
