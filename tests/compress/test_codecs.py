"""Unit tests for the raw, BBC, WAH, EWAH and roaring codecs."""

import numpy as np
import pytest

from repro.bitmap import BitVector
from repro.compress import (
    available_codecs,
    get_codec,
    measure_all_codecs,
    measure_codec,
)
from repro.errors import CodecError
from tests.conftest import random_bitvector

ALL_CODECS = ("raw", "bbc", "wah", "ewah", "roaring")


@pytest.fixture(params=ALL_CODECS)
def codec(request):
    return get_codec(request.param)


class TestRegistry:
    def test_all_registered(self):
        assert set(ALL_CODECS) <= set(available_codecs())

    def test_registry_order_is_sorted_and_stable(self):
        # Pinned: experiment configs and stats tables iterate this order.
        assert available_codecs() == [
            "auto",
            "bbc",
            "ewah",
            "position_list",
            "range_list",
            "raw",
            "roaring",
            "wah",
        ]

    def test_unknown_codec(self):
        with pytest.raises(CodecError) as exc_info:
            get_codec("lz77")
        message = str(exc_info.value)
        assert "unknown codec 'lz77'" in message
        assert "available" in message
        for name in ALL_CODECS:
            assert name in message


class TestRoundtrip:
    CASES = [
        ("empty", BitVector.zeros(0)),
        ("all zeros", BitVector.zeros(1000)),
        ("all ones", BitVector.ones(1000)),
        ("single bit start", BitVector.from_indices(1000, [0])),
        ("single bit end", BitVector.from_indices(1000, [999])),
        ("word boundary", BitVector.from_indices(129, [63, 64, 127, 128])),
        ("byte pattern", BitVector.from_bools([True, False] * 500)),
        ("one word exactly", BitVector.ones(64)),
        ("sub-byte", BitVector.from_bools([True, True, False])),
    ]

    @pytest.mark.parametrize("label,vector", CASES, ids=[c[0] for c in CASES])
    def test_adversarial_patterns(self, codec, label, vector):
        payload = codec.encode(vector)
        assert codec.decode(payload, len(vector)) == vector

    @pytest.mark.parametrize("density", [0.0, 0.01, 0.1, 0.5, 0.9, 1.0])
    def test_random_densities(self, codec, rng, density):
        vector = random_bitvector(rng, 3000, density)
        assert codec.decode(codec.encode(vector), 3000) == vector

    def test_long_runs_compress(self, codec):
        if codec.name == "raw":
            pytest.skip("raw codec does not compress")
        vector = BitVector.zeros(1_000_000)
        vector[500_000] = True
        assert codec.encoded_size(vector) < 100

    def test_sparse_bitmap_compresses_below_raw(self, codec, rng):
        if codec.name == "raw":
            pytest.skip("raw codec does not compress")
        vector = random_bitvector(rng, 100_000, density=0.001)
        assert codec.encoded_size(vector) < vector.num_words * 8 / 4

    def test_incompressible_overhead_bounded(self, codec, rng):
        vector = random_bitvector(rng, 10_000, density=0.5)
        raw_bytes = vector.num_words * 8
        # A run-length codec may expand random data, but only modestly.
        assert codec.encoded_size(vector) <= raw_bytes * 1.25 + 16


class TestBbcFormat:
    def test_varint_long_fill(self):
        codec = get_codec("bbc")
        # > 6 fill bytes triggers the varint extension path.
        vector = BitVector.zeros(8 * 1000)
        vector[7999] = True
        payload = codec.encode(vector)
        assert len(payload) < 10
        assert codec.decode(payload, 8000) == vector

    def test_varint_long_literal_tail(self, rng):
        codec = get_codec("bbc")
        # > 14 literal bytes triggers the literal varint extension.
        vector = random_bitvector(rng, 8 * 40, density=0.5)
        assert codec.decode(codec.encode(vector), 8 * 40) == vector

    def test_truncated_stream_rejected(self):
        codec = get_codec("bbc")
        vector = BitVector.ones(64)
        payload = codec.encode(vector)
        with pytest.raises(CodecError):
            codec.decode(payload + b"\x0f", 64)  # header promising literals

    def test_overlong_stream_rejected(self):
        codec = get_codec("bbc")
        payload = codec.encode(BitVector.ones(512))
        with pytest.raises(CodecError):
            codec.decode(payload, 8)  # fill exceeds the declared length


class TestWahFormat:
    def test_misaligned_payload_rejected(self):
        with pytest.raises(CodecError):
            get_codec("wah").decode(b"\x00\x00\x00", 31)

    def test_group_count_mismatch_rejected(self):
        codec = get_codec("wah")
        payload = codec.encode(BitVector.zeros(62))
        with pytest.raises(CodecError):
            codec.decode(payload, 31 * 10)


class TestEwahFormat:
    def test_misaligned_payload_rejected(self):
        with pytest.raises(CodecError):
            get_codec("ewah").decode(b"\x00" * 7, 64)

    def test_truncated_dirty_words_rejected(self):
        codec = get_codec("ewah")
        vector = BitVector.from_indices(128, [1, 3, 70])
        payload = codec.encode(vector)
        with pytest.raises(CodecError):
            codec.decode(payload[:-8], 128)


class TestStats:
    def test_measure_codec(self, rng):
        codec = get_codec("bbc")
        vectors = [random_bitvector(rng, 1000, 0.01) for _ in range(5)]
        stats = measure_codec(codec, vectors)
        assert stats.num_bitmaps == 5
        assert stats.raw_bytes == 5 * 16 * 8
        assert 0 < stats.encoded_bytes
        assert stats.ratio == stats.encoded_bytes / stats.raw_bytes

    def test_empty_ratio(self):
        stats = measure_codec(get_codec("raw"), [])
        assert stats.ratio == 0.0

    def test_measure_all_codecs(self, rng):
        vectors = [random_bitvector(rng, 2000, 0.05) for _ in range(3)]
        by_codec = measure_all_codecs(vectors)
        assert list(by_codec) == available_codecs()
        for name, stats in by_codec.items():
            assert stats.codec == name
            assert stats == measure_codec(get_codec(name), vectors)

    def test_measure_all_codecs_subset(self, rng):
        vectors = [random_bitvector(rng, 500, 0.5)]
        by_codec = measure_all_codecs(vectors, names=["roaring", "wah"])
        assert list(by_codec) == ["roaring", "wah"]
