"""Tests for compressed-domain EWAH logical operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector
from repro.compress import (
    CompressedBitmap,
    ewah_count,
    ewah_logical,
    ewah_not,
    get_codec,
)
from repro.errors import CodecError
from tests.conftest import random_bitvector


def compressed(vector: BitVector) -> CompressedBitmap:
    return CompressedBitmap.from_vector(vector)


class TestBinaryOps:
    def setup_method(self):
        rng = np.random.default_rng(7)
        self.a = random_bitvector(rng, 5000, density=0.02)
        self.b = random_bitvector(rng, 5000, density=0.3)

    @pytest.mark.parametrize("op,expected", [
        ("and", lambda a, b: a & b),
        ("or", lambda a, b: a | b),
        ("xor", lambda a, b: a ^ b),
    ])
    def test_matches_plain_ops(self, op, expected):
        ca, cb = compressed(self.a), compressed(self.b)
        result = {"and": ca & cb, "or": ca | cb, "xor": ca ^ cb}[op]
        assert result.decode() == expected(self.a, self.b)

    def test_sparse_and_sparse_stays_tiny(self):
        a = BitVector.from_indices(1_000_000, [10])
        b = BitVector.from_indices(1_000_000, [999_990])
        result = compressed(a) & compressed(b)
        assert result.count() == 0
        assert result.compressed_size() < 64

    def test_clean_runs_short_circuit(self):
        # AND with an all-zero bitmap never touches the dirty words.
        zero = compressed(BitVector.zeros(100_000))
        rng = np.random.default_rng(1)
        noisy = compressed(random_bitvector(rng, 100_000, 0.5))
        result = zero & noisy
        assert result.count() == 0
        assert result.compressed_size() <= 16

    def test_or_with_ones_short_circuits(self):
        ones = compressed(BitVector.ones(100_000))
        rng = np.random.default_rng(2)
        noisy = compressed(random_bitvector(rng, 100_000, 0.5))
        assert (ones | noisy).count() == 100_000

    def test_xor_with_ones_complements(self):
        ones = compressed(BitVector.ones(6400))
        vec = BitVector.from_indices(6400, [0, 100, 6399])
        assert (ones ^ compressed(vec)).decode() == ~vec

    def test_length_mismatch_rejected(self):
        with pytest.raises(CodecError):
            _ = compressed(BitVector.zeros(64)) & compressed(BitVector.zeros(128))

    def test_unknown_op_rejected(self):
        with pytest.raises(CodecError):
            ewah_logical("nand", b"", b"")


class TestNot:
    def test_not_masks_padding(self):
        vec = BitVector.from_indices(70, [0, 69])
        result = ~compressed(vec)
        assert result.decode() == ~vec
        assert result.count() == 68

    def test_not_of_zeros(self):
        assert (~compressed(BitVector.zeros(1000))).count() == 1000

    def test_double_not_identity(self):
        rng = np.random.default_rng(3)
        vec = random_bitvector(rng, 777, 0.4)
        assert (~~compressed(vec)).decode() == vec

    def test_word_aligned_length(self):
        vec = BitVector.from_indices(128, [5])
        assert (~compressed(vec)).count() == 127


class TestCount:
    def test_counts_match(self):
        rng = np.random.default_rng(4)
        for density in (0.0, 0.001, 0.5, 1.0):
            vec = random_bitvector(rng, 3000, density)
            assert compressed(vec).count() == vec.count()

    def test_count_without_decode(self):
        payload = get_codec("ewah").encode(BitVector.ones(640))
        assert ewah_count(payload) == 640


class TestWrapper:
    def test_roundtrip_equality(self):
        vec = BitVector.from_indices(200, [1, 2, 3])
        assert compressed(vec) == compressed(vec.copy())

    def test_repr(self):
        assert "length=200" in repr(compressed(BitVector.zeros(200)))


# ---------------------------------------------------------------------------
# Property: compressed-domain algebra == plain algebra.
# ---------------------------------------------------------------------------

run_lists = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=1, max_value=150)),
    min_size=0,
    max_size=12,
)


def vec_of(runs, length):
    bits = []
    for value, count in runs:
        bits.extend([value] * count)
    bits = (bits + [False] * length)[:length]
    return BitVector.from_bools(np.array(bits, dtype=bool))


@given(runs_a=run_lists, runs_b=run_lists, extra=st.integers(0, 130))
@settings(max_examples=250, deadline=None)
def test_compressed_ops_property(runs_a, runs_b, extra):
    length = max(
        sum(c for _, c in runs_a), sum(c for _, c in runs_b), 1
    ) + extra
    a, b = vec_of(runs_a, length), vec_of(runs_b, length)
    ca, cb = compressed(a), compressed(b)
    assert (ca & cb).decode() == (a & b)
    assert (ca | cb).decode() == (a | b)
    assert (ca ^ cb).decode() == (a ^ b)
    assert (~ca).decode() == ~a
    assert (ca | cb).count() == (a | b).count()


@given(runs_a=run_lists)
@settings(max_examples=150, deadline=None)
def test_demorgan_in_compressed_domain(runs_a):
    length = max(sum(c for _, c in runs_a), 1)
    a = vec_of(runs_a, length)
    b = vec_of(list(reversed(runs_a)), length)
    ca, cb = compressed(a), compressed(b)
    left = ~(ca & cb)
    right = (~ca) | (~cb)
    assert left.decode() == right.decode()
