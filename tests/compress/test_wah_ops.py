"""Tests for compressed-domain WAH logical operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector
from repro.compress import get_codec, wah_count, wah_logical, wah_not
from repro.errors import CodecError
from tests.conftest import random_bitvector

CODEC = get_codec("wah")


def enc(vector: BitVector) -> bytes:
    return CODEC.encode(vector)


def dec(payload: bytes, length: int) -> BitVector:
    return CODEC.decode(payload, length)


class TestBinaryOps:
    def setup_method(self):
        rng = np.random.default_rng(11)
        self.a = random_bitvector(rng, 4000, density=0.05)
        self.b = random_bitvector(rng, 4000, density=0.4)

    @pytest.mark.parametrize("op", ["and", "or", "xor"])
    def test_matches_plain_ops(self, op):
        expected = {
            "and": self.a & self.b,
            "or": self.a | self.b,
            "xor": self.a ^ self.b,
        }[op]
        result = wah_logical(op, enc(self.a), enc(self.b))
        assert dec(result, 4000) == expected

    def test_fill_and_fill_is_constant_size(self):
        zeros = enc(BitVector.zeros(1_000_000))
        ones = enc(BitVector.ones(1_000_000))
        assert len(wah_logical("and", zeros, ones)) <= 8
        assert dec(wah_logical("or", zeros, ones), 1_000_000).count() == 1_000_000

    def test_fill_short_circuits_literals(self, rng):
        noisy = random_bitvector(rng, 100_000, density=0.5)
        zeros = enc(BitVector.zeros(100_000))
        result = wah_logical("and", zeros, enc(noisy))
        assert len(result) <= 8
        assert dec(result, 100_000).count() == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CodecError):
            wah_logical("and", enc(BitVector.zeros(31)), enc(BitVector.zeros(62)))

    def test_unknown_op_rejected(self):
        with pytest.raises(CodecError):
            wah_logical("nor", b"", b"")

    def test_misaligned_payload_rejected(self):
        with pytest.raises(CodecError):
            wah_logical("and", b"\x00\x00\x00", b"\x00\x00\x00")


class TestNot:
    def test_not_masks_tail(self):
        vec = BitVector.from_indices(40, [0, 39])
        result = dec(wah_not(enc(vec), 40), 40)
        assert result == ~vec

    def test_not_of_long_fill_stays_compressed(self):
        payload = wah_not(enc(BitVector.zeros(10_000_000)), 10_000_000)
        assert len(payload) <= 12
        assert wah_count(payload) == 10_000_000

    def test_group_aligned_length(self):
        vec = BitVector.from_indices(62, [5])
        assert dec(wah_not(enc(vec), 62), 62).count() == 61

    def test_length_mismatch_detected(self):
        with pytest.raises(CodecError):
            wah_not(enc(BitVector.zeros(31)), 62)


class TestCount:
    @pytest.mark.parametrize("density", [0.0, 0.01, 0.5, 1.0])
    def test_counts_match(self, rng, density):
        vec = random_bitvector(rng, 3100, density)
        assert wah_count(enc(vec)) == vec.count()


run_lists = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=1, max_value=120)),
    min_size=0,
    max_size=10,
)


def vec_of(runs, length):
    bits = []
    for value, count in runs:
        bits.extend([value] * count)
    bits = (bits + [False] * length)[:length]
    return BitVector.from_bools(np.array(bits, dtype=bool))


@given(runs_a=run_lists, runs_b=run_lists, extra=st.integers(0, 70))
@settings(max_examples=250, deadline=None)
def test_wah_ops_property(runs_a, runs_b, extra):
    length = max(sum(c for _, c in runs_a), sum(c for _, c in runs_b), 1) + extra
    a, b = vec_of(runs_a, length), vec_of(runs_b, length)
    pa, pb = enc(a), enc(b)
    assert dec(wah_logical("and", pa, pb), length) == (a & b)
    assert dec(wah_logical("or", pa, pb), length) == (a | b)
    assert dec(wah_logical("xor", pa, pb), length) == (a ^ b)
    assert dec(wah_not(pa, length), length) == ~a
    assert wah_count(pa) == a.count()


@given(runs=run_lists, extra=st.integers(1, 70))
@settings(max_examples=150, deadline=None)
def test_wah_output_is_canonical(runs, extra):
    """Outputs of compressed ops decode AND re-encode identically —
    the writer's fill re-detection keeps payloads canonical."""
    length = max(sum(c for _, c in runs), 1) + extra
    a = vec_of(runs, length)
    payload = wah_not(enc(a), length)
    assert payload == enc(dec(payload, length))
