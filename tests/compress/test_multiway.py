"""Tests for :mod:`repro.compress.multiway` — N-way merges and counters.

Equivalence: the one-pass N-way OR/AND/XOR must be bit-identical to
the left-fold of pairwise compressed-domain ops for every codec, and
the threshold kernel to the naive per-row count.  Accounting: on the
compressed engine, the multi-way plan must charge *strictly fewer*
``words_operated`` than the pairwise fold for N >= 3 (the fold
re-charges every intermediate it materializes; the merge streams each
input once).  Plus the bit-sliced counter in isolation, the degenerate
``k`` bounds, the error paths, and the ``expr.threshold.*`` obs
counters.
"""

from functools import reduce

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.bitmap import BitVector
from repro.compress.compressed_ops import CompressedBitmap
from repro.compress.multiway import (
    DEFAULT_BLOCK_WORDS,
    ThresholdCounter,
    counter_width,
    multiway_logical,
    multiway_threshold,
    threshold_streams,
    threshold_vectors,
)
from repro.compress.streams import VectorStream
from repro.errors import BitmapError
from repro.expr import EvalStats, Threshold
from repro.index import BitmapIndex, CompressedQueryEngine, IndexSpec
from repro.queries import IntervalQuery
from repro.storage import CostClock
from repro.workload import zipf_column

COMPRESSED_CODECS = ("bbc", "wah", "ewah", "roaring")

lengths = st.sampled_from([1, 63, 64, 65, 1000, 2**16 - 1, 2**16 + 1])
densities = st.sampled_from([0.0, 0.05, 0.5, 1.0])

NUMPY_OPS = {
    "and": np.logical_and,
    "or": np.logical_or,
    "xor": np.logical_xor,
}


def random_vectors(n, length, density, seed):
    rng = np.random.default_rng(seed)
    return [
        BitVector.from_bools(rng.random(length) < density) for _ in range(n)
    ]


class TestMultiwayLogical:
    @pytest.mark.parametrize("codec", COMPRESSED_CODECS)
    @pytest.mark.parametrize("op", ["and", "or", "xor"])
    @given(
        n=st.integers(min_value=1, max_value=9),
        length=lengths,
        density=densities,
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=10, deadline=None)
    def test_matches_pairwise_compressed_fold(
        self, codec, op, n, length, density, seed
    ):
        """One-pass N-way == left-fold of pairwise compressed ops."""
        vectors = random_vectors(n, length, density, seed)
        encoded = [CompressedBitmap.from_vector(v, codec) for v in vectors]
        merged = multiway_logical(
            op, codec, [e.payload for e in encoded], length, block_words=16
        )
        pairwise_op = {
            "and": lambda a, b: a & b,
            "or": lambda a, b: a | b,
            "xor": lambda a, b: a ^ b,
        }[op]
        folded = reduce(pairwise_op, encoded).decode()
        assert merged == folded, (codec, op, n)
        oracle = reduce(
            NUMPY_OPS[op], [v.to_bools() for v in vectors]
        )
        assert merged.to_bools().tolist() == oracle.tolist()

    def test_unknown_operator_rejected(self):
        vec = BitVector.from_bools(np.array([True, False]))
        payload = CompressedBitmap.from_vector(vec, "wah").payload
        with pytest.raises(BitmapError, match="unknown multiway operator"):
            multiway_logical("nand", "wah", [payload], 2)

    def test_empty_inputs_rejected(self):
        with pytest.raises(BitmapError, match="at least one input"):
            multiway_logical("or", "wah", [], 10)


class TestThresholdKernels:
    @given(
        n=st.integers(min_value=1, max_value=32),
        length=lengths,
        density=densities,
        seed=st.integers(min_value=0, max_value=2**20),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_threshold_vectors_matches_count(
        self, n, length, density, seed, data
    ):
        vectors = random_vectors(n, length, density, seed)
        k = data.draw(st.integers(1, n), label="k")
        counts = np.zeros(length, dtype=np.int64)
        for vector in vectors:
            counts += vector.to_bools()
        result = threshold_vectors(k, vectors)
        assert result.to_bools().tolist() == (counts >= k).tolist()

    def test_k_at_most_zero_is_all_ones_masked(self):
        vectors = random_vectors(2, 70, 0.5, 3)
        result = threshold_vectors(0, vectors)
        assert result.to_bools().all()
        # Padding bits above length 70 must be masked off.
        assert int(result.words[-1]) >> 6 == 0

    def test_k_above_n_is_all_zeros(self):
        vectors = random_vectors(2, 70, 1.0, 3)
        assert not threshold_vectors(3, vectors).to_bools().any()

    def test_empty_vectors_rejected(self):
        with pytest.raises(BitmapError, match="at least one input"):
            threshold_vectors(1, [])

    def test_stream_length_mismatch_rejected(self):
        streams = [
            VectorStream(BitVector.zeros(64)),
            VectorStream(BitVector.zeros(128)),
        ]
        with pytest.raises(BitmapError, match="length"):
            threshold_streams(1, streams, 64)

    @pytest.mark.parametrize("codec", COMPRESSED_CODECS)
    def test_multiway_threshold_roundtrip(self, codec):
        vectors = random_vectors(5, 1000, 0.3, 11)
        payloads = [
            CompressedBitmap.from_vector(v, codec).payload for v in vectors
        ]
        counts = np.zeros(1000, dtype=np.int64)
        for vector in vectors:
            counts += vector.to_bools()
        for k in (1, 3, 5):
            result = multiway_threshold(k, codec, payloads, 1000)
            assert result.to_bools().tolist() == (counts >= k).tolist()

    def test_emits_obs_counters(self):
        vectors = random_vectors(4, 256, 0.5, 7)
        with obs.observed() as o:
            threshold_vectors(2, vectors)
        assert o.counter_total("expr.threshold.evals") == 1
        assert o.counter_total("expr.threshold.children") == 4


class TestThresholdCounter:
    def test_counter_width(self):
        assert counter_width(1) == 1
        assert counter_width(3) == 2
        assert counter_width(4) == 3
        assert counter_width(32) == 6
        with pytest.raises(BitmapError):
            counter_width(0)

    @given(
        n=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=2**20),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_add_then_compare_matches_popcount(self, n, seed, data):
        words = 4
        rng = np.random.default_rng(seed)
        blocks = [
            rng.integers(0, 2**64, size=words, dtype=np.uint64)
            for _ in range(n)
        ]
        k = data.draw(st.integers(1, n), label="k")
        counter = ThresholdCounter(n, words)
        counter.reset(words)
        for block in blocks:
            counter.add(block)
        out = np.empty(words, dtype=np.uint64)
        counter.compare_ge(k, out)
        for w in range(words):
            for bit in range(64):
                count = sum(
                    (int(block[w]) >> bit) & 1 for block in blocks
                )
                expected = count >= k
                got = bool((int(out[w]) >> bit) & 1)
                assert got == expected, (w, bit, count, k)

    def test_reset_reuses_scratch_between_windows(self):
        counter = ThresholdCounter(3, 2)
        out = np.empty(2, dtype=np.uint64)
        full = np.full(2, 0xFFFF_FFFF_FFFF_FFFF, dtype=np.uint64)
        for _ in range(2):  # second window must not see the first's counts
            counter.reset(2)
            counter.add(full)
            counter.compare_ge(2, out)
            assert not out.any()
            counter.add(full)
            counter.compare_ge(2, out)
            assert (out == full).all()


class TestEngineAccounting:
    """Multi-way plans vs pairwise folds on the compressed engine."""

    FANIN = 6

    @pytest.fixture(scope="class")
    def engine_parts(self):
        # Range-encoded prefix bitmaps (A <= v): dense, overlapping, so
        # a fold's intermediates stay large and its re-charging shows.
        cardinality = self.FANIN + 2
        values = zipf_column(4000, cardinality, 1.0, seed=5)
        index = BitmapIndex.build(
            values,
            IndexSpec(cardinality=cardinality, scheme="R", codec="wah"),
        )
        leaves = [
            index.rewriter.rewrite_interval(
                IntervalQuery(0, v, cardinality)
            )
            for v in range(1, self.FANIN + 1)
        ]
        return index, leaves

    def run(self, index, expr):
        clock = CostClock()
        engine = CompressedQueryEngine(index, clock=clock)
        bitmap = engine.evaluate_shared([expr], {}, EvalStats())
        return bitmap, clock.words_operated

    @pytest.mark.parametrize("n", [3, 4, 6])
    @pytest.mark.parametrize("op", ["|", "&"])
    def test_nary_strictly_cheaper_than_pairwise_fold(
        self, engine_parts, n, op
    ):
        index, leaves = engine_parts
        children = leaves[:n]
        fold = {"|": lambda a, b: a | b, "&": lambda a, b: a & b}[op]
        chain = reduce(fold, children)  # nested binary nodes
        nary = type(fold(children[0], children[1]))(tuple(children))
        chain_bitmap, chain_words = self.run(index, chain)
        nary_bitmap, nary_words = self.run(index, nary)
        assert nary_bitmap == chain_bitmap, (op, n)
        assert nary_words < chain_words, (op, n)

    def test_pairwise_and_nary_words_equal_for_two(self, engine_parts):
        index, leaves = engine_parts
        from repro.expr.nodes import Or

        _, chain_words = self.run(index, leaves[0] | leaves[1])
        _, nary_words = self.run(index, Or(tuple(leaves[:2])))
        assert nary_words == chain_words

    def test_threshold_one_strictly_cheaper_than_or_fold(self, engine_parts):
        index, leaves = engine_parts
        chain = reduce(lambda a, b: a | b, leaves)
        chain_bitmap, chain_words = self.run(index, chain)
        threshold_bitmap, threshold_words = self.run(
            index, Threshold(1, tuple(leaves))
        )
        assert threshold_bitmap == chain_bitmap
        assert threshold_words < chain_words

    def test_default_block_words_is_power_of_two(self):
        assert DEFAULT_BLOCK_WORDS & (DEFAULT_BLOCK_WORDS - 1) == 0
