"""Smoke tests: every example script runs end to end.

The examples' row counts are scaled down via their module constants so
the whole file stays fast; the scripts' own internal assertions
(answers verified against naive scans) still run.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart(capsys):
    module = load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "[ok]" in out
    assert "MISMATCH" not in out


def test_dss_dashboard(capsys):
    module = load_example("dss_dashboard")
    module.NUM_ROWS = 5_000
    module.main()
    assert "[verified]" in capsys.readouterr().out


def test_index_advisor(capsys):
    module = load_example("index_advisor")
    module.NUM_ROWS = 5_000
    module.main()
    out = capsys.readouterr().out
    assert "Recommended:" in out or "No design fits" in out


def test_compression_study(capsys):
    module = load_example("compression_study")
    module.NUM_ROWS = 5_000
    module.main()
    out = capsys.readouterr().out
    assert "bbc" in out and "wah" in out


def test_compressed_queries(capsys):
    module = load_example("compressed_queries")
    module.NUM_ROWS = 5_000
    module.main()
    assert "speedup" in capsys.readouterr().out


def test_scientific_data(capsys):
    module = load_example("scientific_data")
    module.NUM_ROWS = 5_000
    module.main()
    out = capsys.readouterr().out
    assert "[verified]" in out
    assert "equi-depth" in out
