"""Tests for the process-pool helper and parallel experiment equality.

The worker-crash paths are driven by deterministic
:class:`~repro.parallel.WorkerFault` plans (mirroring
``repro.storage.faults``): the plan ships to the child at spawn and
kills or hangs it immediately before its Nth task, so every crash test
fires at an exact, reproducible point.
"""

import os

import pytest

from repro.errors import ParallelError, WorkerCrashed, WorkerUnresponsive
from repro.experiments import ExperimentConfig, run_experiment
from repro.parallel import (
    ProcessWorker,
    WorkerFault,
    injected_map_fault,
    parallel_map,
    resolve_workers,
)


def square(x: int) -> int:
    return x * x


class Calculator:
    """Module-level (picklable) ProcessWorker handler for the tests."""

    def __init__(self, base: int = 0):
        self.base = base
        self.calls = 0

    def add(self, x: int) -> int:
        self.calls += 1
        return self.base + x

    def count(self) -> int:
        return self.calls

    def boom(self):
        raise ValueError("typed error from the worker")

    def close(self) -> None:
        pass


class ExplodingFactory:
    def __init__(self):
        raise RuntimeError("factory failed in the child")


class TestResolveWorkers:
    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3

    def test_zero_means_cpu_count(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_none_means_cpu_count(self):
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestParallelMap:
    def test_serial_identity(self):
        assert parallel_map(square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_empty(self):
        assert parallel_map(square, [], workers=4) == []

    def test_parallel_preserves_order(self):
        tasks = list(range(20))
        assert parallel_map(square, tasks, workers=2) == [x * x for x in tasks]

    def test_single_task_stays_serial(self):
        assert parallel_map(square, [5], workers=8) == [25]


class TestWorkerFaultPlans:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerFault(kind="vanish")
        with pytest.raises(ValueError):
            WorkerFault(at_task=-1)

    def test_map_fault_kills_nth_task_in_pool(self):
        # The Nth task (counted across the map, 0-based) dies via
        # os._exit — a pool worker vanishes and the typed WorkerCrashed
        # surfaces, never a bare BrokenProcessPool.
        tasks = list(range(8))
        with injected_map_fault(WorkerFault(kind="crash", at_task=5)):
            with pytest.raises(WorkerCrashed):
                parallel_map(square, tasks, workers=2)

    def test_map_fault_wraps_serial_path_without_changing_results(self):
        # The serial fallback routes through the same _FaultedTask
        # wrapper (an armed fault at an index past the workload proves
        # the wrapping without os._exit-ing the test process itself).
        with injected_map_fault(WorkerFault(kind="crash", at_task=99)):
            assert parallel_map(square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_map_fault_uninstalls_on_exit(self):
        with injected_map_fault(WorkerFault(kind="crash", at_task=0)):
            pass
        assert parallel_map(square, list(range(6)), workers=2) == [
            x * x for x in range(6)
        ]


class TestProcessWorker:
    def test_call_round_trip_and_state_persistence(self):
        worker = ProcessWorker(Calculator, args=(10,), name="calc")
        try:
            assert worker.call("add", 5) == 15
            assert worker.call("add", x=7) == 17
            assert worker.call("count") == 2  # state lives in the child
            assert worker.ping()
            assert worker.call("count") == 2  # ping is not a task
            assert worker.alive
            assert isinstance(worker.pid, int)
        finally:
            worker.close()

    def test_handler_exception_reraised_typed(self):
        worker = ProcessWorker(Calculator)
        try:
            with pytest.raises(ValueError, match="typed error"):
                worker.call("boom")
            assert worker.call("add", 1) == 1  # worker survives the error
        finally:
            worker.close()

    def test_factory_failure_surfaces_at_construction(self):
        with pytest.raises(RuntimeError, match="factory failed"):
            ProcessWorker(ExplodingFactory)

    def test_close_is_idempotent_and_call_after_close_raises(self):
        worker = ProcessWorker(Calculator)
        worker.close()
        worker.close()
        with pytest.raises(ParallelError):
            worker.call("add", 1)

    def test_kill_then_call_raises_worker_crashed(self):
        worker = ProcessWorker(Calculator)
        try:
            worker.kill()
            assert not worker.alive
            with pytest.raises(WorkerCrashed):
                worker.call("add", 1)
        finally:
            worker.close()

    def test_crash_fault_at_nth_task(self):
        # Tasks 0 and 1 answer; the worker dies before task 2.
        worker = ProcessWorker(
            Calculator, fault=WorkerFault(kind="crash", at_task=2)
        )
        try:
            assert worker.call("add", 1) == 1
            assert worker.call("add", 2) == 2
            with pytest.raises(WorkerCrashed):
                worker.call("add", 3)
        finally:
            worker.close()
        assert not worker.alive

    def test_hang_fault_raises_unresponsive_after_timeout(self):
        worker = ProcessWorker(
            Calculator, fault=WorkerFault(kind="hang", at_task=0)
        )
        try:
            with pytest.raises(WorkerUnresponsive):
                worker.call("add", 1, timeout=0.5)
            assert worker.alive  # hung, not dead — close must kill it
        finally:
            worker.close()
        assert not worker.alive

    def test_ping_survives_fault_armed_for_first_task(self):
        worker = ProcessWorker(
            Calculator, fault=WorkerFault(kind="crash", at_task=0)
        )
        try:
            assert worker.ping()  # pings never trip the task counter
            with pytest.raises(WorkerCrashed):
                worker.call("add", 1)
        finally:
            worker.close()


class TestParallelExperimentsMatchSerial:
    """Fanning data points out over processes must not change a row."""

    @pytest.mark.parametrize("name", ["figure6", "figure7"])
    def test_rows_identical(self, name):
        serial = run_experiment(
            name, ExperimentConfig(num_records=5_000, workers=1)
        )
        parallel = run_experiment(
            name, ExperimentConfig(num_records=5_000, workers=2)
        )
        assert serial.rows == parallel.rows
        assert serial.headers == parallel.headers
