"""Tests for the process-pool helper and parallel experiment equality."""

import os

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.parallel import parallel_map, resolve_workers


def square(x: int) -> int:
    return x * x


class TestResolveWorkers:
    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3

    def test_zero_means_cpu_count(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_none_means_cpu_count(self):
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestParallelMap:
    def test_serial_identity(self):
        assert parallel_map(square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_empty(self):
        assert parallel_map(square, [], workers=4) == []

    def test_parallel_preserves_order(self):
        tasks = list(range(20))
        assert parallel_map(square, tasks, workers=2) == [x * x for x in tasks]

    def test_single_task_stays_serial(self):
        assert parallel_map(square, [5], workers=8) == [25]


class TestParallelExperimentsMatchSerial:
    """Fanning data points out over processes must not change a row."""

    @pytest.mark.parametrize("name", ["figure6", "figure7"])
    def test_rows_identical(self, name):
        serial = run_experiment(
            name, ExperimentConfig(num_records=5_000, workers=1)
        )
        parallel = run_experiment(
            name, ExperimentConfig(num_records=5_000, workers=2)
        )
        assert serial.rows == parallel.rows
        assert serial.headers == parallel.headers
