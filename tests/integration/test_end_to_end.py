"""Cross-module integration tests: the full paper pipeline at once."""

import numpy as np
import pytest

from repro import (
    BitmapIndex,
    IndexSpec,
    IntervalQuery,
    generate_query_set,
    paper_query_sets,
    zipf_column,
)
from repro.analysis import measure_design
from repro.index.decompose import optimal_bases
from repro.encoding import get_scheme
from repro.storage import CostClock, DirectoryStore


class TestPaperPipeline:
    """Build the paper's C=50 z=1 setup end to end and sanity-check the
    headline claims on real (small) data."""

    @pytest.fixture(scope="class")
    def values(self):
        return zipf_column(20_000, 50, 1.0, seed=0)

    @pytest.fixture(scope="class")
    def query_sets(self):
        return {
            spec.label: generate_query_set(spec, 50, num_queries=5, seed=0)
            for spec in paper_query_sets()
        }

    def test_all_schemes_agree_on_all_query_sets(self, values, query_sets):
        indexes = {
            name: BitmapIndex.build(
                values, IndexSpec(cardinality=50, scheme=name, codec="bbc")
            )
            for name in ("E", "R", "I", "EI*")
        }
        for queries in query_sets.values():
            for query in queries:
                expected = int(query.matches(values).sum())
                for name, index in indexes.items():
                    assert index.query(query).row_count == expected, (
                        name,
                        str(query),
                    )

    def test_interval_half_space_of_range(self, values):
        range_idx = BitmapIndex.build(
            values, IndexSpec(cardinality=50, scheme="R", codec="raw")
        )
        interval_idx = BitmapIndex.build(
            values, IndexSpec(cardinality=50, scheme="I", codec="raw")
        )
        ratio = interval_idx.size_bytes() / range_idx.size_bytes()
        assert 0.45 < ratio < 0.56

    def test_interval_beats_equality_on_range_queries(self, values, query_sets):
        """Figure 8's N_equ = 0 columns: I beats E in simulated time."""
        sets = {
            k: v for k, v in query_sets.items() if k.endswith("Nequ=0")
        }
        time_e = measure_design(
            values, IndexSpec(cardinality=50, scheme="E"), sets
        ).avg_time_ms
        time_i = measure_design(
            values, IndexSpec(cardinality=50, scheme="I"), sets
        ).avg_time_ms
        assert time_i < time_e

    def test_equality_beats_interval_on_equality_sets(self, values, query_sets):
        sets = {
            k: v
            for k, v in query_sets.items()
            if k in ("Nint=1,Nequ=1", "Nint=2,Nequ=2", "Nint=5,Nequ=5")
        }
        scans_e = measure_design(
            values, IndexSpec(cardinality=50, scheme="E"), sets
        ).avg_scans
        scans_i = measure_design(
            values, IndexSpec(cardinality=50, scheme="I"), sets
        ).avg_scans
        assert scans_e < scans_i

    def test_multi_component_saves_space_costs_scans(self, values):
        one = measure_design(
            values,
            IndexSpec(cardinality=50, scheme="I", bases=(50,)),
            {"q": [IntervalQuery(10, 30, 50)]},
        )
        three = measure_design(
            values,
            IndexSpec(
                cardinality=50,
                scheme="I",
                bases=optimal_bases(50, 3, get_scheme("I")),
            ),
            {"q": [IntervalQuery(10, 30, 50)]},
        )
        assert three.space_bytes < one.space_bytes
        assert three.avg_scans >= one.avg_scans


class TestDiskBackedIndex:
    def test_directory_store_roundtrip(self, tmp_path, rng):
        values = rng.integers(0, 20, size=3000)
        store = DirectoryStore(tmp_path, codec="bbc")
        index = BitmapIndex.build(
            values, IndexSpec(cardinality=20, scheme="I", codec="bbc"), store=store
        )
        result = index.query(IntervalQuery(5, 12, 20))
        assert result.row_count == int(((values >= 5) & (values <= 12)).sum())
        # Every stored bitmap exists as a real file and decodes equal.
        for key in store.keys():
            assert store.read_from_disk(key) == store.get(key)


class TestCostAccountingConsistency:
    def test_scans_match_pool_misses_on_cold_runs(self, rng):
        values = rng.integers(0, 30, size=2000)
        index = BitmapIndex.build(values, IndexSpec(cardinality=30, scheme="R"))
        clock = CostClock()
        engine = index.engine(clock=clock)
        total_scans = 0
        for low, high in [(0, 10), (5, 25), (13, 13), (1, 28)]:
            engine.pool.clear()
            result = engine.execute(IntervalQuery(low, high, 30))
            total_scans += result.stats.scans
        assert engine.buffer_stats.misses == total_scans
        assert clock.read_requests == total_scans
