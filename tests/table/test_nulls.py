"""Tests for NULL handling in tables (validity bitmaps, SQL semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryError, ReproError
from repro.queries import IntervalQuery, MembershipQuery
from repro.table import ColumnConfig, IsNotNull, IsNull, Table


@pytest.fixture
def table_with_nulls(rng):
    values = rng.integers(0, 10, size=1000)
    valid = rng.random(1000) > 0.2  # ~20% NULLs
    table = Table.from_columns(
        {"x": values, "y": rng.integers(0, 5, size=1000)},
        {"x": ColumnConfig(10, scheme="I"), "y": ColumnConfig(5, scheme="E")},
        valid_masks={"x": valid},
    )
    return table, values, valid


class TestValidity:
    def test_validity_of(self, table_with_nulls):
        table, _, valid = table_with_nulls
        assert table.validity_of("x").to_bools().tolist() == valid.tolist()
        # NULL-free column: all ones.
        assert table.validity_of("y").count() == 1000

    def test_all_valid_mask_stores_nothing(self, rng):
        table = Table(100)
        table.add_column(
            "a",
            rng.integers(0, 5, 100),
            ColumnConfig(5),
            valid_mask=np.ones(100, dtype=bool),
        )
        assert table._validity["a"] is None

    def test_wrong_mask_length_rejected(self, rng):
        table = Table(100)
        with pytest.raises(ReproError):
            table.add_column(
                "a",
                rng.integers(0, 5, 100),
                ColumnConfig(5),
                valid_mask=np.ones(99, dtype=bool),
            )


class TestPredicateSemantics:
    def test_nulls_never_match(self, table_with_nulls):
        table, values, valid = table_with_nulls
        result = table.select({"x": IntervalQuery(0, 9, 10)})
        # Even the full-domain predicate excludes NULLs.
        assert result.row_count == int(valid.sum())

    def test_nulls_never_match_negation(self, table_with_nulls):
        table, values, valid = table_with_nulls
        result = table.select(
            {"x": IntervalQuery(0, 4, 10)}, negate={"x"}
        )
        expected = valid & ~((values >= 0) & (values <= 4))
        assert result.row_count == int(expected.sum())

    def test_predicate_plus_negation_misses_nulls(self, table_with_nulls):
        """P OR NOT P covers exactly the non-NULL records."""
        table, _, valid = table_with_nulls
        positive = table.select({"x": IntervalQuery(0, 4, 10)})
        negative = table.select({"x": IntervalQuery(0, 4, 10)}, negate={"x"})
        union = positive.bitmap | negative.bitmap
        assert union.count() == int(valid.sum())

    def test_is_null(self, table_with_nulls):
        table, _, valid = table_with_nulls
        result = table.select({"x": IsNull()})
        assert result.row_count == int((~valid).sum())

    def test_is_not_null(self, table_with_nulls):
        table, _, valid = table_with_nulls
        result = table.select({"x": IsNotNull()})
        assert result.row_count == int(valid.sum())

    def test_is_null_combined_with_other_predicate(self, table_with_nulls):
        table, values, valid = table_with_nulls
        # y predicate AND x IS NULL.
        result = table.select(
            {"x": IsNull(), "y": IntervalQuery(0, 2, 5)}
        )
        assert result.row_count <= int((~valid).sum())

    def test_negating_null_marker_rejected(self, table_with_nulls):
        table, _, _ = table_with_nulls
        with pytest.raises(QueryError):
            table.select({"x": IsNull()}, negate={"x"})

    def test_membership_respects_nulls(self, table_with_nulls):
        table, values, valid = table_with_nulls
        query = MembershipQuery.of({0, 3, 7}, 10)
        result = table.select({"x": query})
        expected = valid & np.isin(values, [0, 3, 7])
        assert result.row_count == int(expected.sum())

    def test_null_indexed_under_zero_not_leaked(self, rng):
        """Records that are NULL must not surface in 'A = 0' answers
        even though their slot in the index holds value 0."""
        values = np.array([0, 1, 2, 3, 4])
        valid = np.array([True, True, False, True, False])
        table = Table.from_columns(
            {"a": values},
            {"a": ColumnConfig(5, scheme="E")},
            valid_masks={"a": valid},
        )
        result = table.select({"a": IntervalQuery(0, 0, 5)})
        assert result.row_ids().tolist() == [0]


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    null_fraction=st.floats(min_value=0.0, max_value=0.9),
    low=st.integers(min_value=0, max_value=9),
    negated=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_null_semantics_property(seed, null_fraction, low, negated):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 10, size=300)
    valid = rng.random(300) >= null_fraction
    table = Table.from_columns(
        {"a": values},
        {"a": ColumnConfig(10, scheme="R")},
        valid_masks={"a": valid},
    )
    high = int(rng.integers(low, 10))
    query = IntervalQuery(low, high, 10)
    result = table.select({"a": query}, negate={"a"} if negated else set())
    mask = (values >= low) & (values <= high)
    if negated:
        mask = ~mask
    assert result.row_count == int((mask & valid).sum())
