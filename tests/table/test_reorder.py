"""Tests for the build-time row-reordering pass.

Unit coverage of :mod:`repro.table.reorder` (permutation mechanics,
histogram-aware column ordering, lexicographic sort) plus the
table-level differential suite: every predicate shape — including
negation, which must be applied to an answer already translated back
to original row order — is checked against a naive column-scan oracle
on reordered builds.
"""

import numpy as np
import pytest

from repro.bitmap import BitVector
from repro.errors import ReproError
from repro.queries import IntervalQuery, MembershipQuery
from repro.table import (
    REORDER_STRATEGIES,
    ColumnConfig,
    RowReordering,
    Table,
    choose_column_order,
    reorder_rows,
)
from repro.table.reorder import (
    lexicographic_permutation,
    validate_strategy,
)


class TestStrategyValidation:
    def test_known_strategies(self):
        for strategy in REORDER_STRATEGIES:
            assert validate_strategy(strategy) == strategy

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ReproError):
            validate_strategy("random")


class TestRowReordering:
    def test_identity(self):
        reordering = RowReordering.identity(5)
        assert reordering.is_identity
        assert reordering.size == 5
        assert reordering.num_sorted == 5

    def test_from_sort_is_stable(self):
        values = np.array([2, 0, 1, 0, 2])
        reordering = RowReordering.from_sort(values)
        # Equal values keep arrival order: both 0s, then 1, then both 2s.
        assert reordering.permutation.tolist() == [1, 3, 2, 0, 4]
        assert not reordering.is_identity

    def test_apply_sorts_the_column(self):
        values = np.array([3, 1, 2])
        reordering = RowReordering.from_sort(values)
        assert reordering.apply(values).tolist() == [1, 2, 3]

    def test_apply_length_mismatch_rejected(self):
        reordering = RowReordering.identity(3)
        with pytest.raises(ReproError):
            reordering.apply(np.arange(4))

    def test_to_original_maps_and_sorts(self):
        reordering = RowReordering(np.array([2, 0, 1]))
        assert reordering.to_original(np.array([0, 2])).tolist() == [1, 2]

    def test_to_original_out_of_range_rejected(self):
        reordering = RowReordering.identity(3)
        with pytest.raises(ReproError):
            reordering.to_original(np.array([3]))
        with pytest.raises(ReproError):
            reordering.to_original(np.array([-1]))

    def test_restore_bitmap_round_trip(self, rng):
        values = rng.integers(0, 10, size=200)
        reordering = RowReordering.from_sort(values)
        mask = rng.random(200) < 0.3
        # A sorted-space answer for "mask of original rows" has bit p set
        # iff mask[permutation[p]]; restoring must give back mask.
        sorted_space = BitVector.from_bools(mask[reordering.permutation])
        restored = reordering.restore_bitmap(sorted_space)
        assert np.array_equal(restored.to_bools(), mask)

    def test_restore_bitmap_length_mismatch_rejected(self):
        reordering = RowReordering.identity(3)
        with pytest.raises(ReproError):
            reordering.restore_bitmap(BitVector.zeros(4))

    def test_extend_appends_identity_entries(self):
        reordering = RowReordering(np.array([1, 0]), 2)
        reordering.extend(3)
        assert reordering.permutation.tolist() == [1, 0, 2, 3, 4]
        assert reordering.num_sorted == 2
        assert reordering.size == 5

    def test_extend_zero_is_noop(self):
        reordering = RowReordering.identity(2)
        reordering.extend(0)
        assert reordering.size == 2

    def test_extend_negative_rejected(self):
        with pytest.raises(ReproError):
            RowReordering.identity(2).extend(-1)

    def test_is_identity_cache_survives_extend(self):
        reordering = RowReordering(np.array([1, 0]))
        assert not reordering.is_identity
        reordering.extend(2)
        # Identity entries never flip the answer either way.
        assert not reordering.is_identity
        identity = RowReordering.identity(2)
        assert identity.is_identity
        identity.extend(2)
        assert identity.is_identity

    def test_copy_is_independent(self):
        original = RowReordering(np.array([1, 0]), 2, "lexicographic")
        clone = original.copy()
        clone.extend(1)
        assert original.size == 2
        assert clone.size == 3
        assert clone.strategy == "lexicographic"

    def test_validated_accepts_true_permutation(self):
        reordering = RowReordering.validated(
            np.array([2, 0, 1]), 3, "lexicographic", 3
        )
        assert reordering.num_sorted == 3

    def test_validated_rejects_wrong_size(self):
        with pytest.raises(ReproError):
            RowReordering.validated(np.array([0, 1]), 2, "lexicographic", 3)

    def test_validated_rejects_duplicates(self):
        with pytest.raises(ReproError):
            RowReordering.validated(
                np.array([0, 0, 2]), 3, "lexicographic", 3
            )

    def test_validated_rejects_out_of_range(self):
        with pytest.raises(ReproError):
            RowReordering.validated(
                np.array([0, 1, 3]), 3, "lexicographic", 3
            )

    def test_non_1d_permutation_rejected(self):
        with pytest.raises(ReproError):
            RowReordering(np.zeros((2, 2), dtype=np.int64))

    def test_bad_sorted_prefix_rejected(self):
        with pytest.raises(ReproError):
            RowReordering(np.array([0, 1]), num_sorted=3)

    def test_repr(self):
        text = repr(RowReordering.identity(4, "none"))
        assert "rows=4" in text and "sorted=4" in text


class TestColumnOrder:
    def test_lowest_cardinality_first(self, rng):
        columns = {
            "wide": rng.integers(0, 100, size=2000),
            "narrow": rng.integers(0, 3, size=2000),
            "mid": rng.integers(0, 20, size=2000),
        }
        assert choose_column_order(columns) == ["narrow", "mid", "wide"]

    def test_skew_breaks_cardinality_ties(self, rng):
        # Same distinct count; the skewed histogram sorts first.
        uniform = rng.integers(0, 4, size=4000)
        skewed = rng.choice(4, size=4000, p=[0.91, 0.03, 0.03, 0.03])
        assert set(np.unique(uniform)) == set(np.unique(skewed))
        order = choose_column_order({"a_uniform": uniform, "b_skewed": skewed})
        assert order == ["b_skewed", "a_uniform"]

    def test_name_breaks_full_ties(self):
        column = np.array([0, 1, 0, 1])
        order = choose_column_order({"beta": column, "alpha": column.copy()})
        assert order == ["alpha", "beta"]

    def test_empty_columns(self):
        assert choose_column_order({"a": np.array([], dtype=np.int64)}) == ["a"]

    def test_constant_column_sorts_first(self):
        order = choose_column_order(
            {"varied": np.arange(10) % 3, "const": np.zeros(10, np.int64)}
        )
        assert order == ["const", "varied"]


class TestLexicographicPermutation:
    def test_primary_key_dominates(self):
        columns = {
            "primary": np.array([1, 0, 1, 0]),
            "secondary": np.array([0, 1, 1, 0]),
        }
        perm = lexicographic_permutation(columns, ["primary", "secondary"])
        assert perm.tolist() == [3, 1, 0, 2]

    def test_empty_order_rejected(self):
        with pytest.raises(ReproError):
            lexicographic_permutation({"a": np.array([1])}, [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            lexicographic_permutation(
                {"a": np.arange(3), "b": np.arange(4)}, ["a", "b"]
            )


class TestReorderRows:
    def test_none_strategy_returns_identity(self, rng):
        columns = {"a": rng.integers(0, 5, size=50)}
        reordered, reordering = reorder_rows(columns, strategy="none")
        assert np.array_equal(reordered["a"], columns["a"])
        assert reordering.is_identity
        assert reordering.strategy == "none"

    def test_no_columns(self):
        reordered, reordering = reorder_rows({})
        assert reordered == {}
        assert reordering.size == 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ReproError):
            reorder_rows({"a": np.arange(3)}, strategy="bogus")

    def test_explicit_order_with_unknown_name_rejected(self):
        with pytest.raises(ReproError):
            reorder_rows({"a": np.arange(3)}, order=["a", "nope"])

    def test_rows_stay_aligned(self, rng):
        columns = {
            "x": rng.integers(0, 4, size=300),
            "y": rng.integers(0, 50, size=300),
        }
        reordered, reordering = reorder_rows(columns)
        for name in columns:
            assert np.array_equal(
                reordered[name], columns[name][reordering.permutation]
            )
        # Rows travel together: (x, y) pairs are preserved as a multiset.
        original_pairs = sorted(zip(columns["x"], columns["y"]))
        reordered_pairs = sorted(zip(reordered["x"], reordered["y"]))
        assert original_pairs == reordered_pairs

    def test_sorting_creates_runs(self, rng):
        values = rng.integers(0, 8, size=2000)
        reordered, _ = reorder_rows({"a": values})
        transitions = int((np.diff(reordered["a"]) != 0).sum())
        assert transitions <= 7  # sorted: at most C-1 value changes


# ---------------------------------------------------------------------------
# Table-level differential tests against a naive scan oracle
# ---------------------------------------------------------------------------


@pytest.fixture
def reordered_table(rng):
    columns = {
        "region": rng.integers(0, 6, size=1200),
        "amount": rng.integers(0, 32, size=1200),
        "grade": rng.choice(5, size=1200, p=[0.6, 0.2, 0.1, 0.05, 0.05]),
    }
    configs = {
        "region": ColumnConfig(cardinality=6, scheme="E", codec="wah"),
        "amount": ColumnConfig(cardinality=32, scheme="I", codec="bbc"),
        "grade": ColumnConfig(cardinality=5, scheme="R", codec="ewah"),
    }
    table = Table.from_columns(columns, configs, reorder="lexicographic")
    return table, columns


def naive_row_ids(columns, predicates, mode="and", negate=frozenset()):
    masks = []
    for name, query in predicates.items():
        mask = query.matches(columns[name])
        if name in negate:
            mask = ~mask
        masks.append(mask)
    out = masks[0]
    for mask in masks[1:]:
        out = (out & mask) if mode == "and" else (out | mask)
    return np.flatnonzero(out)


class TestReorderedTable:
    """Answers from reordered builds must be in original row order.

    These are the regression tests for the negated-predicate bug: a
    complement taken in sorted (permuted) space must be mapped back to
    original ids before it is combined or reported — comparing full
    row-id sets (not just counts) against a scan oracle catches any
    row-space mixup.
    """

    def test_table_records_reordering(self, reordered_table):
        table, _ = reordered_table
        assert table.reordering is not None
        assert table.reordering.strategy == "lexicographic"
        assert not table.reordering.is_identity

    def test_reorder_none_records_nothing(self, rng):
        table = Table.from_columns(
            {"a": rng.integers(0, 5, size=10)},
            {"a": ColumnConfig(5)},
        )
        assert table.reordering is None

    @pytest.mark.parametrize("mode", ["and", "or"])
    @pytest.mark.parametrize(
        "negate",
        [frozenset(), frozenset({"amount"}), frozenset({"region", "grade"})],
    )
    def test_not_and_or_mixes_match_naive_scan(
        self, reordered_table, mode, negate
    ):
        table, columns = reordered_table
        predicates = {
            "region": MembershipQuery.of({0, 2, 4}, 6),
            "amount": IntervalQuery(5, 20, 32),
            "grade": IntervalQuery(0, 1, 5),
        }
        result = table.select(predicates, mode=mode, negate=negate)
        expected = naive_row_ids(columns, predicates, mode, negate)
        assert result.row_ids().tolist() == expected.tolist()

    def test_single_negated_predicate(self, reordered_table):
        table, columns = reordered_table
        predicates = {"grade": IntervalQuery(0, 0, 5)}
        result = table.select(predicates, negate={"grade"})
        expected = naive_row_ids(columns, predicates, negate={"grade"})
        assert result.row_ids().tolist() == expected.tolist()

    def test_matches_unreordered_build(self, reordered_table, rng):
        table, columns = reordered_table
        configs = {
            "region": ColumnConfig(cardinality=6, scheme="E", codec="wah"),
            "amount": ColumnConfig(cardinality=32, scheme="I", codec="bbc"),
            "grade": ColumnConfig(cardinality=5, scheme="R", codec="ewah"),
        }
        plain = Table.from_columns(columns, configs)
        predicates = {
            "region": IntervalQuery(1, 4, 6),
            "amount": MembershipQuery.of({0, 7, 31}, 32),
        }
        for mode in ("and", "or"):
            for negate in (frozenset(), frozenset({"region"})):
                a = table.select(predicates, mode=mode, negate=negate)
                b = plain.select(predicates, mode=mode, negate=negate)
                assert a.row_ids().tolist() == b.row_ids().tolist()

    def test_nulls_on_reordered_column(self, rng):
        values = rng.integers(0, 8, size=400)
        valid = rng.random(400) < 0.8
        table = Table.from_columns(
            {"a": values, "b": rng.integers(0, 3, size=400)},
            {"a": ColumnConfig(8, codec="wah"), "b": ColumnConfig(3)},
            valid_masks={"a": valid},
            reorder="lexicographic",
        )
        query = IntervalQuery(2, 5, 8)
        expected = np.flatnonzero(query.matches(values) & valid)
        result = table.select({"a": query})
        assert result.row_ids().tolist() == expected.tolist()
        # Three-valued logic: NULLs match neither the predicate nor NOT.
        negated = table.select({"a": query}, negate={"a"})
        expected_neg = np.flatnonzero(~query.matches(values) & valid)
        assert negated.row_ids().tolist() == expected_neg.tolist()

    def test_reordered_index_shrinks_skewed_column(self, rng):
        values = rng.choice(16, size=20_000, p=np.array([0.5] + [0.5 / 15] * 15))
        config = ColumnConfig(cardinality=16, scheme="E", codec="wah")
        plain = Table.from_columns({"a": values}, {"a": config})
        sorted_build = Table.from_columns(
            {"a": values}, {"a": config}, reorder="lexicographic"
        )
        assert (
            sorted_build.total_index_bytes() < plain.total_index_bytes()
        )
