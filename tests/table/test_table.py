"""Tests for the multi-attribute table layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryError, ReproError
from repro.queries import IntervalQuery, MembershipQuery
from repro.table import ColumnConfig, Table


@pytest.fixture
def table_and_columns(rng):
    columns = {
        "region": rng.integers(0, 8, size=1500),
        "amount": rng.integers(0, 40, size=1500),
        "grade": rng.integers(0, 5, size=1500),
    }
    configs = {
        "region": ColumnConfig(cardinality=8, scheme="E"),
        "amount": ColumnConfig(cardinality=40, scheme="I", codec="bbc"),
        "grade": ColumnConfig(cardinality=5, scheme="R"),
    }
    return Table.from_columns(columns, configs), columns


class TestConstruction:
    def test_from_columns(self, table_and_columns):
        table, _ = table_and_columns
        assert table.num_records == 1500
        assert table.column_names == ["region", "amount", "grade"]

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ReproError):
            Table.from_columns(
                {"a": rng.integers(0, 5, 10), "b": rng.integers(0, 5, 11)},
                {"a": ColumnConfig(5), "b": ColumnConfig(5)},
            )

    def test_missing_config_rejected(self, rng):
        with pytest.raises(ReproError):
            Table.from_columns(
                {"a": rng.integers(0, 5, 10)}, {}
            )

    def test_duplicate_column_rejected(self, rng):
        table = Table(10)
        table.add_column("a", rng.integers(0, 5, 10), ColumnConfig(5))
        with pytest.raises(ReproError):
            table.add_column("a", rng.integers(0, 5, 10), ColumnConfig(5))

    def test_wrong_length_column_rejected(self, rng):
        table = Table(10)
        with pytest.raises(ReproError):
            table.add_column("a", rng.integers(0, 5, 11), ColumnConfig(5))

    def test_total_index_bytes(self, table_and_columns):
        table, _ = table_and_columns
        assert table.total_index_bytes() == sum(
            table.index_for(name).size_bytes() for name in table.column_names
        )

    def test_unknown_column_lookup(self, table_and_columns):
        table, _ = table_and_columns
        with pytest.raises(QueryError):
            table.index_for("nope")


class TestSelect:
    def naive(self, columns, predicates, mode="and", negate=frozenset()):
        masks = []
        for name, query in predicates.items():
            mask = query.matches(columns[name])
            if name in negate:
                mask = ~mask
            masks.append(mask)
        out = masks[0]
        for mask in masks[1:]:
            out = (out & mask) if mode == "and" else (out | mask)
        return int(out.sum())

    def test_conjunction(self, table_and_columns):
        table, columns = table_and_columns
        predicates = {
            "region": MembershipQuery.of({1, 3}, 8),
            "amount": IntervalQuery(10, 25, 40),
        }
        result = table.select(predicates)
        assert result.row_count == self.naive(columns, predicates)
        assert set(result.per_column) == {"region", "amount"}
        assert result.total_scans >= 2

    def test_disjunction(self, table_and_columns):
        table, columns = table_and_columns
        predicates = {
            "region": IntervalQuery(0, 0, 8),
            "grade": IntervalQuery(4, 4, 5),
        }
        result = table.select(predicates, mode="or")
        assert result.row_count == self.naive(columns, predicates, mode="or")

    def test_negation(self, table_and_columns):
        table, columns = table_and_columns
        predicates = {
            "amount": IntervalQuery(0, 19, 40),
            "grade": IntervalQuery(2, 4, 5),
        }
        result = table.select(predicates, negate={"amount"})
        assert result.row_count == self.naive(
            columns, predicates, negate={"amount"}
        )

    def test_three_way(self, table_and_columns):
        table, columns = table_and_columns
        predicates = {
            "region": MembershipQuery.of({0, 2, 5}, 8),
            "amount": IntervalQuery(5, 30, 40),
            "grade": IntervalQuery(0, 2, 5),
        }
        assert table.count(predicates) == self.naive(columns, predicates)

    def test_row_ids_match_bitmap(self, table_and_columns):
        table, columns = table_and_columns
        result = table.select({"grade": IntervalQuery(3, 4, 5)})
        mask = (columns["grade"] >= 3) & (columns["grade"] <= 4)
        assert result.row_ids().tolist() == np.flatnonzero(mask).tolist()

    def test_empty_predicates_rejected(self, table_and_columns):
        table, _ = table_and_columns
        with pytest.raises(QueryError):
            table.select({})

    def test_unknown_mode_rejected(self, table_and_columns):
        table, _ = table_and_columns
        with pytest.raises(QueryError):
            table.select({"grade": IntervalQuery(0, 1, 5)}, mode="xor")

    def test_unknown_column_rejected(self, table_and_columns):
        table, _ = table_and_columns
        with pytest.raises(QueryError):
            table.select({"nope": IntervalQuery(0, 1, 5)})

    def test_negate_without_predicate_rejected(self, table_and_columns):
        table, _ = table_and_columns
        with pytest.raises(QueryError):
            table.select(
                {"grade": IntervalQuery(0, 1, 5)}, negate={"amount"}
            )

    def test_warm_engines_hit_buffer(self, table_and_columns):
        table, _ = table_and_columns
        query = {"amount": IntervalQuery(10, 25, 40)}
        table.select(query)
        stats = table._engines["amount"].buffer_stats
        misses_before = stats.misses
        table.select(query)
        assert stats.misses == misses_before  # all hits the second time


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mode=st.sampled_from(["and", "or"]),
    negate_first=st.booleans(),
)
@settings(max_examples=50, deadline=None)
def test_select_property(seed, mode, negate_first):
    rng = np.random.default_rng(seed)
    columns = {
        "a": rng.integers(0, 12, size=200),
        "b": rng.integers(0, 7, size=200),
    }
    table = Table.from_columns(
        columns,
        {
            "a": ColumnConfig(12, scheme="I"),
            "b": ColumnConfig(7, scheme="E"),
        },
    )
    low = int(rng.integers(0, 12))
    high = int(rng.integers(low, 12))
    predicates = {
        "a": IntervalQuery(low, high, 12),
        "b": MembershipQuery.of(
            set(rng.choice(7, size=int(rng.integers(1, 7)), replace=False).tolist()),
            7,
        ),
    }
    negate = {"a"} if negate_first else set()
    result = table.select(predicates, mode=mode, negate=negate)

    mask_a = predicates["a"].matches(columns["a"])
    if negate_first:
        mask_a = ~mask_a
    mask_b = predicates["b"].matches(columns["b"])
    expected = mask_a & mask_b if mode == "and" else mask_a | mask_b
    assert result.row_count == int(expected.sum())
