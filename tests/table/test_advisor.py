"""Tests for the table-level (multi-column knapsack) advisor."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.queries import IntervalQuery, MembershipQuery
from repro.table.advisor import recommend_table
from repro.workload import zipf_column


@pytest.fixture(scope="module")
def setup():
    columns = {
        "a": zipf_column(4000, 16, 1.0, seed=1),
        "b": zipf_column(4000, 24, 0.0, seed=2),
    }
    cardinalities = {"a": 16, "b": 24}
    workloads = {
        # Column a sees equality lookups, column b range scans.
        "a": {"eq": [MembershipQuery.of({3}, 16), MembershipQuery.of({7}, 16)]},
        "b": {"rq": [IntervalQuery(2, 18, 24), IntervalQuery(0, 11, 24)]},
    }
    return columns, cardinalities, workloads


class TestRecommendTable:
    def test_fits_budget(self, setup):
        columns, cardinalities, workloads = setup
        budget = 40 * 1024
        outcome = recommend_table(
            columns, cardinalities, workloads, space_budget_bytes=budget
        )
        assert outcome.per_column is not None
        assert set(outcome.per_column) == {"a", "b"}
        assert outcome.total_bytes <= budget

    def test_minimizes_total_time(self, setup):
        """The DP pick is at least as fast as any greedy per-column
        combination that fits the same budget."""
        columns, cardinalities, workloads = setup
        budget = 40 * 1024
        outcome = recommend_table(
            columns, cardinalities, workloads, space_budget_bytes=budget
        )
        assert outcome.per_column is not None
        # Exhaustive cross-product check against the measured candidates.
        best = float("inf")
        for pa in outcome.candidates["a"]:
            for pb in outcome.candidates["b"]:
                if pa.space_bytes + pb.space_bytes <= budget:
                    best = min(best, pa.avg_time_ms + pb.avg_time_ms)
        # Allow the page-discretization of the DP a little slack.
        assert outcome.total_time_ms <= best * 1.05 + 1e-9

    def test_impossible_budget(self, setup):
        columns, cardinalities, workloads = setup
        outcome = recommend_table(
            columns, cardinalities, workloads, space_budget_bytes=1
        )
        assert outcome.per_column is None
        assert outcome.candidates  # measurements still reported

    def test_tight_budget_prefers_compact_designs(self, setup):
        columns, cardinalities, workloads = setup
        loose = recommend_table(
            columns, cardinalities, workloads, space_budget_bytes=400 * 1024
        )
        tight = recommend_table(
            columns, cardinalities, workloads, space_budget_bytes=24 * 1024
        )
        assert loose.per_column is not None and tight.per_column is not None
        assert tight.total_bytes <= loose.total_bytes
        assert tight.total_time_ms >= loose.total_time_ms - 1e-9

    def test_missing_workload_rejected(self, setup):
        columns, cardinalities, _ = setup
        with pytest.raises(ExperimentError):
            recommend_table(
                columns, cardinalities, {"a": {}}, space_budget_bytes=1024
            )

    def test_empty_columns_rejected(self):
        with pytest.raises(ExperimentError):
            recommend_table({}, {}, {}, space_budget_bytes=1024)
