"""Tests for the fault-injection layer and the atomic write path."""

import pytest

from repro.storage import atomic_write_bytes
from repro.storage import faults
from repro.storage.faults import FaultInjector, InjectedCrash, injected


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    assert faults.active() is None, "test leaked an installed injector"


class TestInjectorPlumbing:
    def test_passthrough_without_injector(self):
        assert faults.active() is None
        assert faults.step("write", "x.bm", data=b"abc") == b"abc"

    def test_install_uninstall(self):
        inj = faults.install()
        assert faults.active() is inj
        faults.uninstall()
        assert faults.active() is None

    def test_injected_restores_previous(self):
        outer = faults.install()
        with injected(FaultInjector()) as inner:
            assert faults.active() is inner
        assert faults.active() is outer
        faults.uninstall()

    def test_records_ops_in_order(self, tmp_path):
        with injected() as inj:
            atomic_write_bytes(tmp_path / "a.bm", b"hello")
        assert [(op.index, op.kind) for op in inj.ops] == [
            (0, "write"),
            (1, "fsync"),
            (2, "rename"),
        ]
        assert all(op.name == "a.bm" for op in inj.ops)


class TestAtomicWrite:
    def test_writes_and_leaves_no_temp(self, tmp_path):
        atomic_write_bytes(tmp_path / "a.bm", b"payload")
        assert (tmp_path / "a.bm").read_bytes() == b"payload"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_crash_preserves_previous_content(self, tmp_path):
        path = tmp_path / "a.bm"
        atomic_write_bytes(path, b"old content")
        for crash_at in range(3):  # write, fsync, rename
            with injected(FaultInjector(crash_at=crash_at)):
                with pytest.raises(InjectedCrash):
                    atomic_write_bytes(path, b"NEW CONTENT!")
            assert path.read_bytes() == b"old content"

    def test_crash_on_write_leaves_torn_temp(self, tmp_path):
        path = tmp_path / "a.bm"
        with injected(FaultInjector(crash_at=0)):
            with pytest.raises(InjectedCrash):
                atomic_write_bytes(path, b"0123456789")
        assert not path.exists()
        assert (tmp_path / "a.bm.tmp").read_bytes() == b"01234"

    def test_truncate_matching_write(self, tmp_path):
        with injected(FaultInjector(truncate=("a.bm", 3))):
            atomic_write_bytes(tmp_path / "a.bm", b"0123456789")
            atomic_write_bytes(tmp_path / "b.bm", b"0123456789")
        assert (tmp_path / "a.bm").read_bytes() == b"012"
        assert (tmp_path / "b.bm").read_bytes() == b"0123456789"

    def test_flip_matching_write(self, tmp_path):
        with injected(FaultInjector(flip=("a.bm", 2))):
            atomic_write_bytes(tmp_path / "a.bm", bytes([0, 0, 0, 0]))
        assert (tmp_path / "a.bm").read_bytes() == bytes([0, 0, 0xFF, 0])

    def test_flip_offset_wraps(self, tmp_path):
        with injected(FaultInjector(flip=("a.bm", 7))):
            atomic_write_bytes(tmp_path / "a.bm", bytes([1, 2]))
        assert (tmp_path / "a.bm").read_bytes() == bytes([1, 2 ^ 0xFF])

    def test_crash_is_not_a_repro_error(self):
        from repro.errors import ReproError

        assert not issubclass(InjectedCrash, ReproError)
