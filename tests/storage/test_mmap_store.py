"""MappedDirectoryStore: zero-copy views, verification, accounting parity."""

import zlib

import numpy as np
import pytest

from repro import obs
from repro.bitmap import BitVector
from repro.errors import (
    ChecksumMismatchError,
    ManifestMismatchError,
    MissingBlobError,
    StorageError,
    TruncatedBlobError,
)
from repro.storage import (
    BufferPool,
    CostClock,
    DirectoryStore,
    MappedDirectoryStore,
    faults,
)

CODEC_NAMES = ("raw", "bbc", "wah", "ewah", "roaring")


def make_vector(length=50_000, density=0.2, seed=0):
    rng = np.random.default_rng(seed)
    return BitVector.from_bools(rng.random(length) < density)


@pytest.fixture
def vec():
    return make_vector()


class TestRoundTrip:
    @pytest.mark.parametrize("codec", CODEC_NAMES)
    def test_put_get_view(self, tmp_path, codec, vec):
        store = MappedDirectoryStore(tmp_path, codec=codec)
        store.put(("c", 0), vec)
        assert store.is_mapped(("c", 0))
        assert store.get_view(("c", 0)) == vec
        assert store.get(("c", 0)) == vec

    def test_raw_view_aliases_the_mapping(self, tmp_path, vec):
        store = MappedDirectoryStore(tmp_path, codec="raw")
        store.put(("c", 0), vec)
        view = store.payload_view(("c", 0))
        decoded = store.get_view(("c", 0))
        assert np.shares_memory(decoded.words, view)

    def test_views_are_read_only(self, tmp_path, vec):
        store = MappedDirectoryStore(tmp_path, codec="raw")
        store.put(("c", 0), vec)
        decoded = store.get_view(("c", 0))
        assert not decoded.words.flags.writeable
        with pytest.raises(ValueError):
            decoded.words[0] = 1

    def test_empty_bitmap(self, tmp_path):
        store = MappedDirectoryStore(tmp_path, codec="ewah")
        store.put(("c", 0), BitVector.zeros(0))
        assert len(store.get_view(("c", 0))) == 0

    def test_replace_keeps_old_view_valid(self, tmp_path, vec):
        # os.replace points new readers at the new inode; a view taken
        # before the replace keeps the old pages alive and unchanged.
        store = MappedDirectoryStore(tmp_path, codec="raw")
        store.put(("c", 0), vec)
        old_words = store.get_view(("c", 0)).words
        snapshot = old_words.copy()
        other = make_vector(seed=9, density=0.7)
        store.put(("c", 0), other)
        assert (old_words == snapshot).all()
        assert store.get_view(("c", 0)) == other

    def test_close_with_outstanding_views(self, tmp_path, vec):
        store = MappedDirectoryStore(tmp_path, codec="raw")
        store.put(("c", 0), vec)
        view = store.get_view(("c", 0))
        store.close()  # must not raise despite the exported pointer
        assert view == vec


class TestAttachMapped:
    def make_blob(self, tmp_path, vec):
        writer = DirectoryStore(tmp_path, codec="raw")
        writer.put(("x", 0), vec)
        payload = writer.path_for(("x", 0)).read_bytes()
        return payload, zlib.crc32(payload) & 0xFFFFFFFF

    def test_verified_attach(self, tmp_path, vec):
        payload, crc = self.make_blob(tmp_path, vec)
        store = MappedDirectoryStore(tmp_path, codec="raw")
        store.attach_mapped(
            ("x", 0), len(vec), expected_bytes=len(payload), expected_crc=crc
        )
        assert store.get_view(("x", 0)) == vec

    def test_crc_mismatch_never_registers(self, tmp_path, vec):
        payload, _ = self.make_blob(tmp_path, vec)
        store = MappedDirectoryStore(tmp_path, codec="raw")
        with pytest.raises(ChecksumMismatchError):
            store.attach_mapped(
                ("x", 0), len(vec), expected_bytes=len(payload), expected_crc=0
            )
        assert ("x", 0) not in store

    def test_short_file_is_truncated_error(self, tmp_path, vec):
        payload, crc = self.make_blob(tmp_path, vec)
        store = MappedDirectoryStore(tmp_path, codec="raw")
        with pytest.raises(TruncatedBlobError):
            store.attach_mapped(
                ("x", 0),
                len(vec),
                expected_bytes=len(payload) + 1,
                expected_crc=crc,
            )
        assert ("x", 0) not in store

    def test_long_file_is_manifest_mismatch(self, tmp_path, vec):
        payload, crc = self.make_blob(tmp_path, vec)
        store = MappedDirectoryStore(tmp_path, codec="raw")
        with pytest.raises(ManifestMismatchError):
            store.attach_mapped(
                ("x", 0),
                len(vec),
                expected_bytes=len(payload) - 1,
                expected_crc=crc,
            )

    def test_missing_file(self, tmp_path, vec):
        store = MappedDirectoryStore(tmp_path, codec="raw")
        with pytest.raises(MissingBlobError):
            store.attach_mapped(("nope", 0), 10)

    def test_base_store_payload_view_raises_for_unknown_key(self, tmp_path):
        store = MappedDirectoryStore(tmp_path, codec="raw")
        with pytest.raises(StorageError):
            store.payload_view(("nope", 0))


class TestFaultMode:
    def test_put_falls_back_to_copy(self, tmp_path, vec):
        with faults.injected():
            store = MappedDirectoryStore(tmp_path, codec="raw")
            store.put(("c", 0), vec)
            assert not store.is_mapped(("c", 0))
            assert store.get_view(("c", 0)) == vec

    def test_attach_mapped_falls_back_and_still_verifies(self, tmp_path, vec):
        writer = DirectoryStore(tmp_path, codec="raw")
        writer.put(("x", 0), vec)
        payload = writer.path_for(("x", 0)).read_bytes()
        with faults.injected():
            store = MappedDirectoryStore(tmp_path, codec="raw")
            with pytest.raises(ChecksumMismatchError):
                store.attach_mapped(
                    ("x", 0),
                    len(vec),
                    expected_bytes=len(payload),
                    expected_crc=0,
                )
            store.attach_mapped(
                ("x", 0),
                len(vec),
                expected_bytes=len(payload),
                expected_crc=zlib.crc32(payload) & 0xFFFFFFFF,
            )
            assert not store.is_mapped(("x", 0))
            assert store.get_view(("x", 0)) == vec


class TestCounters:
    def test_maps_and_view_bytes(self, tmp_path, vec):
        with obs.observed() as o:
            store = MappedDirectoryStore(tmp_path, codec="raw")
            store.put(("c", 0), vec)
            view = store.payload_view(("c", 0))
        assert o.counter_total("storage.mmap.maps") == 1
        assert o.counter_total("storage.mmap.view_bytes") == view.nbytes
        assert o.counter_total("storage.mmap.copy_fallbacks") == 0

    def test_copy_fallback_counted(self, tmp_path, vec):
        store = DirectoryStore(tmp_path, codec="raw")
        store.put(("c", 0), vec)
        with obs.observed() as o:
            store.payload_view(("c", 0))
        assert o.counter_total("storage.mmap.copy_fallbacks") == 1
        assert o.counter_total("storage.mmap.view_bytes") == 0


class TestBufferPoolParity:
    """The zero-copy read path must account byte-for-byte like copying.

    Same stores, same fetch sequence, same page size: every buffer
    counter, clock total and obs metric must agree exactly between a
    DirectoryStore (heap copies) and a MappedDirectoryStore (mmap
    views) — zero-copy changes where bytes live, never what a query
    costs.
    """

    KEYS = [("c", slot) for slot in range(6)]
    #: Forces evictions so LRU traffic is part of the comparison.
    CAPACITY = 40

    def run_sequence(self, store_cls, tmp_path, codec):
        store = store_cls(tmp_path, codec=codec, page_size=4096)
        for i, key in enumerate(self.KEYS):
            store.put(key, make_vector(seed=i, density=0.1 + 0.1 * i))
        clock = CostClock()
        pool = BufferPool(store, self.CAPACITY, clock=clock)
        with obs.observed() as o:
            for key in (self.KEYS + self.KEYS[::2]) * 3:
                pool.fetch(key)
        counters = {
            name: o.counter_total(name)
            for name in ("buffer.hits", "buffer.misses", "buffer.evictions")
        }
        return (
            pool.stats.hits,
            pool.stats.misses,
            pool.stats.evictions,
            pool.used_pages,
            clock.read_requests,
            clock.pages_read,
            clock.bytes_decompressed,
            clock.total_ms,
            counters,
        )

    @pytest.mark.parametrize("codec", ["raw", "ewah"])
    def test_identical_accounting(self, tmp_path, codec):
        copying = self.run_sequence(
            DirectoryStore, tmp_path / "copy", codec
        )
        mapped = self.run_sequence(
            MappedDirectoryStore, tmp_path / "mmap", codec
        )
        assert mapped == copying
