"""Tests for the LRU buffer pool and its cost accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector
from repro.errors import BufferError_
from repro.storage import BitmapStore, BufferPool, CostClock


def make_store(num_bitmaps: int = 8, length: int = 10_000) -> BitmapStore:
    # page_size 512 -> each decoded bitmap is ceil(1256/512) = 3 pages.
    store = BitmapStore(codec="raw", page_size=512)
    for i in range(num_bitmaps):
        store.put(i, BitVector.from_indices(length, [i]))
    return store


class TestLruSemantics:
    def test_hit_after_miss(self):
        pool = BufferPool(make_store(), capacity_pages=100)
        pool.fetch(0)
        pool.fetch(0)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1

    def test_eviction_order_is_lru(self):
        # Capacity for exactly two decoded bitmaps (3 pages each).
        pool = BufferPool(make_store(), capacity_pages=6)
        pool.fetch(0)
        pool.fetch(1)
        pool.fetch(0)      # touch 0 so 1 is the LRU victim
        pool.fetch(2)      # evicts 1
        assert pool.contains(0)
        assert not pool.contains(1)
        assert pool.contains(2)
        assert pool.stats.evictions == 1

    def test_capacity_never_exceeded(self):
        pool = BufferPool(make_store(), capacity_pages=7)
        for i in range(8):
            pool.fetch(i)
            assert pool.used_pages <= 7

    def test_oversized_fetch_still_served(self):
        pool = BufferPool(make_store(), capacity_pages=1)
        vector = pool.fetch(0)
        assert vector.count() == 1

    def test_stats_invariant_fetches(self):
        pool = BufferPool(make_store(), capacity_pages=6)
        for key in [0, 1, 2, 0, 1, 2, 2]:
            pool.fetch(key)
        assert pool.stats.fetches == pool.stats.hits + pool.stats.misses == 7

    def test_clear_drops_residents(self):
        pool = BufferPool(make_store(), capacity_pages=100)
        pool.fetch(0)
        pool.clear()
        assert pool.used_pages == 0
        pool.fetch(0)
        assert pool.stats.misses == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(BufferError_):
            BufferPool(make_store(), capacity_pages=0)

    def test_hit_ratio(self):
        pool = BufferPool(make_store(), capacity_pages=100)
        assert pool.stats.hit_ratio == 0.0
        pool.fetch(0)
        pool.fetch(0)
        pool.fetch(0)
        assert pool.stats.hit_ratio == pytest.approx(2 / 3)


class TestClockCharges:
    def test_miss_charges_io(self):
        clock = CostClock()
        pool = BufferPool(make_store(), capacity_pages=100, clock=clock)
        pool.fetch(0)
        assert clock.read_requests == 1
        assert clock.pages_read == 3
        assert clock.io_ms == pytest.approx(
            clock.model.seek_ms + 3 * clock.model.transfer_ms_per_page
        )

    def test_hit_charges_nothing(self):
        clock = CostClock()
        pool = BufferPool(make_store(), capacity_pages=100, clock=clock)
        pool.fetch(0)
        before = clock.total_ms
        pool.fetch(0)
        assert clock.total_ms == before

    def test_compressed_store_charges_decompression(self):
        store = BitmapStore(codec="bbc", page_size=512)
        store.put("x", BitVector.from_indices(10_000, [7]))
        clock = CostClock()
        pool = BufferPool(store, capacity_pages=100, clock=clock)
        pool.fetch("x")
        assert clock.bytes_decompressed > 0
        assert clock.cpu_ms > 0

    def test_raw_store_charges_no_decompression(self):
        clock = CostClock()
        pool = BufferPool(make_store(), capacity_pages=100, clock=clock)
        pool.fetch(0)
        assert clock.bytes_decompressed == 0

    def test_word_ops_and_reset(self):
        clock = CostClock()
        clock.charge_word_ops(4, 100)
        assert clock.words_operated == 400
        assert clock.cpu_ms > 0
        clock.reset()
        assert clock.total_ms == 0.0
        assert clock.words_operated == 0


class TestInPlaceResize:
    """Re-fetching a resident bitmap re-measures it (regression tests:
    the pool used to keep the page count recorded at insert time, so an
    in-place size change corrupted ``used_pages`` at eviction time)."""

    def test_refetch_after_growth_evicts_others_not_the_key(self):
        pool = BufferPool(make_store(), capacity_pages=9)
        vector = pool.fetch(0)
        pool.fetch(1)
        pool.fetch(2)  # 3 x 3 pages, pool exactly full
        # Grow key 0 in place: 40_000 bits = 5000 bytes -> 10 pages.
        BitVector.__init__(vector, 40_000)
        assert pool.fetch(0) is vector
        assert pool.stats.hits == 1
        assert pool.contains(0)
        assert not pool.contains(1)
        assert not pool.contains(2)
        assert pool.used_pages == 10  # oversized entries occupy the pool alone

    def test_refetch_after_shrink_frees_pages(self):
        pool = BufferPool(make_store(), capacity_pages=9)
        vector = pool.fetch(0)
        pool.fetch(1)
        pool.fetch(2)
        # Shrink key 0 in place: 512 bits = 64 bytes -> 1 page.
        BitVector.__init__(vector, 512)
        pool.fetch(0)
        assert pool.used_pages == 7
        pool.fetch(3)  # needs 3 pages; only the LRU entry (1) must go
        assert pool.stats.evictions == 1
        assert pool.contains(0)
        assert not pool.contains(1)
        assert pool.contains(2)
        assert pool.contains(3)
        assert pool.used_pages == 7

    def test_unchanged_hit_keeps_accounting(self):
        pool = BufferPool(make_store(), capacity_pages=9)
        pool.fetch(0)
        used = pool.used_pages
        pool.fetch(0)
        assert pool.used_pages == used
        assert pool.stats.evictions == 0


class TestEvictToFitKeep:
    """``_evict_to_fit(keep=...)`` must never evict the entry whose hit
    triggered the eviction, even when that entry alone no longer fits."""

    def grown_pool(self) -> BufferPool:
        pool = BufferPool(make_store(), capacity_pages=9)
        vector = pool.fetch(0)
        pool.fetch(1)
        pool.fetch(2)
        pool.fetch(1)  # make key 0 the LRU victim candidate
        # Grow key 0 in place past the whole capacity:
        # 80_000 bits = 10_000 bytes -> 20 pages > 9.
        BitVector.__init__(vector, 80_000)
        assert pool.fetch(0) is vector  # hit re-measures and evicts
        return pool

    def test_grown_entry_exceeding_capacity_survives_its_own_hit(self):
        pool = self.grown_pool()
        assert pool.contains(0)
        assert not pool.contains(1)
        assert not pool.contains(2)
        assert pool.stats.evictions == 2
        # The loop terminates with only the protected entry resident,
        # over capacity — oversized entries occupy the pool alone.
        assert pool.used_pages == 20 > pool.capacity_pages

    def test_next_miss_evicts_the_oversized_entry(self):
        pool = self.grown_pool()
        pool.fetch(3)
        assert not pool.contains(0)
        assert pool.contains(3)
        assert pool.used_pages == 3
        assert pool.stats.evictions == 3


class TestClearStats:
    def test_clear_preserves_every_counter_exactly(self):
        pool = BufferPool(make_store(), capacity_pages=6)
        # misses: 0, 1, 2 (evicts 0), 0 (evicts 1); hit: 2.
        for key in [0, 1, 2, 0, 2]:
            pool.fetch(key)
        assert (pool.stats.hits, pool.stats.misses, pool.stats.evictions) == (
            1, 4, 2,
        )
        pool.clear()
        assert pool.used_pages == 0
        assert not pool.contains(0)
        assert (pool.stats.hits, pool.stats.misses, pool.stats.evictions) == (
            1, 4, 2,
        )
        assert pool.stats.hit_ratio == pytest.approx(1 / 5)


@given(
    sequence=st.lists(st.integers(min_value=0, max_value=7), max_size=60),
    capacity=st.integers(min_value=3, max_value=30),
)
@settings(max_examples=150, deadline=None)
def test_pool_properties(sequence, capacity):
    """Invariants under arbitrary access sequences: correct contents,
    bounded residency, consistent stats."""
    store = make_store()
    pool = BufferPool(store, capacity_pages=capacity)
    for key in sequence:
        vector = pool.fetch(key)
        assert vector == store.get(key)
        assert pool.used_pages <= max(capacity, 3)
    assert pool.stats.fetches == len(sequence)
    assert pool.stats.hits + pool.stats.misses == len(sequence)
    assert pool.stats.evictions <= pool.stats.misses
