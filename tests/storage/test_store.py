"""Tests for the page model and the bitmap stores."""

import pytest

from repro.bitmap import BitVector
from repro.errors import StorageError
from repro.storage import BitmapStore, DirectoryStore, pages_for


class TestPages:
    def test_rounding(self):
        assert pages_for(0) == 1
        assert pages_for(1) == 1
        assert pages_for(8192) == 1
        assert pages_for(8193) == 2

    def test_custom_page_size(self):
        assert pages_for(100, page_size=64) == 2

    def test_invalid_inputs(self):
        with pytest.raises(StorageError):
            pages_for(-1)
        with pytest.raises(StorageError):
            pages_for(10, page_size=0)


class TestBitmapStore:
    def test_put_get_roundtrip(self):
        store = BitmapStore(codec="bbc")
        vector = BitVector.from_indices(1000, [1, 500, 999])
        store.put("x", vector)
        assert store.get("x") == vector

    def test_info(self):
        store = BitmapStore(codec="raw", page_size=64)
        vector = BitVector.ones(1000)
        info = store.put("x", vector)
        assert info.length == 1000
        assert info.encoded_bytes == vector.num_words * 8
        assert info.pages == pages_for(info.encoded_bytes, 64)

    def test_unknown_key(self):
        store = BitmapStore()
        with pytest.raises(StorageError):
            store.get("missing")
        with pytest.raises(StorageError):
            store.info("missing")

    def test_replace(self):
        store = BitmapStore()
        store.put("x", BitVector.zeros(64))
        store.put("x", BitVector.ones(64))
        assert store.get("x").count() == 64
        assert len(store) == 1

    def test_totals(self):
        store = BitmapStore(codec="raw", page_size=64)
        store.put("a", BitVector.zeros(1000))
        store.put("b", BitVector.zeros(1000))
        assert store.total_bytes() == 2 * 16 * 8
        assert store.total_pages() == 2 * 2
        assert set(store.keys()) == {"a", "b"}
        assert "a" in store and "c" not in store

    def test_compressed_store_smaller_on_sparse_data(self):
        raw = BitmapStore(codec="raw")
        bbc = BitmapStore(codec="bbc")
        vector = BitVector.from_indices(100_000, [5])
        raw.put("x", vector)
        bbc.put("x", vector)
        assert bbc.total_bytes() < raw.total_bytes() / 100


class TestDirectoryStore:
    def test_files_written_and_readable(self, tmp_path):
        store = DirectoryStore(tmp_path, codec="bbc")
        vector = BitVector.from_indices(500, [3, 400])
        store.put("k", vector)
        path = store.path_for("k")
        assert path.exists()
        assert path.read_bytes() == store._payload("k")
        assert store.read_from_disk("k") == vector

    def test_replace_reuses_file(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.put("k", BitVector.zeros(64))
        first = store.path_for("k")
        store.put("k", BitVector.ones(64))
        assert store.path_for("k") == first
        assert store.read_from_disk("k").count() == 64

    def test_unknown_key(self, tmp_path):
        store = DirectoryStore(tmp_path)
        with pytest.raises(StorageError):
            store.path_for("nope")
