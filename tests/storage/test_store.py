"""Tests for the page model and the bitmap stores."""

import pytest

from repro.bitmap import BitVector
from repro.errors import StorageError
from repro.storage import (
    BitmapStore,
    DirectoryStore,
    pages_for,
    stable_blob_name,
    validate_page_size,
)


class TestPages:
    def test_rounding(self):
        assert pages_for(0) == 1
        assert pages_for(1) == 1
        assert pages_for(8192) == 1
        assert pages_for(8193) == 2

    def test_custom_page_size(self):
        assert pages_for(100, page_size=64) == 2

    def test_invalid_inputs(self):
        with pytest.raises(StorageError):
            pages_for(-1)
        with pytest.raises(StorageError):
            pages_for(10, page_size=0)

    def test_validate_page_size(self):
        assert validate_page_size(1) == 1
        with pytest.raises(StorageError):
            validate_page_size(0)

    def test_store_rejects_bad_page_size_at_construction(self, tmp_path):
        with pytest.raises(StorageError):
            BitmapStore(page_size=0)
        with pytest.raises(StorageError):
            DirectoryStore(tmp_path, page_size=-8)


class TestStableBlobNames:
    def test_deterministic_and_distinct(self):
        keys = [(0, 3), (1, 3), (0, ("P", 2)), (0, "x"), "x", 7, (7,)]
        names = [stable_blob_name(k) for k in keys]
        assert names == [stable_blob_name(k) for k in keys]  # stable
        assert len(set(names)) == len(keys)  # collision-free
        assert all(n.endswith(".bm") for n in names)

    def test_lookalike_keys_do_not_collide(self):
        # str(key) collides for these; the canonical digest must not.
        pairs = [((0, 12), (1, "2")), ((0, "1"), (0, 1)), (("a",), "a")]
        for a, b in pairs:
            assert stable_blob_name(a) != stable_blob_name(b), (a, b)

    def test_unstable_key_types_rejected(self):
        with pytest.raises(StorageError):
            stable_blob_name(object())


class TestBitmapStore:
    def test_put_get_roundtrip(self):
        store = BitmapStore(codec="bbc")
        vector = BitVector.from_indices(1000, [1, 500, 999])
        store.put("x", vector)
        assert store.get("x") == vector

    def test_info(self):
        store = BitmapStore(codec="raw", page_size=64)
        vector = BitVector.ones(1000)
        info = store.put("x", vector)
        assert info.length == 1000
        assert info.encoded_bytes == vector.num_words * 8
        assert info.pages == pages_for(info.encoded_bytes, 64)

    def test_unknown_key(self):
        store = BitmapStore()
        with pytest.raises(StorageError):
            store.get("missing")
        with pytest.raises(StorageError):
            store.info("missing")

    def test_replace(self):
        store = BitmapStore()
        store.put("x", BitVector.zeros(64))
        store.put("x", BitVector.ones(64))
        assert store.get("x").count() == 64
        assert len(store) == 1

    def test_totals(self):
        store = BitmapStore(codec="raw", page_size=64)
        store.put("a", BitVector.zeros(1000))
        store.put("b", BitVector.zeros(1000))
        assert store.total_bytes() == 2 * 16 * 8
        assert store.total_pages() == 2 * 2
        assert set(store.keys()) == {"a", "b"}
        assert "a" in store and "c" not in store

    def test_compressed_store_smaller_on_sparse_data(self):
        raw = BitmapStore(codec="raw")
        bbc = BitmapStore(codec="bbc")
        vector = BitVector.from_indices(100_000, [5])
        raw.put("x", vector)
        bbc.put("x", vector)
        assert bbc.total_bytes() < raw.total_bytes() / 100


class TestDirectoryStore:
    def test_files_written_and_readable(self, tmp_path):
        store = DirectoryStore(tmp_path, codec="bbc")
        vector = BitVector.from_indices(500, [3, 400])
        store.put("k", vector)
        path = store.path_for("k")
        assert path.exists()
        assert path.read_bytes() == store._payload("k")
        assert store.read_from_disk("k") == vector

    def test_replace_reuses_file(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.put("k", BitVector.zeros(64))
        first = store.path_for("k")
        store.put("k", BitVector.ones(64))
        assert store.path_for("k") == first
        assert store.read_from_disk("k").count() == 64

    def test_unknown_key(self, tmp_path):
        store = DirectoryStore(tmp_path)
        with pytest.raises(StorageError):
            store.path_for("nope")

    def test_reopen_over_nonempty_directory_no_collision(self, tmp_path):
        # Regression: the old sequential-id naming restarted at 0 when a
        # store was constructed over a non-empty directory, so a put for
        # a new key silently overwrote a different key's file.
        first = DirectoryStore(tmp_path)
        first.put("a", BitVector.ones(64))
        a_path = first.path_for("a")

        second = DirectoryStore(tmp_path)
        second.put("b", BitVector.zeros(64))
        assert second.path_for("b") != a_path
        assert first.read_from_disk("a").count() == 64

    def test_same_key_same_file_across_processes(self, tmp_path):
        store1 = DirectoryStore(tmp_path / "one")
        store2 = DirectoryStore(tmp_path / "two")
        store1.put((0, 3), BitVector.ones(32))
        store2.put((0, 3), BitVector.ones(32))
        assert store1.path_for((0, 3)).name == store2.path_for((0, 3)).name

    def test_put_payload_writes_bytes_verbatim(self, tmp_path):
        store = DirectoryStore(tmp_path, codec="bbc")
        vector = BitVector.from_indices(300, [7, 8, 250])
        payload = store.codec.encode(vector)
        store.put_payload("k", payload, 300)
        assert store.path_for("k").read_bytes() == payload
        assert store.get("k") == vector

    def test_attach_payload_does_not_write(self, tmp_path):
        store = DirectoryStore(tmp_path, codec="raw")
        vector = BitVector.ones(128)
        payload = store.codec.encode(vector)
        store.attach_payload("k", payload, 128)
        assert store.get("k") == vector
        assert not store.path_for("k").exists()

    def test_no_temp_files_after_puts(self, tmp_path):
        store = DirectoryStore(tmp_path)
        for i in range(5):
            store.put(("c", i), BitVector.ones(64))
        assert list(tmp_path.glob("*.tmp")) == []
