"""Tests for the disk model, presets and cost clock arithmetic."""

import pytest

from repro.storage import (
    DEFAULT_DISK_MODEL,
    DISK_MODEL_PRESETS,
    CostClock,
    DiskModel,
    get_disk_model,
)


class TestPresets:
    def test_four_generations(self):
        assert set(DISK_MODEL_PRESETS) == {
            "hdd-1999",
            "hdd-2005",
            "ssd-2015",
            "nvme-2020",
        }

    def test_default_is_the_paper_era(self):
        assert DEFAULT_DISK_MODEL == get_disk_model("hdd-1999")

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_disk_model("tape-1980")

    def test_io_costs_collapse_over_time(self):
        order = ["hdd-1999", "hdd-2005", "ssd-2015", "nvme-2020"]
        seeks = [get_disk_model(name).seek_ms for name in order]
        transfers = [
            get_disk_model(name).transfer_ms_per_page for name in order
        ]
        assert seeks == sorted(seeks, reverse=True)
        assert transfers == sorted(transfers, reverse=True)

    def test_transfer_to_decompress_ratio_collapses(self):
        """The quantity Figure 9's crossover hinges on: ms of transfer
        saved per byte of compression vs ns to decode a byte."""
        order = ["hdd-1999", "hdd-2005", "ssd-2015", "nvme-2020"]
        ratios = [
            get_disk_model(name).transfer_ms_per_page
            / get_disk_model(name).decompress_ns_per_byte
            for name in order
        ]
        assert ratios == sorted(ratios, reverse=True)


class TestCostClock:
    def test_read_charges(self):
        clock = CostClock(model=DiskModel(seek_ms=5.0, transfer_ms_per_page=1.0))
        clock.charge_read(3)
        assert clock.read_requests == 1
        assert clock.pages_read == 3
        assert clock.io_ms == pytest.approx(5.0 + 3.0)
        assert clock.cpu_ms == 0.0

    def test_decompress_charges(self):
        clock = CostClock(model=DiskModel(decompress_ns_per_byte=100.0))
        clock.charge_decompress(1_000_000)
        assert clock.bytes_decompressed == 1_000_000
        assert clock.cpu_ms == pytest.approx(100.0 * 1_000_000 * 1e-6)

    def test_word_op_charges(self):
        clock = CostClock(model=DiskModel(cpu_ns_per_word=10.0))
        clock.charge_word_ops(operations=5, words_per_operation=1000)
        assert clock.words_operated == 5000
        assert clock.cpu_ms == pytest.approx(10.0 * 5000 * 1e-6)

    def test_total_and_reset(self):
        clock = CostClock()
        clock.charge_read(1)
        clock.charge_word_ops(1, 64)
        assert clock.total_ms == pytest.approx(clock.io_ms + clock.cpu_ms)
        clock.reset()
        assert clock.total_ms == 0.0
        assert clock.read_requests == 0
        assert clock.model == DEFAULT_DISK_MODEL
