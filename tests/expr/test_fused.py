"""Fused block-at-a-time evaluation: correctness, accounting, planning."""

import numpy as np
import pytest

from repro import obs
from repro.bitmap import BitVector
from repro.compress import get_codec, open_stream
from repro.errors import BitmapError
from repro.expr import (
    DEFAULT_BLOCK_WORDS,
    EvalStats,
    evaluate,
    evaluate_fused,
    evaluate_fused_streams,
    leaf,
    one,
    plan_physical,
    zero,
)
from repro.expr.fused import MAX_BLOCK_WORDS, MIN_BLOCK_WORDS, clamp_block_words


def make_bitmaps(length, seed=0, keys="abcd"):
    rng = np.random.default_rng(seed)
    return {
        key: BitVector.from_bools(rng.random(length) < density)
        for key, density in zip(keys, (0.3, 0.5, 0.05, 0.9))
    }


# Spans several blocks at the smallest block size, with a ragged tail.
LENGTH = MIN_BLOCK_WORDS * 64 * 3 + 17
BITMAPS = make_bitmaps(LENGTH)

EXPRS = [
    leaf("a"),
    ~leaf("a"),
    leaf("a") & leaf("b"),
    (leaf("a") & leaf("b")) | leaf("c"),
    ~(leaf("a") ^ leaf("b")),
    (~leaf("a") | leaf("b")) & ~(leaf("c") ^ ~leaf("d")),
    (leaf("a") | one()) ^ (leaf("b") & zero()),
    ~~leaf("a") & ~(~leaf("b")),
]


class TestCorrectness:
    @pytest.mark.parametrize("expr", EXPRS, ids=[str(i) for i in range(len(EXPRS))])
    def test_matches_materializing(self, expr):
        reference = evaluate(expr, BITMAPS.get, LENGTH)
        fused = evaluate_fused(
            expr, BITMAPS.get, LENGTH, block_words=MIN_BLOCK_WORDS
        )
        assert fused == reference

    def test_padding_bits_clean_after_folded_not(self):
        # A folded complement sets padding bits inside blocks; the final
        # mask must clear them so count()/to_indices() stay correct.
        length = 100
        vec = BitVector.from_indices(length, [0, 99])
        result = evaluate_fused(~leaf("a"), {"a": vec}.get, length)
        assert result.count() == length - 2
        assert int(result.words[-1]) >> (length % 64) == 0

    def test_result_does_not_alias_fetched_bitmap(self):
        original = bool(BITMAPS["a"][10])
        result = evaluate_fused(leaf("a"), BITMAPS.get, LENGTH)
        result[10] = not original
        assert bool(BITMAPS["a"][10]) == original

    def test_block_size_invariance(self):
        expr = (~leaf("a") | leaf("b")) & ~(leaf("c") ^ leaf("d"))
        reference = evaluate_fused(expr, BITMAPS.get, LENGTH)
        for block_words in (MIN_BLOCK_WORDS, 1024, MAX_BLOCK_WORDS):
            assert (
                evaluate_fused(
                    expr, BITMAPS.get, LENGTH, block_words=block_words
                )
                == reference
            )

    def test_length_mismatch_detected(self):
        with pytest.raises(BitmapError):
            evaluate_fused(leaf("a"), BITMAPS.get, LENGTH + 1)


class TestAccounting:
    @pytest.mark.parametrize("expr", EXPRS, ids=[str(i) for i in range(len(EXPRS))])
    def test_stats_match_materializing(self, expr):
        mat, fus = EvalStats(), EvalStats()
        evaluate(expr, BITMAPS.get, LENGTH, mat)
        evaluate_fused(expr, BITMAPS.get, LENGTH, fus)
        assert fus.scans == mat.scans
        assert fus.operations == mat.operations
        assert fus.fetched_keys == mat.fetched_keys

    def test_shared_cache_suppresses_refetch(self):
        cache, stats = {}, EvalStats()
        evaluate_fused(leaf("a") & leaf("b"), BITMAPS.get, LENGTH, stats, cache)
        evaluate_fused(leaf("a") | leaf("c"), BITMAPS.get, LENGTH, stats, cache)
        assert stats.scans == 3

    def test_cse_charge_is_memoized(self):
        shared = leaf("a") & leaf("b")
        stats = EvalStats()
        evaluate_fused(shared | shared, BITMAPS.get, LENGTH, stats)
        # Logical charge matches the materializing memo: AND once + OR.
        assert stats.operations == 2

    def test_obs_counters(self):
        expr = ~(leaf("a") & ~leaf("b"))
        with obs.observed() as o:
            evaluate_fused(
                expr, BITMAPS.get, LENGTH, block_words=MIN_BLOCK_WORDS
            )
        words = -(-LENGTH // 64)
        expected_blocks = -(-words // MIN_BLOCK_WORDS)
        assert o.counter_total("expr.fused.blocks") == expected_blocks
        assert o.counter_total("expr.fused.not_folds") == 2
        assert o.metrics.find("expr.intermediate_allocs", mode="fused").value == 0

    def test_materializing_counts_intermediates(self):
        expr = ~(leaf("a") & leaf("b"))
        with obs.observed() as o:
            evaluate(expr, BITMAPS.get, LENGTH)
        found = o.metrics.find("expr.intermediate_allocs", mode="materialize")
        assert found.value == 2  # the AND copy + the NOT


class TestStreams:
    @pytest.mark.parametrize("codec", ["raw", "bbc", "wah", "ewah", "roaring"])
    def test_encoded_leaves_stream(self, codec):
        payloads = {
            key: get_codec(codec).encode(vec) for key, vec in BITMAPS.items()
        }

        def open_leaf(key):
            return open_stream(codec, payloads[key], LENGTH)

        expr = (~leaf("a") | leaf("b")) & ~(leaf("c") ^ leaf("d"))
        reference = evaluate(expr, BITMAPS.get, LENGTH)
        stats = EvalStats()
        result = evaluate_fused_streams(
            expr, open_leaf, LENGTH, stats, block_words=MIN_BLOCK_WORDS
        )
        assert result == reference
        assert stats.scans == 4

    def test_stream_length_mismatch_detected(self):
        payload = get_codec("ewah").encode(BITMAPS["a"])

        def open_leaf(key):
            return open_stream("ewah", payload, LENGTH)

        with pytest.raises(BitmapError):
            evaluate_fused_streams(leaf("a"), open_leaf, LENGTH - 1)


class TestPlanner:
    def test_small_vectors_materialize(self):
        expr = leaf("a") & leaf("b") & leaf("c")
        assert plan_physical(expr, 1000) == "materialize"

    def test_trivial_expressions_materialize(self):
        long_enough = DEFAULT_BLOCK_WORDS * 64 * 4
        assert plan_physical(leaf("a"), long_enough) == "materialize"
        assert plan_physical(~leaf("a"), long_enough) == "materialize"

    def test_large_compound_fuses(self):
        expr = leaf("a") & leaf("b") & leaf("c")
        assert plan_physical(expr, DEFAULT_BLOCK_WORDS * 64 * 4) == "fused"

    def test_threshold_scales_with_block_size(self):
        expr = leaf("a") & leaf("b") & leaf("c")
        length = MIN_BLOCK_WORDS * 64 * 2
        assert plan_physical(expr, length, MIN_BLOCK_WORDS) == "fused"
        assert plan_physical(expr, length - 64, MIN_BLOCK_WORDS) == "materialize"

    def test_clamp(self):
        assert clamp_block_words(1) == MIN_BLOCK_WORDS
        assert clamp_block_words(10**9) == MAX_BLOCK_WORDS
        assert clamp_block_words(1024) == 1024
