"""Simplification vs. the bitmap evaluator on random expressions.

The existing simplify tests verify equivalence under *set semantics*
(:meth:`Expr.value_set`).  The engine, however, runs simplified
expressions through :func:`repro.expr.evaluate` over real
:class:`~repro.bitmap.BitVector` objects — so this suite closes the
loop under *bitmap semantics*: for random expression trees,

* ``simplify`` is idempotent (a normal form, not just a rewrite), and
* ``evaluate(simplify(e)) == evaluate(e)`` bit for bit, and
* simplification never increases the number of distinct leaves
  (the scan-count guarantee stated in its module docstring).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import BitVector
from repro.expr import And, Const, Leaf, Not, Or, Xor, evaluate, simplify

#: Deliberately not a multiple of 64 so complements exercise tail-bit
#: masking.
NUM_BITS = 131

KEYS = tuple(range(5))


def make_bitmaps(seed: int) -> dict[int, BitVector]:
    rng = random.Random(seed)
    return {
        key: BitVector.from_indices(
            NUM_BITS,
            [i for i in range(NUM_BITS) if rng.random() < 0.3],
        )
        for key in KEYS
    }


def expressions() -> st.SearchStrategy:
    atoms = st.sampled_from(
        [Leaf(key) for key in KEYS] + [Const(True), Const(False)]
    )

    def compound(children: st.SearchStrategy) -> st.SearchStrategy:
        operands = st.lists(children, min_size=1, max_size=4).map(tuple)
        return st.one_of(
            children.map(Not),
            operands.map(And),
            operands.map(Or),
            operands.map(Xor),
        )

    return st.recursive(atoms, compound, max_leaves=12)


@settings(max_examples=300, deadline=None)
@given(expr=expressions(), seed=st.integers(min_value=0, max_value=2**16))
def test_simplify_preserves_bitmap_semantics(expr, seed):
    bitmaps = make_bitmaps(seed)
    simplified = simplify(expr)
    before = evaluate(expr, bitmaps.__getitem__, NUM_BITS)
    after = evaluate(simplified, bitmaps.__getitem__, NUM_BITS)
    assert before == after, f"{expr} != {simplified}"


@settings(max_examples=300, deadline=None)
@given(expr=expressions())
def test_simplify_is_idempotent(expr):
    once = simplify(expr)
    assert simplify(once) == once, f"{expr} -> {once} -> {simplify(once)}"


@settings(max_examples=300, deadline=None)
@given(expr=expressions())
def test_simplify_never_adds_scans(expr):
    assert len(simplify(expr).leaf_keys()) <= len(expr.leaf_keys())
