"""Tests for expression tree/DOT rendering."""

from repro.expr import leaf, not_of, one, to_dot, to_tree


class TestToTree:
    def test_indented_structure(self):
        expr = (leaf("a") & leaf("b")) | not_of(leaf("c"))
        text = to_tree(expr)
        lines = text.splitlines()
        assert lines[0] == "OR"
        assert "  AND" in lines
        assert "    bitmap 'a'" in lines
        assert "  NOT" in lines

    def test_constants(self):
        assert to_tree(one()) == "ONE"

    def test_leaf_only(self):
        assert to_tree(leaf((0, 3))) == "bitmap (0, 3)"


class TestToDot:
    def test_valid_dot_structure(self):
        expr = leaf("a") ^ leaf("b")
        dot = to_dot(expr, graph_name="g")
        assert dot.startswith("digraph g {")
        assert dot.rstrip().endswith("}")
        assert 'label="XOR"' in dot
        assert dot.count("->") == 2

    def test_shared_subexpressions_collapse(self):
        shared = leaf("a") & leaf("b")
        expr = shared | shared
        dot = to_dot(expr)
        # The AND node and its leaves appear once; OR points at the AND twice.
        assert dot.count('label="AND"') == 1
        assert dot.count('label="bitmap \'a\'"') == 1

    def test_leaves_are_boxes(self):
        dot = to_dot(leaf("a") & one())
        assert "shape=box" in dot
        assert "shape=ellipse" in dot

    def test_rewriter_output_renders(self):
        from repro.encoding import get_scheme
        from repro.index.rewrite import QueryRewriter
        from repro.queries import MembershipQuery

        rewriter = QueryRewriter(100, (10, 10), get_scheme("E"))
        expr = rewriter.rewrite(MembershipQuery.of({5, 40, 41, 42}, 100))
        dot = to_dot(expr)
        assert "digraph" in dot
        text = to_tree(expr)
        assert "bitmap" in text
