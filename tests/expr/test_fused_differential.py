"""Differential property suite: fused ≡ materializing ≡ naive.

Three independent evaluators must agree bit-for-bit on random
expression trees:

* the **naive** oracle — numpy boolean arrays, no blocks, no codecs;
* the **materializing** evaluator (:func:`repro.expr.evaluate`);
* the **fused** block-at-a-time evaluator, both over decoded vectors
  (:func:`~repro.expr.evaluate_fused`) and over encoded payloads
  streamed through every codec's block kernel
  (:func:`~repro.expr.evaluate_fused_streams`).

Lengths deliberately straddle the fusion boundaries: the block size in
bits ± one word (first/last block edge cases), 2^16 ± 1 (roaring
container edges), and word/byte/31-bit-group edges inherited from the
codec suite.  The index-level test additionally drives every encoding
scheme's rewrite output through both engine modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector
from repro.compress import get_codec, open_stream
from repro.expr import Threshold, evaluate, evaluate_fused, evaluate_fused_streams
from repro.expr.fused import MIN_BLOCK_WORDS
from repro.expr.nodes import And, Const, Leaf, Not, Or, Xor, leaf, one, zero
from repro.index import BitmapIndex, IndexSpec
from repro.queries.model import IntervalQuery, MembershipQuery

CODEC_NAMES = ("raw", "bbc", "wah", "ewah", "roaring")
SCHEME_NAMES = ("E", "R", "I", "ER", "O", "EI", "EI*")
KEYS = ("a", "b", "c", "d")

BLOCK_BITS = MIN_BLOCK_WORDS * 64
#: Block edges (±1 word), roaring container edges, word/byte edges.
BOUNDARY_LENGTHS = sorted(
    {1, 63, 64, 65, 100, 1000}
    | {BLOCK_BITS - 64, BLOCK_BITS, BLOCK_BITS + 64}
    | {2 * BLOCK_BITS + 1, 3 * BLOCK_BITS - 64}
    | {2**16 - 1, 2**16, 2**16 + 1}
)

lengths = st.sampled_from(BOUNDARY_LENGTHS)
densities = st.sampled_from([0.0, 0.05, 0.5, 0.95, 1.0])


def expression_trees():
    leaves = st.sampled_from([leaf(k) for k in KEYS] + [one(), zero()])
    return st.recursive(
        leaves,
        lambda child: st.one_of(
            child.map(lambda c: ~c),
            st.tuples(child, child).map(lambda ab: ab[0] & ab[1]),
            st.tuples(child, child).map(lambda ab: ab[0] | ab[1]),
            st.tuples(child, child).map(lambda ab: ab[0] ^ ab[1]),
            st.lists(child, min_size=1, max_size=4).flatmap(
                lambda cs: st.integers(1, len(cs)).map(
                    lambda k: Threshold(k, tuple(cs))
                )
            ),
        ),
        max_leaves=8,
    )


def negated_child_thresholds():
    """Thresholds whose children mix plain and NOT-wrapped leaves.

    Guaranteed at least one negated child — the fused path folds the
    NOT into the child's invert flag, and :mod:`repro.expr.simplify`
    deliberately refuses to touch these nodes, so the differential
    suite is their only equivalence check.
    """
    children = st.lists(
        st.sampled_from(
            [leaf(k) for k in KEYS] + [~leaf(k) for k in KEYS]
        ),
        min_size=2,
        max_size=6,
    ).filter(lambda cs: any(isinstance(c, Not) for c in cs))
    return children.flatmap(
        lambda cs: st.integers(1, len(cs)).map(
            lambda k: Threshold(k, tuple(cs))
        )
    )


def random_bitmaps(length: int, density: float, seed: int):
    rng = np.random.default_rng(seed)
    return {
        key: BitVector.from_bools(rng.random(length) < density)
        for key in KEYS
    }


def naive(expr, bitmaps, length) -> np.ndarray:
    """Reference semantics on plain boolean arrays."""
    if isinstance(expr, Leaf):
        return bitmaps[expr.key].to_bools()
    if isinstance(expr, Const):
        return np.full(length, bool(expr.value))
    if isinstance(expr, Not):
        return ~naive(expr.child, bitmaps, length)
    if isinstance(expr, Threshold):
        counts = np.zeros(length, dtype=np.int64)
        for child in expr.children():
            counts += naive(child, bitmaps, length)
        return counts >= expr.k
    op = {And: np.logical_and, Or: np.logical_or, Xor: np.logical_xor}[
        type(expr)
    ]
    parts = [naive(child, bitmaps, length) for child in expr.children()]
    result = parts[0]
    for part in parts[1:]:
        result = op(result, part)
    return result


@given(
    expr=expression_trees(),
    length=lengths,
    density=densities,
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=80, deadline=None)
def test_fused_matches_materializing_and_naive(expr, length, density, seed):
    bitmaps = random_bitmaps(length, density, seed)
    oracle = naive(expr, bitmaps, length)
    materialized = evaluate(expr, bitmaps.get, length)
    fused = evaluate_fused(
        expr, bitmaps.get, length, block_words=MIN_BLOCK_WORDS
    )
    assert materialized.to_bools().tolist() == oracle.tolist()
    assert fused == materialized


@pytest.mark.parametrize("codec", CODEC_NAMES)
@given(
    expr=expression_trees(),
    length=lengths,
    density=densities,
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=25, deadline=None)
def test_streamed_leaves_match_all_codecs(codec, expr, length, density, seed):
    bitmaps = random_bitmaps(length, density, seed)
    payloads = {
        key: get_codec(codec).encode(vec) for key, vec in bitmaps.items()
    }
    reference = evaluate(expr, bitmaps.get, length)
    fused = evaluate_fused_streams(
        expr,
        lambda key: open_stream(codec, payloads[key], length),
        length,
        block_words=MIN_BLOCK_WORDS,
    )
    assert fused == reference


@given(
    expr=negated_child_thresholds(),
    length=lengths,
    density=densities,
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=60, deadline=None)
def test_fused_threshold_with_negated_children(expr, length, density, seed):
    """NOT-folding under Threshold: fused invert flags ≡ materializing.

    These are exactly the nodes ``simplify`` refuses to rewrite; the
    fused path still folds each child's NOT into its invert flag, and
    this suite is the equivalence proof for that folding.
    """
    bitmaps = random_bitmaps(length, density, seed)
    oracle = naive(expr, bitmaps, length)
    materialized = evaluate(expr, bitmaps.get, length)
    fused = evaluate_fused(
        expr, bitmaps.get, length, block_words=MIN_BLOCK_WORDS
    )
    assert materialized.to_bools().tolist() == oracle.tolist()
    assert fused == materialized


@pytest.mark.parametrize("codec", CODEC_NAMES)
@given(
    expr=negated_child_thresholds(),
    length=lengths,
    density=densities,
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=15, deadline=None)
def test_streamed_threshold_negated_children(codec, expr, length, density, seed):
    bitmaps = random_bitmaps(length, density, seed)
    payloads = {
        key: get_codec(codec).encode(vec) for key, vec in bitmaps.items()
    }
    reference = evaluate(expr, bitmaps.get, length)
    fused = evaluate_fused_streams(
        expr,
        lambda key: open_stream(codec, payloads[key], length),
        length,
        block_words=MIN_BLOCK_WORDS,
    )
    assert fused == reference


# Straddles MIN_BLOCK_WORDS blocks so forced fusion is multi-block.
INDEX_RECORDS = BLOCK_BITS * 2 + 17
INDEX_CARDINALITY = 12


@pytest.fixture(scope="module")
def scheme_indexes():
    rng = np.random.default_rng(7)
    values = rng.integers(0, INDEX_CARDINALITY, INDEX_RECORDS)
    return {
        scheme: BitmapIndex.build(
            values,
            IndexSpec(cardinality=INDEX_CARDINALITY, scheme=scheme),
        )
        for scheme in SCHEME_NAMES
    }


@pytest.mark.parametrize("scheme", SCHEME_NAMES)
@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_engine_modes_agree_per_scheme(scheme_indexes, scheme, data):
    index = scheme_indexes[scheme]
    lo = data.draw(st.integers(0, INDEX_CARDINALITY - 1), label="lo")
    hi = data.draw(st.integers(lo, INDEX_CARDINALITY - 1), label="hi")
    members = data.draw(
        st.frozensets(
            st.integers(0, INDEX_CARDINALITY - 1), min_size=1, max_size=5
        ),
        label="members",
    )
    for query in (
        IntervalQuery(lo, hi, INDEX_CARDINALITY),
        MembershipQuery(members, INDEX_CARDINALITY),
    ):
        materialized = index.query(query, fused=False)
        forced = index.query(query, fused=True, block_words=MIN_BLOCK_WORDS)
        auto = index.query(query, block_words=MIN_BLOCK_WORDS)
        assert forced.bitmap == materialized.bitmap
        assert auto.bitmap == materialized.bitmap
        assert forced.stats.scans == materialized.stats.scans
        assert forced.stats.operations == materialized.stats.operations
        assert forced.simulated_ms == pytest.approx(
            materialized.simulated_ms, abs=1e-12
        )
