"""Differential oracle suite for the threshold (k-of-N) algebra.

Three independent answers must agree bit-for-bit:

* ``Threshold(k, ...)`` through the real evaluators — materializing,
  compressed-domain multiway kernel per codec, and the index engines;
* the **naive count scan** — numpy integer counts per row, no bitmaps;
* the **OR/AND-chain expansion** — ``k = 1`` as a pairwise OR fold,
  ``k = N`` as a pairwise AND fold, and general ``k`` (small N) as the
  full OR-of-AND-subsets blowup the threshold node exists to avoid.

The sweeps cover all 5 codecs x 7 schemes, ``k in {1, 2, N-1, N}``
with N up to 32, and lengths straddling the counting-block and roaring
container boundaries (block +/- 1 word, 2^16 +/- 1).  The suite also
pins the helper algebra (``at_least``/``exactly``/``majority``,
``lower_wide_ors``) and the two deliberate ``simplify`` non-rewrites:
no child deduplication (multiset semantics) and no rewriting of
children that contain NOT nodes.
"""

from functools import reduce
from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector
from repro.compress import get_codec
from repro.compress.multiway import multiway_threshold, threshold_vectors
from repro.encoding import ALL_SCHEME_NAMES
from repro.errors import BitmapError, QueryError
from repro.expr import (
    Threshold,
    at_least,
    evaluate,
    evaluate_fused,
    exactly,
    expression_operation_count,
    lower_wide_ors,
    majority,
    simplify,
)
from repro.expr.fused import MIN_BLOCK_WORDS
from repro.expr.nodes import And, Const, Leaf, Not, Or, leaf, one, zero
from repro.index import BitmapIndex, CompressedQueryEngine, IndexSpec
from repro.queries import IntervalQuery, MembershipQuery, ThresholdQuery

CODEC_NAMES = ("raw", "bbc", "wah", "ewah", "roaring")
COMPRESSED_CODECS = ("bbc", "wah", "ewah", "roaring")

#: Counting-block edges (the multiway kernel runs at ``block_words``
#: words per window; 32 words = 2048 bits here), roaring container
#: edges, and word edges.
TEST_BLOCK_WORDS = 32
BLOCK_BITS = TEST_BLOCK_WORDS * 64
BOUNDARY_LENGTHS = sorted(
    {1, 63, 64, 65, 1000}
    | {BLOCK_BITS - 1, BLOCK_BITS, BLOCK_BITS + 1}
    | {2 * BLOCK_BITS - 64, 2 * BLOCK_BITS + 64}
    | {2**16 - 1, 2**16, 2**16 + 1}
)

lengths = st.sampled_from(BOUNDARY_LENGTHS)
densities = st.sampled_from([0.0, 0.03, 0.5, 0.97, 1.0])


def interesting_ks(n: int) -> list[int]:
    """The issue's k sweep: {1, 2, N-1, N} clamped into [1, N]."""
    return sorted({1, min(2, n), max(1, n - 1), n})


def random_vectors(n: int, length: int, density: float, seed: int):
    rng = np.random.default_rng(seed)
    return [
        BitVector.from_bools(rng.random(length) < density) for _ in range(n)
    ]


def naive_count_scan(k: int, vectors) -> np.ndarray:
    """Oracle 1: per-row integer counting over plain boolean arrays."""
    counts = np.zeros(len(vectors[0]), dtype=np.int64)
    for vector in vectors:
        counts += vector.to_bools()
    return counts >= k


def chain_expansion(k: int, children):
    """Oracle 2: the OR-of-AND-subsets blowup, as pairwise chains."""
    terms = [
        reduce(lambda a, b: a & b, subset)
        for subset in combinations(children, k)
    ]
    return reduce(lambda a, b: a | b, terms)


class TestKernelDifferential:
    """threshold kernels == naive count scan, every codec x boundary."""

    @pytest.mark.parametrize("codec", COMPRESSED_CODECS)
    @given(
        n=st.integers(min_value=1, max_value=32),
        length=lengths,
        density=densities,
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=20, deadline=None)
    def test_multiway_threshold_matches_naive(
        self, codec, n, length, density, seed
    ):
        vectors = random_vectors(n, length, density, seed)
        payloads = [get_codec(codec).encode(v) for v in vectors]
        for k in interesting_ks(n):
            result = multiway_threshold(
                k, codec, payloads, length, block_words=TEST_BLOCK_WORDS
            )
            oracle = naive_count_scan(k, vectors)
            assert result.to_bools().tolist() == oracle.tolist(), (codec, k)

    @given(
        n=st.integers(min_value=1, max_value=32),
        length=lengths,
        density=densities,
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=30, deadline=None)
    def test_threshold_vectors_matches_naive(self, n, length, density, seed):
        vectors = random_vectors(n, length, density, seed)
        for k in interesting_ks(n):
            result = threshold_vectors(k, vectors)
            oracle = naive_count_scan(k, vectors)
            assert result.to_bools().tolist() == oracle.tolist(), k


class TestChainExpansionOracle:
    """Threshold node == the expanded OR/AND chain, evaluated for real."""

    @given(
        n=st.integers(min_value=2, max_value=32),
        length=st.sampled_from([65, 1000, BLOCK_BITS + 1]),
        density=densities,
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=30, deadline=None)
    def test_or_and_chain_ends(self, n, length, density, seed):
        """k=1 is the OR chain, k=N the AND chain, at any width."""
        vectors = random_vectors(n, length, density, seed)
        bitmaps = {i: v for i, v in enumerate(vectors)}
        children = [leaf(i) for i in range(n)]
        for k, chain in (
            (1, reduce(lambda a, b: a | b, children)),
            (n, reduce(lambda a, b: a & b, children)),
        ):
            node = Threshold(k, tuple(children))
            assert evaluate(node, bitmaps.get, length) == evaluate(
                chain, bitmaps.get, length
            ), k

    @given(
        n=st.integers(min_value=2, max_value=6),
        length=st.sampled_from([63, 100, 1000]),
        density=densities,
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=40, deadline=None)
    def test_general_k_subset_expansion(self, n, length, density, seed):
        """Every k against the full OR-of-AND-subsets expansion."""
        vectors = random_vectors(n, length, density, seed)
        bitmaps = {i: v for i, v in enumerate(vectors)}
        children = [leaf(i) for i in range(n)]
        for k in range(1, n + 1):
            node = Threshold(k, tuple(children))
            expanded = chain_expansion(k, children)
            got = evaluate(node, bitmaps.get, length)
            assert got == evaluate(expanded, bitmaps.get, length), k
            assert got == evaluate_fused(
                node, bitmaps.get, length, block_words=MIN_BLOCK_WORDS
            ), k


# Small per-(scheme, codec) indexes for the engine-level sweep.
INDEX_RECORDS = 403  # not word-aligned, crosses several segments
INDEX_CARDINALITY = 9


@pytest.fixture(scope="module")
def matrix_indexes():
    rng = np.random.default_rng(31)
    values = rng.integers(0, INDEX_CARDINALITY, INDEX_RECORDS)
    indexes = {}
    for scheme in ALL_SCHEME_NAMES:
        for codec in CODEC_NAMES:
            spec = IndexSpec(
                cardinality=INDEX_CARDINALITY, scheme=scheme, codec=codec
            )
            indexes[scheme, codec] = BitmapIndex.build(values, spec)
    return values, indexes


def draw_threshold_query(data) -> ThresholdQuery:
    n = data.draw(st.integers(2, 6), label="n")
    predicates = []
    for i in range(n):
        if data.draw(st.booleans(), label=f"interval{i}"):
            lo = data.draw(st.integers(0, INDEX_CARDINALITY - 1), label=f"lo{i}")
            hi = data.draw(st.integers(lo, INDEX_CARDINALITY - 1), label=f"hi{i}")
            predicates.append(IntervalQuery(lo, hi, INDEX_CARDINALITY))
        else:
            members = data.draw(
                st.frozensets(
                    st.integers(0, INDEX_CARDINALITY - 1),
                    min_size=1,
                    max_size=4,
                ),
                label=f"members{i}",
            )
            predicates.append(MembershipQuery(members, INDEX_CARDINALITY))
    k = data.draw(st.sampled_from(interesting_ks(n)), label="k")
    return ThresholdQuery.of(k, predicates)


@pytest.mark.parametrize("scheme", ALL_SCHEME_NAMES)
@pytest.mark.parametrize("codec", CODEC_NAMES)
@given(data=st.data())
@settings(max_examples=8, deadline=None)
def test_threshold_queries_all_schemes_and_codecs(
    matrix_indexes, scheme, codec, data
):
    """ThresholdQuery through every engine == the naive count scan."""
    values, indexes = matrix_indexes
    index = indexes[scheme, codec]
    query = draw_threshold_query(data)
    oracle = query.matches(values)
    expected = BitVector.from_bools(oracle)

    materialized = index.query(query, fused=False)
    fused = index.query(query, fused=True, block_words=MIN_BLOCK_WORDS)
    assert materialized.bitmap == expected, (scheme, codec, str(query))
    assert fused.bitmap == expected, (scheme, codec, str(query))
    assert materialized.row_count == int(oracle.sum())

    if codec != "raw":
        compressed = CompressedQueryEngine(index).execute(query)
        assert compressed.bitmap == expected, (scheme, codec, str(query))


class TestHelpers:
    def test_at_least_degenerate_bounds(self):
        children = (leaf("a"), leaf("b"))
        assert at_least(0, children) == one()
        assert at_least(-3, children) == one()
        assert at_least(3, children) == zero()
        assert at_least(1, (leaf("a"),)) == leaf("a")
        assert at_least(2, children) == Threshold(2, children)

    def test_exactly_bounds(self):
        children = (leaf("a"), leaf("b"), leaf("c"))
        assert exactly(-1, children) == zero()
        assert exactly(4, children) == zero()
        assert exactly(3, children) == Threshold(3, children)
        assert exactly(0, children) == Not(Threshold(1, children))

    @given(
        n=st.integers(min_value=1, max_value=8),
        k=st.integers(min_value=0, max_value=9),
        density=densities,
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=50, deadline=None)
    def test_exactly_and_majority_semantics(self, n, k, density, seed):
        length = 500
        vectors = random_vectors(n, length, density, seed)
        bitmaps = {i: v for i, v in enumerate(vectors)}
        children = [leaf(i) for i in range(n)]
        counts = np.zeros(length, dtype=np.int64)
        for vector in vectors:
            counts += vector.to_bools()
        got_exact = evaluate(exactly(k, children), bitmaps.get, length)
        assert got_exact.to_bools().tolist() == (counts == k).tolist()
        got_major = evaluate(majority(children), bitmaps.get, length)
        assert got_major.to_bools().tolist() == (
            counts > n / 2
        ).tolist()

    def test_multiset_semantics_duplicate_counts_twice(self):
        x = leaf("x")
        vec = BitVector.from_bools(np.array([True, False, True]))
        node = Threshold(2, (x, x))
        assert evaluate(node, {"x": vec}.get, 3) == vec

    def test_constructor_validation(self):
        with pytest.raises(BitmapError):
            Threshold(1, ())
        with pytest.raises(BitmapError):
            Threshold(0, (leaf("a"),))


class TestLowerWideOrs:
    def test_wide_equal_cost_or_becomes_threshold(self):
        children = tuple(leaf(k) for k in "abcd")
        lowered = lower_wide_ors(Or(children))
        assert lowered == Threshold(1, children)

    def test_narrow_or_untouched(self):
        expr = Or((leaf("a"), leaf("b"), leaf("c")))
        assert lower_wide_ors(expr) == expr

    def test_unequal_cost_children_untouched(self):
        children = (leaf("a"), leaf("b"), leaf("c"), leaf("d") & leaf("e"))
        expr = Or(children)
        assert lower_wide_ors(expr) == expr

    def test_min_fanin_is_tunable(self):
        expr = Or((leaf("a"), leaf("b")))
        assert lower_wide_ors(expr, min_fanin=2) == Threshold(
            1, (leaf("a"), leaf("b"))
        )

    @given(
        length=st.sampled_from([100, 1000]),
        density=densities,
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=25, deadline=None)
    def test_lowering_preserves_semantics(self, length, density, seed):
        vectors = random_vectors(6, length, density, seed)
        bitmaps = {i: v for i, v in enumerate(vectors)}
        expr = And((Or(tuple(leaf(i) for i in range(5))), ~leaf(5)))
        lowered = lower_wide_ors(expr)
        assert lowered != expr  # the wide OR really was rewritten
        assert evaluate(lowered, bitmaps.get, length) == evaluate(
            expr, bitmaps.get, length
        )


class TestSimplifyRegression:
    """The two deliberate non-rewrites, plus constant folding."""

    def test_not_children_kept_verbatim(self):
        # A child containing NOT anywhere is not rewritten — not even
        # its double negation, which plain simplify would strip.
        child = Not(Not(leaf("a")))
        node = Threshold(2, (child, leaf("b"), leaf("c")))
        assert simplify(node) == node

    def test_nested_not_blocks_rewrite_too(self):
        child = And((leaf("a"), Not(leaf("b"))))
        node = Threshold(1, (child, leaf("c"), leaf("c")))
        simplified = simplify(node)
        assert isinstance(simplified, Threshold)
        assert simplified.operands[0] == child

    def test_duplicates_never_deduplicated(self):
        node = Threshold(2, (leaf("x"), leaf("x")))
        assert simplify(node) == node

    def test_true_child_decrements_k(self):
        node = Threshold(2, (Const(True), leaf("a"), leaf("b")))
        assert simplify(node) == Threshold(1, (leaf("a"), leaf("b")))

    def test_false_child_drops(self):
        node = Threshold(2, (Const(False), leaf("a"), leaf("b")))
        assert simplify(node) == Threshold(2, (leaf("a"), leaf("b")))

    def test_k_exhausted_by_constants_is_true(self):
        node = Threshold(2, (Const(True), Const(True), leaf("a")))
        assert simplify(node) == Const(True)

    def test_k_above_survivors_is_false(self):
        node = Threshold(3, (Const(False), leaf("a"), leaf("b")))
        assert simplify(node) == Const(False)

    def test_single_survivor_unwraps(self):
        node = Threshold(1, (Const(False), leaf("a")))
        assert simplify(node) == leaf("a")

    @given(
        n=st.integers(min_value=1, max_value=6),
        length=st.sampled_from([100, 1000]),
        density=densities,
        seed=st.integers(min_value=0, max_value=2**20),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_simplify_preserves_threshold_semantics(
        self, n, length, density, seed, data
    ):
        vectors = random_vectors(n, length, density, seed)
        bitmaps = {i: v for i, v in enumerate(vectors)}
        pool = (
            [leaf(i) for i in range(n)]
            + [~leaf(i) for i in range(n)]
            + [one(), zero()]
        )
        children = data.draw(
            st.lists(st.sampled_from(pool), min_size=1, max_size=6),
            label="children",
        )
        k = data.draw(st.integers(1, len(children)), label="k")
        node = Threshold(k, tuple(children))
        assert evaluate(simplify(node), bitmaps.get, length) == evaluate(
            node, bitmaps.get, length
        )


class TestCostConvention:
    def test_threshold_counts_n_operations(self):
        node = Threshold(2, tuple(leaf(k) for k in "abcd"))
        assert expression_operation_count(node) == 4

    def test_nested_children_cost_included(self):
        inner = leaf("a") & leaf("b")  # 1 op
        node = Threshold(1, (inner, leaf("c"), leaf("d")))  # + 3 ops
        assert expression_operation_count(node) == 4


class TestThresholdQueryModel:
    def test_validation(self):
        p = IntervalQuery(0, 2, 8)
        with pytest.raises(QueryError):
            ThresholdQuery.of(1, [])
        with pytest.raises(QueryError):
            ThresholdQuery.of(0, [p])
        with pytest.raises(QueryError):
            ThresholdQuery.of(3, [p, p])
        with pytest.raises(QueryError):
            ThresholdQuery.of(1, [p, IntervalQuery(0, 1, 9)])
        with pytest.raises(QueryError):
            ThresholdQuery.of(1, [p, object()])

    def test_value_set_counts_multiplicity(self):
        p1 = IntervalQuery(0, 3, 8)
        p2 = IntervalQuery(2, 5, 8)
        query = ThresholdQuery.of(2, [p1, p2])
        assert query.value_set() == frozenset({2, 3})

    def test_str_and_class(self):
        query = ThresholdQuery.of(
            2, [IntervalQuery(0, 1, 8), MembershipQuery.of({5}, 8)]
        )
        assert query.query_class == "TH"
        assert str(query).startswith("AT-LEAST-2 OF (")
