"""Tests for algebraic simplification, including a hypothesis
equivalence property (simplified expressions denote the same set)."""

from hypothesis import given, settings, strategies as st

from repro.expr import (
    And,
    Not,
    Or,
    Xor,
    and_of,
    leaf,
    one,
    or_of,
    simplify,
    xor_of,
    zero,
)

DOMAIN = frozenset(range(8))
CATALOG = {
    "a": frozenset({0, 1, 2, 3}),
    "b": frozenset({2, 3, 4, 5}),
    "c": frozenset({0, 7}),
}


class TestRules:
    def test_constant_folding_and(self):
        assert simplify(leaf("a") & zero()) == zero()
        assert simplify(leaf("a") & one()) == leaf("a")

    def test_constant_folding_or(self):
        assert simplify(leaf("a") | one()) == one()
        assert simplify(leaf("a") | zero()) == leaf("a")

    def test_idempotence(self):
        assert simplify(leaf("a") & leaf("a")) == leaf("a")
        assert simplify(leaf("a") | leaf("a")) == leaf("a")

    def test_annihilation(self):
        assert simplify(leaf("a") & ~leaf("a")) == zero()
        assert simplify(leaf("a") | ~leaf("a")) == one()

    def test_double_negation(self):
        assert simplify(~~leaf("a")) == leaf("a")

    def test_flattening(self):
        expr = And((leaf("a"), And((leaf("b"), leaf("c")))))
        result = simplify(expr)
        assert isinstance(result, And)
        assert len(result.operands) == 3

    def test_xor_pair_cancellation(self):
        assert simplify(leaf("a") ^ leaf("a")) == zero()
        assert simplify(xor_of([leaf("a"), leaf("b"), leaf("a")])) == leaf("b")

    def test_xor_with_one_becomes_not(self):
        assert simplify(leaf("a") ^ one()) == Not(leaf("a"))

    def test_xor_of_negations(self):
        # NOT a XOR NOT b == a XOR b (two complements cancel).
        result = simplify(Not(leaf("a")) ^ Not(leaf("b")))
        assert result == simplify(leaf("a") ^ leaf("b"))

    def test_never_more_leaves(self):
        expr = Or((leaf("a"), leaf("a"), And((leaf("b"), one())), zero()))
        assert len(simplify(expr).leaf_keys()) <= len(expr.leaf_keys())


# ---------------------------------------------------------------------------
# Hypothesis: simplification preserves set semantics.
# ---------------------------------------------------------------------------

leaves = st.sampled_from([leaf("a"), leaf("b"), leaf("c"), one(), zero()])


def exprs(depth: int):
    if depth == 0:
        return leaves
    sub = exprs(depth - 1)
    return st.one_of(
        leaves,
        st.builds(Not, sub),
        st.builds(lambda x, y: And((x, y)), sub, sub),
        st.builds(lambda x, y: Or((x, y)), sub, sub),
        st.builds(lambda x, y: Xor((x, y)), sub, sub),
    )


@given(expr=exprs(4))
@settings(max_examples=300)
def test_simplify_preserves_semantics(expr):
    before = expr.value_set(CATALOG, DOMAIN)
    after = simplify(expr).value_set(CATALOG, DOMAIN)
    assert before == after


@given(expr=exprs(4))
@settings(max_examples=200)
def test_simplify_is_idempotent(expr):
    once = simplify(expr)
    assert simplify(once) == once
