"""Tests for the expression evaluator: correctness, CSE, accounting."""

import pytest

from repro.bitmap import BitVector
from repro.errors import BitmapError
from repro.expr import EvalStats, evaluate, expression_scan_count, leaf, one, zero

LENGTH = 16
BITMAPS = {
    "a": BitVector.from_indices(LENGTH, [0, 1, 2, 3]),
    "b": BitVector.from_indices(LENGTH, [2, 3, 4, 5]),
    "c": BitVector.from_indices(LENGTH, [15]),
}


def fetch(key):
    return BITMAPS[key]


class TestCorrectness:
    def test_leaf(self):
        assert evaluate(leaf("a"), fetch, LENGTH) == BITMAPS["a"]

    def test_constants(self):
        assert evaluate(one(), fetch, LENGTH) == BitVector.ones(LENGTH)
        assert evaluate(zero(), fetch, LENGTH) == BitVector.zeros(LENGTH)

    def test_compound(self):
        expr = (leaf("a") & leaf("b")) | leaf("c")
        result = evaluate(expr, fetch, LENGTH)
        assert result.to_indices().tolist() == [2, 3, 15]

    def test_xor_and_not(self):
        expr = ~(leaf("a") ^ leaf("b"))
        result = evaluate(expr, fetch, LENGTH)
        assert result.to_indices().tolist() == [2, 3] + list(range(6, 16))

    def test_length_mismatch_detected(self):
        with pytest.raises(BitmapError):
            evaluate(leaf("a"), fetch, LENGTH + 1)

    def test_result_does_not_alias_fetched_bitmap(self):
        expr = leaf("a") & leaf("b")
        result = evaluate(expr, fetch, LENGTH)
        result[10] = True
        assert not BITMAPS["a"][10]


class TestAccounting:
    def test_scan_count_distinct_leaves(self):
        expr = (leaf("a") & leaf("b")) | (leaf("a") & leaf("c"))
        assert expression_scan_count(expr) == 3
        stats = EvalStats()
        evaluate(expr, fetch, LENGTH, stats)
        assert stats.scans == 3
        assert sorted(stats.fetched_keys) == ["a", "b", "c"]

    def test_cache_shared_across_evaluations(self):
        cache = {}
        stats = EvalStats()
        evaluate(leaf("a") & leaf("b"), fetch, LENGTH, stats, cache)
        evaluate(leaf("a") | leaf("c"), fetch, LENGTH, stats, cache)
        # "a" fetched once thanks to the shared cache.
        assert stats.scans == 3

    def test_operations_counted(self):
        stats = EvalStats()
        evaluate((leaf("a") & leaf("b")) | ~leaf("c"), fetch, LENGTH, stats)
        # one AND, one NOT, one OR.
        assert stats.operations == 3

    def test_cse_identical_subtrees_evaluated_once(self):
        shared = leaf("a") & leaf("b")
        stats = EvalStats()
        evaluate(shared | shared, fetch, LENGTH, stats)
        # AND once plus the outer OR == 2 operations, not 3.
        assert stats.operations == 2

    def test_merge(self):
        a = EvalStats(scans=1, operations=2, fetched_keys=["a"])
        b = EvalStats(scans=3, operations=4, fetched_keys=["b"])
        a.merge(b)
        assert a.scans == 4
        assert a.operations == 6
        assert a.fetched_keys == ["a", "b"]
