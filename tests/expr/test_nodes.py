"""Unit tests for expression AST nodes."""

import pytest

from repro.expr import (
    And,
    Const,
    Leaf,
    Not,
    Or,
    Xor,
    and_of,
    leaf,
    not_of,
    one,
    or_of,
    xor_of,
    zero,
)

DOMAIN = frozenset(range(6))
CATALOG = {
    "a": frozenset({0, 1, 2}),
    "b": frozenset({2, 3}),
    "c": frozenset({5}),
}


class TestStructure:
    def test_leaf_keys_deduplicate(self):
        expr = (leaf("a") & leaf("b")) | leaf("a")
        assert expr.leaf_keys() == {"a", "b"}
        assert len(expr.leaves()) == 3

    def test_walk_visits_all_nodes(self):
        expr = Not(And((leaf("a"), leaf("b"))))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds == ["Not", "And", "Leaf", "Leaf"]

    def test_equality_and_hash(self):
        assert leaf("a") & leaf("b") == And((Leaf("a"), Leaf("b")))
        assert hash(leaf("a")) == hash(Leaf("a"))
        assert leaf("a") != leaf("b")

    def test_str_rendering(self):
        expr = Not(Or((leaf("a"), Xor((leaf("b"), leaf("c"))))))
        text = str(expr)
        assert "NOT" in text and "OR" in text and "XOR" in text

    def test_operator_sugar_builds_nodes(self):
        assert isinstance(leaf("a") & leaf("b"), And)
        assert isinstance(leaf("a") | leaf("b"), Or)
        assert isinstance(leaf("a") ^ leaf("b"), Xor)
        assert isinstance(~leaf("a"), Not)


class TestValueSetSemantics:
    def test_leaf(self):
        assert leaf("a").value_set(CATALOG, DOMAIN) == {0, 1, 2}

    def test_const(self):
        assert one().value_set(CATALOG, DOMAIN) == DOMAIN
        assert zero().value_set(CATALOG, DOMAIN) == frozenset()

    def test_and_or_xor_not(self):
        a, b = leaf("a"), leaf("b")
        assert (a & b).value_set(CATALOG, DOMAIN) == {2}
        assert (a | b).value_set(CATALOG, DOMAIN) == {0, 1, 2, 3}
        assert (a ^ b).value_set(CATALOG, DOMAIN) == {0, 1, 3}
        assert (~a).value_set(CATALOG, DOMAIN) == {3, 4, 5}

    def test_nested_expression(self):
        expr = Not(Or((leaf("a"), leaf("c"))))
        assert expr.value_set(CATALOG, DOMAIN) == {3, 4}


class TestConstructors:
    def test_not_of_collapses_double_negation(self):
        assert not_of(not_of(leaf("a"))) == leaf("a")
        assert not_of(one()) == zero()

    def test_nary_of_empty(self):
        assert and_of([]) == one()
        assert or_of([]) == zero()
        assert xor_of([]) == zero()

    def test_nary_of_single(self):
        assert and_of([leaf("a")]) == leaf("a")
        assert or_of([leaf("a")]) == leaf("a")

    def test_nary_of_many(self):
        expr = or_of([leaf("a"), leaf("b"), leaf("c")])
        assert isinstance(expr, Or)
        assert len(expr.operands) == 3
