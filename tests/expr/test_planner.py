"""Tests for the brute-force minimal-scan planner."""

import pytest

from repro.errors import PlanningError
from repro.expr import evaluate, minimal_scan_cost, plan_expression
from repro.bitmap import BitVector

DOMAIN = list(range(6))

# Range-encoded catalog for C = 6.
RANGE_CATALOG = {f"R{v}": frozenset(range(v + 1)) for v in range(5)}


class TestMinimalScanCost:
    def test_trivial_targets_cost_zero(self):
        assert minimal_scan_cost(RANGE_CATALOG, DOMAIN, frozenset()) == 0
        assert minimal_scan_cost(RANGE_CATALOG, DOMAIN, frozenset(DOMAIN)) == 0

    def test_stored_bitmap_costs_one(self):
        assert minimal_scan_cost(RANGE_CATALOG, DOMAIN, frozenset({0, 1, 2})) == 1

    def test_complement_costs_one(self):
        # {3,4,5} = NOT R2: complements are free.
        assert minimal_scan_cost(RANGE_CATALOG, DOMAIN, frozenset({3, 4, 5})) == 1

    def test_interior_equality_costs_two(self):
        # {3} = R3 XOR R2 under range encoding.
        assert minimal_scan_cost(RANGE_CATALOG, DOMAIN, frozenset({3})) == 2

    def test_unexpressible_raises(self):
        catalog = {"x": frozenset({0, 1, 2})}
        with pytest.raises(PlanningError):
            minimal_scan_cost(catalog, DOMAIN, frozenset({0}))

    def test_max_scans_respected(self):
        with pytest.raises(PlanningError):
            minimal_scan_cost(
                RANGE_CATALOG, DOMAIN, frozenset({3}), max_scans=1
            )


class TestPlanExpression:
    def _bitmaps(self, values_column):
        return {
            key: BitVector.from_bools(
                [v in value_set for v in values_column]
            )
            for key, value_set in RANGE_CATALOG.items()
        }

    @pytest.mark.parametrize(
        "target",
        [frozenset({2}), frozenset({1, 2, 3}), frozenset({0, 5}), frozenset({4, 5})],
    )
    def test_witness_evaluates_to_target(self, target):
        column = [0, 1, 2, 3, 4, 5, 2, 5, 0]
        expr = plan_expression(RANGE_CATALOG, DOMAIN, target)
        # Scan-minimality of the witness.
        assert len(expr.leaf_keys()) == minimal_scan_cost(
            RANGE_CATALOG, DOMAIN, target
        )
        bitmaps = self._bitmaps(column)
        result = evaluate(expr, lambda k: bitmaps[k], len(column))
        expected = BitVector.from_bools([v in target for v in column])
        assert result == expected

    def test_trivial_plans(self):
        assert str(plan_expression(RANGE_CATALOG, DOMAIN, frozenset())) == "ZERO"
        assert (
            str(plan_expression(RANGE_CATALOG, DOMAIN, frozenset(DOMAIN))) == "ONE"
        )

    def test_planner_agrees_with_interval_encoding_bounds(self):
        """The planner confirms the paper's <= 2-scan guarantee for I."""
        from repro.encoding import get_scheme

        scheme = get_scheme("I")
        for cardinality in (4, 5, 8, 9):
            catalog = dict(scheme.catalog(cardinality))
            domain = list(range(cardinality))
            for low in range(cardinality):
                for high in range(low, cardinality):
                    if low == 0 and high == cardinality - 1:
                        continue
                    target = frozenset(range(low, high + 1))
                    assert (
                        minimal_scan_cost(catalog, domain, target) <= 2
                    ), (cardinality, low, high)
