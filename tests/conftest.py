"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmap import BitVector


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def paper_column() -> np.ndarray:
    """The paper's Figure 1(a) example column (C = 10, 12 records)."""
    return np.array([3, 2, 1, 2, 8, 2, 9, 0, 7, 5, 6, 4])


def naive_interval_mask(values: np.ndarray, low: int, high: int) -> np.ndarray:
    """Ground-truth answer of ``low <= A <= high`` by scanning."""
    return (values >= low) & (values <= high)


def naive_interval_vector(values: np.ndarray, low: int, high: int) -> BitVector:
    """Ground-truth answer as a bit vector."""
    return BitVector.from_bools(naive_interval_mask(values, low, high))


def random_bitvector(
    rng: np.random.Generator, length: int, density: float = 0.5
) -> BitVector:
    """A random vector with roughly the given density of set bits."""
    return BitVector.from_bools(rng.random(length) < density)
