"""Tests for the space-time measurement harness and report rendering."""

import pytest

from repro.analysis import measure_design, render_series, render_table
from repro.index import IndexSpec
from repro.queries import IntervalQuery
from repro.workload import zipf_column


@pytest.fixture(scope="module")
def values():
    return zipf_column(5000, 20, 1.0, seed=6)


QUERY_SETS = {
    "ranges": [IntervalQuery(2, 15, 20), IntervalQuery(0, 9, 20)],
    "points": [IntervalQuery(7, 7, 20)],
}


class TestMeasureDesign:
    def test_basic_measurement(self, values):
        point = measure_design(
            values, IndexSpec(cardinality=20, scheme="I"), QUERY_SETS
        )
        assert point.num_bitmaps == 10
        assert point.space_bytes > 0
        assert point.avg_time_ms > 0
        assert set(point.per_set_ms) == {"ranges", "points"}
        assert point.avg_scans > 0

    def test_avg_is_weighted_over_all_queries(self, values):
        point = measure_design(
            values, IndexSpec(cardinality=20, scheme="I"), QUERY_SETS
        )
        weighted = (2 * point.per_set_ms["ranges"] + 1 * point.per_set_ms["points"]) / 3
        assert point.avg_time_ms == pytest.approx(weighted)

    def test_cold_buffer_costs_more_than_warm(self, values):
        spec = IndexSpec(cardinality=20, scheme="I")
        cold = measure_design(values, spec, QUERY_SETS, cold_buffer=True)
        warm = measure_design(values, spec, QUERY_SETS, cold_buffer=False)
        assert warm.avg_time_ms <= cold.avg_time_ms

    def test_compressed_smaller_slower_cpu(self, values):
        raw = measure_design(
            values, IndexSpec(cardinality=20, scheme="E", codec="raw"), QUERY_SETS
        )
        bbc = measure_design(
            values, IndexSpec(cardinality=20, scheme="E", codec="bbc"), QUERY_SETS
        )
        assert bbc.space_bytes < raw.space_bytes

    def test_reuse_prebuilt_index(self, values):
        from repro.index import BitmapIndex

        spec = IndexSpec(cardinality=20, scheme="R")
        index = BitmapIndex.build(values, spec)
        point = measure_design(values, spec, QUERY_SETS, index=index)
        assert point.num_bitmaps == index.num_bitmaps()

    def test_space_mb_property(self, values):
        point = measure_design(
            values, IndexSpec(cardinality=20, scheme="E"), QUERY_SETS
        )
        assert point.space_mb == pytest.approx(point.space_bytes / 2**20)


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"], [["a", 1.23456], ["bb", 2]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.235" in text  # 4 significant digits

    def test_render_table_empty_rows(self):
        text = render_table(["x"], [])
        assert "x" in text

    def test_render_series(self):
        text = render_series("n", [1, 2], {"E": [0.1, 0.2], "I": [0.3, 0.4]})
        assert "E" in text and "I" in text
        assert "0.3" in text
