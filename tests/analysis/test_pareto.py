"""Tests for Pareto-frontier computation."""

from hypothesis import given, settings, strategies as st

from repro.analysis.pareto import dominates_pair, pareto_frontier


class TestDominatesPair:
    def test_strict_both(self):
        assert dominates_pair(1, 1, 2, 2)

    def test_one_equal_one_strict(self):
        assert dominates_pair(1, 2, 2, 2)
        assert dominates_pair(2, 1, 2, 2)

    def test_equal_points_do_not_dominate(self):
        assert not dominates_pair(2, 2, 2, 2)

    def test_incomparable(self):
        assert not dominates_pair(1, 3, 2, 2)
        assert not dominates_pair(3, 1, 2, 2)


class TestFrontier:
    def test_figure3_shape(self):
        # A staircase: the frontier keeps only the strictly improving
        # time points as space increases.
        points = [(1, 10), (2, 8), (3, 9), (4, 5), (5, 6), (6, 5)]
        frontier = pareto_frontier(points, lambda p: p[0], lambda p: p[1])
        assert frontier == [(1, 10), (2, 8), (4, 5)]

    def test_single_point(self):
        assert pareto_frontier([(3, 3)], lambda p: p[0], lambda p: p[1]) == [(3, 3)]

    def test_empty(self):
        assert pareto_frontier([], lambda p: p[0], lambda p: p[1]) == []

    def test_duplicate_points_all_kept(self):
        points = [(1, 1), (1, 1)]
        frontier = pareto_frontier(points, lambda p: p[0], lambda p: p[1])
        assert len(frontier) == 2


@given(
    points=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=0, max_value=20),
        ),
        max_size=40,
    )
)
@settings(max_examples=300)
def test_frontier_properties(points):
    frontier = pareto_frontier(points, lambda p: p[0], lambda p: p[1])
    frontier_set = list(frontier)
    # 1. No frontier point is dominated by any input point.
    for a in frontier_set:
        for b in points:
            assert not dominates_pair(b[0], b[1], a[0], a[1])
    # 2. Every dropped point is dominated by some frontier point.
    from collections import Counter

    dropped = Counter(points) - Counter(frontier_set)
    for point in dropped:
        assert any(
            dominates_pair(f[0], f[1], point[0], point[1]) for f in frontier_set
        ), point
