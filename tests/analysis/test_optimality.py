"""Tests for the optimality search machinery and the theorem statements
it can verify quickly (the C=6 searches live in the table1 benchmark)."""

import pytest

from repro.analysis.optimality import (
    _candidate_masks,
    _expected_scans_catalog,
    _is_complete,
    _min_scans,
    dominates,
    scheme_point,
    search_dominating_catalog,
    verify_scheme_optimality,
)
from repro.encoding import get_scheme
from repro.errors import ExperimentError


class TestMachinery:
    def test_candidate_masks_exclude_value_zero(self):
        masks = _candidate_masks(4)
        assert len(masks) == 7  # 2^3 - 1
        assert all(not mask & 1 for mask in masks)

    def test_completeness_check(self):
        # {1}, {2}, {3} distinguishes everything over C = 4.
        assert _is_complete((0b0010, 0b0100, 0b1000), 4)
        # {1,2} alone cannot separate 1 from 2 or 0 from 3.
        assert not _is_complete((0b0110,), 4)

    def test_min_scans_trivial(self):
        catalog = (0b0010, 0b0100, 0b1000)
        assert _min_scans(catalog, 4, 0b0000) == 0
        assert _min_scans(catalog, 4, 0b1111) == 0

    def test_min_scans_singleton(self):
        catalog = (0b0010, 0b0100, 0b1000)
        assert _min_scans(catalog, 4, 0b0010) == 1
        # {0} needs all three (complement of their union).
        assert _min_scans(catalog, 4, 0b0001) == 3

    def test_min_scans_on_incomplete_catalog_raises(self):
        with pytest.raises(ExperimentError):
            _min_scans((0b0110,), 4, 0b0010)

    def test_expected_scans_with_pruning(self):
        catalog = (0b0010, 0b0100, 0b1000)
        exact = _expected_scans_catalog(catalog, 4, "EQ")
        assert exact == pytest.approx((3 + 1 + 1 + 1) / 4)
        assert _expected_scans_catalog(catalog, 4, "EQ", abort_above=1.0) is None

    def test_guard_rejects_large_c(self):
        with pytest.raises(ExperimentError):
            search_dominating_catalog(12, "EQ", 5, 2.0)


class TestTheorem31SmallC:
    """Theorem 3.1 statements verifiable in well under a second."""

    def test_range_optimal_for_eq_at_c4_and_c5(self):
        for c in (4, 5):
            assert verify_scheme_optimality(get_scheme("R"), c, "EQ").optimal

    def test_range_optimal_for_1rq(self):
        for c in (4, 5):
            assert verify_scheme_optimality(get_scheme("R"), c, "1RQ").optimal

    def test_range_not_optimal_for_2rq(self):
        for c in (4, 5):
            result = verify_scheme_optimality(get_scheme("R"), c, "2RQ")
            assert result.optimal is False
            assert result.dominator is not None

    def test_equality_optimal_for_eq(self):
        for c in (4, 5):
            assert verify_scheme_optimality(get_scheme("E"), c, "EQ").optimal

    def test_equality_not_optimal_for_ranges(self):
        for c in (4, 5):
            for q in ("1RQ", "2RQ", "RQ"):
                assert not verify_scheme_optimality(get_scheme("E"), c, q).optimal

    def test_interval_optimal_for_2rq(self):
        for c in (4, 5):
            assert verify_scheme_optimality(get_scheme("I"), c, "2RQ").optimal


class TestDominanceAtAnyC:
    """The direct arguments that hold for every cardinality."""

    @pytest.mark.parametrize("c", [6, 10, 50, 200])
    def test_interval_dominates_range_for_2rq(self, c):
        assert dominates(
            scheme_point(get_scheme("I"), c, "2RQ"),
            scheme_point(get_scheme("R"), c, "2RQ"),
        )

    @pytest.mark.parametrize("c", [8, 10, 50, 200])
    def test_range_dominates_equality_for_range_classes(self, c):
        for q in ("1RQ", "2RQ", "RQ"):
            assert dominates(
                scheme_point(get_scheme("R"), c, q),
                scheme_point(get_scheme("E"), c, q),
            )

    @pytest.mark.parametrize("c", [10, 50])
    def test_no_scheme_dominates_interval(self, c):
        """Among the paper's schemes, I is never dominated (it is on the
        Figure 3 frontier for every class)."""
        for q in ("EQ", "1RQ", "2RQ", "RQ"):
            point_i = scheme_point(get_scheme("I"), c, q)
            for other in ("E", "R", "ER", "O", "EI", "EI*"):
                assert not dominates(
                    scheme_point(get_scheme(other), c, q), point_i
                ), (q, other)
