"""Tests for the paper-style index matrix renderer."""

import numpy as np

from repro.analysis import render_index
from repro.index import BitmapIndex, IndexSpec


def test_figure1b_layout(paper_column):
    index = BitmapIndex.build(
        paper_column, IndexSpec(cardinality=10, scheme="E")
    )
    text = render_index(index)
    lines = text.splitlines()
    # Header: E^9 leftmost down to E^0 rightmost, as in Figure 1(b).
    header_slots = lines[0].split()[1:]
    assert header_slots[0] == "E^9"
    assert header_slots[-1] == "E^0"
    # Record 1 has value 3: a single 1 in the E^3 column.
    record1 = lines[2].split()
    assert record1[0] == "1"
    bits = record1[1:]
    assert bits[9 - 3] == "1"
    assert bits.count("1") == 1


def test_multi_component_labels(paper_column):
    index = BitmapIndex.build(
        paper_column, IndexSpec(cardinality=10, scheme="E", bases=(3, 4))
    )
    text = render_index(index)
    header = text.splitlines()[0]
    # Paper's Figure 2 numbering: component 2 is most significant.
    assert "E_2^2" in header
    assert "E_1^3" in header
    assert header.index("E_2^2") < header.index("E_1^3")


def test_interval_index_matches_figure5(paper_column):
    index = BitmapIndex.build(
        paper_column, IndexSpec(cardinality=10, scheme="I")
    )
    text = render_index(index)
    lines = text.splitlines()
    assert lines[0].split()[1:] == ["I^4", "I^3", "I^2", "I^1", "I^0"]
    # Record 5 (value 8) is only in I^4 = [4, 8].
    record5 = lines[6].split()
    assert record5[1:] == ["1", "0", "0", "0", "0"]


def test_truncation(rng):
    values = rng.integers(0, 4, size=100)
    index = BitmapIndex.build(values, IndexSpec(cardinality=4, scheme="E"))
    text = render_index(index, max_records=5)
    assert "95 more records" in text


def test_tuple_slot_labels(paper_column):
    index = BitmapIndex.build(
        paper_column, IndexSpec(cardinality=10, scheme="EI*")
    )
    text = render_index(index)
    assert "P^1" in text and "I^0" in text
