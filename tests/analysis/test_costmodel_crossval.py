"""Cross-validation of the analytic cost model against observed charges.

:func:`repro.index.predict_query_cost` claims to predict — without
running the engine — exactly what one query charges the simulated cost
stack: distinct-bitmap scans, read requests, pages transferred, and
64-bit words touched by bulk logical operations.  This suite holds it to
that claim: for hundreds of randomized (scheme, cardinality, bases,
data, query) draws it executes the query for real and asserts the
prediction equals

* the engine's :class:`~repro.expr.EvalStats`,
* the :class:`~repro.storage.CostClock` counters,
* the ``repro.obs`` counter totals, and
* the metrics attributed to the per-query ``query`` span

with **zero tolerance** — any drift between the analytic model and the
instrumented execution path is a bug in one of them.

The predictions assume a cold buffer pool that fits the query's working
set, which is exactly how a fresh :class:`~repro.index.QueryEngine`
starts out, so every draw uses a newly built engine.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.encoding import ALL_SCHEME_NAMES
from repro.index import BitmapIndex, IndexSpec, QueryEngine, predict_query_cost
from repro.queries import IntervalQuery, MembershipQuery, ThresholdQuery
from repro.storage import CostClock
from repro.workload import zipf_column

DRAWS_PER_SCHEME = 30


def random_draw(rng: random.Random, scheme: str):
    """One random (index, query) pair, small enough to build quickly."""
    num_records = rng.randint(10, 200)
    cardinality = rng.randint(4, 30)
    num_components = rng.randint(1, 2)
    skew = rng.choice([0.0, 0.86, 1.5])
    values = zipf_column(
        num_records, cardinality, skew, seed=rng.randint(0, 2**31)
    )
    spec = IndexSpec(
        cardinality=cardinality,
        scheme=scheme,
        num_components=num_components,
        codec="raw",
    )
    index = BitmapIndex.build(values, spec)
    if rng.random() < 0.5:
        low = rng.randint(0, cardinality - 1)
        high = rng.randint(low, cardinality - 1)
        query = IntervalQuery(low, high, cardinality)
    else:
        size = rng.randint(1, min(5, cardinality))
        members = set(rng.sample(range(cardinality), size))
        query = MembershipQuery.of(members, cardinality)
    return index, query


def random_threshold_draw(rng: random.Random, scheme: str):
    """One random (index, ThresholdQuery) pair: 2-4 predicates, any k."""
    num_records = rng.randint(10, 200)
    cardinality = rng.randint(4, 30)
    num_components = rng.randint(1, 2)
    values = zipf_column(
        num_records, cardinality, rng.choice([0.0, 0.86, 1.5]),
        seed=rng.randint(0, 2**31),
    )
    spec = IndexSpec(
        cardinality=cardinality,
        scheme=scheme,
        num_components=num_components,
        codec="raw",
    )
    index = BitmapIndex.build(values, spec)
    predicates = []
    for _ in range(rng.randint(2, 4)):
        if rng.random() < 0.5:
            low = rng.randint(0, cardinality - 1)
            high = rng.randint(low, cardinality - 1)
            predicates.append(IntervalQuery(low, high, cardinality))
        else:
            size = rng.randint(1, min(4, cardinality))
            members = set(rng.sample(range(cardinality), size))
            predicates.append(MembershipQuery.of(members, cardinality))
    k = rng.randint(1, len(predicates))
    return index, ThresholdQuery.of(k, predicates)


def assert_prediction_matches(index, query, strategy: str) -> None:
    """Execute ``query`` cold and check every predicted charge exactly."""
    predicted = predict_query_cost(index, query, strategy=strategy)
    clock = CostClock()
    engine = QueryEngine(index, clock=clock, strategy=strategy)
    with obs.observed() as o:
        result = engine.execute(query)

    context = f"{index.spec.label} {strategy} {query}"
    assert result.stats.scans == predicted.scans, context
    assert clock.read_requests == predicted.read_requests, context
    assert clock.pages_read == predicted.pages_read, context
    assert clock.words_operated == predicted.words_operated, context
    assert result.stats.operations == predicted.operations, context

    # The obs counters must agree with the clock they mirror.
    assert o.counter_total("clock.read_requests") == predicted.read_requests
    assert o.counter_total("clock.pages_read") == predicted.pages_read
    assert o.counter_total("clock.words_operated") == predicted.words_operated

    # And the per-query span must carry the same attribution.
    span = o.last_span("query")
    assert span is not None, context
    assert span.tags["scheme"] == index.scheme.name
    assert span.tags["strategy"] == strategy
    assert span.metrics.get("clock.read_requests", 0) == predicted.read_requests
    assert span.metrics.get("clock.pages_read", 0) == predicted.pages_read
    assert span.metrics.get("clock.words_operated", 0) == predicted.words_operated


@pytest.mark.parametrize("scheme", ALL_SCHEME_NAMES)
def test_predicted_cost_matches_observed(scheme):
    """>= 200 seeded draws total: 30 per scheme x 7 schemes."""
    rng = random.Random(f"crossval-{scheme}")
    for _ in range(DRAWS_PER_SCHEME):
        index, query = random_draw(rng, scheme)
        assert_prediction_matches(index, query, "component-wise")


@pytest.mark.parametrize("scheme", ALL_SCHEME_NAMES)
def test_threshold_predicted_cost_matches_observed(scheme):
    """Threshold plans: n-op charging convention holds exactly."""
    rng = random.Random(f"crossval-threshold-{scheme}")
    for _ in range(15):
        index, query = random_threshold_draw(rng, scheme)
        assert_prediction_matches(index, query, "component-wise")


@settings(max_examples=40, deadline=None)
@given(
    scheme=st.sampled_from(ALL_SCHEME_NAMES),
    strategy=st.sampled_from(["component-wise", "query-wise", "scheduled"]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_threshold_predicted_cost_property(scheme, strategy, seed):
    """Hypothesis sweep over threshold (scheme, strategy, draw) space."""
    rng = random.Random(seed)
    index, query = random_threshold_draw(rng, scheme)
    assert_prediction_matches(index, query, strategy)


@pytest.mark.parametrize("strategy", ["query-wise", "scheduled"])
def test_predicted_cost_matches_other_strategies(strategy):
    """The strategy-dependent scan formula holds for re-scanning modes."""
    rng = random.Random(f"crossval-{strategy}")
    for _ in range(10):
        for scheme in ALL_SCHEME_NAMES:
            index, query = random_draw(rng, scheme)
            assert_prediction_matches(index, query, strategy)


@settings(max_examples=60, deadline=None)
@given(
    scheme=st.sampled_from(ALL_SCHEME_NAMES),
    strategy=st.sampled_from(["component-wise", "query-wise", "scheduled"]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_predicted_cost_property(scheme, strategy, seed):
    """Hypothesis sweep over (scheme, strategy, draw) space."""
    rng = random.Random(seed)
    index, query = random_draw(rng, scheme)
    assert_prediction_matches(index, query, strategy)


def test_predicted_words_per_operation_formula():
    """words_per_operation is the 64-bit word footprint of one bitmap."""
    values = zipf_column(130, 8, 1.0, seed=0)
    index = BitmapIndex.build(values, IndexSpec(cardinality=8, scheme="E"))
    predicted = predict_query_cost(index, IntervalQuery(2, 5, 8))
    assert predicted.words_per_operation == -(-130 // 64) == 3
    assert predicted.words_operated == (
        predicted.operations * predicted.words_per_operation
    )


def test_prediction_rejects_unknown_query_type():
    values = zipf_column(50, 6, 1.0, seed=0)
    index = BitmapIndex.build(values, IndexSpec(cardinality=6, scheme="E"))
    with pytest.raises(TypeError):
        predict_query_cost(index, object())
