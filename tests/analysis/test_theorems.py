"""Tests for the machine-checkable theorem statements.

These are the repository's strongest claims: each test asserts that a
statement of Theorem 3.1 / 4.1 verifies (or is correctly flagged as
infeasible / deviating).  C=6 searches are exercised by the table1
benchmark; here the fast cardinalities keep the file quick.
"""

import pytest

from repro.analysis.theorems import (
    all_theorem_checks,
    theorem_3_1_2,
    theorem_3_1_3,
    theorem_3_1_4,
    theorem_3_1_5,
    theorem_3_1_6,
    theorem_4_1_1,
    theorem_4_1_3,
)


class TestTheorem31:
    def test_statement_2_r_optimal_1rq(self):
        check = theorem_3_1_2(cardinalities=(4, 5))
        assert check.holds is True
        assert "search" in check.method

    def test_statement_3_r_not_optimal_2rq(self):
        check = theorem_3_1_3()
        assert check.holds is True
        assert "interval" in check.method
        # Dominance was established at every tested cardinality.
        assert all("True" in line for line in check.details)

    def test_statement_4_r_optimal_rq(self):
        assert theorem_3_1_4(cardinalities=(4, 5)).holds is True

    def test_statement_5_e_optimal_eq(self):
        assert theorem_3_1_5(cardinalities=(4, 5)).holds is True

    def test_statement_6_e_not_optimal_ranges(self):
        check = theorem_3_1_6(cardinalities=(8, 50))
        assert check.holds is True
        assert len(check.details) == 2 * 3  # two C values x three classes


class TestTheorem41:
    def test_statement_1_flagged_infeasible(self):
        check = theorem_4_1_1()
        assert check.holds is None
        assert "infeasible" in check.method

    def test_statement_3_i_optimal_2rq(self):
        assert theorem_4_1_3(cardinalities=(4, 5)).holds is True


class TestAllChecks:
    @pytest.fixture(scope="class")
    def checks(self):
        return all_theorem_checks()

    def test_ten_statements(self, checks):
        assert len(checks) == 10

    def test_no_statement_refuted(self, checks):
        """Nothing verifiable came out False — the known odd-C deviation
        is scoped out of the statements' verified cardinalities."""
        assert all(check.holds in (True, None) for check in checks)

    def test_exactly_one_infeasible(self, checks):
        assert sum(1 for check in checks if check.holds is None) == 1

    def test_every_check_documents_method(self, checks):
        for check in checks:
            assert check.method
            assert check.details
