"""Tests for the minimal interval decomposition of membership queries."""

from hypothesis import given, settings, strategies as st

from repro.queries import MembershipQuery, minimal_intervals
from repro.queries.rewrite import constituent_counts


class TestPaperExample:
    def test_section5_example(self):
        """"A IN {6, 19, 20, 21, 22, 35}" rewrites as
        "(A=6) OR (19<=A<=22) OR (A=35)"."""
        query = MembershipQuery.of({6, 19, 20, 21, 22, 35}, 50)
        intervals = minimal_intervals(query)
        assert [(q.low, q.high) for q in intervals] == [
            (6, 6),
            (19, 22),
            (35, 35),
        ]
        assert [q.is_equality for q in intervals] == [True, False, True]

    def test_constituent_counts(self):
        query = MembershipQuery.of({6, 19, 20, 21, 22, 35}, 50)
        assert constituent_counts(query) == (3, 2)


class TestEdgeCases:
    def test_single_value(self):
        intervals = minimal_intervals(MembershipQuery.of({7}, 10))
        assert [(q.low, q.high) for q in intervals] == [(7, 7)]

    def test_whole_domain(self):
        intervals = minimal_intervals(MembershipQuery.of(range(10), 10))
        assert [(q.low, q.high) for q in intervals] == [(0, 9)]

    def test_alternating_values(self):
        intervals = minimal_intervals(MembershipQuery.of({0, 2, 4}, 6))
        assert len(intervals) == 3
        assert all(q.is_equality for q in intervals)


# ---------------------------------------------------------------------------
# Properties: the decomposition is a partition, and it is minimal.
# ---------------------------------------------------------------------------


@st.composite
def membership_queries(draw):
    cardinality = draw(st.integers(min_value=1, max_value=60))
    values = draw(
        st.sets(
            st.integers(min_value=0, max_value=cardinality - 1),
            min_size=1,
            max_size=cardinality,
        )
    )
    return MembershipQuery.of(values, cardinality)


@given(query=membership_queries())
@settings(max_examples=300)
def test_intervals_partition_the_value_set(query):
    intervals = minimal_intervals(query)
    covered: set[int] = set()
    for interval in intervals:
        vals = interval.value_set()
        assert not covered & vals  # disjoint
        covered |= vals
    assert covered == set(query.values)


@given(query=membership_queries())
@settings(max_examples=300)
def test_decomposition_is_minimal(query):
    """The number of constituents equals the number of maximal runs,
    which is the provable lower bound for a disjoint interval cover."""
    values = sorted(query.values)
    runs = 1 + sum(
        1 for a, b in zip(values, values[1:]) if b != a + 1
    )
    assert len(minimal_intervals(query)) == runs


@given(query=membership_queries())
@settings(max_examples=200)
def test_intervals_sorted_and_non_adjacent(query):
    intervals = minimal_intervals(query)
    for left, right in zip(intervals, intervals[1:]):
        assert left.high + 1 < right.low  # a gap separates maximal runs
