"""Seed-pinned golden outputs of the query-set generator.

The paper's performance figures average over randomly generated query
sets; the saved benchmark baselines are only comparable across runs if
``generate_query_set(seed=...)`` keeps producing the same queries.
These tests pin the exact value sets drawn for seed 0.
"""

from repro.queries import generate_query_set, minimal_intervals
from repro.queries.generator import QuerySetSpec


def value_sets(spec, cardinality, n, seed=0):
    return [
        sorted(q.values)
        for q in generate_query_set(spec, cardinality, n, seed=seed)
    ]


def test_pinned_two_interval_queries():
    assert value_sets(QuerySetSpec(2, 1), 50, 4) == [
        [10, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31],
        [0, 5, 6, 7, 8, 9],
        [29, 30, 31, 45],
        [30, 42, 43, 44, 45, 46, 47, 48],
    ]


def test_pinned_five_interval_queries():
    assert value_sets(QuerySetSpec(5, 3), 50, 2) == [
        [0, 4, 5, 6, 7, 13, 14, 15, 16, 17, 35, 43],
        [0, 11, 17, 18, 19, 20, 21, 33, 34, 35, 36, 43],
    ]


def test_pinned_queries_match_their_spec():
    """The pinned draws still satisfy the generator's own contract."""
    for spec in (QuerySetSpec(2, 1), QuerySetSpec(5, 3)):
        for query in generate_query_set(spec, 50, 4, seed=0):
            intervals = minimal_intervals(query)
            assert len(intervals) == spec.num_intervals
            equalities = sum(1 for iv in intervals if iv.is_equality)
            assert equalities == spec.num_equalities
