"""Tests for the paper's query-set generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryError
from repro.queries import QuerySetSpec, generate_query_set, paper_query_sets
from repro.queries.generator import generate_membership_query
from repro.queries.rewrite import constituent_counts


class TestPaperQuerySets:
    def test_exactly_eight_sets(self):
        specs = paper_query_sets()
        assert len(specs) == 8

    def test_parameter_grid(self):
        pairs = {(s.num_intervals, s.num_equalities) for s in paper_query_sets()}
        assert pairs == {
            (1, 0),
            (1, 1),
            (2, 0),
            (2, 1),
            (2, 2),
            (5, 0),
            (5, 3),
            (5, 5),
        }

    def test_labels(self):
        assert paper_query_sets()[0].label == "Nint=1,Nequ=0"


class TestSpecValidation:
    def test_invalid_counts(self):
        with pytest.raises(QueryError):
            QuerySetSpec(0, 0)
        with pytest.raises(QueryError):
            QuerySetSpec(2, 3)
        with pytest.raises(QueryError):
            QuerySetSpec(2, -1)

    def test_domain_too_small(self):
        rng = np.random.default_rng(0)
        with pytest.raises(QueryError):
            # 5 ranges need at least 5*2 + 4 = 14 values.
            generate_membership_query(QuerySetSpec(5, 0), 10, rng)


class TestGeneratedQueries:
    def test_deterministic_with_seed(self):
        a = generate_query_set(QuerySetSpec(2, 1), 50, num_queries=5, seed=3)
        b = generate_query_set(QuerySetSpec(2, 1), 50, num_queries=5, seed=3)
        assert [q.values for q in a] == [q.values for q in b]

    def test_count(self):
        queries = generate_query_set(QuerySetSpec(1, 0), 50, num_queries=10)
        assert len(queries) == 10

    @pytest.mark.parametrize("spec", paper_query_sets(), ids=lambda s: s.label)
    def test_specs_satisfied_exactly(self, spec):
        for seed in range(5):
            queries = generate_query_set(spec, 50, num_queries=4, seed=seed)
            for query in queries:
                n_int, n_equ = constituent_counts(query)
                assert n_int == spec.num_intervals, (spec.label, seed)
                assert n_equ == spec.num_equalities, (spec.label, seed)


@given(
    n_int=st.integers(min_value=1, max_value=6),
    n_equ_frac=st.floats(min_value=0, max_value=1),
    cardinality=st.integers(min_value=30, max_value=300),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=200, deadline=None)
def test_generator_property(n_int, n_equ_frac, cardinality, seed):
    """Any feasible (N_int, N_equ, C) combination is satisfied exactly."""
    n_equ = round(n_equ_frac * n_int)
    spec = QuerySetSpec(n_int, n_equ)
    rng = np.random.default_rng(seed)
    query = generate_membership_query(spec, cardinality, rng)
    assert constituent_counts(query) == (n_int, n_equ)
    assert max(query.values) < cardinality
