"""Unit tests for query objects and their classification."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.queries import IntervalQuery, MembershipQuery


class TestIntervalQuery:
    def test_classification_equality(self):
        q = IntervalQuery(3, 3, 10)
        assert q.is_equality and q.query_class == "EQ"
        assert not q.is_one_sided and not q.is_two_sided

    def test_classification_one_sided(self):
        assert IntervalQuery(0, 4, 10).query_class == "1RQ"
        assert IntervalQuery(4, 9, 10).query_class == "1RQ"

    def test_classification_two_sided(self):
        assert IntervalQuery(2, 7, 10).query_class == "2RQ"

    def test_boundary_equality_is_eq_not_1rq(self):
        # [0,0] touches the boundary but x == y wins (paper precedence).
        assert IntervalQuery(0, 0, 10).query_class == "EQ"
        assert IntervalQuery(9, 9, 10).query_class == "EQ"

    def test_full_domain(self):
        q = IntervalQuery(0, 9, 10)
        assert q.is_full_domain and q.query_class == "ALL"

    def test_value_set(self):
        assert IntervalQuery(2, 4, 10).value_set() == {2, 3, 4}

    def test_negated_value_set(self):
        q = IntervalQuery(2, 4, 10, negated=True)
        assert q.value_set() == {0, 1, 5, 6, 7, 8, 9}

    def test_matches(self):
        values = np.array([0, 2, 3, 4, 5, 9])
        q = IntervalQuery(2, 4, 10)
        assert q.matches(values).tolist() == [False, True, True, True, False, False]
        neg = IntervalQuery(2, 4, 10, negated=True)
        assert neg.matches(values).tolist() == [True, False, False, False, True, True]

    def test_str_forms(self):
        assert str(IntervalQuery(3, 3, 10)) == "A = 3"
        assert str(IntervalQuery(0, 4, 10)) == "A <= 4"
        assert str(IntervalQuery(4, 9, 10)) == "A >= 4"
        assert str(IntervalQuery(2, 7, 10)) == "2 <= A <= 7"
        assert str(IntervalQuery(2, 7, 10, negated=True)) == "NOT (2 <= A <= 7)"

    def test_invalid_bounds_rejected(self):
        with pytest.raises(QueryError):
            IntervalQuery(5, 4, 10)
        with pytest.raises(QueryError):
            IntervalQuery(-1, 4, 10)
        with pytest.raises(QueryError):
            IntervalQuery(0, 10, 10)

    def test_immutability(self):
        q = IntervalQuery(1, 2, 10)
        with pytest.raises(AttributeError):
            q.low = 0  # type: ignore[misc]


class TestMembershipQuery:
    def test_of_builder(self):
        q = MembershipQuery.of([3, 1, 3], 10)
        assert q.values == {1, 3}

    def test_matches(self):
        values = np.array([0, 1, 2, 3, 4])
        q = MembershipQuery.of({1, 3}, 10)
        assert q.matches(values).tolist() == [False, True, False, True, False]

    def test_str_sorted(self):
        assert str(MembershipQuery.of({5, 2, 9}, 10)) == "A IN {2, 5, 9}"

    def test_empty_set_rejected(self):
        with pytest.raises(QueryError):
            MembershipQuery(frozenset(), 10)

    def test_out_of_domain_rejected(self):
        with pytest.raises(QueryError):
            MembershipQuery.of({10}, 10)
        with pytest.raises(QueryError):
            MembershipQuery.of({-1}, 10)
