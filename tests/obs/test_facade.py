"""The Observability facade, installation, and stack integration."""

import json

from repro import obs
from repro.bitmap import BitVector
from repro.compress import get_codec
from repro.index import BitmapIndex, IndexSpec
from repro.queries import IntervalQuery
from repro.storage import BitmapStore, BufferPool
from repro.workload import zipf_column


class TestInstallation:
    def test_off_by_default(self):
        assert obs.active() is None

    def test_install_uninstall(self):
        instance = obs.install()
        try:
            assert obs.active() is instance
        finally:
            obs.uninstall()
        assert obs.active() is None

    def test_observed_restores_previous(self):
        with obs.observed() as outer:
            with obs.observed() as inner:
                assert obs.active() is inner
            assert obs.active() is outer
        assert obs.active() is None

    def test_observed_accepts_an_existing_instance(self):
        mine = obs.Observability()
        with obs.observed(mine) as active:
            assert active is mine

    def test_observed_restores_on_exception(self):
        try:
            with obs.observed():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert obs.active() is None


class TestFacade:
    def test_count_hits_registry_and_span(self):
        o = obs.Observability()
        with o.span("work") as span:
            o.count("reads", 3, codec="wah")
        assert o.counter_total("reads") == 3
        assert span.metrics == {"reads": 3}

    def test_observe_and_gauge(self):
        o = obs.Observability()
        o.observe("ms", 0.5, scheme="E")
        o.gauge_set("pages", 9, pool="decoded")
        assert o.metrics.find("ms", scheme="E").count == 1
        assert o.metrics.find("pages", pool="decoded").value == 9

    def test_reserved_looking_tag_keys_are_just_tags(self):
        """Tags named ``name``/``amount``/``value`` must not collide with
        the positional API (the experiment runner tags spans with
        ``name=...``); regression for a TypeError on exactly that."""
        o = obs.Observability()
        with o.span("experiment", name="figure6") as span:
            o.count("experiment.runs", 1, name="figure6")
            o.observe("ms", 1.0, value="x")
            o.gauge_set("g", 2.0, amount="y")
        assert span.tags == {"name": "figure6"}
        assert o.metrics.find("experiment.runs", name="figure6").value == 1

    def test_export_shape(self):
        o = obs.Observability()
        with o.span("query", scheme="E"):
            o.count("reads", 1)
        export = json.loads(o.export_json())
        assert set(export) == {"metrics", "trace"}
        assert export["metrics"]["reads"]["_"]["value"] == 1.0
        assert export["trace"]["spans"][0]["name"] == "query"


class TestStackIntegration:
    """The instrumented layers report when (and only when) installed."""

    def test_codec_counters(self):
        codec = get_codec("wah")
        vector = BitVector.from_indices(1000, [3, 500])
        with obs.observed() as o:
            payload = codec.encode(vector)
            codec.decode(payload, 1000)
        assert o.counter_total("codec.encode.calls") == 1
        assert o.metrics.find("codec.encode.bits_in", codec="wah").value == 1000
        assert o.metrics.find("codec.decode.bytes_in", codec="wah").value == len(
            payload
        )

    def test_encoded_size_does_not_count(self):
        codec = get_codec("wah")
        vector = BitVector.from_indices(1000, [3])
        with obs.observed() as o:
            codec.encoded_size(vector)
        assert o.counter_total("codec.encode.calls") == 0

    def test_buffer_counters(self):
        store = BitmapStore(codec="raw", page_size=512)
        store.put("a", BitVector.from_indices(10_000, [1]))
        pool = BufferPool(store, capacity_pages=100)
        with obs.observed() as o:
            pool.fetch("a")
            pool.fetch("a")
        assert o.metrics.find("buffer.misses", pool="decoded").value == 1
        assert o.metrics.find("buffer.hits", pool="decoded").value == 1
        assert o.metrics.find("buffer.used_pages", pool="decoded").value == 3

    def test_query_span_and_histogram(self):
        values = zipf_column(500, 10, 1.0, seed=0)
        index = BitmapIndex.build(values, IndexSpec(cardinality=10, scheme="E"))
        with obs.observed() as o:
            index.query(IntervalQuery(2, 6, 10))
        span = o.last_span("query")
        assert span.tags["scheme"] == "E"
        assert span.tags["klass"] == "2RQ"
        assert span.metrics["clock.pages_read"] > 0
        hist = o.metrics.find("query.simulated_ms", scheme="E", klass="2RQ")
        assert hist.count == 1

    def test_nothing_recorded_when_uninstalled(self):
        values = zipf_column(200, 8, 1.0, seed=0)
        index = BitmapIndex.build(values, IndexSpec(cardinality=8, scheme="E"))
        index.query(IntervalQuery(1, 5, 8))
        assert obs.active() is None  # and nothing raised
