"""Unit tests for the metrics registry and its instruments."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import DEFAULT_BUCKETS


class TestIdentity:
    def test_same_name_and_tags_is_the_same_series(self):
        reg = MetricsRegistry()
        reg.counter("reads", codec="wah").inc(2)
        reg.counter("reads", codec="wah").inc(3)
        assert reg.counter("reads", codec="wah").value == 5
        assert len(reg) == 1

    def test_tag_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1, b=2).inc()
        assert reg.counter("x", b=2, a=1).value == 1
        assert len(reg) == 1

    def test_tag_values_are_stringified(self):
        reg = MetricsRegistry()
        reg.counter("x", n=1).inc()
        assert reg.find("x", n="1") is reg.find("x", n=1)

    def test_different_tags_are_different_series(self):
        reg = MetricsRegistry()
        reg.counter("reads", codec="wah").inc()
        reg.counter("reads", codec="bbc").inc(4)
        reg.counter("reads").inc(10)
        assert len(reg) == 3
        assert reg.total("reads") == 15

    def test_type_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_find_missing_returns_none(self):
        assert MetricsRegistry().find("nope") is None


class TestCounter:
    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_default_increment_is_one(self):
        counter = MetricsRegistry().counter("x")
        counter.inc()
        assert counter.value == 1.0


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("pages")
        gauge.set(7)
        gauge.add(-2)
        assert gauge.value == 5


class TestHistogram:
    def test_summary_stats(self):
        hist = MetricsRegistry().histogram("ms")
        for value in (0.5, 1.5, 10.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(12.0)
        assert hist.mean == pytest.approx(4.0)
        assert hist.min == 0.5
        assert hist.max == 10.0

    def test_empty_histogram_mean_is_zero(self):
        hist = MetricsRegistry().histogram("ms")
        assert hist.mean == 0.0
        assert "min" not in hist.to_dict()

    def test_bucketing_includes_upper_bound(self):
        hist = MetricsRegistry().histogram("ms", bounds=(1.0, 10.0))
        hist.observe(1.0)     # lands in the <=1.0 bucket
        hist.observe(5.0)     # <=10.0
        hist.observe(100.0)   # overflow
        assert hist.bucket_counts == [1, 1, 1]
        assert hist.to_dict()["buckets"] == {"1.0": 1, "10.0": 1, "+inf": 1}

    def test_default_buckets_span_decades(self):
        assert DEFAULT_BUCKETS[0] == 0.001
        assert DEFAULT_BUCKETS[-1] == 1000.0
        ratios = [
            DEFAULT_BUCKETS[i + 1] / DEFAULT_BUCKETS[i]
            for i in range(len(DEFAULT_BUCKETS) - 1)
        ]
        assert all(2.9 < r < 3.4 for r in ratios)


class TestHistogramQuantiles:
    def test_uniform_distribution(self):
        # 1000 evenly spaced values over (0, 100]: quantile estimates
        # should track the true quantiles within one bucket's width.
        hist = MetricsRegistry().histogram(
            "ms", bounds=tuple(float(b) for b in range(10, 101, 10))
        )
        for i in range(1, 1001):
            hist.observe(i / 10.0)
        assert hist.quantile(0.50) == pytest.approx(50.0, abs=0.5)
        assert hist.quantile(0.95) == pytest.approx(95.0, abs=0.5)
        assert hist.quantile(0.99) == pytest.approx(99.0, abs=0.5)
        assert hist.quantile(1.0) == pytest.approx(100.0, abs=0.5)

    def test_point_mass_distribution(self):
        # Every observation identical: all quantiles are that value
        # exactly (the min/max clamp, not bucket interpolation).
        hist = MetricsRegistry().histogram("ms", bounds=(1.0, 10.0, 100.0))
        for _ in range(50):
            hist.observe(7.0)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == 7.0

    def test_bimodal_distribution(self):
        # 90 fast + 10 slow observations: p50 is in the fast mode, p99
        # in the slow mode — the shape tail-latency reporting must
        # resolve.
        hist = MetricsRegistry().histogram("ms", bounds=(1.0, 10.0, 100.0))
        for _ in range(90):
            hist.observe(0.5)
        for _ in range(10):
            hist.observe(50.0)
        assert hist.quantile(0.50) <= 1.0
        assert hist.quantile(0.99) > 10.0

    def test_overflow_bucket_resolves_to_max(self):
        hist = MetricsRegistry().histogram("ms", bounds=(1.0,))
        hist.observe(0.5)
        hist.observe(123.0)
        hist.observe(456.0)
        assert hist.quantile(0.99) == 456.0

    def test_estimates_clamped_to_observed_range(self):
        # One observation in a wide bucket: interpolation would invent
        # a value inside (10, 100]; the clamp pins it to the data.
        hist = MetricsRegistry().histogram("ms", bounds=(10.0, 100.0))
        hist.observe(42.0)
        assert hist.quantile(0.5) == 42.0
        assert hist.quantile(0.01) == 42.0

    def test_empty_histogram_is_zero(self):
        hist = MetricsRegistry().histogram("ms")
        assert hist.quantile(0.5) == 0.0
        assert hist.summary_quantiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_rejects_out_of_range_quantile(self):
        hist = MetricsRegistry().histogram("ms")
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_summary_quantiles_exported(self):
        hist = MetricsRegistry().histogram("ms", bounds=(1.0, 10.0))
        for value in (0.5, 2.0, 5.0, 8.0):
            hist.observe(value)
        out = hist.to_dict()
        assert out["p50"] == hist.quantile(0.50)
        assert out["p95"] == hist.quantile(0.95)
        assert out["p99"] == hist.quantile(0.99)


class TestExport:
    def test_to_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("reads", codec="wah").inc(2)
        reg.gauge("pages").set(3)
        out = reg.to_dict()
        assert out["reads"]["codec=wah"] == {"type": "counter", "value": 2.0}
        assert out["pages"]["_"] == {"type": "gauge", "value": 3.0}

    def test_export_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1).inc()
        reg.histogram("ms").observe(0.2)
        assert json.loads(reg.export_json()) == reg.to_dict()
