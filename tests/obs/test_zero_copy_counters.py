"""Zero-copy / fused-path counters: emission and trace export."""

import json

import numpy as np

from repro import obs
from repro.bitmap import BitVector
from repro.expr import evaluate, evaluate_fused, leaf
from repro.expr.fused import MIN_BLOCK_WORDS
from repro.index import BitmapIndex, IndexSpec
from repro.index.persist import load_index, save_index
from repro.queries import IntervalQuery
from repro.storage import MappedDirectoryStore


def make_bitmaps(length=MIN_BLOCK_WORDS * 64 * 2 + 5, seed=0):
    rng = np.random.default_rng(seed)
    return {
        key: BitVector.from_bools(rng.random(length) < 0.4)
        for key in ("a", "b")
    }, length


class TestStorageCounters:
    def test_mmap_counters_emitted(self, tmp_path):
        bitmaps, length = make_bitmaps()
        with obs.observed() as o:
            store = MappedDirectoryStore(tmp_path, codec="raw")
            store.put("a", bitmaps["a"])
            view = store.payload_view("a")
        assert o.counter_total("storage.mmap.maps") == 1
        assert o.counter_total("storage.mmap.view_bytes") == view.nbytes

    def test_copy_fallback_emitted_by_unmapped_store(self, tmp_path):
        from repro.storage import DirectoryStore

        bitmaps, _ = make_bitmaps()
        store = DirectoryStore(tmp_path, codec="raw")
        store.put("a", bitmaps["a"])
        with obs.observed() as o:
            store.payload_view("a")
        assert o.counter_total("storage.mmap.copy_fallbacks") == 1


class TestFusedCounters:
    def test_fused_counters_emitted(self):
        bitmaps, length = make_bitmaps()
        expr = ~(leaf("a") & leaf("b"))
        with obs.observed() as o:
            evaluate_fused(
                expr, bitmaps.get, length, block_words=MIN_BLOCK_WORDS
            )
        assert o.counter_total("expr.fused.blocks") == 3
        assert o.counter_total("expr.fused.not_folds") == 1
        assert o.metrics.find("expr.intermediate_allocs", mode="fused").value == 0

    def test_materialize_mode_counter_is_tagged(self):
        bitmaps, length = make_bitmaps()
        with obs.observed() as o:
            evaluate(leaf("a") & leaf("b"), bitmaps.get, length)
        assert o.metrics.find("expr.intermediate_allocs", mode="materialize").value == 1
        assert o.metrics.find("expr.intermediate_allocs", mode="fused") is None

    def test_materialize_fallback_counted_by_auto_engine(self):
        # Tiny index: the planner declines fusion for every constituent.
        values = np.arange(200) % 5
        index = BitmapIndex.build(values, IndexSpec(cardinality=5, scheme="E"))
        with obs.observed() as o:
            index.query(IntervalQuery(1, 3, 5))
        assert o.counter_total("expr.fused.materialize_fallbacks") >= 1
        assert o.counter_total("expr.fused.blocks") == 0


class TestExport:
    def test_counters_reach_trace_export(self, tmp_path):
        """The --trace-out JSON document carries the new counter families."""
        rng = np.random.default_rng(3)
        values = rng.integers(0, 8, MIN_BLOCK_WORDS * 64 * 2 + 9)
        index = BitmapIndex.build(
            values, IndexSpec(cardinality=8, scheme="E", codec="raw")
        )
        save_index(index, tmp_path / "idx")
        with obs.observed() as o:
            loaded = load_index(tmp_path / "idx", mapped=True)
            loaded.query(
                IntervalQuery(2, 6, 8), block_words=MIN_BLOCK_WORDS
            )
        export = json.loads(o.export_json())
        metrics = export["metrics"]
        assert metrics["storage.mmap.maps"]["_"]["value"] > 0
        assert metrics["storage.mmap.view_bytes"]["_"]["value"] > 0
        fused_allocs = metrics["expr.intermediate_allocs"]["mode=fused"]
        assert fused_allocs["value"] == 0
        assert metrics["expr.fused.blocks"]["_"]["value"] > 0
