"""Unit tests for spans and the tracer."""

import pytest

from repro.obs import Tracer


class TestNesting:
    def test_children_attach_to_innermost(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                with tracer.span("leaf"):
                    pass
        assert outer.children == [inner]
        assert inner.children[0].name == "leaf"
        assert tracer.roots() == [outer]

    def test_attribution_goes_to_innermost(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.attribute("pages", 1)
            with tracer.span("inner") as inner:
                tracer.attribute("pages", 2)
        assert inner.metrics == {"pages": 2}

    def test_close_rolls_children_up(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.attribute("pages", 1)
            with tracer.span("inner"):
                tracer.attribute("pages", 2)
                tracer.attribute("words", 10)
        assert outer.metrics == {"pages": 3, "words": 10}

    def test_attribute_outside_any_span_is_a_noop(self):
        tracer = Tracer()
        tracer.attribute("pages", 1)
        assert tracer.roots() == []

    def test_current_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None


class TestSpanLifecycle:
    def test_duration_set_on_close(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            assert span.duration_s is None
        assert span.duration_s is not None
        assert span.duration_s >= 0

    def test_double_close_keeps_first_duration(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            tracer.attribute("x", 1)
        duration = span.duration_s
        span.close()
        assert span.duration_s == duration
        assert span.metrics == {"x": 1}  # no double roll-up

    def test_tags_are_stringified(self):
        tracer = Tracer()
        with tracer.span("s", n=5, codec="wah") as span:
            pass
        assert span.tags == {"n": "5", "codec": "wah"}

    def test_exception_inside_span_still_closes_it(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("s") as span:
                raise RuntimeError("boom")
        assert span.duration_s is not None
        assert tracer.current is None

    def test_forgotten_inner_spans_are_closed_defensively(self):
        tracer = Tracer()
        outer_ctx = tracer.span("outer")
        outer = outer_ctx.__enter__()
        inner = tracer.span("inner").__enter__()  # never exited
        outer_ctx.__exit__(None, None, None)
        assert inner.duration_s is not None
        assert tracer.current is None
        assert outer.duration_s is not None


class TestRetention:
    def test_last_filters_by_name(self):
        tracer = Tracer()
        with tracer.span("query", scheme="E"):
            pass
        with tracer.span("experiment"):
            pass
        assert tracer.last().name == "experiment"
        assert tracer.last("query").tags == {"scheme": "E"}
        assert tracer.last("nope") is None

    def test_bounded_roots(self):
        tracer = Tracer(max_roots=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.roots()] == ["s2", "s3", "s4"]
        assert tracer.dropped_roots == 2
        assert tracer.to_dict()["dropped_roots"] == 2

    def test_to_dict_shape(self):
        tracer = Tracer()
        with tracer.span("query", scheme="E"):
            tracer.attribute("pages", 2)
        out = tracer.to_dict()
        (span,) = out["spans"]
        assert span["name"] == "query"
        assert span["tags"] == {"scheme": "E"}
        assert span["metrics"] == {"pages": 2}
        assert span["duration_ms"] >= 0
