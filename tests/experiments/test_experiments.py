"""Integration tests: each experiment runs (at reduced scale) and
reproduces the paper's qualitative shapes."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig, run_experiment

#: Small but meaningful scale so the whole file runs in seconds.
CONFIG = ExperimentConfig(num_records=8_000, component_counts=(1, 2, 3))


@pytest.fixture(scope="module")
def figure6():
    return run_experiment("figure6", CONFIG)


@pytest.fixture(scope="module")
def figure7():
    return run_experiment("figure7", CONFIG)


class TestRunner:
    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("figure99")

    def test_result_column_access(self, figure6):
        assert len(figure6.column("scheme")) == len(figure6.rows)
        with pytest.raises(ExperimentError):
            figure6.column("nope")

    def test_render_contains_rows(self, figure6):
        text = figure6.render()
        assert "Figure 6" in text
        assert "I" in text


class TestFigure6Shapes:
    def row(self, result, scheme, n):
        for r in result.rows:
            if r[0] == scheme and r[1] == n:
                return r
        raise AssertionError((scheme, n))

    def test_one_component_uncompressed_ordering(self, figure6):
        # (a) at n=1: I ~ 0.5, R ~ 0.98, E = 1.0.
        e = self.row(figure6, "E", 1)[3]
        r = self.row(figure6, "R", 1)[3]
        i = self.row(figure6, "I", 1)[3]
        assert i < r < e
        assert e == pytest.approx(1.0)
        assert i == pytest.approx(0.5)

    def test_compressibility_ordering(self, figure6):
        # (b) at n=1: E compresses best, I worst.
        e = self.row(figure6, "E", 1)[4]
        r = self.row(figure6, "R", 1)[4]
        i = self.row(figure6, "I", 1)[4]
        assert e < r < i
        assert i == pytest.approx(1.0, abs=0.05)

    def test_space_decreases_with_components(self, figure6):
        for scheme in ("E", "R", "I"):
            ratios = [self.row(figure6, scheme, n)[3] for n in (1, 2, 3)]
            assert ratios[0] >= ratios[1] >= ratios[2]

    def test_interval_most_space_efficient_uncompressed(self, figure6):
        for n in (1, 2, 3):
            i = self.row(figure6, "I", n)[3]
            assert i <= self.row(figure6, "E", n)[3]
            assert i <= self.row(figure6, "R", n)[3]


class TestFigure7Shapes:
    def test_skew_improves_compression(self, figure7):
        for row in figure7.rows:
            # Ratios from z=0 to z=3 should broadly decrease; allow a
            # small wobble between adjacent z values.
            z0, z3 = row[2], row[-1]
            assert z3 < z0

    def test_gap_narrows_with_skew(self, figure7):
        # Spread across schemes at n=1 shrinks from z=0 to z=3.
        n1 = [row for row in figure7.rows if row[0] == 1]
        spread_z0 = max(r[2] for r in n1) - min(r[2] for r in n1)
        spread_z3 = max(r[-1] for r in n1) - min(r[-1] for r in n1)
        assert spread_z3 < spread_z0


class TestFigure8:
    @pytest.fixture(scope="class")
    def figure8(self):
        config = ExperimentConfig(
            num_records=4_000, component_counts=(1, 2), queries_per_set=3
        )
        return run_experiment("figure8", config)

    def test_all_query_sets_present(self, figure8):
        sets = {row[0] for row in figure8.rows}
        assert len(sets) == 8

    def test_every_set_has_a_frontier(self, figure8):
        for label in {row[0] for row in figure8.rows}:
            marks = [row[4] for row in figure8.rows if row[0] == label]
            assert "*" in marks

    def test_equality_wins_equality_only_sets(self, figure8):
        """The paper: E is the winner when N_equ == N_int."""
        rows = [r for r in figure8.rows if r[0] == "Nint=1,Nequ=1"]
        fastest = min(rows, key=lambda r: r[3])
        assert fastest[1].startswith("E")


class TestFigure9:
    @pytest.fixture(scope="class")
    def figure9(self):
        config = ExperimentConfig(
            num_records=4_000,
            component_counts=(1, 2),
            queries_per_set=3,
            skews=(0.0, 2.0),
        )
        return run_experiment("figure9", config)

    def test_two_skew_levels(self, figure9):
        assert {row[0] for row in figure9.rows} == {"0", "2"}

    def test_compressed_space_shrinks_with_skew(self, figure9):
        def space(z, design):
            for row in figure9.rows:
                if row[0] == z and row[1] == design:
                    return row[2]
            raise AssertionError(design)

        assert space("2", "E<50>/bbc") < space("0", "E<50>/bbc")


class TestTable1:
    @pytest.fixture(scope="class")
    def table1(self):
        import repro.experiments.table1 as t1

        # Restrict the exhaustive search to the fast cardinalities; the
        # full (4, 5, 6) run is exercised by the benchmark harness.
        original = t1.SEARCH_CARDINALITIES
        t1.SEARCH_CARDINALITIES = (4, 5)
        try:
            return run_experiment("table1", ExperimentConfig())
        finally:
            t1.SEARCH_CARDINALITIES = original

    def test_matches_paper_at_c4(self, table1):
        rows = {
            (r[1], r[2]): r[3] for r in table1.rows if r[0] == 4
        }
        assert rows[("EQ", "E")] == "optimal"
        assert rows[("EQ", "R")] == "optimal"
        assert rows[("2RQ", "R")] == "not optimal"
        assert rows[("2RQ", "I")] == "optimal"
        assert rows[("1RQ", "E")] == "not optimal"

    def test_dominance_rows_present(self, table1):
        methods = [r[4] for r in table1.rows]
        assert any(m.startswith("dominance") for m in methods)

    def test_deviation_note_recorded(self, table1):
        assert any("DEVIATION" in note for note in table1.notes)


class TestFigure3:
    @pytest.fixture(scope="class")
    def figure3(self):
        return run_experiment(
            "figure3", ExperimentConfig(cardinality=20, component_counts=(1, 2))
        )

    def test_all_classes_present(self, figure3):
        assert {row[0] for row in figure3.rows} == {"EQ", "1RQ", "2RQ", "RQ"}

    def test_interval_on_frontier_for_2rq(self, figure3):
        rows = [r for r in figure3.rows if r[0] == "2RQ" and r[1] == "I<20>"]
        assert rows and rows[0][4] == "*"

    def test_equality_on_frontier_for_eq(self, figure3):
        rows = [r for r in figure3.rows if r[0] == "EQ" and r[1] == "E<20>"]
        assert rows and rows[0][4] == "*"
