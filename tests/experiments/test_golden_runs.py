"""Golden small-config experiment runs.

Full-size experiment regression lives in the benchmark baselines; these
tests pin *small* deterministic configurations end to end — rendered
output included — so a change anywhere in the data -> index -> query ->
report pipeline that shifts results is caught by the test suite itself,
not only by a benchmark diff.  The digests are over the rendered table,
which also freezes header wording and number formatting.
"""

import hashlib

from repro.experiments import ExperimentConfig, run_experiment

SMALL = ExperimentConfig(num_records=2000)
TINY_DOMAIN = ExperimentConfig(num_records=2000, cardinality=12)


def rendered_digest(result) -> str:
    return hashlib.sha256(result.render().encode()).hexdigest()[:16]


def test_figure6_small_config_golden():
    result = run_experiment("figure6", SMALL)
    assert len(result.rows) == 15
    assert rendered_digest(result) == "34befdf6b85f55f3"
    # Spot-check the anchor row: one-component E has ratio 1 by
    # definition, and BBC compresses the 2000-record bitmaps to ~25%.
    assert result.rows[0][:3] == ["E", 1, "<50>"]
    assert result.rows[0][3] == 1.0


def test_figure3_tiny_domain_golden():
    result = run_experiment("figure3", TINY_DOMAIN)
    assert len(result.rows) == 84
    assert rendered_digest(result) == "293d0577713853f8"
    # The EQ frontier at C=12 starts at the paper's R<3,2,2> point.
    assert result.rows[0] == ["EQ", "R<3,2,2>", 4, 10 / 3, "*"]


def test_golden_runs_are_reproducible():
    first = run_experiment("figure6", SMALL)
    second = run_experiment("figure6", SMALL)
    assert first.render() == second.render()
