"""Tests for the run-everything entry point (and its CLI hook)."""

import pytest

import repro.experiments.table1 as table1_module
from repro.experiments import (
    EXPERIMENT_NAMES,
    ExperimentConfig,
    run_all,
)


@pytest.fixture(scope="module")
def results():
    config = ExperimentConfig(
        num_records=3000, component_counts=(1, 2), queries_per_set=2
    )
    original = table1_module.SEARCH_CARDINALITIES
    table1_module.SEARCH_CARDINALITIES = (4,)
    try:
        return run_all(config)
    finally:
        table1_module.SEARCH_CARDINALITIES = original


def test_every_experiment_runs(results):
    assert set(results) == set(EXPERIMENT_NAMES)
    for name, result in results.items():
        assert result.rows, name


def test_results_render(results):
    for result in results.values():
        text = result.render()
        assert text.splitlines()[0].startswith(("Figure", "Table"))
