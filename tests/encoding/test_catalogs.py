"""Catalog-level tests: sizes, definitions and completeness per scheme.

These check each scheme's *definition* against the paper: the number of
stored bitmaps (the space costs quoted in §4.2 and §5) and the value
set each bitmap represents.
"""

import pytest

from repro.encoding import (
    ALL_SCHEME_NAMES,
    EXTENDED_SCHEME_NAMES,
    get_scheme,
)
from repro.errors import EncodingSchemeError

EVERY_SCHEME = ALL_SCHEME_NAMES + EXTENDED_SCHEME_NAMES
CARDINALITIES = [1, 2, 3, 4, 5, 6, 7, 10, 11, 50, 51, 200]


class TestSpaceCosts:
    """The bitmap counts the paper states for each scheme."""

    @pytest.mark.parametrize("c", [c for c in CARDINALITIES if c >= 3])
    def test_equality_stores_c_bitmaps(self, c):
        assert get_scheme("E").num_bitmaps(c) == c

    def test_equality_c2_footnote(self):
        # Footnote 2: for C = 2 only E^0 is stored.
        assert get_scheme("E").num_bitmaps(2) == 1

    @pytest.mark.parametrize("c", [c for c in CARDINALITIES if c >= 2])
    def test_range_stores_c_minus_1(self, c):
        assert get_scheme("R").num_bitmaps(c) == c - 1

    @pytest.mark.parametrize("c", [c for c in CARDINALITIES if c >= 2])
    def test_interval_stores_ceil_c_over_2(self, c):
        assert get_scheme("I").num_bitmaps(c) == (c + 1) // 2

    @pytest.mark.parametrize("c", [c for c in CARDINALITIES if c >= 4])
    def test_er_stores_2c_minus_3(self, c):
        # E (C bitmaps) + R (C-1) minus the virtual R^0 and R^{C-2}.
        assert get_scheme("ER").num_bitmaps(c) == 2 * c - 3

    @pytest.mark.parametrize("c", [c for c in CARDINALITIES if c >= 2])
    def test_oreo_stores_c_minus_1(self, c):
        assert get_scheme("O").num_bitmaps(c) == c - 1

    @pytest.mark.parametrize("c", [c for c in CARDINALITIES if c >= 3])
    def test_ei_stores_c_plus_ceil_c_over_2(self, c):
        assert get_scheme("EI").num_bitmaps(c) == c + (c + 1) // 2

    @pytest.mark.parametrize("c", [c for c in CARDINALITIES if c >= 5])
    def test_ei_star_space_formula(self, c):
        # Paper §5.4: ceil(C/2) + ceil((C-4)/2) bitmaps.
        expected = (c + 1) // 2 + (c - 4 + 1) // 2
        assert get_scheme("EI*").num_bitmaps(c) == expected

    def test_ei_star_reduces_to_interval_for_small_c(self):
        for c in (2, 3, 4):
            assert (
                get_scheme("EI*").num_bitmaps(c)
                == get_scheme("I").num_bitmaps(c)
            )

    def test_ei_reduces_to_equality_below_c3(self):
        assert get_scheme("EI").num_bitmaps(2) == get_scheme("E").num_bitmaps(2)


class TestDefinitions:
    def test_equality_bitmaps_are_singletons(self):
        catalog = get_scheme("E").catalog(10)
        assert all(catalog[v] == {v} for v in range(10))

    def test_range_bitmaps_are_prefixes(self):
        catalog = get_scheme("R").catalog(10)
        assert all(catalog[v] == set(range(v + 1)) for v in range(9))

    def test_interval_bitmaps_match_figure_4b(self):
        # Figure 4(b), C = 10: I^j = [j, j+4], j = 0..4.
        catalog = get_scheme("I").catalog(10)
        assert {j: sorted(s) for j, s in catalog.items()} == {
            j: list(range(j, j + 5)) for j in range(5)
        }

    def test_oreo_structure(self):
        catalog = get_scheme("O").catalog(10)
        # Odd slots are prefixes, even interior slots are pairs.
        assert catalog[3] == set(range(4))
        assert catalog[4] == {3, 4}
        # The parity bitmap holds the even values.
        assert catalog[9] == {0, 2, 4, 6, 8}

    def test_ei_star_pairs(self):
        # C = 10: m = 4, P^i = {i, i+5} for i = 1..3.
        catalog = get_scheme("EI*").catalog(10)
        for i in (1, 2, 3):
            assert catalog[("P", i)] == {i, i + 5}

    def test_interval_plus_is_interval_for_even_c(self):
        assert get_scheme("I+").catalog(10) == get_scheme("I").catalog(10)

    def test_interval_plus_odd_c_widens(self):
        # C = 5: the footnote-4 variant stores [0,2], [1,3], [2,4].
        catalog = get_scheme("I+").catalog(5)
        assert {j: sorted(s) for j, s in catalog.items()} == {
            0: [0, 1, 2],
            1: [1, 2, 3],
            2: [2, 3, 4],
        }


class TestCompleteness:
    @pytest.mark.parametrize("name", EVERY_SCHEME)
    @pytest.mark.parametrize("c", CARDINALITIES)
    def test_every_scheme_complete(self, name, c):
        assert get_scheme(name).is_complete(c), (name, c)

    @pytest.mark.parametrize("name", EVERY_SCHEME)
    def test_invalid_cardinality_rejected(self, name):
        with pytest.raises(EncodingSchemeError):
            get_scheme(name).catalog(0)


class TestRegistry:
    def test_unknown_scheme(self):
        with pytest.raises(EncodingSchemeError):
            get_scheme("Z")

    def test_names_match_instances(self):
        for name in EVERY_SCHEME:
            assert get_scheme(name).name == name
