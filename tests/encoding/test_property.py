"""Property-based tests: every scheme answers every query correctly.

The central invariant of the whole library: for any cardinality, any
data column and any interval query, the expression a scheme produces
evaluates to exactly the naive scan's answer — and it never touches
more bitmaps than the paper's bounds allow.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector
from repro.encoding import ALL_SCHEME_NAMES, EXTENDED_SCHEME_NAMES, get_scheme
from repro.expr import evaluate, expression_scan_count, simplify
from repro.expr.planner import minimal_scan_cost

EVERY_SCHEME = ALL_SCHEME_NAMES + EXTENDED_SCHEME_NAMES

#: Per-scheme worst-case scan bounds for any interval query (E's bound
#: is ceil(C/2); hybrids are bounded by their range-side plan; OREO
#: needs up to 2 scans per one-sided constituent of a two-sided query).
WORST_CASE = {
    "E": lambda c: max(1, c // 2),
    "R": lambda c: 2,
    "I": lambda c: 2,
    "I+": lambda c: 2,
    "ER": lambda c: 2,
    "O": lambda c: 4,
    "EI": lambda c: 2,
    "EI*": lambda c: 2,
    # Binary encoding touches every slice: ceil(log2 C) scans.
    "B": lambda c: max(1, (c - 1).bit_length()),
}


@st.composite
def scheme_data_query(draw):
    name = draw(st.sampled_from(EVERY_SCHEME))
    cardinality = draw(st.integers(min_value=1, max_value=24))
    low = draw(st.integers(min_value=0, max_value=cardinality - 1))
    high = draw(st.integers(min_value=low, max_value=cardinality - 1))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    size = draw(st.integers(min_value=0, max_value=120))
    return name, cardinality, low, high, seed, size


@given(case=scheme_data_query())
@settings(max_examples=400, deadline=None)
def test_expression_matches_naive_scan(case):
    name, cardinality, low, high, seed, size = case
    scheme = get_scheme(name)
    values = np.random.default_rng(seed).integers(0, cardinality, size=size)
    bitmaps = scheme.build(values, cardinality)
    expr = simplify(scheme.interval_expr(cardinality, low, high))
    got = evaluate(expr, lambda key: bitmaps[key], size)
    want = BitVector.from_bools((values >= low) & (values <= high))
    assert got == want


@given(case=scheme_data_query())
@settings(max_examples=300, deadline=None)
def test_scan_bound_honoured(case):
    name, cardinality, low, high, _, _ = case
    scheme = get_scheme(name)
    expr = simplify(scheme.interval_expr(cardinality, low, high))
    assert expression_scan_count(expr) <= WORST_CASE[name](cardinality)


@given(
    name=st.sampled_from(("R", "I", "I+")),
    cardinality=st.integers(min_value=2, max_value=10),
)
@settings(max_examples=60, deadline=None)
def test_two_scan_schemes_are_scan_minimal_up_to_one(name, cardinality):
    """For R/I/I+, the hand-derived expressions are within one scan of
    the information-theoretic minimum for every interval query."""
    scheme = get_scheme(name)
    catalog = dict(scheme.catalog(cardinality))
    domain = list(range(cardinality))
    for low in range(cardinality):
        for high in range(low, cardinality):
            if low == 0 and high == cardinality - 1:
                continue
            expr = simplify(scheme.interval_expr(cardinality, low, high))
            used = expression_scan_count(expr)
            best = minimal_scan_cost(catalog, domain, frozenset(range(low, high + 1)))
            assert used <= best + 1, (name, cardinality, low, high)


@given(
    name=st.sampled_from(EVERY_SCHEME),
    cardinality=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=120, deadline=None)
def test_catalog_is_complete(name, cardinality):
    assert get_scheme(name).is_complete(cardinality)


@given(
    name=st.sampled_from(EVERY_SCHEME),
    cardinality=st.integers(min_value=2, max_value=20),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=100, deadline=None)
def test_build_bitmaps_match_catalog_semantics(name, cardinality, seed):
    """Built bitmaps mark exactly the records whose value is in the
    slot's value set."""
    scheme = get_scheme(name)
    values = np.random.default_rng(seed).integers(0, cardinality, size=80)
    bitmaps = scheme.build(values, cardinality)
    for slot, value_set in scheme.catalog(cardinality).items():
        expected = BitVector.from_bools(
            np.isin(values, np.fromiter(value_set, dtype=np.int64))
        )
        assert bitmaps[slot] == expected
