"""Behavioural tests for the three basic schemes against the paper's
equations (1), (2) and (4)-(6), including scan-count guarantees."""

import numpy as np
import pytest

from repro.bitmap import BitVector
from repro.encoding import get_scheme
from repro.errors import QueryError
from repro.expr import evaluate, expression_scan_count, simplify
from tests.conftest import naive_interval_vector


def scans(scheme, c, low, high) -> int:
    return expression_scan_count(simplify(scheme.interval_expr(c, low, high)))


def check_query(scheme, values, c, low, high) -> None:
    bitmaps = scheme.build(values, c)
    expr = simplify(scheme.interval_expr(c, low, high))
    got = evaluate(expr, lambda k: bitmaps[k], len(values))
    assert got == naive_interval_vector(values, low, high)


class TestEqualityEncoding:
    """Equation (1): OR the shorter side, complement if needed."""

    def setup_method(self):
        self.scheme = get_scheme("E")

    def test_equality_is_single_scan(self):
        for v in range(10):
            assert scans(self.scheme, 10, v, v) == 1

    def test_narrow_interval_ors_inside(self):
        # [2,4] with C = 10: 3 <= floor(10/2), so 3 bitmaps.
        assert scans(self.scheme, 10, 2, 4) == 3

    def test_wide_interval_complements_outside(self):
        # [1,8] with C = 10: inside needs 8 > 5, outside needs 2.
        assert scans(self.scheme, 10, 1, 8) == 2

    def test_worst_case_half_domain(self):
        assert scans(self.scheme, 10, 0, 4) == 5

    def test_c2_uses_single_stored_bitmap(self, rng):
        values = rng.integers(0, 2, size=50)
        for v in (0, 1):
            check_query(self.scheme, values, 2, v, v)
            assert scans(self.scheme, 2, v, v) == 1

    def test_two_sided_validation(self):
        with pytest.raises(QueryError):
            self.scheme.two_sided_expr(10, 0, 5)


class TestRangeEncoding:
    """Equation (2): all six cases."""

    def setup_method(self):
        self.scheme = get_scheme("R")

    def test_eq_zero_is_r0(self):
        assert str(simplify(self.scheme.eq_expr(10, 0))) == "0"

    def test_eq_interior_is_xor(self):
        assert scans(self.scheme, 10, 5, 5) == 2

    def test_eq_top_is_complement(self):
        # A = C-1 -> NOT R^{C-2}: one scan.
        assert scans(self.scheme, 10, 9, 9) == 1

    def test_one_sided_le_single_scan(self):
        for v in range(9):
            assert scans(self.scheme, 10, 0, v) == 1

    def test_one_sided_ge_single_scan(self):
        for v in range(1, 10):
            assert scans(self.scheme, 10, v, 9) == 1

    def test_two_sided_is_xor_of_two(self):
        for low, high in [(1, 2), (3, 7), (1, 8)]:
            assert scans(self.scheme, 10, low, high) == 2

    def test_never_more_than_two_scans(self):
        for c in (2, 3, 7, 20):
            for low in range(c):
                for high in range(low, c):
                    assert scans(self.scheme, c, low, high) <= 2

    def test_correct_on_random_data(self, rng):
        values = rng.integers(0, 10, size=400)
        for low, high in [(0, 0), (3, 3), (9, 9), (0, 6), (4, 9), (2, 7)]:
            check_query(self.scheme, values, 10, low, high)


class TestIntervalEncoding:
    """Equations (4)-(6) plus the derived two-sided case analysis."""

    def setup_method(self):
        self.scheme = get_scheme("I")

    def test_paper_figure5_index(self, paper_column):
        """Figure 5(c): the interval-encoded index for the example data."""
        bitmaps = self.scheme.build(paper_column, 10)
        # I^0 = [0,4] marks records with values 0..4 (rows 0,1,2,3,5,7,11).
        assert bitmaps[0].to_indices().tolist() == [0, 1, 2, 3, 5, 7, 11]
        # I^4 = [4,8] marks rows with values 4..8 (rows 4,8,9,10,11).
        assert bitmaps[4].to_indices().tolist() == [4, 8, 9, 10, 11]

    def test_every_query_at_most_two_scans(self):
        for c in (2, 3, 4, 5, 10, 11, 20, 21, 50):
            for low in range(c):
                for high in range(low, c):
                    assert scans(self.scheme, c, low, high) <= 2, (c, low, high)

    def test_stored_interval_single_scan(self):
        # [v1, v1+m] is a stored bitmap: m = 4 at C = 10.
        for v1 in (1, 2, 3):
            assert scans(self.scheme, 10, v1, v1 + 4) == 1

    def test_le_m_single_scan(self):
        # "A <= m" is exactly I^0.
        assert scans(self.scheme, 10, 0, 4) == 1

    def test_equality_cases(self, rng):
        values = rng.integers(0, 11, size=300)
        for v in range(11):
            check_query(self.scheme, values, 11, v, v)

    @pytest.mark.parametrize("c", [2, 3, 4])
    def test_tiny_domains(self, c, rng):
        values = rng.integers(0, c, size=64)
        for low in range(c):
            for high in range(low, c):
                check_query(self.scheme, values, c, low, high)

    def test_two_sided_all_three_branches(self, rng):
        # C = 20, m = 9: d < m with low small (AND of two), low large
        # (complement form) and d > m (OR form).
        values = rng.integers(0, 20, size=500)
        for low, high in [(1, 3), (15, 17), (2, 18), (5, 14), (9, 12)]:
            check_query(self.scheme, values, 20, low, high)

    def test_update_cost_bounds(self):
        # §4.2: interval encoding needs at most floor(C/2) updates.
        for c in (10, 11, 50):
            worst = max(
                self.scheme.update_cost(c, v) for v in range(c)
            )
            assert worst == c // 2
