"""Tests for the binary (bit-sliced) encoding extension."""

import numpy as np
import pytest

from repro.encoding import get_scheme
from repro.encoding.binary import num_slices
from repro.encoding.costmodel import expected_scans
from repro.expr import evaluate, expression_scan_count, simplify
from tests.conftest import naive_interval_vector


def scans(scheme, c, low, high) -> int:
    return expression_scan_count(simplify(scheme.interval_expr(c, low, high)))


class TestCatalog:
    def test_num_slices(self):
        assert num_slices(1) == 0
        assert num_slices(2) == 1
        assert num_slices(50) == 6
        assert num_slices(64) == 6
        assert num_slices(65) == 7

    def test_log_space(self):
        scheme = get_scheme("B")
        for c in (2, 5, 50, 200, 1000):
            assert scheme.num_bitmaps(c) == num_slices(c)

    def test_slices_mark_bits(self):
        catalog = get_scheme("B").catalog(8)
        assert catalog[0] == {1, 3, 5, 7}
        assert catalog[1] == {2, 3, 6, 7}
        assert catalog[2] == {4, 5, 6, 7}

    def test_complete_for_any_c(self):
        scheme = get_scheme("B")
        for c in (1, 2, 3, 7, 50, 100):
            assert scheme.is_complete(c)


class TestScanCounts:
    def test_every_interval_costs_at_most_k_scans(self):
        scheme = get_scheme("B")
        for c in (4, 7, 16, 50):
            k = num_slices(c)
            for low in range(c):
                for high in range(low, c):
                    assert scans(scheme, c, low, high) <= k, (c, low, high)

    def test_expected_scans_log_like(self):
        scheme = get_scheme("B")
        assert expected_scans(scheme, 50, "EQ") <= 6.0
        assert expected_scans(scheme, 50, "2RQ") <= 6.0

    def test_le_with_trailing_ones_cheaper(self):
        # A <= 31 at C = 50 depends only on slice 5.
        scheme = get_scheme("B")
        assert scans(scheme, 50, 0, 31) == 1


class TestCorrectness:
    @pytest.mark.parametrize("c", [1, 2, 3, 4, 5, 8, 9, 16, 23, 50])
    def test_all_intervals_match_naive(self, c, rng):
        scheme = get_scheme("B")
        values = rng.integers(0, c, size=150)
        bitmaps = scheme.build(values, c)
        for low in range(c):
            for high in range(low, c):
                expr = simplify(scheme.interval_expr(c, low, high))
                got = evaluate(expr, lambda key: bitmaps[key], 150)
                assert got == naive_interval_vector(values, low, high), (
                    c,
                    low,
                    high,
                )

    def test_works_in_bitmap_index(self, rng):
        from repro.index import BitmapIndex, IndexSpec
        from repro.queries import MembershipQuery

        values = rng.integers(0, 50, size=2000)
        index = BitmapIndex.build(
            values, IndexSpec(cardinality=50, scheme="B", codec="bbc")
        )
        assert index.num_bitmaps() == 6
        query = MembershipQuery.of({3, 17, 40, 41}, 50)
        assert index.query(query).row_count == int(query.matches(values).sum())


class TestDesignSpacePosition:
    def test_smallest_space_of_all_schemes(self):
        binary = get_scheme("B")
        for other in ("E", "R", "I", "ER", "O", "EI", "EI*"):
            assert binary.num_bitmaps(50) < get_scheme(other).num_bitmaps(50)

    def test_incomparable_with_r_and_i(self):
        """B trades time for space: neither dominates nor is dominated
        by the range-style schemes."""
        from repro.analysis.optimality import dominates, scheme_point

        binary_point = scheme_point(get_scheme("B"), 50, "RQ")
        for other in ("R", "I"):
            other_point = scheme_point(get_scheme(other), 50, "RQ")
            assert not dominates(other_point, binary_point)
            assert not dominates(binary_point, other_point)

    def test_dominates_equality_on_range_classes(self):
        """For range queries B beats E in both space (6 vs 50 bitmaps)
        and expected scans (~5.6 vs ~13) — another witness for Theorem
        3.1(6), E's non-optimality for range classes."""
        from repro.analysis.optimality import dominates, scheme_point

        for q in ("1RQ", "2RQ", "RQ"):
            assert dominates(
                scheme_point(get_scheme("B"), 50, q),
                scheme_point(get_scheme("E"), 50, q),
            )
