"""Cross-check of the re-derived evaluation equations against the
brute-force planner.

The paper defers OREO's and EI*'s evaluation expressions to the
unavailable tech report; our derivations (module docstrings of
``encoding/oreo.py`` and ``encoding/hybrid_ei_star.py``) are verified
for *correctness* elsewhere — these tests verify they are also
*scan-efficient*: never more than one scan above the
information-theoretic minimum for their own catalog (with OREO's one
documented 3-scan corner at odd C).
"""

import pytest

from repro.encoding import get_scheme
from repro.expr import expression_scan_count, simplify
from repro.expr.planner import minimal_scan_cost

CARDINALITIES = (4, 5, 6, 7, 8, 9, 10)


def derived_vs_minimal(scheme_name: str, cardinality: int):
    """Yield (low, high, derived scans, minimal scans) for all queries."""
    scheme = get_scheme(scheme_name)
    catalog = dict(scheme.catalog(cardinality))
    domain = list(range(cardinality))
    for low in range(cardinality):
        for high in range(low, cardinality):
            if low == 0 and high == cardinality - 1:
                continue
            expr = simplify(scheme.interval_expr(cardinality, low, high))
            derived = expression_scan_count(expr)
            minimal = minimal_scan_cost(
                catalog, domain, frozenset(range(low, high + 1))
            )
            yield low, high, derived, minimal


@pytest.mark.parametrize("cardinality", CARDINALITIES)
def test_ei_star_derivation_within_one_scan(cardinality):
    for low, high, derived, minimal in derived_vs_minimal("EI*", cardinality):
        assert derived <= minimal + 1, (cardinality, low, high, derived, minimal)


@pytest.mark.parametrize("cardinality", CARDINALITIES)
def test_oreo_derivation_within_two_scans(cardinality):
    """OREO's two-sided conjunction form can pay up to two extra scans
    over the minimum (the XOR-able prefix pairs the planner finds);
    the derivation never does worse than that."""
    worst_gap = 0
    for low, high, derived, minimal in derived_vs_minimal("O", cardinality):
        worst_gap = max(worst_gap, derived - minimal)
        assert derived <= minimal + 2, (cardinality, low, high, derived, minimal)
    # The gap really is bounded by 2, not larger, at every C tested.
    assert worst_gap <= 2


@pytest.mark.parametrize("scheme_name", ["R", "I", "I+", "ER", "EI"])
def test_paper_schemes_tight_at_c10(scheme_name):
    """The schemes with paper-given (or symmetric) equations stay
    within one scan of minimal at C = 10."""
    for low, high, derived, minimal in derived_vs_minimal(scheme_name, 10):
        assert derived <= minimal + 1, (scheme_name, low, high, derived, minimal)
