"""Tests for the analytic cost model against the paper's stated costs."""

import pytest

from repro.encoding import get_scheme
from repro.encoding.costmodel import (
    expected_scans,
    query_class_queries,
    space_cost,
    update_costs,
    worst_case_scans,
)
from repro.errors import QueryError


class TestQueryClassEnumeration:
    def test_eq_class(self):
        assert list(query_class_queries(4, "EQ")) == [
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 3),
        ]

    def test_1rq_class(self):
        assert set(query_class_queries(5, "1RQ")) == {
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 4),
            (2, 4),
            (3, 4),
        }

    def test_2rq_class(self):
        assert set(query_class_queries(5, "2RQ")) == {(1, 2), (1, 3), (2, 3)}

    def test_2rq_empty_below_c4(self):
        assert list(query_class_queries(3, "2RQ")) == []

    def test_rq_is_union(self):
        rq = set(query_class_queries(6, "RQ"))
        assert rq == set(query_class_queries(6, "1RQ")) | set(
            query_class_queries(6, "2RQ")
        )

    def test_classes_are_disjoint(self):
        eq = set(query_class_queries(8, "EQ"))
        rq = set(query_class_queries(8, "RQ"))
        assert not eq & rq

    def test_unknown_class_rejected(self):
        with pytest.raises(QueryError):
            list(query_class_queries(5, "3RQ"))


class TestExpectedScans:
    """Spot-checks of Time(S, C, Q) against the paper's analysis."""

    def test_equality_eq_is_one(self):
        assert expected_scans(get_scheme("E"), 50, "EQ") == 1.0

    def test_range_1rq_is_one(self):
        assert expected_scans(get_scheme("R"), 50, "1RQ") == 1.0

    def test_range_2rq_is_two(self):
        assert expected_scans(get_scheme("R"), 50, "2RQ") == 2.0

    def test_range_eq_approaches_two(self):
        # (1 + 2(C-2) + 1) / C = 2 - 2/C.
        assert expected_scans(get_scheme("R"), 50, "EQ") == pytest.approx(
            2 - 2 / 50
        )

    def test_interval_all_classes_at_most_two(self):
        scheme = get_scheme("I")
        for c in (4, 10, 50, 51):
            for q in ("EQ", "1RQ", "2RQ", "RQ"):
                assert expected_scans(scheme, c, q) <= 2.0
                assert worst_case_scans(scheme, c, q) <= 2

    def test_equality_range_classes_grow_linearly(self):
        # Equality encoding averages ~C/4 scans for 1RQ.
        scheme = get_scheme("E")
        assert expected_scans(scheme, 50, "1RQ") == pytest.approx(13.0)

    def test_er_beats_both_parents_time(self):
        er = get_scheme("ER")
        assert expected_scans(er, 50, "EQ") == 1.0
        assert expected_scans(er, 50, "1RQ") == 1.0
        assert expected_scans(er, 50, "2RQ") == 2.0

    def test_empty_class_zero(self):
        assert expected_scans(get_scheme("E"), 3, "2RQ") == 0.0


class TestSpace:
    def test_space_cost_matches_catalog(self):
        for name in ("E", "R", "I", "ER", "O", "EI", "EI*"):
            scheme = get_scheme(name)
            assert space_cost(scheme, 50) == scheme.num_bitmaps(50)


class TestUpdateCosts:
    """§4.2's best/expected/worst bitmap updates per new record."""

    def test_equality_is_one_one_one(self):
        costs = update_costs(get_scheme("E"), 50)
        assert (costs.best, costs.expected, costs.worst) == (1, 1.0, 1)

    def test_range_expected_half_c(self):
        costs = update_costs(get_scheme("R"), 50)
        # Value v sets bits in R^v..R^{C-2}; value C-1 sets none (the
        # paper quotes best = 1 counting the bitmap append itself).
        assert costs.expected == pytest.approx((50 - 1) / 2)
        assert costs.worst == 49

    def test_interval_expected_quarter_c(self):
        costs = update_costs(get_scheme("I"), 50)
        assert costs.expected == pytest.approx(50 / 4)
        assert costs.worst == 25

    def test_ordering_matches_section_4_2(self):
        # E most update-efficient, R least, I in between.
        e = update_costs(get_scheme("E"), 50).expected
        i = update_costs(get_scheme("I"), 50).expected
        r = update_costs(get_scheme("R"), 50).expected
        assert e < i < r
