"""Behavioural tests for the four hybrid schemes (Section 5) and the
footnote-4 interval variant."""

import numpy as np
import pytest

from repro.encoding import get_scheme
from repro.expr import evaluate, expression_scan_count, simplify
from tests.conftest import naive_interval_vector


def scans(scheme, c, low, high) -> int:
    return expression_scan_count(simplify(scheme.interval_expr(c, low, high)))


def check_query(scheme, values, c, low, high) -> None:
    bitmaps = scheme.build(values, c)
    expr = simplify(scheme.interval_expr(c, low, high))
    got = evaluate(expr, lambda k: bitmaps[k], len(values))
    assert got == naive_interval_vector(values, low, high), (c, low, high)


class TestEqualityRange:
    def setup_method(self):
        self.scheme = get_scheme("ER")

    def test_equality_single_scan(self):
        for v in range(10):
            assert scans(self.scheme, 10, v, v) == 1

    def test_one_sided_single_scan(self):
        # Including the virtual R^0 = E^0 and R^{C-2} = NOT E^{C-1}.
        for v in range(9):
            assert scans(self.scheme, 10, 0, v) == 1
        for v in range(1, 10):
            assert scans(self.scheme, 10, v, 9) == 1

    def test_two_sided_at_most_two_scans(self):
        for low in range(1, 9):
            for high in range(low + 1, 9):
                assert scans(self.scheme, 10, low, high) <= 2

    def test_virtual_bitmaps_not_materialized(self):
        catalog = self.scheme.catalog(10)
        assert ("R", 0) not in catalog
        assert ("R", 8) not in catalog

    @pytest.mark.parametrize("c", [2, 3, 4, 5, 10])
    def test_correct_everywhere(self, c, rng):
        values = rng.integers(0, c, size=128)
        for low in range(c):
            for high in range(low, c):
                check_query(self.scheme, values, c, low, high)


class TestOreo:
    def setup_method(self):
        self.scheme = get_scheme("O")

    def test_odd_prefix_single_scan(self):
        # "A <= v" for odd v is the stored range bitmap.
        for v in (1, 3, 5, 7):
            assert scans(self.scheme, 10, 0, v) == 1

    def test_even_prefix_two_scans(self):
        for v in (2, 4, 6, 8):
            assert scans(self.scheme, 10, 0, v) == 2

    def test_equality_at_most_three_scans(self):
        for c in (2, 3, 4, 5, 6, 9, 10, 11, 50):
            for v in range(c):
                assert scans(self.scheme, c, v, v) <= 3, (c, v)

    def test_space_equals_range_encoding(self):
        for c in (5, 10, 50):
            assert self.scheme.num_bitmaps(c) == c - 1

    @pytest.mark.parametrize("c", [2, 3, 4, 5, 6, 7, 10, 11])
    def test_correct_everywhere(self, c, rng):
        values = rng.integers(0, c, size=128)
        for low in range(c):
            for high in range(low, c):
                check_query(self.scheme, values, c, low, high)


class TestEqualityInterval:
    def setup_method(self):
        self.scheme = get_scheme("EI")

    def test_equality_single_scan(self):
        for v in range(10):
            assert scans(self.scheme, 10, v, v) == 1

    def test_ranges_use_interval_bitmaps(self):
        expr = simplify(self.scheme.interval_expr(10, 2, 6))
        assert all(key[0] == "I" for key in expr.leaf_keys())

    def test_equality_uses_equality_bitmaps(self):
        expr = simplify(self.scheme.interval_expr(10, 4, 4))
        assert all(key[0] == "E" for key in expr.leaf_keys())

    def test_range_at_most_two_scans(self):
        for low in range(10):
            for high in range(low + 1, 10):
                assert scans(self.scheme, 10, low, high) <= 2

    @pytest.mark.parametrize("c", [2, 3, 5, 10])
    def test_correct_everywhere(self, c, rng):
        values = rng.integers(0, c, size=128)
        for low in range(c):
            for high in range(low, c):
                check_query(self.scheme, values, c, low, high)


class TestEqualityIntervalStar:
    def setup_method(self):
        self.scheme = get_scheme("EI*")

    def test_pair_covered_equalities_share_i0(self):
        # §5.4: equality on a pair-covered value uses P^i and I^0.
        c = 10  # m = 4, pairs cover 1..3 and 6..8.
        for v in (1, 2, 3):
            keys = simplify(self.scheme.eq_expr(c, v)).leaf_keys()
            assert keys == {("P", v), ("I", 0)}
        for v in (6, 7, 8):
            keys = simplify(self.scheme.eq_expr(c, v)).leaf_keys()
            assert keys == {("P", v - 5), ("I", 0)}

    def test_every_query_at_most_two_scans(self):
        for c in (5, 10, 11, 50):
            for low in range(c):
                for high in range(low, c):
                    assert scans(self.scheme, c, low, high) <= 2, (c, low, high)

    def test_range_queries_match_interval_encoding(self):
        interval = get_scheme("I")
        for low, high in [(0, 4), (2, 7), (3, 9)]:
            ours = scans(self.scheme, 10, low, high)
            theirs = scans(interval, 10, low, high)
            assert ours == theirs

    @pytest.mark.parametrize("c", [2, 3, 4, 5, 6, 7, 10, 11])
    def test_correct_everywhere(self, c, rng):
        values = rng.integers(0, c, size=128)
        for low in range(c):
            for high in range(low, c):
                check_query(self.scheme, values, c, low, high)


class TestIntervalPlus:
    def setup_method(self):
        self.scheme = get_scheme("I+")

    def test_matches_interval_for_even_c(self):
        interval = get_scheme("I")
        for c in (4, 10, 50):
            for low in range(c):
                for high in range(low, c):
                    assert scans(self.scheme, c, low, high) == scans(
                        interval, c, low, high
                    )

    def test_odd_c_ge_uses_mirror(self):
        # C = 5, m = 2: "A >= 2" is exactly the stored I^2 = [2,4].
        expr = simplify(self.scheme.interval_expr(5, 2, 4))
        assert expr.leaf_keys() == {2}

    def test_every_query_at_most_two_scans(self):
        for c in (3, 5, 7, 9, 11, 51):
            for low in range(c):
                for high in range(low, c):
                    assert scans(self.scheme, c, low, high) <= 2, (c, low, high)

    def test_better_expected_1rq_than_interval_at_odd_c(self):
        from repro.encoding.costmodel import expected_scans

        interval = get_scheme("I")
        for c in (5, 7, 9, 21):
            assert expected_scans(self.scheme, c, "1RQ") < expected_scans(
                interval, c, "1RQ"
            )

    @pytest.mark.parametrize("c", [2, 3, 5, 7, 9, 11])
    def test_correct_everywhere(self, c, rng):
        values = rng.integers(0, c, size=128)
        for low in range(c):
            for high in range(low, c):
                check_query(self.scheme, values, c, low, high)
