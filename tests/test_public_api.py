"""Smoke tests for the package's public API surface."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_style_usage():
    """The README quickstart, end to end."""
    values = repro.zipf_column(num_records=10_000, cardinality=50, skew=1.0, seed=0)
    index = repro.BitmapIndex.build(
        values,
        repro.IndexSpec(cardinality=50, scheme="I", num_components=2, codec="bbc"),
    )
    result = index.query(repro.IntervalQuery(10, 30, 50))
    assert result.row_count == int(((values >= 10) & (values <= 30)).sum())

    membership = repro.MembershipQuery.of({3, 17, 18, 19, 42}, 50)
    result = index.query(membership)
    assert result.row_count == int(membership.matches(values).sum())


def test_scheme_names_exposed():
    assert repro.ALL_SCHEME_NAMES == ("E", "R", "I", "ER", "O", "EI", "EI*")
    for name in repro.ALL_SCHEME_NAMES:
        assert repro.get_scheme(name).name == name


def test_cost_model_entry_points():
    scheme = repro.get_scheme("I")
    assert repro.space_cost(scheme, 50) == 25
    assert repro.expected_scans(scheme, 50, "2RQ") <= 2.0
