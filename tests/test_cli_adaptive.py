"""CLI end-to-end coverage for the adaptive codec and Markov generator."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.index.persist import MANIFEST_NAME


class TestMarkovGenerate:
    def test_markov_column(self, tmp_path, capsys):
        out = tmp_path / "data.npy"
        code = main(
            [
                "generate",
                str(out),
                "--num-records",
                "5000",
                "--cardinality",
                "16",
                "--generator",
                "markov",
                "--clustering",
                "10",
                "--skew",
                "1",
            ]
        )
        assert code == 0
        values = np.load(out)
        assert values.size == 5000
        assert values.max() < 16
        runs = 1 + int((np.diff(values) != 0).sum())
        assert values.size / runs > 5.0  # clustered, not i.i.d.
        assert "f=10" in capsys.readouterr().out

    def test_zipf_remains_default(self, tmp_path, capsys):
        out = tmp_path / "data.npy"
        assert main(["generate", str(out), "--num-records", "100"]) == 0
        assert "f=" not in capsys.readouterr().out


class TestAutoCodecCycle:
    @pytest.fixture
    def markov_column_file(self, tmp_path):
        path = tmp_path / "col.npy"
        main(
            [
                "generate",
                str(path),
                "--num-records",
                "4000",
                "--cardinality",
                "32",
                "--generator",
                "markov",
                "--clustering",
                "8",
                "--skew",
                "2",
            ]
        )
        return path

    def test_build_query_verify_auto(
        self, tmp_path, markov_column_file, capsys
    ):
        index_dir = tmp_path / "idx"
        assert main(
            [
                "build",
                str(markov_column_file),
                str(index_dir),
                "--scheme",
                "E",
                "--codec",
                "auto",
            ]
        ) == 0
        capsys.readouterr()

        manifest = json.loads((index_dir / MANIFEST_NAME).read_text())
        assert manifest["codec"] == "auto"
        inner = {entry["codec"] for entry in manifest["bitmaps"]}
        assert len(inner) >= 2, inner

        values = np.load(markov_column_file)
        assert main(
            ["query", str(index_dir), "--low", "2", "--high", "20"]
        ) == 0
        out = capsys.readouterr().out
        expected = int(((values >= 2) & (values <= 20)).sum())
        assert f"matching rows: {expected}" in out

        assert main(["verify-index", str(index_dir)]) == 0
        out = capsys.readouterr().out
        assert "codec:" in out
        for name in sorted(inner):
            assert name in out

    def test_experiment_adaptive_sweep(self, capsys):
        code = main(
            ["experiment", "adaptive_sweep", "--num-records", "3000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("Figure A1")
        assert "winner" in out
