"""Bit-for-bit reproduction of the paper's worked examples:
Figure 1 (equality and range indexes), Figure 2 (base-<3,4> indexes)
and Figure 5 (interval index), all over the same 12-record column."""

import numpy as np
import pytest

from repro.encoding import get_scheme
from repro.index import BitmapIndex, IndexSpec


def bits(vector) -> str:
    return "".join("1" if b else "0" for b in vector.to_bools())


class TestFigure1:
    """C = 10, column (3,2,1,2,8,2,9,0,7,5,6,4)."""

    def test_equality_encoded_index(self, paper_column):
        bitmaps = get_scheme("E").build(paper_column, 10)
        # Columns of Figure 1(b), read top-to-bottom per bitmap.
        expected = {
            0: "000000010000",
            1: "001000000000",
            2: "010101000000",
            3: "100000000000",
            4: "000000000001",
            5: "000000000100",
            6: "000000000010",
            7: "000000001000",
            8: "000010000000",
            9: "000000100000",
        }
        for slot, pattern in expected.items():
            assert bits(bitmaps[slot]) == pattern, f"E^{slot}"

    def test_range_encoded_index(self, paper_column):
        bitmaps = get_scheme("R").build(paper_column, 10)
        # Columns of Figure 1(c): R^v marks records with value <= v.
        expected = {
            0: "000000010000",
            1: "001000010000",
            2: "011101010000",
            3: "111101010000",
            4: "111101010001",
            5: "111101010101",
            6: "111101010111",
            7: "111101011111",
            8: "111111011111",
        }
        for slot, pattern in expected.items():
            assert bits(bitmaps[slot]) == pattern, f"R^{slot}"


class TestFigure2:
    """Base-<3,4> decomposition of the same column."""

    @pytest.fixture
    def index_digits(self, paper_column):
        from repro.index.decompose import decompose_column

        high, low = decompose_column(paper_column, (3, 4))
        return high, low

    def test_digit_decomposition(self, index_digits):
        high, low = index_digits
        # Figure 2's arrows: 3 = 0*4+3, 8 = 2*4+0, 9 = 2*4+1, ...
        assert high.tolist() == [0, 0, 0, 0, 2, 0, 2, 0, 1, 1, 1, 1]
        assert low.tolist() == [3, 2, 1, 2, 0, 2, 1, 0, 3, 1, 2, 0]

    def test_equality_encoded_components(self, paper_column):
        index = BitmapIndex.build(
            paper_column, IndexSpec(cardinality=10, scheme="E", bases=(3, 4))
        )
        store = index.store
        # Figure 2(b), component 2 (most significant): E_2^1 marks rows
        # 9-12 (1-based) = values 7,5,6,4.
        assert bits(store.get((0, 1))) == "000000001111"
        assert bits(store.get((0, 2))) == "000010100000"
        # Component 1: E_1^2 marks rows with low digit 2.
        assert bits(store.get((1, 2))) == "010101000010"

    def test_range_encoded_components(self, paper_column):
        index = BitmapIndex.build(
            paper_column, IndexSpec(cardinality=10, scheme="R", bases=(3, 4))
        )
        store = index.store
        # Figure 2(c): R_2^0 marks high digit 0, R_2^1 marks digit <= 1.
        assert bits(store.get((0, 0))) == "111101010000"
        assert bits(store.get((0, 1))) == "111101011111"
        # R_1^0 marks low digit 0; R_1^2 marks low digit <= 2.
        assert bits(store.get((1, 0))) == "000010010001"
        assert bits(store.get((1, 2))) == "011111110111"


class TestFigure5:
    """Interval-encoded index, C = 10: I^j = [j, j+4]."""

    def test_interval_encoded_index(self, paper_column):
        bitmaps = get_scheme("I").build(paper_column, 10)
        expected = {
            0: "111101010001",  # values 0..4
            1: "111101000101",  # values 1..5
            2: "110101000111",  # values 2..6
            3: "100000001111",  # values 3..7
            4: "000010001111",  # values 4..8
        }
        for slot, pattern in expected.items():
            assert bits(bitmaps[slot]) == pattern, f"I^{slot}"

    def test_definition_matches_figure_5a(self):
        catalog = get_scheme("I").catalog(10)
        assert {j: (min(s), max(s)) for j, s in catalog.items()} == {
            0: (0, 4),
            1: (1, 5),
            2: (2, 6),
            3: (3, 7),
            4: (4, 8),
        }
