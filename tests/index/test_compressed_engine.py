"""Tests for the compressed-domain query engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryError
from repro.index import BitmapIndex, CompressedQueryEngine, IndexSpec
from repro.queries import IntervalQuery, MembershipQuery
from repro.storage import CostClock
from repro.workload import zipf_column


@pytest.fixture(scope="module")
def index_and_values():
    values = zipf_column(8000, 50, 2.0, seed=9)
    index = BitmapIndex.build(
        values, IndexSpec(cardinality=50, scheme="I", bases=(7, 8), codec="ewah")
    )
    return index, values


class TestCorrectness:
    def test_requires_compressed_domain_codec(self, rng):
        values = rng.integers(0, 10, size=100)
        index = BitmapIndex.build(
            values, IndexSpec(cardinality=10, scheme="I", codec="raw")
        )
        with pytest.raises(QueryError, match="compressed-domain"):
            CompressedQueryEngine(index)

    @pytest.mark.parametrize("codec", ["bbc", "wah", "ewah", "roaring"])
    def test_all_compressed_domain_codecs_agree(self, rng, codec):
        values = rng.integers(0, 10, size=400)
        index = BitmapIndex.build(
            values, IndexSpec(cardinality=10, scheme="I", codec=codec)
        )
        engine = CompressedQueryEngine(index)
        for query in (
            IntervalQuery(2, 7, 10),
            MembershipQuery.of({0, 3, 9}, 10),
        ):
            result = engine.execute(query)
            assert result.row_count == int(query.matches(values).sum())

    def test_interval_queries_match_standard_engine(self, index_and_values):
        index, values = index_and_values
        compressed = CompressedQueryEngine(index)
        standard = index.engine()
        for low, high in [(0, 0), (5, 20), (0, 30), (44, 49), (17, 17)]:
            query = IntervalQuery(low, high, 50)
            assert compressed.execute(query).bitmap == (
                standard.execute(query).bitmap
            ), (low, high)

    def test_membership_queries_match(self, index_and_values):
        index, values = index_and_values
        engine = CompressedQueryEngine(index)
        query = MembershipQuery.of({1, 2, 3, 20, 33, 34}, 50)
        result = engine.execute(query)
        assert result.row_count == int(query.matches(values).sum())
        assert result.strategy == "compressed-domain"

    def test_scan_accounting(self, index_and_values):
        index, _ = index_and_values
        engine = CompressedQueryEngine(index)
        result = engine.execute(IntervalQuery(5, 20, 50))
        assert result.stats.scans == len(set(result.stats.fetched_keys))
        assert result.stats.scans >= 1


class TestAccounting:
    def test_only_final_answer_decoded(self, index_and_values):
        index, _ = index_and_values
        clock = CostClock()
        engine = CompressedQueryEngine(index, clock=clock)
        engine.execute(IntervalQuery(5, 20, 50))
        # Operand fetches are never decoded; the standard engine
        # decompresses every fetched bitmap.
        standard_clock = CostClock()
        index.engine(clock=standard_clock).execute(IntervalQuery(5, 20, 50))
        assert clock.bytes_decompressed < standard_clock.bytes_decompressed

    def test_cpu_cheaper_on_compressible_data(self):
        # Highly skewed data -> tiny payloads -> compressed-domain CPU
        # must be far below the standard engine's.
        values = zipf_column(20_000, 50, 3.0, seed=3)
        index = BitmapIndex.build(
            values, IndexSpec(cardinality=50, scheme="E", codec="ewah")
        )
        query = MembershipQuery.of({1, 2, 3, 4, 10, 11}, 50)

        compressed_clock = CostClock()
        CompressedQueryEngine(index, clock=compressed_clock).execute(query)
        standard_clock = CostClock()
        index.engine(clock=standard_clock).execute(query)
        assert compressed_clock.cpu_ms < standard_clock.cpu_ms

    def test_payload_pool_hits(self, index_and_values):
        index, _ = index_and_values
        engine = CompressedQueryEngine(index)
        engine.execute(IntervalQuery(5, 20, 50))
        misses = engine.buffer_stats.misses
        engine.execute(IntervalQuery(5, 20, 50))
        assert engine.buffer_stats.misses == misses
        assert engine.buffer_stats.hits > 0

    def test_tiny_pool_still_correct(self, index_and_values):
        index, values = index_and_values
        engine = CompressedQueryEngine(index, buffer_pages=1)
        query = IntervalQuery(3, 40, 50)
        assert engine.execute(query).row_count == int(
            query.matches(values).sum()
        )


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    scheme=st.sampled_from(["E", "R", "I", "EI*", "O"]),
    low_frac=st.floats(min_value=0, max_value=1),
    width_frac=st.floats(min_value=0, max_value=1),
)
@settings(max_examples=60, deadline=None)
def test_compressed_engine_property(seed, scheme, low_frac, width_frac):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 24, size=300)
    index = BitmapIndex.build(
        values, IndexSpec(cardinality=24, scheme=scheme, codec="ewah")
    )
    low = int(low_frac * 23)
    high = min(23, low + int(width_frac * (23 - low)))
    query = IntervalQuery(low, high, 24)
    result = CompressedQueryEngine(index).execute(query)
    assert result.row_count == int(query.matches(values).sum())
