"""Tests for attribute-value decomposition (Equation 3) and base search."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding import get_scheme
from repro.errors import DecompositionError
from repro.index import (
    compose_value,
    decompose_column,
    decompose_value,
    optimal_bases,
    uniform_bases,
    validate_bases,
)


class TestPaperExamples:
    def test_base_50_single_digit(self):
        assert decompose_value(35, (50,)) == (35,)

    def test_value_35_base_8(self):
        # Section 2: 35 = 4_8 3_8 under base <7, 8> for C = 50.
        assert decompose_value(35, (7, 8)) == (4, 3)

    def test_figure2_rows(self):
        # Figure 2: base <3, 4>, e.g. 8 = 2*4+0 and 7 = 1*4+3.
        assert decompose_value(8, (3, 4)) == (2, 0)
        assert decompose_value(7, (3, 4)) == (1, 3)
        assert decompose_value(0, (3, 4)) == (0, 0)


class TestValidation:
    def test_tight_top_base_required(self):
        with pytest.raises(DecompositionError):
            validate_bases((8, 8), 50)  # top should be ceil(50/8) = 7
        assert validate_bases((7, 8), 50) == (7, 8)

    def test_bases_below_two_rejected(self):
        with pytest.raises(DecompositionError):
            validate_bases((50, 1), 50)

    def test_over_covering_rejected(self):
        with pytest.raises(DecompositionError):
            validate_bases((1, 10, 10), 50)

    def test_empty_rejected(self):
        with pytest.raises(DecompositionError):
            validate_bases((), 50)

    def test_unary_domain(self):
        assert validate_bases((1,), 1) == (1,)
        with pytest.raises(DecompositionError):
            validate_bases((2,), 1)

    def test_value_must_fit(self):
        with pytest.raises(DecompositionError):
            decompose_value(56, (7, 8))

    def test_compose_validates_digits(self):
        with pytest.raises(DecompositionError):
            compose_value((0, 8), (7, 8))
        with pytest.raises(DecompositionError):
            compose_value((1,), (7, 8))


class TestColumn:
    def test_vectorized_matches_scalar(self, rng):
        bases = (4, 5, 3)
        values = rng.integers(0, 60, size=200)
        columns = decompose_column(values, bases)
        for i, value in enumerate(values.tolist()):
            assert tuple(int(col[i]) for col in columns) == decompose_value(
                value, bases
            )

    def test_column_overflow_detected(self):
        with pytest.raises(DecompositionError):
            decompose_column(np.array([56]), (7, 8))


class TestUniformBases:
    @pytest.mark.parametrize("c,n", [(50, 1), (50, 2), (50, 3), (50, 5), (200, 4)])
    def test_valid_and_covering(self, c, n):
        bases = uniform_bases(c, n)
        assert len(bases) == n
        assert np.prod(bases) >= c
        validate_bases(bases, c)

    def test_one_component_is_c(self):
        assert uniform_bases(50, 1) == (50,)

    def test_infeasible_component_count(self):
        with pytest.raises(DecompositionError):
            uniform_bases(7, 3)  # 2^3 > 7

    def test_binary_decomposition(self):
        bases = uniform_bases(8, 3)
        assert bases == (2, 2, 2)


class TestOptimalBases:
    def test_minimizes_bitmaps_for_equality(self):
        # For E the bitmap count is sum(b_i); <8,7> gives 15 for C=50 n=2.
        bases = optimal_bases(50, 2, get_scheme("E"))
        assert sum(bases) == 15

    def test_interval_prefers_balanced(self):
        bases = optimal_bases(50, 2, get_scheme("I"))
        total = sum((b + 1) // 2 for b in bases)
        # Exhaustive check over all valid 2-component sequences.
        best = min(
            (50 + a - 1) // a // 2 + ((50 + a - 1) // a + 1) // 2 + (a + 1) // 2
            for a in range(2, 50)
            if ((50 + a - 1) // a) >= 2
        )
        assert total <= best + 1

    def test_one_component_passthrough(self):
        assert optimal_bases(50, 1, get_scheme("R")) == (50,)


@given(
    cardinality=st.integers(min_value=2, max_value=500),
    n=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=250, deadline=None)
def test_decompose_compose_roundtrip(cardinality, n, seed):
    if 2**n > cardinality:
        return
    bases = uniform_bases(cardinality, n)
    rng = np.random.default_rng(seed)
    for value in rng.integers(0, cardinality, size=20).tolist():
        digits = decompose_value(value, bases)
        assert all(0 <= d < b for d, b in zip(digits, bases))
        assert compose_value(digits, bases) == value
