"""Tests for the multi-component cost model and time-optimal bases."""

import pytest

from repro.encoding import get_scheme
from repro.encoding.costmodel import expected_scans
from repro.errors import DecompositionError
from repro.index.costmodel import (
    candidate_base_sequences,
    index_expected_scans,
    index_space,
    time_optimal_bases,
)
from repro.index.decompose import optimal_bases


class TestIndexExpectedScans:
    def test_one_component_matches_scheme_model(self):
        for name in ("E", "R", "I", "EI*"):
            scheme = get_scheme(name)
            for q in ("EQ", "1RQ", "2RQ", "RQ"):
                assert index_expected_scans(20, (20,), scheme, q) == (
                    pytest.approx(expected_scans(scheme, 20, q))
                ), (name, q)

    def test_more_components_cost_more_scans(self):
        scheme = get_scheme("I")
        one = index_expected_scans(50, (50,), scheme, "RQ")
        two = index_expected_scans(50, (7, 8), scheme, "RQ")
        three = index_expected_scans(50, (4, 4, 4), scheme, "RQ")
        assert one <= two <= three

    def test_empty_class(self):
        assert index_expected_scans(3, (3,), get_scheme("E"), "2RQ") == 0.0


class TestCandidates:
    def test_single_component(self):
        assert candidate_base_sequences(50, 1) == [(50,)]

    def test_two_components_cover_domain(self):
        import math

        for bases in candidate_base_sequences(20, 2):
            assert math.prod(bases) >= 20
            assert all(b >= 2 for b in bases)

    def test_canonical_no_duplicates(self):
        cands = candidate_base_sequences(30, 3)
        assert len(cands) == len(set(cands))


class TestTimeOptimalBases:
    def test_never_slower_than_space_optimal(self):
        scheme = get_scheme("R")
        for n in (2, 3):
            space_bases = optimal_bases(30, n, scheme)
            time_bases = time_optimal_bases(30, n, scheme, "RQ")
            assert index_expected_scans(30, time_bases, scheme, "RQ") <= (
                index_expected_scans(30, space_bases, scheme, "RQ")
            )

    def test_space_budget_respected(self):
        scheme = get_scheme("E")
        bases = time_optimal_bases(30, 2, scheme, "EQ", space_budget=12)
        assert index_space(bases, scheme) <= 12

    def test_impossible_budget_raises(self):
        with pytest.raises(DecompositionError):
            time_optimal_bases(30, 2, get_scheme("E"), "EQ", space_budget=3)

    def test_equality_eq_prefers_fewest_digits_worth(self):
        # For EQ on equality encoding every component costs ~1 scan, so
        # the time-optimal 2-component design still has 2 expected scans
        # and minimizes space as the tiebreak.
        scheme = get_scheme("E")
        bases = time_optimal_bases(16, 2, scheme, "EQ")
        assert index_expected_scans(16, bases, scheme, "EQ") == pytest.approx(2.0)

    def test_guard_on_candidate_explosion(self):
        with pytest.raises(DecompositionError):
            time_optimal_bases(400, 4, get_scheme("E"), "RQ", max_candidates=10)
