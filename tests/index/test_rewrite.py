"""Tests for the Section 6.1/6.2 query rewriter."""

import pytest

from repro.encoding import get_scheme
from repro.errors import QueryError
from repro.expr import expression_scan_count, simplify
from repro.index.rewrite import QueryRewriter
from repro.queries import IntervalQuery, MembershipQuery

DOMAIN = frozenset(range(100))


def value_set_of(rewriter: QueryRewriter, expr) -> frozenset[int]:
    """Interpret a rewritten expression back into attribute-value space."""
    catalog: dict = {}
    for component, base in enumerate(rewriter.bases):
        scheme_catalog = rewriter.scheme.catalog(base)
        for slot, digit_values in scheme_catalog.items():
            members = set()
            for value in range(rewriter.cardinality):
                digits = _digits(value, rewriter.bases)
                if digits[component] in digit_values:
                    members.add(value)
            catalog[(component, slot)] = frozenset(members)
    domain = frozenset(range(rewriter.cardinality))
    return expr.value_set(catalog, domain)


def _digits(value: int, bases) -> tuple[int, ...]:
    digits = [0] * len(bases)
    rest = value
    for i in range(len(bases) - 1, -1, -1):
        rest, digits[i] = divmod(rest, bases[i])
    return tuple(digits)


class TestPaperSection62Examples:
    def test_le_85_base_10_10_equality_encoded(self):
        """"A <= 85" on a base-<10,10> equality-encoded index becomes
        "(A2 <= 7) OR ((A2 = 8) AND (A1 <= 5))" and, at the bitmap level,
        needs the 8 + 1 + 6 = ... distinct bitmaps of Equation (1)."""
        rewriter = QueryRewriter(100, (10, 10), get_scheme("E"))
        expr = rewriter.rewrite_interval(IntervalQuery(0, 85, 100))
        assert value_set_of(rewriter, expr) == frozenset(range(86))
        # Top digit: [0,7] via complement of {8,9} = 2 bitmaps; equality
        # digit E_2^8 reuses one of them... count only distinctness:
        keys = expr.leaf_keys()
        assert all(key[0] in (0, 1) for key in keys)

    def test_le_499_drops_maximal_suffix(self):
        """"A <= 499" on base <10,10,10> simplifies to "A3 <= 4": only
        component 0 bitmaps are touched (the paper's elision rule)."""
        rewriter = QueryRewriter(1000, (10, 10, 10), get_scheme("R"))
        expr = rewriter.rewrite_interval(IntervalQuery(0, 499, 1000))
        assert {key[0] for key in expr.leaf_keys()} == {0}
        assert expression_scan_count(expr) == 1

    def test_equality_357_is_conjunction_per_component(self):
        rewriter = QueryRewriter(1000, (10, 10, 10), get_scheme("E"))
        expr = rewriter.rewrite_interval(IntervalQuery(357, 357, 1000))
        assert value_set_of(rewriter, expr) == frozenset({357})
        assert {key[0] for key in expr.leaf_keys()} == {0, 1, 2}
        assert expression_scan_count(expr) == 3

    def test_common_prefix_evaluated_as_equalities(self):
        """"4326 <= A <= 4377" shares the prefix digits 4 and 3."""
        rewriter = QueryRewriter(10_000, (10, 10, 10, 10), get_scheme("E"))
        expr = rewriter.rewrite_interval(IntervalQuery(4326, 4377, 10_000))
        assert value_set_of(rewriter, expr) == frozenset(range(4326, 4378))

    def test_ge_rewrites_via_complement(self):
        rewriter = QueryRewriter(100, (10, 10), get_scheme("R"))
        expr = rewriter.rewrite_interval(IntervalQuery(40, 99, 100))
        assert value_set_of(rewriter, expr) == frozenset(range(40, 100))
        # "A >= 40" == NOT (A <= 39) == NOT (A2 <= 3): one bitmap.
        assert expression_scan_count(expr) == 1


class TestOneComponentReduction:
    """With n = 1 the rewriter must reduce to the scheme equations."""

    @pytest.mark.parametrize("scheme_name", ["E", "R", "I", "ER", "O", "EI", "EI*"])
    def test_identical_to_scheme_expression(self, scheme_name):
        scheme = get_scheme(scheme_name)
        rewriter = QueryRewriter(20, (20,), scheme)
        for low in range(20):
            for high in range(low, 20):
                via_rewriter = simplify(
                    rewriter.rewrite_interval(IntervalQuery(low, high, 20))
                )
                direct = simplify(scheme.interval_expr(20, low, high))
                # Compare scan counts (leaf labels differ by the
                # component wrapper).
                assert expression_scan_count(via_rewriter) == (
                    expression_scan_count(direct)
                ), (scheme_name, low, high)


class TestSemantics:
    @pytest.mark.parametrize("scheme_name", ["E", "R", "I", "EI*"])
    @pytest.mark.parametrize("bases", [(10, 10), (4, 5, 5), (4, 25), (25, 2, 2)])
    def test_all_intervals_all_layouts(self, scheme_name, bases):
        scheme = get_scheme(scheme_name)
        rewriter = QueryRewriter(100, bases, scheme)
        for low, high in [
            (0, 0), (99, 99), (37, 37),
            (0, 57), (0, 99), (13, 99),
            (26, 77), (1, 98), (49, 51), (20, 29),
        ]:
            expr = rewriter.rewrite_interval(IntervalQuery(low, high, 100))
            assert value_set_of(rewriter, expr) == frozenset(
                range(low, high + 1)
            ), (scheme_name, bases, low, high)

    def test_negated_interval(self):
        rewriter = QueryRewriter(100, (10, 10), get_scheme("R"))
        expr = rewriter.rewrite_interval(
            IntervalQuery(20, 79, 100, negated=True)
        )
        assert value_set_of(rewriter, expr) == frozenset(range(20)) | frozenset(
            range(80, 100)
        )

    def test_membership_constituents(self):
        rewriter = QueryRewriter(100, (10, 10), get_scheme("E"))
        query = MembershipQuery.of({6, 19, 20, 21, 22, 35}, 100)
        constituents = rewriter.rewrite_membership(query)
        assert len(constituents) == 3
        union = frozenset()
        for expr in constituents:
            union |= value_set_of(rewriter, expr)
        assert union == query.values

    def test_combined_membership_expression(self):
        rewriter = QueryRewriter(100, (10, 10), get_scheme("I"))
        query = MembershipQuery.of({0, 50, 51, 52, 99}, 100)
        expr = rewriter.rewrite(query)
        assert value_set_of(rewriter, expr) == query.values

    def test_domain_mismatch_rejected(self):
        rewriter = QueryRewriter(100, (10, 10), get_scheme("E"))
        with pytest.raises(QueryError):
            rewriter.rewrite_interval(IntervalQuery(0, 5, 50))
        with pytest.raises(QueryError):
            rewriter.rewrite_membership(MembershipQuery.of({1}, 50))
