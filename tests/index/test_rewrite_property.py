"""Hypothesis properties for the §6 rewriter over random layouts."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.encoding import get_scheme
from repro.expr import expression_scan_count
from repro.index.decompose import uniform_bases, validate_bases
from repro.index.rewrite import QueryRewriter
from repro.queries import IntervalQuery, MembershipQuery

from tests.index.test_rewrite import value_set_of

SCHEMES = ("E", "R", "I", "ER", "O", "EI", "EI*", "I+")


@st.composite
def rewrite_cases(draw):
    scheme = draw(st.sampled_from(SCHEMES))
    cardinality = draw(st.integers(min_value=2, max_value=120))
    max_n = max(1, int(math.log2(cardinality)))
    n = draw(st.integers(min_value=1, max_value=min(3, max_n)))
    bases = uniform_bases(cardinality, n)
    low = draw(st.integers(min_value=0, max_value=cardinality - 1))
    high = draw(st.integers(min_value=low, max_value=cardinality - 1))
    negated = draw(st.booleans())
    return scheme, cardinality, bases, low, high, negated


@given(case=rewrite_cases())
@settings(max_examples=400, deadline=None)
def test_rewrite_semantics(case):
    """Every rewritten interval denotes exactly its value range."""
    scheme, cardinality, bases, low, high, negated = case
    rewriter = QueryRewriter(cardinality, bases, get_scheme(scheme))
    query = IntervalQuery(low, high, cardinality, negated=negated)
    expr = rewriter.rewrite_interval(query)
    expected = frozenset(range(low, high + 1))
    if negated:
        expected = frozenset(range(cardinality)) - expected
    assert value_set_of(rewriter, expr) == expected


@given(case=rewrite_cases())
@settings(max_examples=200, deadline=None)
def test_rewrite_scan_bound(case):
    """An n-component interval rewrite touches O(n) bitmaps for the
    two-scan schemes: each component contributes at most 2 bitmaps per
    side of the range plus the prefix equalities."""
    scheme, cardinality, bases, low, high, _ = case
    if scheme not in ("R", "I", "I+", "ER", "EI", "EI*"):
        return
    rewriter = QueryRewriter(cardinality, bases, get_scheme(scheme))
    expr = rewriter.rewrite_interval(IntervalQuery(low, high, cardinality))
    n = len(bases)
    assert expression_scan_count(expr) <= 4 * n + 2


@given(
    cardinality=st.integers(min_value=4, max_value=80),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    scheme=st.sampled_from(SCHEMES),
)
@settings(max_examples=150, deadline=None)
def test_membership_rewrite_semantics(cardinality, seed, scheme):
    rng = np.random.default_rng(seed)
    k = int(rng.integers(1, cardinality))
    members = frozenset(
        int(v) for v in rng.choice(cardinality, size=k, replace=False)
    )
    n = 2 if cardinality >= 4 else 1
    rewriter = QueryRewriter(
        cardinality, uniform_bases(cardinality, n), get_scheme(scheme)
    )
    expr = rewriter.rewrite(MembershipQuery(members, cardinality))
    assert value_set_of(rewriter, expr) == members
