"""Property tests: the full multi-component pipeline equals a naive scan
for every scheme, layout, codec and strategy."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector
from repro.index import BitmapIndex, IndexSpec
from repro.index.decompose import uniform_bases
from repro.queries import IntervalQuery, MembershipQuery


@st.composite
def index_cases(draw):
    scheme = draw(st.sampled_from(["E", "R", "I", "ER", "O", "EI", "EI*", "I+"]))
    cardinality = draw(st.integers(min_value=2, max_value=40))
    max_n = 1
    while 2 ** (max_n + 1) <= cardinality and max_n < 3:
        max_n += 1
    n = draw(st.integers(min_value=1, max_value=max_n))
    codec = draw(st.sampled_from(["raw", "bbc", "wah", "ewah", "roaring"]))
    strategy = draw(st.sampled_from(["component-wise", "query-wise", "scheduled"]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return scheme, cardinality, n, codec, strategy, seed


@given(case=index_cases())
@settings(max_examples=120, deadline=None)
def test_interval_query_pipeline(case):
    scheme, cardinality, n, codec, strategy, seed = case
    rng = np.random.default_rng(seed)
    values = rng.integers(0, cardinality, size=150)
    spec = IndexSpec(
        cardinality=cardinality,
        scheme=scheme,
        bases=uniform_bases(cardinality, n),
        codec=codec,
    )
    index = BitmapIndex.build(values, spec)
    engine = index.engine(strategy=strategy)
    low = int(rng.integers(0, cardinality))
    high = int(rng.integers(low, cardinality))
    result = engine.execute(IntervalQuery(low, high, cardinality))
    expected = BitVector.from_bools((values >= low) & (values <= high))
    assert result.bitmap == expected


@given(case=index_cases())
@settings(max_examples=120, deadline=None)
def test_membership_query_pipeline(case):
    scheme, cardinality, n, codec, strategy, seed = case
    rng = np.random.default_rng(seed)
    values = rng.integers(0, cardinality, size=150)
    spec = IndexSpec(
        cardinality=cardinality,
        scheme=scheme,
        bases=uniform_bases(cardinality, n),
        codec=codec,
    )
    index = BitmapIndex.build(values, spec)
    engine = index.engine(strategy=strategy)
    k = int(rng.integers(1, cardinality + 1))
    members = rng.choice(cardinality, size=k, replace=False)
    query = MembershipQuery.of(members.tolist(), cardinality)
    result = engine.execute(query)
    expected = BitVector.from_bools(np.isin(values, members))
    assert result.bitmap == expected


@given(case=index_cases(), buffer_pages=st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_tiny_buffers_never_change_answers(case, buffer_pages):
    """Evictions and rescans must be invisible in the result."""
    scheme, cardinality, n, codec, strategy, seed = case
    rng = np.random.default_rng(seed)
    values = rng.integers(0, cardinality, size=150)
    spec = IndexSpec(
        cardinality=cardinality,
        scheme=scheme,
        bases=uniform_bases(cardinality, n),
        codec=codec,
    )
    index = BitmapIndex.build(values, spec)
    tight = index.engine(strategy=strategy, buffer_pages=buffer_pages)
    roomy = index.engine(strategy=strategy)
    query = IntervalQuery(0, cardinality // 2, cardinality)
    assert tight.execute(query).bitmap == roomy.execute(query).bitmap
