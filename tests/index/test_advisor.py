"""Tests for the index design advisor."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.index import recommend
from repro.index.advisor import candidate_specs
from repro.queries import IntervalQuery, MembershipQuery
from repro.workload import zipf_column


@pytest.fixture(scope="module")
def setup():
    values = zipf_column(5000, 20, 1.0, seed=2)
    workload = {
        "ranges": [IntervalQuery(2, 15, 20), IntervalQuery(0, 9, 20)],
        "points": [MembershipQuery.of({3, 7}, 20)],
    }
    return values, workload


class TestCandidates:
    def test_grid_shape(self):
        specs = candidate_specs(20, schemes=("E", "I"), component_counts=(1, 2))
        assert len(specs) == 2 * 2 * 2  # schemes x n x codecs

    def test_infeasible_components_skipped(self):
        specs = candidate_specs(4, schemes=("E",), component_counts=(1, 2, 3))
        # 2^3 > 4, so n = 3 is dropped.
        assert {len(s.resolved_bases()) for s in specs} == {1, 2}


class TestRecommend:
    def test_best_respects_budget(self, setup):
        values, workload = setup
        outcome = recommend(
            values,
            20,
            workload,
            space_budget_bytes=10_000,
            schemes=("E", "R", "I"),
            component_counts=(1, 2),
            sample_records=None,
        )
        assert outcome.best is not None
        assert outcome.best.space_bytes <= 10_000

    def test_impossible_budget_returns_none(self, setup):
        values, workload = setup
        outcome = recommend(
            values, 20, workload, space_budget_bytes=1, sample_records=None,
            schemes=("E",), component_counts=(1,),
        )
        assert outcome.best is None
        assert outcome.candidates  # still measured

    def test_no_budget_returns_fastest(self, setup):
        values, workload = setup
        outcome = recommend(
            values, 20, workload, schemes=("E", "I"), component_counts=(1,),
            sample_records=None,
        )
        assert outcome.best is not None
        assert outcome.best.avg_time_ms == min(
            p.avg_time_ms for p in outcome.candidates
        )

    def test_frontier_is_nondominated(self, setup):
        values, workload = setup
        outcome = recommend(
            values, 20, workload, schemes=("E", "R", "I"),
            component_counts=(1, 2), sample_records=None,
        )
        for a in outcome.frontier:
            for b in outcome.candidates:
                strictly_better = (
                    b.space_bytes <= a.space_bytes
                    and b.avg_time_ms <= a.avg_time_ms
                    and (
                        b.space_bytes < a.space_bytes
                        or b.avg_time_ms < a.avg_time_ms
                    )
                )
                assert not strictly_better

    def test_sampling_scales_space(self, setup):
        values, workload = setup
        big = np.concatenate([values] * 4)
        sampled = recommend(
            big, 20, workload, schemes=("E",), component_counts=(1,),
            codecs=("raw",), sample_records=5000,
        )
        full = recommend(
            big, 20, workload, schemes=("E",), component_counts=(1,),
            codecs=("raw",), sample_records=None,
        )
        ratio = sampled.candidates[0].space_bytes / full.candidates[0].space_bytes
        assert 0.9 < ratio < 1.1

    def test_empty_workload_rejected(self, setup):
        values, _ = setup
        with pytest.raises(ExperimentError):
            recommend(values, 20, {}, sample_records=None)
