"""Round-trip coverage for reordered indexes.

Build with ``reorder="lexicographic"``, query through both engines,
persist, reload (copying and mapped stores), append, segment — at
every boundary the answer's row-id set must equal both the unreordered
build's and a naive scan's.  The permutation is the one piece of
derived state that can silently misattribute every answer if any layer
drops or double-applies it, so these tests compare full id sets, never
just counts.
"""

import numpy as np
import pytest

from repro.compress import COMPRESSED_DOMAIN_CODECS
from repro.encoding import ALL_SCHEME_NAMES
from repro.errors import (
    ChecksumMismatchError,
    ManifestMismatchError,
    TruncatedBlobError,
)
from repro.index import BitmapIndex, IndexSpec
from repro.index.compressed_engine import CompressedQueryEngine
from repro.index.persist import (
    PERMUTATION_NAME,
    load_index,
    save_index,
    validate_index,
)
from repro.index.segmented import SegmentedBitmapIndex
from repro.queries import IntervalQuery, MembershipQuery

CARDINALITY = 12
ALL_CODECS = ("raw", "bbc", "wah", "ewah", "roaring")


def column(rng, size=420):
    """A skewed column: reordering has real work to do."""
    weights = np.array([0.4] + [0.6 / (CARDINALITY - 1)] * (CARDINALITY - 1))
    return rng.choice(CARDINALITY, size=size, p=weights)


def queries():
    return [
        IntervalQuery(2, 8, CARDINALITY),
        IntervalQuery(0, 0, CARDINALITY),
        MembershipQuery.of({1, 5, CARDINALITY - 1}, CARDINALITY),
    ]


def ids(result_bitmap):
    return result_bitmap.to_indices().tolist()


def naive_ids(values, query):
    return np.flatnonzero(query.matches(values)).tolist()


class TestEveryCodecAndScheme:
    @pytest.mark.parametrize("scheme", ALL_SCHEME_NAMES)
    @pytest.mark.parametrize("codec", ALL_CODECS)
    def test_reordered_matches_plain_and_scan(self, rng, scheme, codec):
        values = column(rng)
        plain_spec = IndexSpec(
            cardinality=CARDINALITY, scheme=scheme, bases=(4, 3), codec=codec
        )
        sorted_spec = IndexSpec(
            cardinality=CARDINALITY,
            scheme=scheme,
            bases=(4, 3),
            codec=codec,
            reorder="lexicographic",
        )
        plain = BitmapIndex.build(values, plain_spec)
        reordered = BitmapIndex.build(values, sorted_spec)
        assert reordered.reordering is not None
        for query in queries():
            expected = naive_ids(values, query)
            assert ids(plain.query(query).bitmap) == expected
            assert ids(reordered.query(query).bitmap) == expected
            if codec in COMPRESSED_DOMAIN_CODECS:
                engine = CompressedQueryEngine(reordered)
                assert ids(engine.execute(query).bitmap) == expected


class TestPersistence:
    @pytest.mark.parametrize("mapped", [False, True])
    def test_save_load_query(self, tmp_path, rng, mapped):
        values = column(rng)
        spec = IndexSpec(
            cardinality=CARDINALITY,
            scheme="E",
            codec="wah",
            reorder="lexicographic",
        )
        index = BitmapIndex.build(values, spec)
        save_index(index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx", mapped=mapped)
        assert loaded.spec.reorder == "lexicographic"
        assert loaded.reordering is not None
        assert np.array_equal(
            loaded.reordering.permutation, index.reordering.permutation
        )
        assert loaded.reordering.num_sorted == values.size
        for query in queries():
            assert ids(loaded.query(query).bitmap) == naive_ids(values, query)

    def test_validate_reports_clean(self, tmp_path, rng):
        spec = IndexSpec(
            cardinality=CARDINALITY, scheme="I", codec="bbc",
            reorder="lexicographic",
        )
        save_index(BitmapIndex.build(column(rng), spec), tmp_path / "idx")
        report = validate_index(tmp_path / "idx")
        assert report.ok, report.errors

    def test_corrupt_permutation_detected(self, tmp_path, rng):
        spec = IndexSpec(
            cardinality=CARDINALITY, scheme="E", codec="wah",
            reorder="lexicographic",
        )
        save_index(BitmapIndex.build(column(rng), spec), tmp_path / "idx")
        perm_path = tmp_path / "idx" / PERMUTATION_NAME
        payload = bytearray(perm_path.read_bytes())
        payload[0] ^= 0xFF
        perm_path.write_bytes(bytes(payload))
        with pytest.raises(ChecksumMismatchError):
            load_index(tmp_path / "idx")
        assert not validate_index(tmp_path / "idx").ok

    def test_truncated_permutation_detected(self, tmp_path, rng):
        spec = IndexSpec(
            cardinality=CARDINALITY, scheme="E", codec="wah",
            reorder="lexicographic",
        )
        save_index(BitmapIndex.build(column(rng), spec), tmp_path / "idx")
        perm_path = tmp_path / "idx" / PERMUTATION_NAME
        perm_path.write_bytes(perm_path.read_bytes()[:-8])
        with pytest.raises(
            (ChecksumMismatchError, ManifestMismatchError, TruncatedBlobError)
        ):
            load_index(tmp_path / "idx")

    def test_unreordered_directory_loads_as_identity(self, tmp_path, rng):
        """Pre-reorder manifests (no ``reorder`` entry) keep loading."""
        values = column(rng)
        spec = IndexSpec(cardinality=CARDINALITY, scheme="E", codec="wah")
        save_index(BitmapIndex.build(values, spec), tmp_path / "idx")
        assert not (tmp_path / "idx" / PERMUTATION_NAME).exists()
        loaded = load_index(tmp_path / "idx")
        assert loaded.reordering is None
        assert loaded.spec.reorder == "none"
        query = queries()[0]
        assert ids(loaded.query(query).bitmap) == naive_ids(values, query)

    def test_overwrite_with_unreordered_sweeps_permutation(
        self, tmp_path, rng
    ):
        values = column(rng)
        sorted_spec = IndexSpec(
            cardinality=CARDINALITY, scheme="E", codec="wah",
            reorder="lexicographic",
        )
        save_index(BitmapIndex.build(values, sorted_spec), tmp_path / "idx")
        assert (tmp_path / "idx" / PERMUTATION_NAME).exists()
        plain_spec = IndexSpec(
            cardinality=CARDINALITY, scheme="E", codec="wah"
        )
        save_index(BitmapIndex.build(values, plain_spec), tmp_path / "idx")
        assert not (tmp_path / "idx" / PERMUTATION_NAME).exists()
        assert validate_index(tmp_path / "idx").ok

    def test_append_then_save_round_trips(self, tmp_path, rng):
        values = column(rng, size=300)
        batch = column(rng, size=90)
        spec = IndexSpec(
            cardinality=CARDINALITY, scheme="E", codec="wah",
            reorder="lexicographic",
        )
        index = BitmapIndex.build(values, spec)
        index.append(batch)
        save_index(index, tmp_path / "idx")
        loaded = load_index(tmp_path / "idx")
        assert loaded.reordering.num_sorted == 300
        assert loaded.reordering.size == 390
        merged = np.concatenate([values, batch])
        for query in queries():
            assert ids(loaded.query(query).bitmap) == naive_ids(merged, query)


class TestAppendAfterReorder:
    def test_appended_rows_keep_arrival_ids(self, rng):
        values = column(rng, size=350)
        batch = column(rng, size=120)
        spec = IndexSpec(
            cardinality=CARDINALITY, scheme="I", codec="ewah",
            reorder="lexicographic",
        )
        index = BitmapIndex.build(values, spec)
        assert index.reordering.num_sorted == 350
        index.append(batch)
        assert index.reordering.num_sorted == 350
        assert index.reordering.size == 470
        merged = np.concatenate([values, batch])
        for query in queries():
            assert ids(index.query(query).bitmap) == naive_ids(merged, query)
            engine = CompressedQueryEngine(index)
            assert ids(engine.execute(query).bitmap) == naive_ids(
                merged, query
            )


class TestSegmented:
    @pytest.mark.parametrize(
        "num_rows",
        [
            256,  # exactly two shard-sized segments
            300,  # partial tail segment
            128,  # single full segment
            100,  # single partial segment
        ],
    )
    def test_per_segment_reordering_matches_scan(self, rng, num_rows):
        values = column(rng, size=num_rows)
        spec = IndexSpec(
            cardinality=CARDINALITY, scheme="E", codec="wah",
            reorder="lexicographic",
        )
        index = SegmentedBitmapIndex.build(values, spec, segment_size=128)
        for query in queries():
            assert ids(index.query(query).bitmap) == naive_ids(values, query)

    def test_tail_append_into_reordered_segments(self, rng):
        values = column(rng, size=200)
        spec = IndexSpec(
            cardinality=CARDINALITY, scheme="E", codec="bbc",
            reorder="lexicographic",
        )
        index = SegmentedBitmapIndex.build(values, spec, segment_size=128)
        batch = column(rng, size=90)
        index.append(batch)
        merged = np.concatenate([values, batch])
        assert index.num_records == 290
        for query in queries():
            assert ids(index.query(query).bitmap) == naive_ids(merged, query)

    def test_split_at_shares_reordered_segments(self, rng):
        values = column(rng, size=256)
        spec = IndexSpec(
            cardinality=CARDINALITY, scheme="E", codec="wah",
            reorder="lexicographic",
        )
        index = SegmentedBitmapIndex.build(values, spec, segment_size=128)
        left, right = index.split_at(128)
        query = queries()[0]
        assert ids(left.query(query).bitmap) == naive_ids(
            values[:128], query
        )
        assert ids(right.query(query).bitmap) == naive_ids(
            values[128:], query
        )
