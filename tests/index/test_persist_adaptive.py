"""Persistence tests for per-bitmap codec ids and the ``auto`` codec.

The v2 manifest records each blob's concrete codec (for ``auto``
stores, the inner codec the selector picked); loading cross-checks the
field against the blob's tag byte.  These tests cover the round trip
through both loaders, the typed error on a corrupted codec id, and the
per-codec counts ``verify-index`` reports.
"""

import json

import numpy as np
import pytest

from repro.compress import CODEC_IDS, split_payload
from repro.errors import ManifestMismatchError
from repro.index import BitmapIndex, IndexSpec
from repro.index.persist import (
    MANIFEST_NAME,
    load_index,
    save_index,
    validate_index,
)
from repro.queries import IntervalQuery
from repro.workload import markov_column


def mixed_auto_index(num_records=20000, cardinality=64):
    """An auto index whose bitmaps genuinely span several inner codecs.

    A clustered, highly skewed column gives one near-dense bitmap (raw
    or an RLE codec), a few moderate ones and a long tail of
    ultra-sparse ones (position lists).
    """
    values = markov_column(
        num_records, cardinality, clustering_factor=8.0, skew=2.0, seed=4
    )
    spec = IndexSpec(cardinality=cardinality, scheme="E", codec="auto")
    return BitmapIndex.build(values, spec)


def manifest_of(directory):
    return json.loads((directory / MANIFEST_NAME).read_text())


@pytest.mark.parametrize("mapped", [False, True], ids=["copying", "mapped"])
def test_auto_roundtrip(tmp_path, mapped):
    index = mixed_auto_index()
    save_index(index, tmp_path / "idx")
    loaded = load_index(tmp_path / "idx", mapped=mapped)
    assert loaded.spec.codec == "auto"
    for key in index.store.keys():
        assert loaded.store.get(key) == index.store.get(key), key
    query = IntervalQuery(3, 40, 64)
    assert loaded.query(query).bitmap == index.query(query).bitmap


def test_manifest_records_inner_codecs(tmp_path):
    index = mixed_auto_index()
    save_index(index, tmp_path / "idx")
    manifest = manifest_of(tmp_path / "idx")
    assert manifest["codec"] == "auto"
    declared = {entry["codec"] for entry in manifest["bitmaps"]}
    # The skewed clustered column must fan out across inner codecs —
    # that is the point of per-bitmap selection.
    assert len(declared) >= 2, declared
    assert declared <= set(CODEC_IDS)
    # Each declared codec matches its blob's tag byte.
    for entry in manifest["bitmaps"]:
        payload = (tmp_path / "idx" / entry["file"]).read_bytes()
        assert split_payload(payload)[0] == entry["codec"]


def test_fixed_codec_manifest_records_store_codec(tmp_path, rng):
    values = rng.integers(0, 16, size=500)
    index = BitmapIndex.build(
        values, IndexSpec(cardinality=16, scheme="E", codec="bbc")
    )
    save_index(index, tmp_path / "idx")
    manifest = manifest_of(tmp_path / "idx")
    assert {e["codec"] for e in manifest["bitmaps"]} == {"bbc"}


@pytest.mark.parametrize("mapped", [False, True], ids=["copying", "mapped"])
def test_corrupt_codec_id_raises_typed_error(tmp_path, mapped):
    index = mixed_auto_index(num_records=5000, cardinality=8)
    save_index(index, tmp_path / "idx")
    manifest = manifest_of(tmp_path / "idx")
    entry = manifest["bitmaps"][0]
    wrong = "ewah" if entry["codec"] != "ewah" else "wah"
    entry["codec"] = wrong
    (tmp_path / "idx" / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ManifestMismatchError, match="inner codec"):
        load_index(tmp_path / "idx", mapped=mapped)


def test_non_string_codec_id_rejected(tmp_path):
    index = mixed_auto_index(num_records=5000, cardinality=8)
    save_index(index, tmp_path / "idx")
    manifest = manifest_of(tmp_path / "idx")
    manifest["bitmaps"][0]["codec"] = 7
    (tmp_path / "idx" / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ManifestMismatchError, match="not a codec name"):
        load_index(tmp_path / "idx")


def test_fixed_codec_disagreement_rejected(tmp_path, rng):
    values = rng.integers(0, 8, size=300)
    index = BitmapIndex.build(
        values, IndexSpec(cardinality=8, scheme="E", codec="bbc")
    )
    save_index(index, tmp_path / "idx")
    manifest = manifest_of(tmp_path / "idx")
    manifest["bitmaps"][0]["codec"] = "wah"
    (tmp_path / "idx" / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ManifestMismatchError, match="index codec"):
        load_index(tmp_path / "idx")


def test_manifest_without_codec_field_still_loads(tmp_path):
    # Back-compat: manifests written before per-bitmap codec ids.
    index = mixed_auto_index(num_records=5000, cardinality=8)
    save_index(index, tmp_path / "idx")
    manifest = manifest_of(tmp_path / "idx")
    for entry in manifest["bitmaps"]:
        del entry["codec"]
    (tmp_path / "idx" / MANIFEST_NAME).write_text(json.dumps(manifest))
    loaded = load_index(tmp_path / "idx")
    for key in index.store.keys():
        assert loaded.store.get(key) == index.store.get(key), key
    # validate_index still derives per-codec counts from the tag bytes.
    report = validate_index(tmp_path / "idx")
    assert report.ok
    assert sum(report.codec_counts.values()) == report.checked


def test_validate_reports_per_codec_counts(tmp_path):
    index = mixed_auto_index()
    save_index(index, tmp_path / "idx")
    report = validate_index(tmp_path / "idx")
    assert report.ok
    manifest = manifest_of(tmp_path / "idx")
    expected: dict[str, int] = {}
    for entry in manifest["bitmaps"]:
        expected[entry["codec"]] = expected.get(entry["codec"], 0) + 1
    assert report.codec_counts == expected
    assert "codecs:" in report.summary()


def test_validate_flags_codec_id_corruption(tmp_path):
    index = mixed_auto_index(num_records=5000, cardinality=8)
    save_index(index, tmp_path / "idx")
    manifest = manifest_of(tmp_path / "idx")
    entry = manifest["bitmaps"][0]
    entry["codec"] = "ewah" if entry["codec"] != "ewah" else "wah"
    (tmp_path / "idx" / MANIFEST_NAME).write_text(json.dumps(manifest))
    report = validate_index(tmp_path / "idx")
    assert not report.ok
    assert any(
        isinstance(error, ManifestMismatchError) for error in report.errors
    )


def test_fixed_codec_counts_under_store_codec(tmp_path, rng):
    values = rng.integers(0, 8, size=300)
    index = BitmapIndex.build(
        values, IndexSpec(cardinality=8, scheme="E", codec="roaring")
    )
    save_index(index, tmp_path / "idx")
    report = validate_index(tmp_path / "idx")
    assert report.ok
    assert report.codec_counts == {"roaring": report.checked}
