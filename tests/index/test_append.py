"""Tests for batch index updates (§4.2's batched-update setting)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector, concatenate
from repro.errors import EncodingSchemeError
from repro.index import BitmapIndex, IndexSpec
from repro.queries import IntervalQuery, MembershipQuery


class TestConcatenate:
    def test_basic(self):
        a = BitVector.from_bools([True, False])
        b = BitVector.from_bools([True])
        assert concatenate([a, b]).to_bools().tolist() == [True, False, True]

    def test_empty_list(self):
        assert len(concatenate([])) == 0

    def test_single_copies(self):
        a = BitVector.from_bools([True])
        out = concatenate([a])
        out[0] = False
        assert a[0]

    def test_word_boundary_crossing(self):
        a = BitVector.ones(63)
        b = BitVector.ones(3)
        joined = concatenate([a, b])
        assert len(joined) == 66
        assert joined.count() == 66


class TestAppend:
    @pytest.mark.parametrize("scheme", ["E", "R", "I", "EI*"])
    @pytest.mark.parametrize("codec", ["raw", "bbc"])
    def test_append_equals_rebuild(self, rng, scheme, codec):
        base = rng.integers(0, 30, size=800)
        batch = rng.integers(0, 30, size=300)
        spec = IndexSpec(cardinality=30, scheme=scheme, bases=(5, 6), codec=codec)

        incremental = BitmapIndex.build(base, spec)
        incremental.append(batch)
        rebuilt = BitmapIndex.build(np.concatenate([base, batch]), spec)

        assert incremental.num_records == rebuilt.num_records
        for key in rebuilt.store.keys():
            assert incremental.store.get(key) == rebuilt.store.get(key), key

    def test_queries_after_append(self, rng):
        base = rng.integers(0, 20, size=500)
        batch = rng.integers(0, 20, size=200)
        index = BitmapIndex.build(
            base, IndexSpec(cardinality=20, scheme="I", codec="bbc")
        )
        index.append(batch)
        merged = np.concatenate([base, batch])
        for query in (
            IntervalQuery(3, 11, 20),
            MembershipQuery.of({0, 5, 19}, 20),
        ):
            assert index.query(query).row_count == int(
                query.matches(merged).sum()
            )

    def test_report_counts(self, rng):
        base = rng.integers(0, 10, size=100)
        index = BitmapIndex.build(base, IndexSpec(cardinality=10, scheme="E"))
        # A single record with value 4 touches exactly one E bitmap.
        report = index.append(np.array([4]))
        assert report.records_appended == 1
        assert report.bitmaps_extended == 10
        assert report.bitmaps_touched == 1

    def test_single_insert_matches_costmodel(self, rng):
        """One-record appends touch exactly scheme.update_cost bitmaps."""
        from repro.encoding import get_scheme

        for scheme_name in ("E", "R", "I"):
            scheme = get_scheme(scheme_name)
            for value in (0, 7, 19):
                index = BitmapIndex.build(
                    rng.integers(0, 20, size=50),
                    IndexSpec(cardinality=20, scheme=scheme_name),
                )
                report = index.append(np.array([value]))
                assert report.bitmaps_touched == scheme.update_cost(20, value)

    def test_empty_batch(self, rng):
        index = BitmapIndex.build(
            rng.integers(0, 10, size=100), IndexSpec(cardinality=10, scheme="R")
        )
        report = index.append(np.array([], dtype=np.int64))
        assert report.records_appended == 0
        assert report.bitmaps_touched == 0
        assert index.num_records == 100

    def test_out_of_domain_batch_rejected(self, rng):
        index = BitmapIndex.build(
            rng.integers(0, 10, size=100), IndexSpec(cardinality=10, scheme="E")
        )
        with pytest.raises(EncodingSchemeError):
            index.append(np.array([10]))
        assert index.num_records == 100


@given(
    scheme=st.sampled_from(["E", "R", "I", "O"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    batches=st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=4),
)
@settings(max_examples=60, deadline=None)
def test_append_property(scheme, seed, batches):
    """Any sequence of appends equals one big build."""
    rng = np.random.default_rng(seed)
    chunks = [rng.integers(0, 12, size=size) for size in [40, *batches]]
    spec = IndexSpec(cardinality=12, scheme=scheme, codec="ewah")
    index = BitmapIndex.build(chunks[0], spec)
    for chunk in chunks[1:]:
        index.append(chunk)
    merged = np.concatenate(chunks)
    rebuilt = BitmapIndex.build(merged, spec)
    for key in rebuilt.store.keys():
        assert index.store.get(key) == rebuilt.store.get(key)
