"""Tests for the cost-based rewriter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector
from repro.index import BitmapIndex, IndexSpec
from repro.index.costbased import CostBasedRewriter, equality_interval_candidates
from repro.queries import IntervalQuery, MembershipQuery


def skewed_index(codec: str = "bbc") -> tuple[BitmapIndex, np.ndarray]:
    """A column where a handful of values dominate, so the equality
    bitmaps have wildly different compressed sizes."""
    rng = np.random.default_rng(8)
    # Values 0..3 carry 95% of the records; 4..19 are rare.
    heavy = rng.integers(0, 4, size=9500)
    light = rng.integers(4, 20, size=500)
    values = np.concatenate([heavy, light])
    rng.shuffle(values)
    index = BitmapIndex.build(
        values, IndexSpec(cardinality=20, scheme="E", codec=codec)
    )
    return index, values


class TestCandidates:
    def test_two_forms_generated(self):
        candidates = equality_interval_candidates(10, 2, 4)
        assert len(candidates) == 2

    def test_full_domain_skipped(self):
        assert equality_interval_candidates(10, 0, 9) == []

    def test_degenerate_domains_skipped(self):
        assert equality_interval_candidates(2, 0, 0) == []


class TestCostBasedChoice:
    def test_prefers_cheaper_side_by_bytes(self):
        index, values = skewed_index()
        index.use_cost_based_rewriter()
        rewriter = index.rewriter
        assert isinstance(rewriter, CostBasedRewriter)

        # [4, 19] covers 16 of 20 values; the count heuristic would
        # complement the 4-value outside — but those 4 bitmaps are the
        # heavy (incompressible) ones, so pricing by bytes picks the
        # 16 light bitmaps instead.
        expr = rewriter.rewrite_interval(IntervalQuery(4, 19, 20))
        keys = expr.leaf_keys()
        count_based = index.scheme.interval_expr(20, 4, 19).leaf_keys()
        assert len(count_based) == 4  # Eq. (1) complements the outside
        assert len(keys) == 16  # cost-based reads the light inside

        cost = rewriter.expression_cost(expr)[0]
        alternative = sum(
            rewriter._leaf_bytes((0, slot)) for slot in range(0, 4)
        )
        assert cost < alternative

    def test_answers_unchanged(self):
        index, values = skewed_index()
        plain_results = {}
        for low, high in [(0, 3), (4, 19), (2, 17), (5, 5)]:
            plain_results[(low, high)] = index.query(
                IntervalQuery(low, high, 20)
            ).bitmap
        index.use_cost_based_rewriter()
        for (low, high), expected in plain_results.items():
            got = index.query(IntervalQuery(low, high, 20)).bitmap
            assert got == expected, (low, high)

    def test_raw_codec_reduces_to_count_choice(self):
        # With the raw codec every bitmap costs the same, so byte cost
        # is proportional to count and the Eq. (1) choice is recovered.
        index, _ = skewed_index(codec="raw")
        index.use_cost_based_rewriter()
        expr = index.rewriter.rewrite_interval(IntervalQuery(4, 19, 20))
        assert len(expr.leaf_keys()) == 4

    def test_non_equality_schemes_unchanged(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 20, size=500)
        index = BitmapIndex.build(
            values, IndexSpec(cardinality=20, scheme="I", codec="bbc")
        )
        before = index.rewriter.rewrite_interval(IntervalQuery(3, 12, 20))
        index.use_cost_based_rewriter()
        after = index.rewriter.rewrite_interval(IntervalQuery(3, 12, 20))
        assert before.leaf_keys() == after.leaf_keys()


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    low=st.integers(min_value=0, max_value=11),
    span=st.integers(min_value=0, max_value=11),
    multi=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_cost_based_always_correct(seed, low, span, multi):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 12, size=300)
    spec = IndexSpec(
        cardinality=12,
        scheme="E",
        bases=(4, 3) if multi else (12,),
        codec="bbc",
    )
    index = BitmapIndex.build(values, spec)
    index.use_cost_based_rewriter()
    high = min(11, low + span)
    result = index.query(IntervalQuery(low, high, 12))
    expected = BitVector.from_bools((values >= low) & (values <= high))
    assert result.bitmap == expected
