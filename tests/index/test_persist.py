"""Tests for index save/load."""

import json

import numpy as np
import pytest

from repro.errors import StorageError
from repro.index import BitmapIndex, IndexSpec
from repro.index.persist import load_index, save_index
from repro.queries import IntervalQuery


@pytest.mark.parametrize("scheme", ["E", "R", "I", "ER", "EI*"])
@pytest.mark.parametrize("codec", ["raw", "bbc"])
def test_roundtrip(tmp_path, rng, scheme, codec):
    values = rng.integers(0, 25, size=600)
    spec = IndexSpec(cardinality=25, scheme=scheme, bases=(5, 5), codec=codec)
    index = BitmapIndex.build(values, spec)
    save_index(index, tmp_path / "idx")

    loaded = load_index(tmp_path / "idx")
    assert loaded.num_records == index.num_records
    assert loaded.bases == index.bases
    assert loaded.spec.scheme == scheme
    for key in index.store.keys():
        assert loaded.store.get(key) == index.store.get(key), key
    query = IntervalQuery(3, 17, 25)
    assert loaded.query(query).row_count == index.query(query).row_count


def test_tuple_slot_keys_roundtrip(tmp_path, rng):
    # EI uses ("E", v) / ("I", j) slot tuples; exercise nested encoding.
    values = rng.integers(0, 10, size=200)
    index = BitmapIndex.build(values, IndexSpec(cardinality=10, scheme="EI"))
    save_index(index, tmp_path / "idx")
    loaded = load_index(tmp_path / "idx")
    assert set(loaded.store.keys()) == set(index.store.keys())


def test_missing_manifest(tmp_path):
    with pytest.raises(StorageError):
        load_index(tmp_path)


def test_corrupt_manifest(tmp_path):
    (tmp_path / "manifest.json").write_text("{not json")
    with pytest.raises(StorageError):
        load_index(tmp_path)


def test_unsupported_format_version(tmp_path):
    (tmp_path / "manifest.json").write_text(json.dumps({"format": 99}))
    with pytest.raises(StorageError):
        load_index(tmp_path)


def test_save_load_save_stable(tmp_path, rng):
    values = rng.integers(0, 12, size=300)
    index = BitmapIndex.build(values, IndexSpec(cardinality=12, scheme="I"))
    save_index(index, tmp_path / "a")
    first = load_index(tmp_path / "a")
    save_index(first, tmp_path / "a")
    second = load_index(tmp_path / "a")
    for key in index.store.keys():
        assert second.store.get(key) == index.store.get(key)
