"""Tests for index save/load."""

import json
import zlib

import numpy as np
import pytest

from repro.bitmap import BitVector
from repro.errors import (
    ManifestMismatchError,
    MissingBlobError,
    StorageError,
)
from repro.index import BitmapIndex, IndexSpec
from repro.index.persist import (
    MANIFEST_NAME,
    load_index,
    save_index,
    validate_index,
)
from repro.queries import IntervalQuery


@pytest.mark.parametrize("scheme", ["E", "R", "I", "ER", "EI*"])
@pytest.mark.parametrize("codec", ["raw", "bbc"])
def test_roundtrip(tmp_path, rng, scheme, codec):
    values = rng.integers(0, 25, size=600)
    spec = IndexSpec(cardinality=25, scheme=scheme, bases=(5, 5), codec=codec)
    index = BitmapIndex.build(values, spec)
    save_index(index, tmp_path / "idx")

    loaded = load_index(tmp_path / "idx")
    assert loaded.num_records == index.num_records
    assert loaded.bases == index.bases
    assert loaded.spec.scheme == scheme
    for key in index.store.keys():
        assert loaded.store.get(key) == index.store.get(key), key
    query = IntervalQuery(3, 17, 25)
    assert loaded.query(query).row_count == index.query(query).row_count


def test_tuple_slot_keys_roundtrip(tmp_path, rng):
    # EI uses ("E", v) / ("I", j) slot tuples; exercise nested encoding.
    values = rng.integers(0, 10, size=200)
    index = BitmapIndex.build(values, IndexSpec(cardinality=10, scheme="EI"))
    save_index(index, tmp_path / "idx")
    loaded = load_index(tmp_path / "idx")
    assert set(loaded.store.keys()) == set(index.store.keys())


def test_missing_manifest(tmp_path):
    with pytest.raises(StorageError):
        load_index(tmp_path)


def test_corrupt_manifest(tmp_path):
    (tmp_path / "manifest.json").write_text("{not json")
    with pytest.raises(StorageError):
        load_index(tmp_path)


def test_unsupported_format_version(tmp_path):
    (tmp_path / "manifest.json").write_text(json.dumps({"format": 99}))
    with pytest.raises(StorageError):
        load_index(tmp_path)


def test_load_does_not_rewrite_files(tmp_path, rng):
    values = rng.integers(0, 10, size=300)
    index = BitmapIndex.build(values, IndexSpec(cardinality=10, scheme="E"))
    save_index(index, tmp_path / "idx")
    before = {
        p.name: p.read_bytes() for p in (tmp_path / "idx").iterdir()
    }
    mtimes = {p.name: p.stat().st_mtime_ns for p in (tmp_path / "idx").iterdir()}
    load_index(tmp_path / "idx")
    after = {p.name: p.read_bytes() for p in (tmp_path / "idx").iterdir()}
    assert after == before
    assert {
        p.name: p.stat().st_mtime_ns for p in (tmp_path / "idx").iterdir()
    } == mtimes


def test_overwrite_with_smaller_index_leaves_no_orphans(tmp_path, rng):
    # Regression: the old writer left stale .bm files behind when the
    # new index had fewer bitmaps, and they looked valid to tooling.
    big = BitmapIndex.build(
        rng.integers(0, 16, size=300), IndexSpec(cardinality=16, scheme="E")
    )
    small = BitmapIndex.build(
        rng.integers(0, 4, size=300), IndexSpec(cardinality=4, scheme="E")
    )
    save_index(big, tmp_path / "idx")
    assert len(list((tmp_path / "idx").glob("*.bm"))) == 16
    save_index(small, tmp_path / "idx")
    assert len(list((tmp_path / "idx").glob("*.bm"))) == 4
    report = validate_index(tmp_path / "idx")
    assert report.ok and report.orphans == []
    assert set(load_index(tmp_path / "idx").store.keys()) == set(
        small.store.keys()
    )


def test_manifest_records_actual_bitmap_length(tmp_path, rng):
    # Regression: every entry used to record index.num_records even when
    # the stored bitmap's own length differed.
    values = rng.integers(0, 6, size=300)
    index = BitmapIndex.build(values, IndexSpec(cardinality=6, scheme="E"))
    index.store.put((0, 99), BitVector.zeros(123))  # odd-length extra bitmap
    save_index(index, tmp_path / "idx")
    manifest = json.loads((tmp_path / "idx" / MANIFEST_NAME).read_text())
    lengths = {entry["slot"]: entry["length"] for entry in manifest["bitmaps"]}
    assert lengths[99] == 123
    assert all(lengths[slot] == 300 for slot in range(6))
    loaded = load_index(tmp_path / "idx")
    assert len(loaded.store.get((0, 99))) == 123


def test_manifest_entries_carry_bytes_and_crc32(tmp_path, rng):
    values = rng.integers(0, 6, size=300)
    index = BitmapIndex.build(
        values, IndexSpec(cardinality=6, scheme="E", codec="wah")
    )
    save_index(index, tmp_path / "idx")
    manifest = json.loads((tmp_path / "idx" / MANIFEST_NAME).read_text())
    assert manifest["format"] == 2
    for entry in manifest["bitmaps"]:
        payload = (tmp_path / "idx" / entry["file"]).read_bytes()
        assert entry["bytes"] == len(payload)
        assert entry["crc32"] == (zlib.crc32(payload) & 0xFFFFFFFF)


def test_missing_blob_raises_typed_error_naming_key(tmp_path, rng):
    values = rng.integers(0, 6, size=200)
    index = BitmapIndex.build(values, IndexSpec(cardinality=6, scheme="E"))
    save_index(index, tmp_path / "idx")
    victim = load_index(tmp_path / "idx").store.path_for((0, 3))
    victim.unlink()
    with pytest.raises(MissingBlobError, match=r"\(0, 3\)"):
        load_index(tmp_path / "idx")
    report = validate_index(tmp_path / "idx")
    assert [type(e) for e in report.errors] == [MissingBlobError]


@pytest.mark.parametrize(
    "escape", ["../evil.bm", "/etc/passwd", "sub/dir.bm", "", ".."]
)
def test_manifest_file_entry_escaping_directory_rejected(
    tmp_path, rng, escape
):
    values = rng.integers(0, 4, size=100)
    index = BitmapIndex.build(values, IndexSpec(cardinality=4, scheme="E"))
    save_index(index, tmp_path / "idx")
    manifest_path = tmp_path / "idx" / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["bitmaps"][0]["file"] = escape
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(ManifestMismatchError):
        load_index(tmp_path / "idx")
    report = validate_index(tmp_path / "idx")
    assert not report.ok
    assert isinstance(report.errors[0], ManifestMismatchError)


def test_v1_manifest_still_loads(tmp_path, rng):
    # Backwards compatibility: directories written by the v1 format
    # (no bytes/crc32 fields, arbitrary file names) must keep loading.
    values = rng.integers(0, 8, size=400)
    index = BitmapIndex.build(
        values, IndexSpec(cardinality=8, scheme="E", codec="bbc")
    )
    save_index(index, tmp_path / "idx")
    manifest_path = tmp_path / "idx" / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["format"] = 1
    for i, entry in enumerate(manifest["bitmaps"]):
        del entry["bytes"], entry["crc32"]
        legacy = tmp_path / "idx" / f"{i}.bm"
        (tmp_path / "idx" / entry["file"]).rename(legacy)
        entry["file"] = legacy.name
    manifest_path.write_text(json.dumps(manifest))

    loaded = load_index(tmp_path / "idx")
    query = IntervalQuery(2, 6, 8)
    assert loaded.query(query).row_count == index.query(query).row_count
    report = validate_index(tmp_path / "idx")
    assert report.ok and report.format == 1
    # Re-saving upgrades to v2 and sweeps the legacy numbered files.
    save_index(loaded, tmp_path / "idx")
    upgraded = json.loads(manifest_path.read_text())
    assert upgraded["format"] == 2
    assert validate_index(tmp_path / "idx").orphans == []


def test_validate_reports_orphans_without_failing(tmp_path, rng):
    values = rng.integers(0, 4, size=100)
    index = BitmapIndex.build(values, IndexSpec(cardinality=4, scheme="E"))
    save_index(index, tmp_path / "idx")
    (tmp_path / "idx" / "stray.bm").write_bytes(b"junk")
    (tmp_path / "idx" / "half.bm.tmp").write_bytes(b"torn")
    report = validate_index(tmp_path / "idx")
    assert report.ok
    assert sorted(report.orphans) == ["half.bm.tmp", "stray.bm"]
    # The next save sweeps them.
    save_index(index, tmp_path / "idx")
    assert validate_index(tmp_path / "idx").orphans == []


def test_manifest_that_is_not_an_object_rejected(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text("[1, 2, 3]")
    with pytest.raises(ManifestMismatchError):
        load_index(tmp_path)


def test_v2_entry_missing_checksum_fields_rejected(tmp_path, rng):
    values = rng.integers(0, 4, size=100)
    index = BitmapIndex.build(values, IndexSpec(cardinality=4, scheme="E"))
    save_index(index, tmp_path / "idx")
    manifest_path = tmp_path / "idx" / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    del manifest["bitmaps"][0]["crc32"]
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(ManifestMismatchError):
        load_index(tmp_path / "idx")
    assert not validate_index(tmp_path / "idx").ok


def test_entry_missing_component_rejected(tmp_path, rng):
    values = rng.integers(0, 4, size=100)
    index = BitmapIndex.build(values, IndexSpec(cardinality=4, scheme="E"))
    save_index(index, tmp_path / "idx")
    manifest_path = tmp_path / "idx" / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    del manifest["bitmaps"][0]["component"]
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(ManifestMismatchError):
        load_index(tmp_path / "idx")


def test_manifest_missing_top_level_field_rejected(tmp_path, rng):
    values = rng.integers(0, 4, size=100)
    index = BitmapIndex.build(values, IndexSpec(cardinality=4, scheme="E"))
    save_index(index, tmp_path / "idx")
    manifest_path = tmp_path / "idx" / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    del manifest["bases"]
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(ManifestMismatchError):
        load_index(tmp_path / "idx")


def test_malformed_slot_encodings_rejected(tmp_path, rng):
    values = rng.integers(0, 4, size=100)
    index = BitmapIndex.build(values, IndexSpec(cardinality=4, scheme="E"))
    # None survives file naming but has no manifest slot encoding.
    index.store.put((0, None), BitVector.zeros(100))
    with pytest.raises(StorageError, match="unsupported slot key"):
        save_index(index, tmp_path / "bad")

    save_index(
        BitmapIndex.build(values, IndexSpec(cardinality=4, scheme="E")),
        tmp_path / "idx",
    )
    manifest_path = tmp_path / "idx" / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    manifest["bitmaps"][0]["slot"] = ["not-a-tuple-tag", 1]
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(StorageError, match="malformed slot key"):
        load_index(tmp_path / "idx")


def test_unreadable_blob_raises_typed_error(tmp_path, rng):
    values = rng.integers(0, 4, size=100)
    index = BitmapIndex.build(values, IndexSpec(cardinality=4, scheme="E"))
    save_index(index, tmp_path / "idx")
    victim = load_index(tmp_path / "idx").store.path_for((0, 2))
    victim.unlink()
    victim.mkdir()  # read_bytes now raises IsADirectoryError, not ENOENT
    with pytest.raises(MissingBlobError, match="unreadable"):
        load_index(tmp_path / "idx")


def test_persist_obs_counters(tmp_path, rng):
    from repro import obs

    values = rng.integers(0, 6, size=200)
    index = BitmapIndex.build(values, IndexSpec(cardinality=6, scheme="E"))
    with obs.observed() as o:
        save_index(index, tmp_path / "idx")
    assert o.counter_total("persist.blobs_written") == 6
    assert o.counter_total("persist.bytes_written") == sum(
        len(index.store.get_payload(k)[0]) for k in index.store.keys()
    )

    blob = sorted((tmp_path / "idx").glob("*.bm"))[0]
    data = bytearray(blob.read_bytes())
    data[0] ^= 0xFF
    blob.write_bytes(bytes(data))
    with obs.observed() as o:
        with pytest.raises(StorageError):
            load_index(tmp_path / "idx")
        report = validate_index(tmp_path / "idx")
    assert not report.ok
    assert o.counter_total("persist.corruption_detected") >= 2
    assert o.counter_total("persist.validations") == 1
    assert o.counter_total("persist.validation_errors") == 1


def test_save_load_save_stable(tmp_path, rng):
    values = rng.integers(0, 12, size=300)
    index = BitmapIndex.build(values, IndexSpec(cardinality=12, scheme="I"))
    save_index(index, tmp_path / "a")
    first = load_index(tmp_path / "a")
    save_index(first, tmp_path / "a")
    second = load_index(tmp_path / "a")
    for key in index.store.keys():
        assert second.store.get(key) == index.store.get(key)
