"""Save/load roundtrip property: every scheme × codec, identical results.

The invariant: persisting an index and loading it back must change
*nothing observable* — stored payloads are byte-identical and every
query returns exactly the same row ids.  Exercised across all seven
paper schemes (including the tuple-slot hybrids) and every registered
codec, over multi-component bases.
"""

import numpy as np
import pytest

from repro.compress import available_codecs
from repro.encoding import ALL_SCHEME_NAMES
from repro.index import BitmapIndex, IndexSpec
from repro.index.persist import load_index, save_index, validate_index
from repro.queries import IntervalQuery, MembershipQuery

CARDINALITY = 24
NUM_RECORDS = 400


def _queries():
    return [
        IntervalQuery(0, CARDINALITY - 1, CARDINALITY),  # ALL
        IntervalQuery(5, 17, CARDINALITY),  # 2RQ
        IntervalQuery(0, 9, CARDINALITY),  # 1RQ
        IntervalQuery(7, 7, CARDINALITY),  # EQ
        MembershipQuery.of({1, 6, 13, 22}, CARDINALITY),  # MQ
    ]


@pytest.mark.parametrize("codec", sorted(available_codecs()))
@pytest.mark.parametrize("scheme", ALL_SCHEME_NAMES)
def test_roundtrip_identical_across_schemes_and_codecs(
    tmp_path, rng, scheme, codec
):
    values = rng.integers(0, CARDINALITY, size=NUM_RECORDS)
    spec = IndexSpec(
        cardinality=CARDINALITY, scheme=scheme, bases=(6, 4), codec=codec
    )
    index = BitmapIndex.build(values, spec)
    save_index(index, tmp_path / "idx")
    loaded = load_index(tmp_path / "idx")

    assert loaded.num_records == index.num_records
    assert loaded.bases == index.bases
    assert set(loaded.store.keys()) == set(index.store.keys())
    for key in index.store.keys():
        assert loaded.store.get_payload(key) == index.store.get_payload(
            key
        ), f"payload for {key} not byte-identical"
    for query in _queries():
        before = index.query(query).row_ids()
        after = loaded.query(query).row_ids()
        assert np.array_equal(before, after), (scheme, codec, query)
    assert validate_index(tmp_path / "idx").ok


@pytest.mark.parametrize("scheme", ALL_SCHEME_NAMES)
def test_roundtrip_survives_second_generation(tmp_path, rng, scheme):
    """save -> load -> save -> load is byte-stable (no drift)."""
    values = rng.integers(0, CARDINALITY, size=NUM_RECORDS)
    spec = IndexSpec(cardinality=CARDINALITY, scheme=scheme, codec="bbc")
    index = BitmapIndex.build(values, spec)
    save_index(index, tmp_path / "a")
    first = load_index(tmp_path / "a")
    save_index(first, tmp_path / "b")
    second = load_index(tmp_path / "b")
    for key in index.store.keys():
        assert second.store.get_payload(key) == index.store.get_payload(key)
    files_a = {
        p.name: p.read_bytes() for p in (tmp_path / "a").iterdir()
    }
    files_b = {
        p.name: p.read_bytes() for p in (tmp_path / "b").iterdir()
    }
    assert files_a == files_b
