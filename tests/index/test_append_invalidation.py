"""Appends must invalidate derived state, not just rewrite the store.

An append rewrites every stored bitmap, so anything holding a decoded
copy — a buffer pool, a compressed-payload pool, an expression-level
result cache — is stale the moment it returns.  These are the
regression tests for the invalidation chain: the store's per-key write
versions (pools re-read replaced payloads) and the index epoch counter
(result caches compare epochs).  The serving-layer half of the chain is
covered in ``tests/serve``.
"""

import numpy as np
import pytest

from repro.bitmap import BitVector
from repro.index import BitmapIndex, IndexSpec
from repro.index.compressed_engine import CompressedQueryEngine
from repro.index.evaluation import QueryEngine
from repro.index.segmented import SegmentedBitmapIndex
from repro.queries import IntervalQuery, MembershipQuery
from repro.storage import BitmapStore, BufferPool

CARDINALITY = 20


def queries():
    return [
        IntervalQuery(3, 11, CARDINALITY),
        MembershipQuery.of({0, 5, 19}, CARDINALITY),
    ]


class TestStoreVersions:
    def test_version_starts_at_zero_and_counts_writes(self):
        store = BitmapStore("raw")
        assert store.version("k") == 0
        store.put("k", BitVector.ones(8))
        assert store.version("k") == 1
        store.put("k", BitVector.ones(16))
        assert store.version("k") == 2
        assert store.version("other") == 0

    def test_buffer_pool_refetches_replaced_bitmap(self):
        store = BitmapStore("raw")
        store.put("k", BitVector.ones(64))
        pool = BufferPool(store, capacity_pages=4)
        assert pool.fetch("k") == BitVector.ones(64)
        store.put("k", BitVector.zeros(64))
        # A stale hit would return the old all-ones decode.
        assert pool.fetch("k") == BitVector.zeros(64)
        assert pool.stats.misses == 2

    def test_unreplaced_bitmap_still_hits(self):
        store = BitmapStore("raw")
        store.put("k", BitVector.ones(64))
        pool = BufferPool(store, capacity_pages=4)
        pool.fetch("k")
        pool.fetch("k")
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1


class TestEpochCounter:
    def test_bitmap_index_epoch_bumps_per_append(self, rng):
        index = BitmapIndex.build(
            rng.integers(0, CARDINALITY, size=100),
            IndexSpec(cardinality=CARDINALITY, scheme="E"),
        )
        assert index.epoch == 0
        index.append(np.array([3]))
        index.append(np.array([7, 7]))
        assert index.epoch == 2

    def test_segmented_index_epoch_bumps_per_append(self, rng):
        index = SegmentedBitmapIndex.build(
            rng.integers(0, CARDINALITY, size=100),
            IndexSpec(cardinality=CARDINALITY, scheme="E"),
            segment_size=64,
        )
        epoch = index.epoch
        index.append(rng.integers(0, CARDINALITY, size=70))
        assert index.epoch == epoch + 1


class TestEmptyAppend:
    """A zero-row batch is a no-op and must not invalidate anything.

    Regression: empty appends used to bump the epoch, which swept every
    epoch-keyed result cache (local and serving) even though no stored
    bitmap changed.
    """

    def test_bitmap_index_empty_append_keeps_epoch(self, rng):
        index = BitmapIndex.build(
            rng.integers(0, CARDINALITY, size=100),
            IndexSpec(cardinality=CARDINALITY, scheme="E"),
        )
        index.append(np.array([3]))
        report = index.append(np.array([], dtype=np.int64))
        assert index.epoch == 1
        assert report.records_appended == 0
        assert report.bitmaps_extended == 0
        assert report.bitmaps_touched == 0
        assert index.num_records == 101

    def test_segmented_index_empty_append_keeps_epoch(self, rng):
        index = SegmentedBitmapIndex.build(
            rng.integers(0, CARDINALITY, size=100),
            IndexSpec(cardinality=CARDINALITY, scheme="E"),
            segment_size=64,
        )
        epoch = index.epoch
        report = index.append(np.array([], dtype=np.int64))
        assert index.epoch == epoch
        assert report.records_appended == 0
        assert index.num_records == 100

    def test_empty_append_leaves_store_versions_alone(self, rng):
        index = BitmapIndex.build(
            rng.integers(0, CARDINALITY, size=100),
            IndexSpec(cardinality=CARDINALITY, scheme="E"),
        )
        versions = {
            key: index.store.version(key) for key in index.store.keys()
        }
        index.append(np.array([], dtype=np.int64))
        for key, version in versions.items():
            assert index.store.version(key) == version


class TestEnginesSurviveAppend:
    @pytest.mark.parametrize(
        "make_engine,codec",
        [
            (lambda ix: QueryEngine(ix, buffer_pages=8), "raw"),
            (lambda ix: CompressedQueryEngine(ix, buffer_pages=8), "wah"),
        ],
        ids=["decoded", "compressed"],
    )
    def test_requery_after_append_sees_new_rows(self, rng, make_engine, codec):
        base = rng.integers(0, CARDINALITY, size=300)
        batch = rng.integers(0, CARDINALITY, size=120)
        index = BitmapIndex.build(
            base, IndexSpec(cardinality=CARDINALITY, scheme="E", codec=codec)
        )
        engine = make_engine(index)
        for query in queries():  # warm the pool with pre-append decodes
            assert engine.execute(query).bitmap == BitVector.from_bools(
                query.matches(base)
            )
        index.append(batch)
        merged = np.concatenate([base, batch])
        for query in queries():
            result = engine.execute(query)
            assert len(result.bitmap) == len(merged)
            assert result.bitmap == BitVector.from_bools(query.matches(merged))

    def test_append_charges_refetch_to_the_clock(self, rng):
        base = rng.integers(0, CARDINALITY, size=300)
        index = BitmapIndex.build(
            base, IndexSpec(cardinality=CARDINALITY, scheme="E", codec="raw")
        )
        engine = QueryEngine(index, buffer_pages=32)
        query = IntervalQuery(3, 11, CARDINALITY)
        engine.execute(query)
        pages_warm = engine.clock.pages_read
        engine.execute(query)
        assert engine.clock.pages_read == pages_warm  # fully resident
        index.append(np.array([5]))
        engine.execute(query)
        assert engine.clock.pages_read > pages_warm  # stale copies re-read
