"""Tests for the Section 6.3 evaluation strategies and buffer effects."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.index import BitmapIndex, IndexSpec
from repro.queries import IntervalQuery, MembershipQuery
from repro.storage import CostClock


@pytest.fixture
def index(rng):
    values = rng.integers(0, 50, size=5000)
    return BitmapIndex.build(
        values, IndexSpec(cardinality=50, scheme="R", bases=(7, 8), codec="raw")
    ), values


def overlapping_membership() -> MembershipQuery:
    """Constituents that share prefix bitmaps in a base-<7,8> R index."""
    # {10, 11, 12} and {14, 15} and {40}: nearby digit prefixes overlap.
    return MembershipQuery.of({10, 11, 12, 14, 15, 40}, 50)


class TestStrategies:
    def test_same_answer_both_strategies(self, index):
        idx, values = index
        query = overlapping_membership()
        component_wise = idx.engine(strategy="component-wise").execute(query)
        query_wise = idx.engine(strategy="query-wise").execute(query)
        assert component_wise.bitmap == query_wise.bitmap
        assert component_wise.row_count == int(query.matches(values).sum())

    def test_component_wise_never_refetches(self, index):
        idx, _ = index
        engine = idx.engine(strategy="component-wise")
        result = engine.execute(overlapping_membership())
        # Each distinct bitmap fetched exactly once per query.
        assert result.stats.scans == len(set(result.stats.fetched_keys))

    def test_query_wise_refetches_shared_bitmaps(self, index):
        idx, _ = index
        engine = idx.engine(strategy="query-wise")
        result = engine.execute(overlapping_membership())
        assert result.stats.scans >= len(set(result.stats.fetched_keys))

    def test_component_wise_fetch_order(self, index):
        idx, _ = index
        engine = idx.engine(strategy="component-wise")
        result = engine.execute(overlapping_membership())
        components = [key[0] for key in result.stats.fetched_keys]
        assert components == sorted(components)

    def test_unknown_strategy_rejected(self, index):
        idx, _ = index
        with pytest.raises(QueryError):
            idx.engine(strategy="random")


class TestBufferEffects:
    def test_large_pool_hits_across_queries(self, index):
        idx, _ = index
        engine = idx.engine()  # default: everything fits
        engine.execute(IntervalQuery(0, 30, 50))
        misses_before = engine.buffer_stats.misses
        engine.execute(IntervalQuery(0, 30, 50))
        assert engine.buffer_stats.misses == misses_before

    def test_tiny_pool_forces_rescans(self, index):
        idx, _ = index
        clock = CostClock()
        engine = idx.engine(buffer_pages=1, clock=clock)
        query = overlapping_membership()
        engine.execute(query)
        first = clock.read_requests
        engine.execute(query)
        assert clock.read_requests > first  # everything evicted between

    def test_query_wise_costs_more_io_under_small_pool(self, index):
        """The §6.3 tradeoff: with a tight buffer, query-wise evaluation
        re-reads shared bitmaps that component-wise reads once."""
        idx, _ = index
        query = overlapping_membership()

        clock_cw = CostClock()
        idx.engine(buffer_pages=1, clock=clock_cw, strategy="component-wise").execute(query)
        clock_qw = CostClock()
        idx.engine(buffer_pages=1, clock=clock_qw, strategy="query-wise").execute(query)
        assert clock_qw.read_requests >= clock_cw.read_requests

    def test_simulated_time_accumulates(self, index):
        idx, _ = index
        clock = CostClock()
        engine = idx.engine(clock=clock)
        r1 = engine.execute(IntervalQuery(3, 3, 50))
        r2 = engine.execute(IntervalQuery(0, 44, 50))
        assert clock.total_ms == pytest.approx(r1.simulated_ms + r2.simulated_ms)


class TestAnswerOwnership:
    """Query answers belong to the caller: never a read-only view of
    pool/store memory, even when a constituent is a bare leaf."""

    def _single_leaf_query(self, engine_kwargs):
        values = np.arange(120) % 4
        idx = BitmapIndex.build(values, IndexSpec(cardinality=4, scheme="E"))
        # Equality on an E-encoded index is a bare-leaf expression.
        result = idx.query(IntervalQuery(2, 2, 4), **engine_kwargs)
        return idx, result

    @pytest.mark.parametrize("fused", [False, True, "auto"])
    def test_answer_is_writable(self, fused):
        idx, result = self._single_leaf_query({"fused": fused})
        assert result.bitmap.words.flags.writeable
        result.bitmap.words[0] = 0  # must not raise

    def test_mutating_answer_leaves_index_intact(self):
        idx, result = self._single_leaf_query({})
        before = result.row_count
        result.bitmap.words[:] = 0
        assert idx.query(IntervalQuery(2, 2, 4)).row_count == before
