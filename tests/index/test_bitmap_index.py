"""Tests for BitmapIndex construction, accounting and querying."""

import numpy as np
import pytest

from repro.bitmap import BitVector
from repro.errors import EncodingSchemeError
from repro.index import BitmapIndex, IndexSpec
from repro.queries import IntervalQuery, MembershipQuery
from repro.storage import BitmapStore


@pytest.fixture
def column(rng):
    return rng.integers(0, 50, size=2000)


class TestSpec:
    def test_resolved_bases_explicit(self):
        spec = IndexSpec(cardinality=50, scheme="I", bases=(7, 8))
        assert spec.resolved_bases() == (7, 8)

    def test_resolved_bases_uniform(self):
        spec = IndexSpec(cardinality=50, scheme="I", num_components=2)
        bases = spec.resolved_bases()
        assert len(bases) == 2
        assert bases[0] * bases[1] >= 50

    def test_label(self):
        spec = IndexSpec(cardinality=50, scheme="EI*", bases=(7, 8), codec="bbc")
        assert spec.label == "EI*<7,8>/bbc"


class TestBuild:
    def test_basic_build(self, column):
        index = BitmapIndex.build(
            column, IndexSpec(cardinality=50, scheme="E", num_components=1)
        )
        assert index.num_records == 2000
        assert index.num_bitmaps() == 50
        assert index.num_components == 1

    def test_multi_component_bitmap_count(self, column):
        index = BitmapIndex.build(
            column, IndexSpec(cardinality=50, scheme="R", bases=(7, 8))
        )
        # R stores b - 1 bitmaps per component: 6 + 7.
        assert index.num_bitmaps() == 13

    def test_out_of_domain_rejected(self):
        with pytest.raises(EncodingSchemeError):
            BitmapIndex.build(
                np.array([50]), IndexSpec(cardinality=50, scheme="E")
            )

    def test_store_codec_mismatch_rejected(self, column):
        store = BitmapStore(codec="raw")
        with pytest.raises(EncodingSchemeError):
            BitmapIndex.build(
                column,
                IndexSpec(cardinality=50, scheme="E", codec="bbc"),
                store=store,
            )

    def test_size_accounting(self, column):
        raw = BitmapIndex.build(
            column, IndexSpec(cardinality=50, scheme="E", codec="raw")
        )
        assert raw.size_bytes() == raw.uncompressed_bytes()
        bbc = BitmapIndex.build(
            column, IndexSpec(cardinality=50, scheme="E", codec="bbc")
        )
        assert bbc.size_bytes() < raw.size_bytes()
        assert bbc.uncompressed_bytes() == raw.uncompressed_bytes()

    def test_empty_column(self):
        index = BitmapIndex.build(
            np.array([], dtype=np.int64), IndexSpec(cardinality=10, scheme="I")
        )
        result = index.query(IntervalQuery(0, 5, 10))
        assert result.row_count == 0


class TestQuery:
    def test_interval_result(self, column):
        index = BitmapIndex.build(
            column, IndexSpec(cardinality=50, scheme="I", bases=(7, 8))
        )
        result = index.query(IntervalQuery(10, 30, 50))
        expected = BitVector.from_bools((column >= 10) & (column <= 30))
        assert result.bitmap == expected
        assert result.row_count == expected.count()
        assert result.row_ids().tolist() == expected.to_indices().tolist()

    def test_membership_result(self, column):
        index = BitmapIndex.build(
            column, IndexSpec(cardinality=50, scheme="EI", num_components=1)
        )
        query = MembershipQuery.of({1, 2, 3, 30, 47}, 50)
        result = index.query(query)
        assert result.row_count == int(query.matches(column).sum())

    def test_simulated_time_positive(self, column):
        index = BitmapIndex.build(
            column, IndexSpec(cardinality=50, scheme="R", codec="bbc")
        )
        result = index.query(IntervalQuery(5, 20, 50))
        assert result.simulated_ms > 0

    def test_repr(self, column):
        index = BitmapIndex.build(column, IndexSpec(cardinality=50, scheme="I"))
        assert "I<50>" in repr(index)
        assert "N=2000" in repr(index)
