"""Tests for the segmented bitmap index."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitmap import BitVector
from repro.errors import EncodingSchemeError, QueryError, ReproError
from repro.index import BitmapIndex, IndexSpec, SegmentedBitmapIndex
from repro.queries import IntervalQuery, MembershipQuery

SPEC = IndexSpec(cardinality=20, scheme="I", codec="bbc")


class TestBuild:
    def test_segment_count(self, rng):
        values = rng.integers(0, 20, size=2500)
        index = SegmentedBitmapIndex.build(values, SPEC, segment_size=1000)
        assert index.num_segments == 3
        assert [s.num_records for s in index.segments()] == [1000, 1000, 500]
        assert index.num_records == 2500

    def test_invalid_segment_size(self):
        with pytest.raises(ReproError):
            SegmentedBitmapIndex(SPEC, segment_size=0)

    def test_empty_build(self):
        index = SegmentedBitmapIndex.build(
            np.array([], dtype=np.int64), SPEC, segment_size=100
        )
        assert index.num_segments == 0
        assert index.query(IntervalQuery(0, 5, 20)).row_count == 0

    def test_out_of_domain_rejected(self):
        with pytest.raises(EncodingSchemeError):
            SegmentedBitmapIndex.build(np.array([20]), SPEC, segment_size=10)


class TestQuery:
    @pytest.fixture
    def built(self, rng):
        values = rng.integers(0, 20, size=3300)
        return (
            SegmentedBitmapIndex.build(values, SPEC, segment_size=1000),
            values,
        )

    def test_matches_monolithic_index(self, built):
        segmented, values = built
        monolithic = BitmapIndex.build(values, SPEC)
        for query in (
            IntervalQuery(3, 11, 20),
            IntervalQuery(0, 0, 20),
            MembershipQuery.of({1, 7, 19}, 20),
        ):
            assert (
                segmented.query(query).bitmap == monolithic.query(query).bitmap
            ), str(query)

    def test_row_ids_are_global(self, built):
        segmented, values = built
        result = segmented.query(IntervalQuery(5, 5, 20))
        assert result.row_ids().tolist() == np.flatnonzero(values == 5).tolist()

    def test_stats_aggregate_over_segments(self, built):
        segmented, _ = built
        result = segmented.query(IntervalQuery(3, 11, 20))
        per_segment = BitmapIndex.build(
            np.zeros(1, dtype=np.int64), SPEC
        ).query(IntervalQuery(3, 11, 20)).stats.scans
        assert result.stats.scans == per_segment * segmented.num_segments
        assert result.strategy == "segmented"

    def test_domain_mismatch_rejected(self, built):
        segmented, _ = built
        with pytest.raises(QueryError):
            segmented.query(IntervalQuery(0, 5, 10))


class TestAppend:
    def test_append_fills_tail_then_opens_segments(self, rng):
        index = SegmentedBitmapIndex.build(
            rng.integers(0, 20, size=700), SPEC, segment_size=1000
        )
        index.append(rng.integers(0, 20, size=800))
        assert index.num_segments == 2
        assert [s.num_records for s in index.segments()] == [1000, 500]

    def test_sealed_segments_untouched(self, rng):
        values = rng.integers(0, 20, size=1000)
        index = SegmentedBitmapIndex.build(values, SPEC, segment_size=1000)
        sealed = index.segments()[0]
        snapshot = {key: sealed.store.get(key) for key in sealed.store.keys()}
        index.append(rng.integers(0, 20, size=2500))
        for key, bitmap in snapshot.items():
            assert sealed.store.get(key) == bitmap

    def test_append_equals_rebuild(self, rng):
        base = rng.integers(0, 20, size=1500)
        batch = rng.integers(0, 20, size=2200)
        incremental = SegmentedBitmapIndex.build(base, SPEC, segment_size=1000)
        incremental.append(batch)
        rebuilt = SegmentedBitmapIndex.build(
            np.concatenate([base, batch]), SPEC, segment_size=1000
        )
        query = IntervalQuery(4, 16, 20)
        assert incremental.query(query).bitmap == rebuilt.query(query).bitmap
        assert incremental.num_segments == rebuilt.num_segments

    def test_empty_append(self, rng):
        index = SegmentedBitmapIndex.build(
            rng.integers(0, 20, size=100), SPEC, segment_size=50
        )
        report = index.append(np.array([], dtype=np.int64))
        assert report.records_appended == 0
        assert index.num_records == 100


class TestSplitAt:
    def build(self, rng, size=300, segment_size=100):
        values = rng.integers(0, 20, size=size)
        index = SegmentedBitmapIndex.build(values, SPEC, segment_size)
        return values, index

    def test_halves_answer_like_slices(self, rng):
        values, index = self.build(rng)
        left, right = index.split_at(100)
        query = IntervalQuery(4, 16, 20)
        assert left.num_records == 100
        assert right.num_records == 200
        assert left.query(query).bitmap == BitVector.from_bools(
            query.matches(values[:100])
        )
        assert right.query(query).bitmap == BitVector.from_bools(
            query.matches(values[100:])
        )

    def test_parent_not_mutated(self, rng):
        values, index = self.build(rng)
        index.split_at(200)
        assert index.num_records == 300
        query = IntervalQuery(2, 9, 20)
        assert index.query(query).bitmap == BitVector.from_bools(
            query.matches(values)
        )

    def test_segments_shared_by_reference(self, rng):
        _, index = self.build(rng)
        left, right = index.split_at(100)
        assert left.segments()[0] is index.segments()[0]
        assert right.segments() == index.segments()[1:]

    def test_edge_splits(self, rng):
        values, index = self.build(rng)
        left, right = index.split_at(0)
        assert left.num_records == 0
        assert right.num_records == 300
        left, right = index.split_at(300)
        assert left.num_records == 300
        assert right.num_records == 0

    def test_non_boundary_row_rejected(self, rng):
        _, index = self.build(rng)
        with pytest.raises(ReproError, match="not a multiple"):
            index.split_at(150)

    def test_out_of_range_rejected(self, rng):
        _, index = self.build(rng)
        with pytest.raises(ReproError, match="outside"):
            index.split_at(-100)
        with pytest.raises(ReproError, match="outside"):
            index.split_at(400)

    def test_halves_start_fresh_epochs_and_append_independently(self, rng):
        values, index = self.build(rng)
        index.epoch = 7
        left, right = index.split_at(100)
        assert left.epoch == 0 and right.epoch == 0
        extra = rng.integers(0, 20, size=40)
        right.append(extra)
        assert right.epoch == 1
        assert left.num_records == 100  # untouched by the sibling
        query = IntervalQuery(0, 19, 20)
        combined = np.concatenate([values[100:], extra])
        assert right.query(query).bitmap == BitVector.from_bools(
            query.matches(combined)
        )


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    segment_size=st.integers(min_value=1, max_value=400),
    sizes=st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=4),
    scheme=st.sampled_from(["E", "R", "I"]),
)
@settings(max_examples=50, deadline=None)
def test_segmented_property(seed, segment_size, sizes, scheme):
    """Any append sequence at any segment size answers like a scan."""
    rng = np.random.default_rng(seed)
    spec = IndexSpec(cardinality=12, scheme=scheme)
    index = SegmentedBitmapIndex(spec, segment_size)
    chunks = [rng.integers(0, 12, size=size) for size in sizes]
    for chunk in chunks:
        index.append(chunk)
    merged = (
        np.concatenate(chunks) if chunks else np.array([], dtype=np.int64)
    )
    low = int(rng.integers(0, 12))
    high = int(rng.integers(low, 12))
    result = index.query(IntervalQuery(low, high, 12))
    expected = BitVector.from_bools((merged >= low) & (merged <= high))
    assert result.bitmap == expected
