"""Tests for the "scheduled" evaluation strategy (the §6.3 future-work
heuristic implemented as an extension)."""

import numpy as np
import pytest

from repro.expr import leaf
from repro.index import BitmapIndex, IndexSpec
from repro.index.evaluation import schedule_constituents
from repro.queries import MembershipQuery
from repro.storage import CostClock


class TestScheduleConstituents:
    def test_short_lists_unchanged(self):
        exprs = [leaf("a"), leaf("b")]
        assert schedule_constituents(exprs) == exprs
        assert schedule_constituents([]) == []

    def test_overlapping_neighbours_adjacent(self):
        # a&b shares with b&c; d&e is unrelated — the schedule must not
        # interleave the unrelated constituent between the sharers.
        ab = leaf("a") & leaf("b")
        bc = leaf("b") & leaf("c")
        de = leaf("d") & leaf("e")
        order = schedule_constituents([ab, de, bc])
        positions = {id(e): i for i, e in enumerate(order)}
        assert abs(positions[id(ab)] - positions[id(bc)]) == 1

    def test_permutation_preserved(self):
        exprs = [leaf(c) for c in "abcdef"]
        order = schedule_constituents(exprs)
        assert sorted(map(str, order)) == sorted(map(str, exprs))

    def test_deterministic(self):
        exprs = [leaf("a") & leaf("b"), leaf("b") & leaf("c"), leaf("x")]
        assert schedule_constituents(exprs) == schedule_constituents(exprs)

    def test_chain_follows_overlap(self):
        # Chain a-b, b-c, c-d: the greedy walk recovers the chain.
        chain = [
            leaf("a") & leaf("b"),
            leaf("c") & leaf("d"),
            leaf("b") & leaf("c"),
        ]
        order = schedule_constituents(chain)
        keysets = [e.leaf_keys() for e in order]
        for left, right in zip(keysets, keysets[1:]):
            assert left & right, "consecutive constituents must overlap"


class TestScheduledStrategy:
    @pytest.fixture
    def index(self, rng):
        values = rng.integers(0, 50, size=4000)
        return BitmapIndex.build(
            values,
            IndexSpec(cardinality=50, scheme="R", bases=(7, 8), codec="raw"),
        ), values

    def query(self):
        # Constituents 10-12 and 14-15 share digit bitmaps; 40 does not.
        return MembershipQuery.of({10, 11, 12, 40, 14, 15}, 50)

    def test_same_answer_as_other_strategies(self, index):
        idx, values = index
        expected = int(self.query().matches(values).sum())
        for strategy in ("component-wise", "query-wise", "scheduled"):
            result = idx.engine(strategy=strategy).execute(self.query())
            assert result.row_count == expected, strategy

    def test_never_more_reads_than_query_wise(self, index):
        idx, _ = index
        reads = {}
        for strategy in ("query-wise", "scheduled", "component-wise"):
            clock = CostClock()
            engine = idx.engine(
                buffer_pages=2, clock=clock, strategy=strategy
            )
            engine.execute(self.query())
            reads[strategy] = clock.read_requests
        assert reads["scheduled"] <= reads["query-wise"]
        assert reads["component-wise"] <= reads["scheduled"]

    def test_interval_queries_unaffected(self, index):
        idx, values = index
        from repro.queries import IntervalQuery

        result = idx.engine(strategy="scheduled").execute(
            IntervalQuery(5, 30, 50)
        )
        assert result.row_count == int(((values >= 5) & (values <= 30)).sum())
