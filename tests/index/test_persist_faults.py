"""Fault-injection suite for crash-safe index persistence.

The contract under test (ISSUE 4 acceptance criteria): for every
injected crash, truncation or bit-flip point during ``save_index``, a
subsequent ``load_index`` either returns the last fully-committed index
state or raises a typed :class:`StorageError` — never silently wrong
query results — and ``validate_index`` detects every single-byte
corruption of a v2 blob.
"""

import shutil

import numpy as np
import pytest

from repro import obs
from repro.errors import (
    ChecksumMismatchError,
    ManifestMismatchError,
    StorageError,
    TruncatedBlobError,
)
from repro.index import BitmapIndex, IndexSpec
from repro.index.persist import load_index, save_index, validate_index
from repro.queries import IntervalQuery
from repro.storage.faults import FaultInjector, InjectedCrash, injected


def _build(seed: int, cardinality: int, num_records: int, codec="bbc"):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, cardinality, size=num_records)
    spec = IndexSpec(cardinality=cardinality, scheme="E", codec=codec)
    return BitmapIndex.build(values, spec)


def _state(index: BitmapIndex) -> dict:
    """Full observable on-disk identity of an index."""
    return {
        "records": index.num_records,
        "cardinality": index.cardinality,
        "blobs": {
            key: index.store.get_payload(key) for key in index.store.keys()
        },
    }


class TestCrashSweep:
    def test_crash_at_every_point_is_prior_state_or_loud(self, tmp_path):
        # Old index: C=8 -> 8 bitmaps.  New index: C=5 -> 5 bitmaps, so
        # the save must also sweep 3 stale blobs after commit.
        old_index = _build(seed=1, cardinality=8, num_records=300)
        new_index = _build(seed=2, cardinality=5, num_records=200)
        old_state, new_state = _state(old_index), _state(new_index)
        assert old_state != new_state

        template = tmp_path / "template"
        save_index(old_index, template)

        with injected(FaultInjector()) as probe:
            work = tmp_path / "probe"
            shutil.copytree(template, work)
            save_index(new_index, work)
        total_ops = len(probe.ops)
        # 5 blobs x (write+fsync+rename) + manifest x 3 + 3 unlinks
        assert total_ops == 5 * 3 + 3 + 3

        outcomes = {"old": 0, "new": 0, "loud": 0}
        for crash_at in range(total_ops):
            work = tmp_path / f"crash{crash_at}"
            shutil.copytree(template, work)
            with injected(FaultInjector(crash_at=crash_at)):
                with pytest.raises(InjectedCrash):
                    save_index(new_index, work)
            try:
                loaded = load_index(work)
            except StorageError:
                outcomes["loud"] += 1
                # validation must agree, via report or typed raise
                try:
                    assert not validate_index(work).ok
                except StorageError:
                    pass
                continue
            state = _state(loaded)
            assert state in (old_state, new_state), (
                f"crash at op {crash_at} produced a state that is neither "
                f"the prior nor the new index"
            )
            outcomes["old" if state == old_state else "new"] += 1
        # The sweep must actually exercise all three outcomes: crashes
        # before the manifest commit keep the old index readable or fail
        # loudly; crashes after it serve the new index.
        assert outcomes["new"] > 0
        assert outcomes["old"] + outcomes["loud"] > 0
        assert sum(outcomes.values()) == total_ops

    def test_crash_sweep_into_empty_directory(self, tmp_path):
        index = _build(seed=3, cardinality=4, num_records=150)
        expected = _state(index)

        with injected(FaultInjector()) as probe:
            save_index(index, tmp_path / "probe")
        for crash_at in range(len(probe.ops)):
            work = tmp_path / f"crash{crash_at}"
            with injected(FaultInjector(crash_at=crash_at)):
                with pytest.raises(InjectedCrash):
                    save_index(index, work)
            try:
                loaded = load_index(work)
            except StorageError:
                continue  # nothing committed yet — loud is correct
            assert _state(loaded) == expected

    def test_interrupted_save_then_retry_succeeds(self, tmp_path):
        old_index = _build(seed=1, cardinality=8, num_records=300)
        new_index = _build(seed=2, cardinality=5, num_records=200)
        work = tmp_path / "idx"
        save_index(old_index, work)
        with injected(FaultInjector(crash_at=7)):
            with pytest.raises(InjectedCrash):
                save_index(new_index, work)
        # Recovery path: a clean re-save commits and sweeps the junk.
        save_index(new_index, work)
        assert _state(load_index(work)) == _state(new_index)
        report = validate_index(work)
        assert report.ok and report.orphans == []


class TestInjectedCorruption:
    """Silent disk corruption during the write itself (no crash)."""

    def test_truncated_blob_write_detected(self, tmp_path):
        index = _build(seed=4, cardinality=6, num_records=250)
        with injected(FaultInjector(truncate=(".bm", 4))):
            save_index(index, tmp_path / "idx")
        with pytest.raises(TruncatedBlobError):
            load_index(tmp_path / "idx")
        report = validate_index(tmp_path / "idx")
        assert not report.ok
        assert all(isinstance(e, TruncatedBlobError) for e in report.errors)

    def test_flipped_blob_write_detected(self, tmp_path):
        index = _build(seed=4, cardinality=6, num_records=250)
        with injected(FaultInjector(flip=(".bm", 2))):
            save_index(index, tmp_path / "idx")
        with pytest.raises(ChecksumMismatchError):
            load_index(tmp_path / "idx")
        report = validate_index(tmp_path / "idx")
        assert not report.ok
        assert all(isinstance(e, ChecksumMismatchError) for e in report.errors)

    def test_truncated_manifest_write_detected(self, tmp_path):
        index = _build(seed=4, cardinality=6, num_records=250)
        with injected(FaultInjector(truncate=("manifest.json", 40))):
            save_index(index, tmp_path / "idx")
        with pytest.raises(ManifestMismatchError):
            load_index(tmp_path / "idx")


class TestSingleByteCorruption:
    """`repro verify-index` must detect every single-byte corruption."""

    def test_every_blob_byte_flip_detected(self, tmp_path):
        index = _build(seed=5, cardinality=4, num_records=64)
        save_index(index, tmp_path / "idx")
        blob_paths = sorted((tmp_path / "idx").glob("*.bm"))
        assert blob_paths
        flips = 0
        for path in blob_paths:
            pristine = path.read_bytes()
            assert pristine, "test needs non-empty blobs"
            for offset in range(len(pristine)):
                corrupt = bytearray(pristine)
                corrupt[offset] ^= 0xFF
                path.write_bytes(bytes(corrupt))
                report = validate_index(tmp_path / "idx")
                assert not report.ok, (
                    f"flip at {path.name}[{offset}] went undetected"
                )
                assert any(
                    isinstance(e, ChecksumMismatchError) for e in report.errors
                )
                with pytest.raises(StorageError):
                    load_index(tmp_path / "idx")
                flips += 1
            path.write_bytes(pristine)
        assert flips >= len(blob_paths)
        assert validate_index(tmp_path / "idx").ok

    def test_every_manifest_byte_flip_detected(self, tmp_path):
        index = _build(seed=5, cardinality=4, num_records=64)
        save_index(index, tmp_path / "idx")
        manifest_path = tmp_path / "idx" / "manifest.json"
        pristine = manifest_path.read_bytes()
        for offset in range(len(pristine)):
            corrupt = bytearray(pristine)
            corrupt[offset] ^= 0xFF
            manifest_path.write_bytes(bytes(corrupt))
            # A corrupt manifest must never load silently: either the
            # manifest itself is rejected or a blob check trips.
            with pytest.raises(StorageError):
                load_index(tmp_path / "idx")
        manifest_path.write_bytes(pristine)
        assert validate_index(tmp_path / "idx").ok

    def test_shortened_and_extended_blobs_detected(self, tmp_path):
        index = _build(seed=5, cardinality=4, num_records=64)
        save_index(index, tmp_path / "idx")
        path = sorted((tmp_path / "idx").glob("*.bm"))[0]
        pristine = path.read_bytes()

        path.write_bytes(pristine[:-1])
        with pytest.raises(TruncatedBlobError):
            load_index(tmp_path / "idx")

        path.write_bytes(b"")
        with pytest.raises(TruncatedBlobError):
            load_index(tmp_path / "idx")

        path.write_bytes(pristine + b"\x00")
        with pytest.raises(ManifestMismatchError):
            load_index(tmp_path / "idx")

        path.write_bytes(pristine)
        loaded = load_index(tmp_path / "idx")
        query = IntervalQuery(1, 2, 4)
        assert (
            loaded.query(query).row_count == index.query(query).row_count
        )


class TestMappedLoadCorruption:
    """``load_index(mapped=True)`` must stay exactly as loud as the
    copying loader: the CRC/size checks run before a view is registered,
    so a poisoned mmap view can never reach a query."""

    def test_every_blob_byte_flip_detected_mapped(self, tmp_path):
        index = _build(seed=6, cardinality=4, num_records=64, codec="raw")
        save_index(index, tmp_path / "idx")
        blob_paths = sorted((tmp_path / "idx").glob("*.bm"))
        assert blob_paths
        for path in blob_paths:
            pristine = path.read_bytes()
            assert pristine, "test needs non-empty blobs"
            for offset in range(len(pristine)):
                corrupt = bytearray(pristine)
                corrupt[offset] ^= 0xFF
                path.write_bytes(bytes(corrupt))
                with pytest.raises(ChecksumMismatchError):
                    load_index(tmp_path / "idx", mapped=True)
            path.write_bytes(pristine)
        loaded = load_index(tmp_path / "idx", mapped=True)
        query = IntervalQuery(1, 2, 4)
        assert loaded.query(query).row_count == index.query(query).row_count

    def test_shortened_and_extended_blobs_detected_mapped(self, tmp_path):
        index = _build(seed=6, cardinality=4, num_records=64, codec="raw")
        save_index(index, tmp_path / "idx")
        path = sorted((tmp_path / "idx").glob("*.bm"))[0]
        pristine = path.read_bytes()

        path.write_bytes(pristine[:-1])
        with pytest.raises(TruncatedBlobError):
            load_index(tmp_path / "idx", mapped=True)

        path.write_bytes(b"")
        with pytest.raises(TruncatedBlobError):
            load_index(tmp_path / "idx", mapped=True)

        path.write_bytes(pristine + b"\x00")
        with pytest.raises(ManifestMismatchError):
            load_index(tmp_path / "idx", mapped=True)

        path.write_bytes(pristine)
        assert validate_index(tmp_path / "idx").ok

    def test_mapped_corruption_is_counted(self, tmp_path):
        index = _build(seed=6, cardinality=4, num_records=64, codec="raw")
        save_index(index, tmp_path / "idx")
        path = sorted((tmp_path / "idx").glob("*.bm"))[0]
        corrupt = bytearray(path.read_bytes())
        corrupt[0] ^= 0xFF
        path.write_bytes(bytes(corrupt))
        with obs.observed() as o:
            with pytest.raises(ChecksumMismatchError):
                load_index(tmp_path / "idx", mapped=True)
        metric = o.metrics.find("persist.corruption_detected", kind="checksum")
        assert metric is not None and metric.value == 1

    def test_flip_injected_during_save_detected_mapped(self, tmp_path):
        index = _build(seed=6, cardinality=4, num_records=64, codec="raw")
        with injected(FaultInjector(flip=(".bm", 2))):
            save_index(index, tmp_path / "idx")
        with pytest.raises(ChecksumMismatchError):
            load_index(tmp_path / "idx", mapped=True)

    def test_crash_sweep_then_mapped_load(self, tmp_path):
        old_index = _build(seed=7, cardinality=5, num_records=200, codec="raw")
        new_index = _build(seed=8, cardinality=5, num_records=200, codec="raw")
        query = IntervalQuery(1, 3, 5)
        committed_counts = {
            old_index.query(query).row_count,
            new_index.query(query).row_count,
        }
        template = tmp_path / "template"
        save_index(old_index, template)

        with injected(FaultInjector()) as probe:
            work = tmp_path / "probe"
            shutil.copytree(template, work)
            save_index(new_index, work)
        loud = 0
        for crash_at in range(len(probe.ops)):
            work = tmp_path / f"crash{crash_at}"
            shutil.copytree(template, work)
            with injected(FaultInjector(crash_at=crash_at)):
                with pytest.raises(InjectedCrash):
                    save_index(new_index, work)
            try:
                loaded = load_index(work, mapped=True)
            except StorageError:
                loud += 1
                continue
            assert loaded.query(query).row_count in committed_counts
        assert loud < len(probe.ops), "sweep never produced a loadable state"
