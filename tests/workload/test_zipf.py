"""Tests for the Zipf workload generator."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.workload import DatasetSpec, generate_dataset, zipf_column, zipf_probabilities


class TestProbabilities:
    def test_uniform_at_zero_skew(self):
        probs = zipf_probabilities(10, 0.0)
        assert np.allclose(probs, 0.1)

    def test_zipf_shape(self):
        probs = zipf_probabilities(10, 1.0)
        # p_r proportional to 1/r.
        assert probs[0] / probs[1] == pytest.approx(2.0)
        assert probs[0] / probs[9] == pytest.approx(10.0)

    def test_sums_to_one(self):
        for skew in (0.0, 0.5, 1.0, 2.0, 3.0):
            assert zipf_probabilities(50, skew).sum() == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ReproError):
            zipf_probabilities(10, -0.5)


class TestHighSkewPrecision:
    """Regressions for the log-space computation.

    The direct ``ranks ** -skew`` form underflows into denormals and
    then exact zeros once ``skew * log10(C)`` approaches ~308, and the
    denormal normalization drifted enough to trip ``rng.choice``'s
    probability-sum check at high skew × large cardinality.
    """

    def test_paper_extreme_corner(self):
        # The paper's largest skew on a large domain: C=10_000, z=3.
        probs = zipf_probabilities(10_000, 3.0)
        assert np.isfinite(probs).all()
        assert (probs > 0).all()
        assert probs.sum() == 1.0
        # Exact rank ratios survive: p_1 / p_r == r**3.
        assert probs[0] / probs[9] == pytest.approx(1000.0)

    def test_column_generation_at_paper_extreme(self):
        values = zipf_column(5_000, 10_000, 3.0, seed=11)
        assert values.min() >= 0
        assert values.max() < 10_000

    def test_beyond_float_underflow_range(self):
        # skew * log10(C) = 80 * 4 = 320 > 308: the direct power
        # computation returns exact zeros for the tail here.
        probs = zipf_probabilities(10_000, 80.0)
        assert (probs > 0).all()
        assert probs.sum() == pytest.approx(1.0)
        assert probs[0] > probs[1] > probs[-1]
        # rng.choice revalidates the sum; it must accept these.
        np.random.default_rng(0).choice(10_000, size=10, p=probs)

    def test_monotone_nonincreasing(self):
        probs = zipf_probabilities(1000, 2.5)
        assert (np.diff(probs) <= 0).all()


class TestColumn:
    def test_domain_respected(self):
        values = zipf_column(10_000, 50, 2.0, seed=1)
        assert values.min() >= 0
        assert values.max() < 50

    def test_deterministic(self):
        a = zipf_column(1000, 50, 1.0, seed=9)
        b = zipf_column(1000, 50, 1.0, seed=9)
        assert np.array_equal(a, b)

    def test_skew_concentrates_mass(self):
        flat = zipf_column(50_000, 50, 0.0, seed=2)
        skewed = zipf_column(50_000, 50, 3.0, seed=2)

        def top_share(values):
            counts = np.bincount(values, minlength=50)
            return np.sort(counts)[-1] / values.size

        assert top_share(skewed) > 5 * top_share(flat)

    def test_decorrelation_breaks_value_order(self):
        """With decorrelation, the most frequent value is (almost surely)
        not value 0; without it, it always is."""
        correlated = zipf_column(50_000, 50, 2.0, seed=3, decorrelate=False)
        assert np.bincount(correlated, minlength=50).argmax() == 0
        shuffled = zipf_column(50_000, 50, 2.0, seed=3, decorrelate=True)
        # Same frequency profile, different value assignment.
        assert sorted(np.bincount(shuffled, minlength=50)) == sorted(
            np.bincount(correlated, minlength=50)
        )

    def test_empty_column(self):
        assert zipf_column(0, 50, 1.0).size == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ReproError):
            zipf_column(-1, 50, 1.0)


class TestDatasetSpec:
    def test_generate_matches_spec(self):
        spec = DatasetSpec(cardinality=20, skew=1.0, num_records=500, seed=4)
        values = generate_dataset(spec)
        assert values.size == 500
        assert values.max() < 20

    def test_label(self):
        assert DatasetSpec(50, 1.0).label == "C=50,z=1"
