"""Tests for the two-state Markov clustered-data generator."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.workload import markov_bitmap, markov_column


def realized_stats(vector):
    indices = vector.to_indices()
    if indices.size == 0:
        return 0.0, 0.0
    runs = 1 + int((np.diff(indices) != 1).sum())
    return indices.size / len(vector), indices.size / runs


class TestMarkovBitmap:
    @pytest.mark.parametrize(
        "density,clustering",
        [(0.001, 1.0), (0.001, 16.0), (0.05, 4.0), (0.5, 8.0), (0.9, 32.0)],
    )
    def test_realized_density_and_clustering(self, density, clustering):
        vector = markov_bitmap(1 << 20, density, clustering, seed=3)
        d, f = realized_stats(vector)
        assert d == pytest.approx(density, rel=0.15)
        assert f == pytest.approx(clustering, rel=0.15)

    def test_determinism(self):
        a = markov_bitmap(50000, 0.1, 8.0, seed=42)
        b = markov_bitmap(50000, 0.1, 8.0, seed=42)
        assert a == b
        assert a != markov_bitmap(50000, 0.1, 8.0, seed=43)

    def test_degenerate_densities(self):
        assert markov_bitmap(0, 0.5, 2.0).count() == 0
        assert markov_bitmap(1000, 0.0, 1.0).count() == 0
        assert markov_bitmap(1000, 1.0, 999.0).count() == 1000

    def test_clustering_one_is_near_bernoulli(self):
        vector = markov_bitmap(1 << 18, 0.01, 1.0, seed=5)
        _, f = realized_stats(vector)
        assert f == pytest.approx(1.0, abs=0.05)

    def test_validation(self):
        with pytest.raises(ReproError, match="density"):
            markov_bitmap(100, 1.5, 2.0)
        with pytest.raises(ReproError, match="clustering_factor"):
            markov_bitmap(100, 0.1, 0.5)
        with pytest.raises(ReproError, match="infeasible"):
            markov_bitmap(100, 0.9, 2.0)
        with pytest.raises(ReproError, match="length"):
            markov_bitmap(-1, 0.1, 1.0)


class TestMarkovColumn:
    def test_shape_and_domain(self):
        column = markov_column(20000, 16, clustering_factor=4.0, seed=0)
        assert column.shape == (20000,)
        assert column.dtype == np.int64
        assert column.min() >= 0 and column.max() < 16

    def test_value_runs_are_clustered(self):
        column = markov_column(
            100000, 64, clustering_factor=10.0, skew=0.0, seed=2
        )
        runs = 1 + int((np.diff(column) != 0).sum())
        mean_run = column.size / runs
        # Adjacent runs drawing the same value merge, so the realized
        # mean is slightly above the nominal factor.
        assert 8.0 < mean_run < 14.0

    def test_skew_shapes_frequencies(self):
        column = markov_column(
            200000, 32, clustering_factor=4.0, skew=2.0, seed=1
        )
        counts = np.sort(np.bincount(column, minlength=32))[::-1]
        # Zipf z=2: the most frequent value dominates.
        assert counts[0] > 0.5 * column.size

    def test_empty_and_validation(self):
        assert markov_column(0, 8).shape == (0,)
        with pytest.raises(ReproError, match="num_records"):
            markov_column(-5, 8)
        with pytest.raises(ReproError, match="clustering_factor"):
            markov_column(10, 8, clustering_factor=0.0)

    def test_determinism(self):
        a = markov_column(5000, 8, clustering_factor=3.0, skew=1.0, seed=9)
        b = markov_column(5000, 8, clustering_factor=3.0, skew=1.0, seed=9)
        assert np.array_equal(a, b)
