"""Seed-pinned golden outputs of the Zipf column generator.

Every experiment, query set and saved baseline in this repo assumes
``zipf_column(seed=...)`` is a pure function of its arguments — across
sessions, not just within one process.  These tests pin exact draws so
that an accidental change to the sampling pipeline (rng algorithm,
decorrelation permutation, dtype) fails loudly instead of silently
shifting every figure.
"""

import hashlib

import numpy as np

from repro.workload import zipf_column

#: (num_records, cardinality, skew, seed) -> sha256[:16] of the int64
#: little-endian buffer.
GOLDEN_DIGESTS = {
    (1000, 50, 0.0, 0): "20cee380c825f39c",
    (1000, 50, 1.0, 0): "a570e97ff630545d",
    (500, 25, 2.0, 7): "befeca0fa3cc5806",
    (1000, 50, 1.0, 1): "eb3dcd35fb183839",
}


def digest(column: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(column, dtype="<i8").tobytes()
    ).hexdigest()[:16]


def test_pinned_column_digests():
    for (n, c, z, seed), expected in GOLDEN_DIGESTS.items():
        assert digest(zipf_column(n, c, z, seed=seed)) == expected, (n, c, z, seed)


def test_pinned_column_prefixes():
    assert zipf_column(1000, 50, 0.0, seed=0)[:8].tolist() == [
        41, 25, 12, 1, 43, 48, 31, 35,
    ]
    assert zipf_column(1000, 50, 1.0, seed=0)[:8].tolist() == [
        0, 24, 1, 1, 17, 8, 42, 49,
    ]


def test_seeds_differ_and_repeat():
    a = zipf_column(1000, 50, 1.0, seed=0)
    b = zipf_column(1000, 50, 1.0, seed=1)
    assert digest(a) != digest(b)
    assert np.array_equal(a, zipf_column(1000, 50, 1.0, seed=0))
