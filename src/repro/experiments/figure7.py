"""Figure 7: effect of data skew on compressed index space.

For n in {1, 2, 5} components and z in {0, 1, 2, 3}, the ratio of the
compressed n-component index size to the uncompressed one-component
equality-encoded index size, per basic encoding scheme (C = 50).
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.figure6 import build_point
from repro.experiments.runner import ExperimentResult
from repro.workload.datasets import DatasetSpec, generate_dataset

#: The component counts the paper plots in Figure 7.
FIGURE7_COMPONENTS = (1, 2, 5)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the Figure 7 skew sweep."""
    words = -(-config.num_records // 64)
    baseline_bytes = config.cardinality * words * 8

    result = ExperimentResult(
        experiment=(
            f"Figure 7: compressed space vs skew (C={config.cardinality}, "
            f"N={config.num_records})"
        ),
        headers=["n", "scheme", *[f"z={z:g}" for z in config.skews]],
    )
    for n in FIGURE7_COMPONENTS:
        for scheme_name in config.schemes:
            ratios: list[float] = []
            for skew in config.skews:
                values = generate_dataset(
                    DatasetSpec(
                        cardinality=config.cardinality,
                        skew=skew,
                        num_records=config.num_records,
                        seed=config.seed,
                    )
                )
                index = build_point(
                    values, config.cardinality, scheme_name, n, config.codec
                )
                ratios.append(index.size_bytes() / baseline_bytes)
            result.rows.append([n, scheme_name, *ratios])
    return result
