"""Figure 7: effect of data skew on compressed index space.

For n in {1, 2, 5} components and z in {0, 1, 2, 3}, the ratio of the
compressed n-component index size to the uncompressed one-component
equality-encoded index size, per basic encoding scheme (C = 50).
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.figure6 import build_point
from repro.experiments.runner import ExperimentResult
from repro.experiments.shared import cached_dataset
from repro.parallel import parallel_map
from repro.workload.datasets import DatasetSpec

#: The component counts the paper plots in Figure 7.
FIGURE7_COMPONENTS = (1, 2, 5)


def _point_ratio(task: tuple[ExperimentConfig, int, str, float]) -> float:
    """Compressed/baseline ratio for one (n, scheme, z); pool worker."""
    config, n, scheme_name, skew = task
    values = cached_dataset(
        DatasetSpec(
            cardinality=config.cardinality,
            skew=skew,
            num_records=config.num_records,
            seed=config.seed,
        )
    )
    words = -(-config.num_records // 64)
    baseline_bytes = config.cardinality * words * 8
    index = build_point(values, config.cardinality, scheme_name, n, config.codec)
    return index.size_bytes() / baseline_bytes


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the Figure 7 skew sweep."""
    result = ExperimentResult(
        experiment=(
            f"Figure 7: compressed space vs skew (C={config.cardinality}, "
            f"N={config.num_records})"
        ),
        headers=["n", "scheme", *[f"z={z:g}" for z in config.skews]],
    )
    series = [
        (n, scheme_name)
        for n in FIGURE7_COMPONENTS
        for scheme_name in config.schemes
    ]
    tasks = [
        (config, n, scheme_name, skew)
        for n, scheme_name in series
        for skew in config.skews
    ]
    ratios = parallel_map(_point_ratio, tasks, workers=config.workers)
    per_series = len(config.skews)
    for i, (n, scheme_name) in enumerate(series):
        result.rows.append(
            [n, scheme_name, *ratios[i * per_series : (i + 1) * per_series]]
        )
    return result
