"""Per-process memoization of regenerable experiment inputs.

Parallel experiment workers cannot cheaply ship datasets or query sets
across the process boundary, so they regenerate them from their
(deterministic, hashable) specs inside the worker.  The ``lru_cache``
wrappers here make that regeneration a once-per-process cost instead of
once-per-task: a pool worker that measures ten design points against
the same dataset generates it a single time, exactly like the serial
path did.

Callers must treat returned arrays and query lists as read-only — they
are shared by every task in the process.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.queries.generator import generate_query_set, paper_query_sets
from repro.queries.model import MembershipQuery
from repro.workload.datasets import DatasetSpec, generate_dataset


@lru_cache(maxsize=16)
def cached_dataset(spec: DatasetSpec) -> np.ndarray:
    """The column for ``spec``, generated at most once per process."""
    return generate_dataset(spec)


@lru_cache(maxsize=4)
def cached_query_sets(
    cardinality: int, queries_per_set: int, seed: int | None
) -> dict[str, list[MembershipQuery]]:
    """The paper's 8 query sets, generated at most once per process."""
    return {
        spec.label: generate_query_set(
            spec, cardinality, num_queries=queries_per_set, seed=seed
        )
        for spec in paper_query_sets()
    }
