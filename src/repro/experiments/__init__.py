"""Regeneration of every table and figure in the paper's evaluation.

One module per experiment; each exposes ``run(config) -> ExperimentResult``
whose ``render()`` prints the same rows/series the paper reports.  See
DESIGN.md for the per-experiment index and EXPERIMENTS.md for
paper-vs-measured records.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    EXPERIMENT_NAMES,
    ExperimentResult,
    run_all,
    run_experiment,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "run_all",
    "EXPERIMENT_NAMES",
]
