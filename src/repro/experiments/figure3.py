"""Figure 3: the space-time performance field.

The paper's Figure 3 illustrates optimality as Pareto-dominance in a
field of (space, expected scans) points.  This experiment materializes
that field for real designs: every encoding scheme at every component
count, against every query class, with expected scans computed by
exact enumeration of the class through the actual Section 6 rewriter
(so multi-component indexes are costed by the expressions they would
really execute).  Pareto-optimal points per class are marked — the
analytic counterpart of Theorems 3.1/4.1.
"""

from __future__ import annotations

from repro.analysis.pareto import pareto_frontier
from repro.encoding import ALL_SCHEME_NAMES, get_scheme
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.index.costmodel import index_expected_scans
from repro.index.decompose import optimal_bases
from repro.parallel import parallel_map

QUERY_CLASSES = ("EQ", "1RQ", "2RQ", "RQ")


def _design_entries(
    task: tuple[ExperimentConfig, str, int]
) -> list[tuple[str, str, int, float]]:
    """(class, label, space, scans) entries for one design; pool worker."""
    config, scheme_name, n = task
    cardinality = config.cardinality
    scheme = get_scheme(scheme_name)
    try:
        bases = optimal_bases(cardinality, n, scheme)
    except Exception:
        return []
    space = sum(scheme.num_bitmaps(b) for b in bases)
    label = f"{scheme_name}<{','.join(map(str, bases))}>"
    return [
        (
            query_class,
            label,
            space,
            index_expected_scans(cardinality, bases, scheme, query_class),
        )
        for query_class in QUERY_CLASSES
    ]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the performance field for all schemes and components."""
    cardinality = config.cardinality
    result = ExperimentResult(
        experiment=f"Figure 3: space-time performance field (C={cardinality})",
        headers=["class", "design", "space (bitmaps)", "E[scans]", "pareto"],
    )

    tasks = [
        (config, scheme_name, n)
        for scheme_name in ALL_SCHEME_NAMES
        for n in config.component_counts
    ]
    field: dict[str, list[tuple[str, int, float]]] = {q: [] for q in QUERY_CLASSES}
    for entries in parallel_map(_design_entries, tasks, workers=config.workers):
        for query_class, label, space, scans in entries:
            field[query_class].append((label, space, scans))

    for query_class in QUERY_CLASSES:
        points = field[query_class]
        frontier = {
            point[0]
            for point in pareto_frontier(
                points, space=lambda p: p[1], time=lambda p: p[2]
            )
        }
        for label, space, scans in sorted(points, key=lambda p: (p[1], p[2])):
            result.rows.append(
                [query_class, label, space, scans, "*" if label in frontier else ""]
            )
    result.notes.append(
        "expected scans computed by exact enumeration of each query class "
        "through the Section 6 rewriter (distinct bitmaps per query)"
    )
    return result
