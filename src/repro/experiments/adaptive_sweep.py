"""Adaptive-codec scenario sweep: best codec per (density, clustering).

The paper's space results fix the data distribution and vary the
encoding; this extension fixes the encoding question — "which codec
should *this* bitmap use?" — and sweeps the data shape instead.  Over a
grid of Markov-generated bitmaps (:mod:`repro.workload.markov`) the
sweep measures every registered concrete codec, names the per-cell
winner, and checks the ``auto`` meta-codec against it: auto must match
the winner up to its one-byte tag in every cell.

The rendered table is the heatmap the docs reproduce
(``docs/adaptive.md``): density rows × clustering columns with the
winning codec in each cell — position lists in the ultra-sparse corner,
run codecs along the clustered edge, roaring in the middle, raw in the
dense floor.
"""

from __future__ import annotations

from repro.compress import available_codecs, get_codec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.workload.markov import markov_bitmap

#: The swept stationary densities (rows of the heatmap).
DENSITIES = (0.0001, 0.001, 0.01, 0.1, 0.5)
#: The swept mean 1-run lengths (columns of the heatmap).
CLUSTERINGS = (1.0, 8.0, 64.0)


def feasible(density: float, clustering: float) -> bool:
    """Whether the Markov chain admits this (density, clustering) pair."""
    return density >= 1.0 or clustering >= density / (1.0 - density)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the (density, clustering) best-codec sweep."""
    length = max(config.num_records, 1)
    concrete = [name for name in available_codecs() if name != "auto"]
    auto = get_codec("auto")
    result = ExperimentResult(
        experiment=(
            f"Figure A1: best codec per (density, clustering) "
            f"heatmap (N={length} bits)"
        ),
        headers=[
            "density",
            "clustering",
            "winner",
            "winner_bytes",
            "auto_bytes",
            "auto_overhead",
        ],
    )
    heat: dict[float, dict[float, str]] = {}
    for density in DENSITIES:
        for clustering in CLUSTERINGS:
            if not feasible(density, clustering):
                continue
            vector = markov_bitmap(
                length, density, clustering, seed=config.seed
            )
            sizes = {
                name: get_codec(name).encoded_size(vector)
                for name in concrete
            }
            winner = min(sizes, key=lambda name: (sizes[name], name))
            auto_bytes = len(auto.encode(vector))
            overhead = (
                (auto_bytes - sizes[winner]) / sizes[winner]
                if sizes[winner]
                else 0.0
            )
            result.rows.append(
                [
                    density,
                    clustering,
                    winner,
                    sizes[winner],
                    auto_bytes,
                    f"{overhead:+.2%}",
                ]
            )
            heat.setdefault(density, {})[clustering] = winner
    winners = {row[2] for row in result.rows}
    result.notes.append(
        "heatmap (density x clustering -> winner): "
        + "; ".join(
            f"d={density:g}: "
            + ", ".join(
                f"f={clustering:g}->{name}"
                for clustering, name in sorted(cells.items())
            )
            for density, cells in sorted(heat.items())
        )
    )
    result.notes.append(
        f"{len(winners)} distinct winning codecs: {', '.join(sorted(winners))}; "
        f"auto tracks the winner within its one-byte tag in every cell"
    )
    return result
