"""Shared experiment configuration.

Defaults mirror the paper's settings (C = 50, Zipf z, the 8 query
sets); the record count is scaled down from the paper's 6 million to
keep the full suite laptop-fast — space *ratios* and scan counts are
unaffected and simulated times scale linearly (DESIGN.md §1).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.workload.datasets import DEFAULT_NUM_RECORDS


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    #: Attribute cardinality (the paper reports C = 50; C = 200 behaved
    #: the same).
    cardinality: int = 50
    #: Zipf skew for experiments at a fixed skew (Figures 6 and 8 use 1).
    skew: float = 1.0
    #: Records in the synthetic column.
    num_records: int = DEFAULT_NUM_RECORDS
    #: Deterministic seed for data and queries.
    seed: int = 0
    #: Component counts swept by the space plots.
    component_counts: tuple[int, ...] = (1, 2, 3, 4, 5)
    #: Compression codec for "compressed" indexes.
    codec: str = "bbc"
    #: Queries per query set (the paper uses 10).
    queries_per_set: int = 10
    #: Encoding schemes included (basic three by default, as plotted).
    schemes: tuple[str, ...] = ("E", "R", "I")
    #: Skew sweep for the skew-effect experiments (Figures 7 and 9).
    skews: tuple[float, ...] = (0.0, 1.0, 2.0, 3.0)
    #: Process count for regenerating independent data points
    #: (1 = serial, 0 = one per CPU; see :mod:`repro.parallel`).
    workers: int = 1

    def scaled(self, num_records: int) -> "ExperimentConfig":
        """A copy with a different record count (for quick benches)."""
        return dataclasses.replace(self, num_records=num_records)
