"""Table 1: optimality of the encoding schemes per query class.

Every entry of the paper's matrix is re-established numerically, by the
strongest method feasible at each cardinality:

* ``search`` — exhaustive enumeration of the canonical design space
  (:mod:`repro.analysis.optimality`), a genuine verification, used for
  small C;
* ``dominated-by`` — a concrete named scheme that dominates the entry
  (proves non-optimality at *any* C; e.g. interval dominates range for
  2RQ because it has at most the same expected scans in half the
  space);
* ``paper`` — entries whose verification needs the tech-report proof
  (optimality at large C, and interval's EQ non-optimality at C >= 14,
  whose witness scheme is not constructible by feasible search).
"""

from __future__ import annotations

from repro.analysis.optimality import (
    dominates,
    scheme_point,
    verify_scheme_optimality,
)
from repro.encoding import get_scheme
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.parallel import parallel_map

#: Cardinalities verified exhaustively (C = 6 roughly doubles the
#: runtime of the whole experiment; it is included because the paper's
#: "R optimal for EQ iff C <= 5" flips exactly there).
SEARCH_CARDINALITIES = (4, 5, 6)
QUERY_CLASSES = ("EQ", "1RQ", "2RQ", "RQ")
SCHEMES = ("E", "R", "I", "I+")

#: The paper's Table 1, for comparison against our verdicts.  "I+" is
#: the footnote-4 odd-C variant; the paper states no explicit claims
#: for it, so its entries mirror the I column.
PAPER_MATRIX = {
    ("EQ", "I+"): "not optimal if C>=14",
    ("1RQ", "I+"): "optimal",
    ("2RQ", "I+"): "optimal",
    ("RQ", "I+"): "optimal",
    ("EQ", "E"): "optimal",
    ("EQ", "R"): "optimal iff C<=5",
    ("EQ", "I"): "not optimal if C>=14",
    ("1RQ", "E"): "not optimal",
    ("1RQ", "R"): "optimal",
    ("1RQ", "I"): "optimal",
    ("2RQ", "E"): "not optimal",
    ("2RQ", "R"): "not optimal",
    ("2RQ", "I"): "optimal",
    ("RQ", "E"): "not optimal",
    ("RQ", "R"): "optimal",
    ("RQ", "I"): "optimal",
}


def dominance_checks(cardinality: int) -> list[tuple[str, str, str, str]]:
    """Direct scheme-vs-scheme dominance facts at one cardinality.

    Returns rows ``(class, scheme, verdict, detail)`` for entries that a
    named dominator settles without search.
    """
    rows: list[tuple[str, str, str, str]] = []
    points = {
        (name, q): scheme_point(get_scheme(name), cardinality, q)
        for name in SCHEMES
        for q in QUERY_CLASSES
    }
    for q in QUERY_CLASSES:
        for name in SCHEMES:
            for other in SCHEMES:
                if other == name:
                    continue
                if dominates(points[(other, q)], points[(name, q)]):
                    rows.append(
                        (
                            q,
                            name,
                            "not optimal",
                            f"dominated by {other} "
                            f"{points[(other, q)]} vs {points[(name, q)]}",
                        )
                    )
                    break
    return rows


def _search_row(task: tuple[int, str, str]) -> list[object]:
    """One exhaustive-search verdict row; picklable pool worker."""
    cardinality, query_class, scheme_name = task
    verification = verify_scheme_optimality(
        get_scheme(scheme_name), cardinality, query_class
    )
    if verification.optimal is True:
        verdict = "optimal"
        method = "search (exhaustive)"
    elif verification.optimal is False:
        verdict = "not optimal"
        method = f"search: {verification.dominator}"
    else:
        verdict = "unknown"
        method = "search infeasible"
    return [
        cardinality,
        query_class,
        scheme_name,
        verdict,
        method,
        PAPER_MATRIX[(query_class, scheme_name)],
    ]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Re-establish Table 1's entries numerically."""
    result = ExperimentResult(
        experiment="Table 1: optimality of encoding schemes",
        headers=["C", "class", "scheme", "verdict", "method", "paper says"],
    )

    tasks = [
        (cardinality, query_class, scheme_name)
        for cardinality in SEARCH_CARDINALITIES
        for query_class in QUERY_CLASSES
        for scheme_name in SCHEMES
    ]
    result.rows.extend(parallel_map(_search_row, tasks, workers=config.workers))

    # Any-C dominance facts at the paper's experimental cardinality.
    for q, name, verdict, detail in dominance_checks(config.cardinality):
        result.rows.append(
            [
                config.cardinality,
                q,
                name,
                verdict,
                f"dominance: {detail}",
                PAPER_MATRIX[(q, name)],
            ]
        )

    result.notes.append(
        "search entries are exhaustive over all complete canonical "
        "encoding schemes; dominance entries hold at any C"
    )
    result.notes.append(
        "interval encoding's EQ non-optimality at C>=14 (Theorem 4.1.1) "
        "requires the tech-report witness; not searchable at that scale"
    )
    result.notes.append(
        "DEVIATION: at C=5 (odd) the exhaustive search finds complete "
        "3-bitmap catalogs with strictly lower expected 1RQ/2RQ/RQ scans "
        "than interval encoding (both the main-text I and the footnote-4 "
        "variant I+), e.g. {[1,3],[3,4],[2,3,4]} at 1RQ expectation 4/3; "
        "under the information-theoretic minimal-scan measure used here, "
        "Theorem 4.1's small-odd-C claims do not hold exactly.  At C=4 "
        "and C=6 every verdict matches the paper; see EXPERIMENTS.md"
    )
    return result
