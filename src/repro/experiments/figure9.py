"""Figure 9: effect of data skew on the space-time tradeoff (C = 50).

For each z in {0, 1, 2, 3}, a scatter of design points (encoding x
components x compressed-or-not) with processing time averaged over all
queries in all 8 query sets.  The paper's headline: uncompressed
indexes win for low-to-medium skew, compressed ones for medium-to-high
skew, with interval encoding the overall winner at low skew.
"""

from __future__ import annotations

from repro.analysis.pareto import pareto_frontier
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure8 import measure_points
from repro.experiments.runner import ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the Figure 9 skew scatter."""
    result = ExperimentResult(
        experiment=(
            f"Figure 9: space-time vs skew (C={config.cardinality}, "
            f"N={config.num_records})"
        ),
        headers=["z", "design", "space KB", "avg time ms", "pareto"],
    )
    for skew in config.skews:
        points = measure_points(config, skew)
        frontier = set(
            id(p)
            for p in pareto_frontier(
                points,
                space=lambda p: p.space_bytes,
                time=lambda p: p.avg_time_ms,
            )
        )
        for point in sorted(points, key=lambda p: p.space_bytes):
            result.rows.append(
                [
                    f"{skew:g}",
                    point.label,
                    point.space_bytes / 1024,
                    point.avg_time_ms,
                    "*" if id(point) in frontier else "",
                ]
            )
    return result
