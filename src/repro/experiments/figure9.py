"""Figure 9: effect of data skew on the space-time tradeoff (C = 50).

For each z in {0, 1, 2, 3}, a scatter of design points (encoding x
components x compressed-or-not) with processing time averaged over all
queries in all 8 query sets.  The paper's headline: uncompressed
indexes win for low-to-medium skew, compressed ones for medium-to-high
skew, with interval encoding the overall winner at low skew.
"""

from __future__ import annotations

from repro.analysis.pareto import pareto_frontier
from repro.analysis.spacetime import measure_design
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure8 import design_specs
from repro.experiments.runner import ExperimentResult
from repro.queries.generator import generate_query_set, paper_query_sets
from repro.workload.datasets import DatasetSpec, generate_dataset


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the Figure 9 skew scatter."""
    query_sets = {
        spec.label: generate_query_set(
            spec,
            config.cardinality,
            num_queries=config.queries_per_set,
            seed=config.seed,
        )
        for spec in paper_query_sets()
    }

    result = ExperimentResult(
        experiment=(
            f"Figure 9: space-time vs skew (C={config.cardinality}, "
            f"N={config.num_records})"
        ),
        headers=["z", "design", "space KB", "avg time ms", "pareto"],
    )
    for skew in config.skews:
        values = generate_dataset(
            DatasetSpec(
                cardinality=config.cardinality,
                skew=skew,
                num_records=config.num_records,
                seed=config.seed,
            )
        )
        points = [
            measure_design(values, spec, query_sets)
            for spec in design_specs(config)
        ]
        frontier = set(
            id(p)
            for p in pareto_frontier(
                points,
                space=lambda p: p.space_bytes,
                time=lambda p: p.avg_time_ms,
            )
        )
        for point in sorted(points, key=lambda p: p.space_bytes):
            result.rows.append(
                [
                    f"{skew:g}",
                    point.label,
                    point.space_bytes / 1024,
                    point.avg_time_ms,
                    "*" if id(point) in frontier else "",
                ]
            )
    return result
