"""Figure 6: space-efficiency and compressibility of basic encodings.

Three series per encoding scheme, as a function of the number of index
components n (C = 50, z = 1):

(a) uncompressed n-component index size over the uncompressed
    one-component equality-encoded index size;
(b) compressed index size over its own uncompressed size;
(c) compressed index size over the uncompressed one-component
    equality-encoded index size.

For each (scheme, n) the paper plots the best index among all
n-component ones; this reproduction uses the base sequence minimizing
the stored bitmap count (:func:`repro.index.optimal_bases`), which is
the best uncompressed index and a near-best compressed one.
"""

from __future__ import annotations

from repro.encoding import get_scheme
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.experiments.shared import cached_dataset
from repro.index.bitmap_index import BitmapIndex, IndexSpec
from repro.index.decompose import optimal_bases
from repro.parallel import parallel_map
from repro.workload.datasets import DatasetSpec


def build_point(
    values, cardinality: int, scheme_name: str, num_components: int, codec: str
) -> BitmapIndex:
    """Build the best-space n-component index for one scheme."""
    bases = optimal_bases(cardinality, num_components, get_scheme(scheme_name))
    spec = IndexSpec(
        cardinality=cardinality,
        scheme=scheme_name,
        bases=bases,
        codec=codec,
    )
    return BitmapIndex.build(values, spec)


def _point_row(task: tuple[ExperimentConfig, str, int]) -> list[object]:
    """One table row for a (scheme, n) point; picklable pool worker."""
    config, scheme_name, n = task
    values = cached_dataset(
        DatasetSpec(
            cardinality=config.cardinality,
            skew=config.skew,
            num_records=config.num_records,
            seed=config.seed,
        )
    )
    words = -(-config.num_records // 64)
    baseline_bytes = config.cardinality * words * 8  # 1-component E, raw.
    index = build_point(values, config.cardinality, scheme_name, n, config.codec)
    uncompressed = index.uncompressed_bytes()
    compressed = index.size_bytes()
    return [
        scheme_name,
        n,
        "<" + ",".join(map(str, index.bases)) + ">",
        uncompressed / baseline_bytes,
        compressed / uncompressed,
        compressed / baseline_bytes,
    ]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the three Figure 6 ratio series."""
    result = ExperimentResult(
        experiment=(
            f"Figure 6: space ratios (C={config.cardinality}, "
            f"z={config.skew:g}, N={config.num_records})"
        ),
        headers=[
            "scheme",
            "n",
            "bases",
            "(a) uncomp/base",
            "(b) comp/uncomp",
            "(c) comp/base",
        ],
    )
    tasks = [
        (config, scheme_name, n)
        for scheme_name in config.schemes
        for n in config.component_counts
    ]
    result.rows.extend(parallel_map(_point_row, tasks, workers=config.workers))
    result.notes.append(
        "per (scheme, n) the space-optimal base sequence is used; the paper "
        "plots the best ratio over all n-component indexes"
    )
    return result
