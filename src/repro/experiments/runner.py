"""Experiment result container and dispatch."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro import obs as _obs
from repro.analysis.report import render_table
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig


@dataclass
class ExperimentResult:
    """Rows of one regenerated table or figure."""

    experiment: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """The experiment as an aligned text table (plus notes)."""
        parts = [render_table(self.headers, self.rows, title=self.experiment)]
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def column(self, header: str) -> list[object]:
        """All values of one column, by header name."""
        try:
            index = list(self.headers).index(header)
        except ValueError:
            raise ExperimentError(
                f"no column {header!r} in experiment {self.experiment}"
            ) from None
        return [row[index] for row in self.rows]


def run_experiment(
    name: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Run one experiment by id (``"figure6"``, ..., ``"table1"``)."""
    # Imports are local to avoid import cycles and to keep start-up fast.
    from repro.experiments import (
        adaptive_sweep,
        figure3,
        figure6,
        figure7,
        figure8,
        figure9,
        table1,
    )

    runners = {
        "figure3": figure3.run,
        "figure6": figure6.run,
        "figure7": figure7.run,
        "figure8": figure8.run,
        "figure9": figure9.run,
        "table1": table1.run,
        "adaptive_sweep": adaptive_sweep.run,
    }
    try:
        runner = runners[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {sorted(runners)}"
        ) from None
    config = config or ExperimentConfig()
    o = _obs.active()
    if o is None:
        return runner(config)
    # Per-figure roll-up: every query span and clock charge issued while
    # regenerating this figure aggregates into one "experiment" span.
    with o.span("experiment", name=name):
        result = runner(config)
    o.count("experiment.runs", 1, name=name)
    o.count("experiment.rows", len(result.rows), name=name)
    return result


EXPERIMENT_NAMES = (
    "table1",
    "figure3",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "adaptive_sweep",
)


def run_all(
    config: ExperimentConfig | None = None,
) -> dict[str, ExperimentResult]:
    """Run every experiment; returns results keyed by experiment id."""
    return {
        name: run_experiment(name, config) for name in EXPERIMENT_NAMES
    }
