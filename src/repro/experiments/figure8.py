"""Figure 8: space-time tradeoff per query set (C = 50, z = 1).

The paper's 3x3 grid (minus the overlap) shows, for each of the 8 query
sets (N_int x N_equ), a scatter of index design points: encoding scheme
x number of components x compressed-or-not, with space on the x axis
and average processing time on the y axis.

This reproduction emits one row per design point per query set with the
simulated processing time (cold buffer per query, as in the paper's
flushed file-system cache), and marks the per-set Pareto frontier.
"""

from __future__ import annotations

from repro.analysis.pareto import pareto_frontier
from repro.analysis.spacetime import SpaceTimePoint, measure_design
from repro.encoding import get_scheme
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.experiments.shared import cached_dataset, cached_query_sets
from repro.index.bitmap_index import BitmapIndex, IndexSpec
from repro.index.decompose import optimal_bases
from repro.parallel import parallel_map
from repro.workload.datasets import DatasetSpec


def design_specs(config: ExperimentConfig) -> list[IndexSpec]:
    """All design points: scheme x n x {raw, compressed codec}."""
    specs: list[IndexSpec] = []
    for scheme_name in config.schemes:
        scheme = get_scheme(scheme_name)
        for n in config.component_counts:
            bases = optimal_bases(config.cardinality, n, scheme)
            # dict.fromkeys dedupes when config.codec is itself "raw".
            for codec in dict.fromkeys(("raw", config.codec)):
                specs.append(
                    IndexSpec(
                        cardinality=config.cardinality,
                        scheme=scheme_name,
                        bases=bases,
                        codec=codec,
                    )
                )
    return specs


def _measure_point(
    task: tuple[ExperimentConfig, float, IndexSpec]
) -> SpaceTimePoint:
    """Measure one design point at one skew; picklable pool worker."""
    config, skew, spec = task
    values = cached_dataset(
        DatasetSpec(
            cardinality=config.cardinality,
            skew=skew,
            num_records=config.num_records,
            seed=config.seed,
        )
    )
    query_sets = cached_query_sets(
        config.cardinality, config.queries_per_set, config.seed
    )
    return measure_design(values, spec, query_sets)


def measure_points(
    config: ExperimentConfig, skew: float
) -> list[SpaceTimePoint]:
    """Measure every design point at ``skew``, fanned out per point."""
    tasks = [(config, skew, spec) for spec in design_specs(config)]
    return parallel_map(_measure_point, tasks, workers=config.workers)


def measure_all(
    config: ExperimentConfig,
) -> tuple[dict[str, list], list[SpaceTimePoint]]:
    """Query sets and measured points shared by Figures 8 and 9 helpers."""
    query_sets = cached_query_sets(
        config.cardinality, config.queries_per_set, config.seed
    )
    points = measure_points(config, config.skew)
    return query_sets, points


def run(config: ExperimentConfig) -> ExperimentResult:
    """Regenerate the Figure 8 scatter as per-set tables."""
    query_sets, points = measure_all(config)

    result = ExperimentResult(
        experiment=(
            f"Figure 8: space-time tradeoff per query set "
            f"(C={config.cardinality}, z={config.skew:g}, "
            f"N={config.num_records})"
        ),
        headers=[
            "query set",
            "design",
            "space KB",
            "avg time ms",
            "pareto",
        ],
    )
    for set_label in query_sets:
        frontier = set(
            id(p)
            for p in pareto_frontier(
                points,
                space=lambda p: p.space_bytes,
                time=lambda p, lbl=set_label: p.per_set_ms[lbl],
            )
        )
        for point in sorted(points, key=lambda p: p.space_bytes):
            result.rows.append(
                [
                    set_label,
                    point.label,
                    point.space_bytes / 1024,
                    point.per_set_ms[set_label],
                    "*" if id(point) in frontier else "",
                ]
            )
    result.notes.append(
        "times are simulated (seek+transfer+decompress+word ops) with a "
        "cold buffer per query, mirroring the paper's flushed FS cache"
    )
    return result
