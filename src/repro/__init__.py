"""Reproduction of Chan & Ioannidis, "An Efficient Bitmap Encoding
Scheme for Selection Queries" (SIGMOD 1999).

Public API highlights:

* :class:`~repro.bitmap.BitVector` — the bit-vector substrate;
* :func:`~repro.encoding.get_scheme` — the seven encoding schemes
  (E, R, I, ER, O, EI, EI*);
* :class:`~repro.index.BitmapIndex` — multi-component bitmap indexes
  with the Section 6 query rewrite/evaluation framework;
* :mod:`~repro.workload` / :mod:`~repro.queries` — the paper's synthetic
  data and query generators;
* :mod:`~repro.experiments` — regeneration of every table and figure;
* :mod:`~repro.obs` — unified observability (metrics + spans) across
  the storage, codec, engine and experiment layers;
* :class:`~repro.serve.QueryService` — concurrent query serving with
  shared-scan batching, result caching and admission control.
"""

from repro import obs
from repro._version import __version__
from repro.bitmap import BitVector
from repro.compress import available_codecs, get_codec
from repro.encoding import (
    ALL_SCHEME_NAMES,
    EncodingScheme,
    expected_scans,
    get_scheme,
    space_cost,
)
from repro.dictionary import AttributeIndex
from repro.index import BitmapIndex, CompressedQueryEngine, IndexSpec, load_index, recommend, save_index, validate_index
from repro.serve import QueryService, ServiceConfig
from repro.table import ColumnConfig, Table
from repro.queries import (
    IntervalQuery,
    MembershipQuery,
    generate_query_set,
    paper_query_sets,
)
from repro.workload import DatasetSpec, generate_dataset, zipf_column

__all__ = [
    "__version__",
    "BitVector",
    "get_codec",
    "available_codecs",
    "get_scheme",
    "EncodingScheme",
    "ALL_SCHEME_NAMES",
    "expected_scans",
    "space_cost",
    "BitmapIndex",
    "IndexSpec",
    "recommend",
    "save_index",
    "load_index",
    "validate_index",
    "CompressedQueryEngine",
    "QueryService",
    "ServiceConfig",
    "Table",
    "ColumnConfig",
    "AttributeIndex",
    "IntervalQuery",
    "MembershipQuery",
    "generate_query_set",
    "paper_query_sets",
    "DatasetSpec",
    "generate_dataset",
    "zipf_column",
    "obs",
]
