"""Zipf-distributed attribute columns.

The paper's data sets draw attribute values from a Zipf distribution
with skew parameter z ∈ {0, 1, 2, 3} (z = 0 is uniform) over a domain
of C consecutive integers, generated "such that there was no
correlation between the attribute values and their frequencies" — the
rank-to-value assignment is a random permutation rather than the
identity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def zipf_probabilities(cardinality: int, skew: float) -> np.ndarray:
    """Zipf rank probabilities ``p_r ∝ 1 / r^skew`` for r = 1..C.

    Computed in log space: the direct ``ranks**-skew`` underflows into
    denormals (and then exact zeros) once ``skew * log10(C)`` passes
    ~308, and normalizing those denormals loses further precision —
    enough for ``weights / weights.sum()`` to fail
    ``rng.choice``'s probability-sum check at high skew × large
    cardinality.  ``exp(-skew*log(ranks) - logsumexp)`` keeps full
    relative precision for every representable rank, and the final
    renormalization pins the sum to exactly 1.0.
    """
    if cardinality < 1:
        raise ReproError(f"cardinality must be >= 1, got {cardinality}")
    if skew < 0:
        raise ReproError(f"skew must be >= 0, got {skew}")
    log_weights = -skew * np.log(np.arange(1, cardinality + 1, dtype=np.float64))
    # logsumexp with the max (always rank 1's 0.0 here) factored out.
    shifted = np.exp(log_weights - log_weights.max())
    log_total = log_weights.max() + np.log(shifted.sum())
    probabilities = np.exp(log_weights - log_total)
    return probabilities / probabilities.sum()


def zipf_column(
    num_records: int,
    cardinality: int,
    skew: float,
    seed: int | None = 0,
    decorrelate: bool = True,
) -> np.ndarray:
    """A column of ``num_records`` attribute values in ``[0, cardinality)``.

    Frequencies follow the Zipf(skew) distribution; with
    ``decorrelate=True`` (the paper's setting) ranks are assigned to
    values through a seeded random permutation, so value order carries
    no frequency information.
    """
    if num_records < 0:
        raise ReproError(f"num_records must be >= 0, got {num_records}")
    rng = np.random.default_rng(seed)
    probabilities = zipf_probabilities(cardinality, skew)
    ranks = rng.choice(cardinality, size=num_records, p=probabilities)
    if not decorrelate:
        return ranks.astype(np.int64)
    permutation = rng.permutation(cardinality)
    return permutation[ranks].astype(np.int64)
