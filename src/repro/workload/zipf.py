"""Zipf-distributed attribute columns.

The paper's data sets draw attribute values from a Zipf distribution
with skew parameter z ∈ {0, 1, 2, 3} (z = 0 is uniform) over a domain
of C consecutive integers, generated "such that there was no
correlation between the attribute values and their frequencies" — the
rank-to-value assignment is a random permutation rather than the
identity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def zipf_probabilities(cardinality: int, skew: float) -> np.ndarray:
    """Zipf rank probabilities ``p_r ∝ 1 / r^skew`` for r = 1..C."""
    if cardinality < 1:
        raise ReproError(f"cardinality must be >= 1, got {cardinality}")
    if skew < 0:
        raise ReproError(f"skew must be >= 0, got {skew}")
    ranks = np.arange(1, cardinality + 1, dtype=np.float64)
    weights = ranks**-skew
    return weights / weights.sum()


def zipf_column(
    num_records: int,
    cardinality: int,
    skew: float,
    seed: int | None = 0,
    decorrelate: bool = True,
) -> np.ndarray:
    """A column of ``num_records`` attribute values in ``[0, cardinality)``.

    Frequencies follow the Zipf(skew) distribution; with
    ``decorrelate=True`` (the paper's setting) ranks are assigned to
    values through a seeded random permutation, so value order carries
    no frequency information.
    """
    if num_records < 0:
        raise ReproError(f"num_records must be >= 0, got {num_records}")
    rng = np.random.default_rng(seed)
    probabilities = zipf_probabilities(cardinality, skew)
    ranks = rng.choice(cardinality, size=num_records, p=probabilities)
    if not decorrelate:
        return ranks.astype(np.int64)
    permutation = rng.permutation(cardinality)
    return permutation[ranks].astype(np.int64)
