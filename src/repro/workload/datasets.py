"""Dataset specifications with deterministic seeds.

A :class:`DatasetSpec` captures the paper's data-set parameters
(attribute cardinality C and Zipf skew z) plus the record count, which
the paper fixes at 6+ million and this reproduction scales down by
default (the measured quantities — space ratios, scan counts, simulated
times — scale linearly or not at all with N; see DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.zipf import zipf_column

#: Record count used by the paper's experiments.
PAPER_NUM_RECORDS = 6_000_000
#: Default record count for this reproduction (laptop-friendly).
DEFAULT_NUM_RECORDS = 100_000


@dataclass(frozen=True)
class DatasetSpec:
    """Parameters of one synthetic data set."""

    cardinality: int
    skew: float
    num_records: int = DEFAULT_NUM_RECORDS
    seed: int = 0

    @property
    def label(self) -> str:
        """Short display label, e.g. ``"C=50,z=1"``."""
        return f"C={self.cardinality},z={self.skew:g}"


def generate_dataset(spec: DatasetSpec) -> np.ndarray:
    """Materialize the column described by ``spec`` (deterministic)."""
    return zipf_column(
        spec.num_records, spec.cardinality, spec.skew, seed=spec.seed
    )
