"""Synthetic data generation (Section 7, "Data Sets")."""

from repro.workload.datasets import DatasetSpec, generate_dataset
from repro.workload.markov import markov_bitmap, markov_column
from repro.workload.zipf import zipf_column, zipf_probabilities

__all__ = [
    "DatasetSpec",
    "generate_dataset",
    "markov_bitmap",
    "markov_column",
    "zipf_column",
    "zipf_probabilities",
]
