"""Two-state Markov clustered bitmaps and columns.

The paper's Zipf generator controls *how many* bits each bitmap sets,
but places them independently, so every bitmap of a given density looks
the same to a run-length codec.  Real columns are clustered — sorted
ingests, time-correlated values, the row reorderings of
:mod:`repro.index.reorder` — and clustering, not just density, decides
which codec wins.  The standard model for that (used throughout the
compressed-bitmap literature to benchmark WAH/EWAH/roaring against each
other) is a two-state Markov chain over the bit positions.

A chain with transition probabilities ``p01 = P(0 -> 1)`` and
``p10 = P(1 -> 0)`` has stationary density ``d = p01 / (p01 + p10)``
and geometric 1-run lengths with mean ``f = 1 / p10``.  We
parameterize by the pair the sweep actually varies:

* ``density`` ``d`` in [0, 1] — the fraction of set bits;
* ``clustering_factor`` ``f`` >= 1 — the mean 1-run length.  ``f = 1``
  with low ``d`` degenerates to independent (Bernoulli-like) bits;
  large ``f`` produces long runs at the same density.

from which ``p10 = 1/f`` and ``p01 = d / (f * (1 - d))``.  Since
``p01 <= 1`` requires ``f >= d / (1 - d)``, dense bitmaps cannot have
short runs — the generator validates that.

The implementation never walks bit-by-bit: it draws alternating
geometric run lengths in bulk, takes the cumulative sum, and scatters
the 1-runs through :func:`repro.compress.kernels.expand_ranges` — the
same vectorized shape as the codecs themselves.

:func:`markov_column` builds a whole attribute column the same way the
paper's Zipf columns are built, but with value *runs*: run lengths are
geometric with mean ``clustering_factor`` and run values are drawn
Zipf(skew), so each value's bitmap is Markov-clustered while the
per-value densities still follow the familiar skew.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap import BitVector
from repro.compress import kernels
from repro.errors import ReproError
from repro.workload.zipf import zipf_probabilities

_ONE = np.uint64(1)


def _validate(density: float, clustering_factor: float) -> None:
    if not 0.0 <= density <= 1.0:
        raise ReproError(f"density must be in [0, 1], got {density}")
    if clustering_factor < 1.0:
        raise ReproError(
            f"clustering_factor is a mean run length and must be >= 1, "
            f"got {clustering_factor}"
        )
    if density < 1.0 and clustering_factor < density / (1.0 - density):
        raise ReproError(
            f"clustering_factor {clustering_factor} is infeasible at "
            f"density {density}: the Markov chain needs "
            f"f >= d / (1 - d) = {density / (1.0 - density):.4g}"
        )


def markov_bitmap(
    length: int,
    density: float,
    clustering_factor: float = 1.0,
    seed: int | None = 0,
) -> BitVector:
    """A ``length``-bit vector from the two-state Markov chain.

    ``density`` is the stationary fraction of set bits and
    ``clustering_factor`` the mean 1-run length; the realized values
    fluctuate around them like any finite sample.
    """
    if length < 0:
        raise ReproError(f"length must be >= 0, got {length}")
    _validate(density, clustering_factor)
    if length == 0 or density == 0.0:
        return BitVector.zeros(length)
    if density == 1.0:
        return BitVector.ones(length)
    rng = np.random.default_rng(seed)
    p10 = 1.0 / clustering_factor
    p01 = density / (clustering_factor * (1.0 - density))
    # First state from the stationary distribution, then alternating
    # geometric run lengths until the cumulative length covers the
    # vector.  Mean run length is 1/p01 + 1/p10, so this loop almost
    # always finishes in one batch.
    first_is_one = bool(rng.random() < density)
    runs: list[np.ndarray] = []
    covered = 0.0
    mean_cycle = 1.0 / p01 + 1.0 / p10
    while covered < length:
        batch = max(16, int(2 * (length - covered) / mean_cycle) + 2)
        ones = rng.geometric(p10, size=batch).astype(np.int64)
        zeros = rng.geometric(p01, size=batch).astype(np.int64)
        # Each batch holds an even run count, so every batch starts
        # with the chain's first state type.
        pair = np.empty(2 * batch, dtype=np.int64)
        if first_is_one:
            pair[0::2], pair[1::2] = ones, zeros
        else:
            pair[0::2], pair[1::2] = zeros, ones
        runs.append(pair)
        covered += float(pair.sum())
    lengths = np.concatenate(runs)
    ends = np.cumsum(lengths)
    starts = ends - lengths
    keep = starts < length
    starts, ends = starts[keep], np.minimum(ends[keep], length)
    one_runs = slice(0, None, 2) if first_is_one else slice(1, None, 2)
    positions = kernels.expand_ranges(
        starts[one_runs], ends[one_runs] - starts[one_runs]
    )
    vector = BitVector(length)
    if positions.size:
        np.bitwise_or.at(
            vector.words, positions >> 6, _ONE << (positions & 63).astype(np.uint64)
        )
    return vector


def markov_column(
    num_records: int,
    cardinality: int,
    clustering_factor: float = 4.0,
    skew: float = 0.0,
    seed: int | None = 0,
) -> np.ndarray:
    """A clustered attribute column: geometric value runs, Zipf values.

    Run lengths are geometric with mean ``clustering_factor``; each
    run's value is an independent Zipf(``skew``) draw over
    ``[0, cardinality)`` (decorrelated the same way as
    :func:`repro.workload.zipf.zipf_column`).  Every value's bitmap is
    then Markov-clustered with roughly this clustering factor, so an
    index built over the column exercises the adaptive codec's whole
    decision surface.
    """
    if num_records < 0:
        raise ReproError(f"num_records must be >= 0, got {num_records}")
    if clustering_factor < 1.0:
        raise ReproError(
            f"clustering_factor is a mean run length and must be >= 1, "
            f"got {clustering_factor}"
        )
    probabilities = zipf_probabilities(cardinality, skew)
    rng = np.random.default_rng(seed)
    if num_records == 0:
        return np.zeros(0, dtype=np.int64)
    expected_runs = max(16, int(2 * num_records / clustering_factor) + 2)
    lengths_parts: list[np.ndarray] = []
    covered = 0
    while covered < num_records:
        part = rng.geometric(1.0 / clustering_factor, size=expected_runs)
        lengths_parts.append(part.astype(np.int64))
        covered += int(part.sum())
    lengths = np.concatenate(lengths_parts)
    cut = int(np.searchsorted(np.cumsum(lengths), num_records, side="left")) + 1
    lengths = lengths[:cut]
    ranks = rng.choice(cardinality, size=lengths.size, p=probabilities)
    permutation = rng.permutation(cardinality)
    column = np.repeat(permutation[ranks], lengths)[:num_records]
    return column.astype(np.int64)
