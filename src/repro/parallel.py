"""Process-based parallel mapping for independent experiment points.

Every figure/table in :mod:`repro.experiments` is a collection of
independent data points (one per scheme x component count x skew ...),
so regeneration parallelizes trivially.  This module provides the one
primitive they share: :func:`parallel_map`, an order-preserving map
that fans out over a :class:`~concurrent.futures.ProcessPoolExecutor`
when ``workers > 1`` and degrades to a plain serial loop otherwise —
the serial path stays allocation- and dependency-free so ``workers=1``
(the default everywhere) behaves exactly like the pre-parallel code.

Worker functions must be module-level (picklable) and take a single
task argument; per-process state (datasets, query sets) is recreated
inside the worker and memoized with ``functools.lru_cache`` so a pool
worker pays the regeneration cost once, not once per task.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request.

    ``None`` or ``0`` means "one per CPU"; negative counts are an
    error surfaced as ``ValueError`` so CLI typos fail loudly.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def parallel_map(
    fn: Callable[[T], R], tasks: Sequence[T], workers: int = 1
) -> list[R]:
    """Map ``fn`` over ``tasks``, preserving order.

    Serial when ``workers <= 1`` or there is at most one task;
    otherwise fans out over a process pool capped at ``len(tasks)``
    workers.  ``fn`` must be picklable (module-level) for the pool
    path.
    """
    tasks = list(tasks)
    workers = resolve_workers(workers)
    if workers <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(fn, tasks))
