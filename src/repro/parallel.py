"""Process-based parallelism: experiment fan-out and persistent workers.

Two primitives live here:

* :func:`parallel_map` — an order-preserving map that fans independent
  tasks (experiment data points) out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` when ``workers > 1``
  and degrades to a plain serial loop otherwise.  A worker process that
  dies mid-map surfaces as a typed
  :class:`~repro.errors.WorkerCrashed`, never a hang or a bare
  ``BrokenProcessPool``.
* :class:`ProcessWorker` — a *persistent* single worker process hosting
  long-lived state (a shard engine, in the serving tier) behind a
  request/response pipe.  Calls are serialized per worker; a dead
  worker raises :class:`~repro.errors.WorkerCrashed` and a hung worker
  raises :class:`~repro.errors.WorkerUnresponsive` after the call
  timeout — both typed, both prompt, so a supervisor can kill and
  rebuild.

Worker functions and handler factories must be module-level
(picklable); per-process state (datasets, indexes) is created inside
the worker.

Deterministic fault injection (mirroring :mod:`repro.storage.faults`):
a :class:`WorkerFault` plan shipped to the child at spawn time can kill
(``os._exit``) or hang the worker immediately before its Nth task, so
crash paths are tested at exact, reproducible points instead of with
racy signals.  :func:`injected_map_fault` installs the same plan for
:func:`parallel_map`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.errors import ParallelError, WorkerCrashed, WorkerUnresponsive

T = TypeVar("T")
R = TypeVar("R")

#: How long a worker is given to exit voluntarily at close before it is
#: terminated.
_CLOSE_GRACE_S = 5.0


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request.

    ``None`` or ``0`` means "one per CPU"; negative counts are an
    error surfaced as ``ValueError`` so CLI typos fail loudly.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


# ----------------------------------------------------------------------
# Deterministic worker faults
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerFault:
    """A deterministic fault plan executed *inside* a worker process.

    Immediately before the worker handles its ``at_task``-th task
    (0-based), it either dies without a word (``kind="crash"``, via
    ``os._exit`` — undetectable by the child's own exception handling,
    exactly like ``SIGKILL``) or stops answering (``kind="hang"``).
    The plan is picklable so it ships to the child at spawn time.
    """

    kind: str = "crash"
    at_task: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "hang"):
            raise ValueError(f"fault kind must be crash|hang, got {self.kind!r}")
        if self.at_task < 0:
            raise ValueError(f"at_task must be >= 0, got {self.at_task}")

    def trip(self, task_index: int) -> None:
        """Die or hang if ``task_index`` is the planned fault point."""
        if task_index != self.at_task:
            return
        if self.kind == "crash":
            os._exit(23)
        while True:  # hang: stop answering but stay alive
            time.sleep(60.0)


_map_fault: WorkerFault | None = None


@contextmanager
def injected_map_fault(fault: WorkerFault):
    """Install ``fault`` for :func:`parallel_map` calls in this block.

    The fault trips in whichever pool worker draws the Nth *task*
    (counted across the whole map, 0-based), making the crash point a
    property of the workload, not of scheduling.
    """
    global _map_fault
    previous = _map_fault
    _map_fault = fault
    try:
        yield fault
    finally:
        _map_fault = previous


class _FaultedTask:
    """Picklable wrapper running ``fn`` with a fault plan at task N."""

    def __init__(self, fn: Callable, fault: WorkerFault):
        self.fn = fn
        self.fault = fault

    def __call__(self, indexed_task: tuple[int, Any]):
        index, task = indexed_task
        self.fault.trip(index)
        return self.fn(task)


def parallel_map(
    fn: Callable[[T], R], tasks: Sequence[T], workers: int = 1
) -> list[R]:
    """Map ``fn`` over ``tasks``, preserving order.

    Serial when ``workers <= 1`` or there is at most one task;
    otherwise fans out over a process pool capped at ``len(tasks)``
    workers.  ``fn`` must be picklable (module-level) for the pool
    path.  A worker process dying mid-map raises
    :class:`~repro.errors.WorkerCrashed` (the pool's untyped
    ``BrokenProcessPool`` never escapes).
    """
    tasks = list(tasks)
    workers = resolve_workers(workers)
    if workers <= 1 or len(tasks) <= 1:
        if _map_fault is not None:
            faulted = _FaultedTask(fn, _map_fault)
            return [faulted(item) for item in enumerate(tasks)]
        return [fn(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        try:
            if _map_fault is not None:
                faulted = _FaultedTask(fn, _map_fault)
                return list(pool.map(faulted, list(enumerate(tasks))))
            return list(pool.map(fn, tasks))
        except BrokenProcessPool as exc:
            raise WorkerCrashed(
                f"a pool worker died while mapping {len(tasks)} tasks "
                f"(over {workers} workers); partial results discarded"
            ) from exc


# ----------------------------------------------------------------------
# Persistent workers
# ----------------------------------------------------------------------


_CLOSE = "__close__"
_PING = "__ping__"


def _worker_main(conn, factory, args, kwargs, fault: WorkerFault | None) -> None:
    """Child entry point: build the handler, answer calls until close.

    Protocol: parent sends ``(method, args, kwargs)``; child answers
    ``("ok", value)`` or ``("error", exception)``.  Exceptions raised by
    handler methods are pickled back and re-raised in the parent —
    *typed* library errors cross the process boundary intact.
    """
    try:
        handler = factory(*args, **kwargs)
    except BaseException as exc:  # surface build failures as an answer
        try:
            conn.send(("error", exc))
        finally:
            conn.close()
        return
    conn.send(("ok", "ready"))
    task_index = 0
    while True:
        try:
            method, call_args, call_kwargs = conn.recv()
        except EOFError:  # parent went away
            break
        if method == _CLOSE:
            close = getattr(handler, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:
                    pass
            conn.send(("ok", None))
            break
        if fault is not None and method != _PING:
            fault.trip(task_index)
        task_index += method != _PING
        try:
            if method == _PING:
                result: Any = "pong"
            else:
                result = getattr(handler, method)(*call_args, **call_kwargs)
            conn.send(("ok", result))
        except Exception as exc:
            conn.send(("error", exc))
    conn.close()


class ProcessWorker:
    """One long-lived worker process behind a request/response pipe.

    ``factory(*args, **kwargs)`` runs *in the child* and returns the
    handler object whose methods :meth:`call` invokes; it must be
    picklable (module-level).  Calls are strictly serialized — one
    outstanding request per worker — which is what makes the reply
    stream unambiguous.  The spawn blocks until the handler is built,
    so a factory that raises surfaces the error at construction time.

    ``fault`` ships a deterministic :class:`WorkerFault` to the child
    for chaos testing.
    """

    def __init__(
        self,
        factory: Callable,
        args: tuple = (),
        kwargs: dict | None = None,
        name: str = "worker",
        fault: WorkerFault | None = None,
        build_timeout_s: float = 60.0,
    ):
        self.name = name
        ctx = multiprocessing.get_context()
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_worker_main,
            args=(child_conn, factory, args, kwargs or {}, fault),
            name=name,
            daemon=True,
        )
        self._process.start()
        child_conn.close()  # the child owns its end now
        self._closed = False
        self._receive(build_timeout_s)  # wait for "ready" / build error

    @property
    def alive(self) -> bool:
        """True while the worker process is running."""
        return self._process.is_alive()

    @property
    def pid(self) -> int | None:
        """The worker's OS pid (for tests that kill it externally)."""
        return self._process.pid

    def call(self, method: str, *args, timeout: float | None = None, **kwargs):
        """Invoke ``handler.method(*args, **kwargs)`` in the worker.

        Raises :class:`~repro.errors.WorkerCrashed` if the worker is (or
        dies) mid-call, :class:`~repro.errors.WorkerUnresponsive` if no
        answer arrives within ``timeout`` seconds, and re-raises any
        exception the handler method raised.
        """
        if self._closed:
            raise ParallelError(f"worker {self.name!r} is closed")
        if not self._process.is_alive():
            raise WorkerCrashed(
                f"worker {self.name!r} (pid {self.pid}) is dead"
            )
        try:
            self._conn.send((method, args, kwargs))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(
                f"worker {self.name!r} (pid {self.pid}) died before "
                f"accepting {method!r}"
            ) from exc
        return self._receive(timeout, method)

    def ping(self, timeout: float | None = 5.0) -> bool:
        """Round-trip liveness probe (never counts as a task)."""
        return self.call(_PING, timeout=timeout) == "pong"

    def _receive(self, timeout: float | None, method: str = "spawn"):
        if timeout is not None and not self._conn.poll(timeout):
            raise WorkerUnresponsive(
                f"worker {self.name!r} (pid {self.pid}) gave no answer to "
                f"{method!r} within {timeout:g}s"
            )
        try:
            status, value = self._conn.recv()
        except (EOFError, ConnectionResetError, OSError) as exc:
            raise WorkerCrashed(
                f"worker {self.name!r} (pid {self.pid}) died during "
                f"{method!r}"
            ) from exc
        if status == "error":
            raise value
        return value

    def kill(self) -> None:
        """Terminate the worker immediately (chaos / hang recovery)."""
        if self._process.is_alive():
            self._process.kill()
        self._process.join(_CLOSE_GRACE_S)

    def close(self) -> None:
        """Shut the worker down; idempotent, terminates on a hang."""
        if self._closed:
            return
        self._closed = True
        if self._process.is_alive():
            try:
                self._conn.send((_CLOSE, (), {}))
                if self._conn.poll(_CLOSE_GRACE_S):
                    self._conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
        self._process.join(_CLOSE_GRACE_S)
        if self._process.is_alive():
            self._process.kill()
            self._process.join(_CLOSE_GRACE_S)
        self._conn.close()
