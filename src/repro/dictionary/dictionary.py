"""Order-preserving value dictionaries.

A :class:`ValueDictionary` maps the distinct values of a column to
dense codes ``0..C-1`` in sort order, so that raw-value range queries
translate to code range queries exactly (the property every encoding
scheme in the paper relies on).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


class ValueDictionary:
    """Dense, order-preserving coding of a column's distinct values."""

    def __init__(self, sorted_values: np.ndarray):
        if sorted_values.ndim != 1:
            raise ReproError("dictionary values must be one-dimensional")
        self._values = sorted_values

    @classmethod
    def from_column(cls, values: np.ndarray) -> "ValueDictionary":
        """Build from a raw column (distinct values, sorted)."""
        arr = np.asarray(values)
        if arr.size == 0:
            raise ReproError("cannot build a dictionary from an empty column")
        return cls(np.unique(arr))

    # ------------------------------------------------------------------

    @property
    def cardinality(self) -> int:
        """Number of distinct values (the bitmap-index domain size)."""
        return int(self._values.shape[0])

    @property
    def values(self) -> np.ndarray:
        """The distinct values in code order."""
        return self._values

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Codes of raw values; raises on values absent from the dictionary."""
        arr = np.asarray(values)
        codes = np.searchsorted(self._values, arr)
        codes = np.clip(codes, 0, self.cardinality - 1)
        if arr.size and not np.array_equal(self._values[codes], arr):
            missing = arr[self._values[codes] != arr]
            raise ReproError(
                f"values not in dictionary: {np.unique(missing)[:5]!r}"
            )
        return codes.astype(np.int64)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Raw values of codes."""
        codes = np.asarray(codes)
        if codes.size and (codes.min() < 0 or codes.max() >= self.cardinality):
            raise ReproError(
                f"codes outside [0, {self.cardinality})"
            )
        return self._values[codes]

    def contains(self, value) -> bool:
        """True iff ``value`` is in the dictionary."""
        position = int(np.searchsorted(self._values, value))
        return position < self.cardinality and self._values[position] == value

    def code_range(self, low, high) -> tuple[int, int] | None:
        """Code interval for the raw-value range ``low <= A <= high``.

        The endpoints need not be dictionary members: the returned code
        interval covers exactly the dictionary values falling inside
        the raw range.  Returns None when the range selects nothing.
        """
        if low > high:
            raise ReproError(f"empty raw range [{low!r}, {high!r}]")
        code_low = int(np.searchsorted(self._values, low, side="left"))
        code_high = int(np.searchsorted(self._values, high, side="right")) - 1
        if code_low > code_high:
            return None
        return code_low, code_high
