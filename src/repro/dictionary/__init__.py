"""Indexing arbitrary ordered domains (extension).

The paper assumes "the domain of A is a set of consecutive integers
from 0 to C-1".  Real attributes are strings, floats or sparse
integers; production bitmap indexes put a translation layer in front:

* :class:`~repro.dictionary.dictionary.ValueDictionary` — an
  order-preserving dense coding of the distinct values (exact, for
  attributes whose cardinality is acceptable);
* :class:`~repro.dictionary.binning.Binner` — equi-width or equi-depth
  binning for continuous/high-cardinality attributes, with the classic
  candidate-recheck of boundary bins so answers stay exact;
* :class:`~repro.dictionary.attribute.AttributeIndex` — the facade that
  picks a strategy and answers raw-value range/membership queries
  through a :class:`~repro.index.BitmapIndex` over the codes.
"""

from repro.dictionary.attribute import AttributeIndex
from repro.dictionary.binning import Binner
from repro.dictionary.dictionary import ValueDictionary

__all__ = ["ValueDictionary", "Binner", "AttributeIndex"]
