"""Attribute indexes over arbitrary ordered domains.

:class:`AttributeIndex` is the facade that makes the paper's machinery
usable on real columns: it either dictionary-encodes the distinct
values (exact translation) or bins them (with candidate rechecks), then
builds a :class:`~repro.index.BitmapIndex` over the codes and answers
raw-value queries.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap import BitVector
from repro.dictionary.binning import Binner
from repro.dictionary.dictionary import ValueDictionary
from repro.errors import QueryError, ReproError
from repro.index.bitmap_index import BitmapIndex, IndexSpec
from repro.queries.model import IntervalQuery, MembershipQuery


class AttributeIndex:
    """A bitmap index over a raw column of any ordered dtype.

    Parameters
    ----------
    values:
        The raw column (ints, floats or strings; any numpy-sortable
        dtype).
    scheme, num_components, codec:
        Index design, as in :class:`~repro.index.IndexSpec`.
    max_cardinality:
        Distinct-value budget: at or below it the column is
        dictionary-encoded (exact); above it, numeric columns are
        binned into ``num_bins`` bins with candidate rechecks.
    num_bins:
        Bin count for the binned strategy.
    binning:
        ``"equi-depth"`` (default; balances bin populations) or
        ``"equi-width"``.
    """

    def __init__(
        self,
        values: np.ndarray,
        scheme: str = "I",
        num_components: int = 1,
        codec: str = "raw",
        max_cardinality: int = 1024,
        num_bins: int = 64,
        binning: str = "equi-depth",
    ):
        raw = np.asarray(values)
        if raw.size == 0:
            raise ReproError("cannot index an empty column")
        self._raw = raw

        distinct = np.unique(raw)
        if distinct.shape[0] <= max_cardinality:
            self._dictionary: ValueDictionary | None = ValueDictionary(distinct)
            self._binner: Binner | None = None
            codes = self._dictionary.encode(raw)
            cardinality = self._dictionary.cardinality
        else:
            if not np.issubdtype(raw.dtype, np.number):
                raise ReproError(
                    f"column has {distinct.shape[0]} distinct non-numeric "
                    f"values; raise max_cardinality or pre-bin"
                )
            self._dictionary = None
            if binning == "equi-depth":
                self._binner = Binner.equi_depth(raw, num_bins)
            elif binning == "equi-width":
                self._binner = Binner.equi_width(
                    float(raw.min()), float(raw.max()), num_bins
                )
            else:
                raise ReproError(f"unknown binning {binning!r}")
            codes = self._binner.encode(raw)
            cardinality = self._binner.num_bins

        self.index = BitmapIndex.build(
            codes,
            IndexSpec(
                cardinality=cardinality,
                scheme=scheme,
                num_components=num_components,
                codec=codec,
            ),
        )
        self._engine = self.index.engine()

    # ------------------------------------------------------------------

    @property
    def is_exact(self) -> bool:
        """True when dictionary-encoded (no candidate rechecks ever)."""
        return self._dictionary is not None

    @property
    def num_records(self) -> int:
        """Records in the indexed column."""
        return int(self._raw.size)

    def size_bytes(self) -> int:
        """Stored size of the underlying bitmap index."""
        return self.index.size_bytes()

    # ------------------------------------------------------------------

    def range_query(self, low, high) -> BitVector:
        """Records with ``low <= A <= high`` over raw values (exact)."""
        if low > high:
            raise QueryError(f"empty raw range [{low!r}, {high!r}]")
        if self._dictionary is not None:
            code_range = self._dictionary.code_range(low, high)
            if code_range is None:
                return BitVector.zeros(self.num_records)
            query = IntervalQuery(
                code_range[0], code_range[1], self._dictionary.cardinality
            )
            return self._engine.execute(query).bitmap

        assert self._binner is not None
        inner, edges = self._binner.range_plan(float(low), float(high))
        answer = BitVector.zeros(self.num_records)
        if inner is not None:
            query = IntervalQuery(inner[0], inner[1], self._binner.num_bins)
            answer |= self._engine.execute(query).bitmap
        for edge_bin in edges:
            candidates = self._engine.execute(
                IntervalQuery(edge_bin, edge_bin, self._binner.num_bins)
            ).bitmap
            # Candidate recheck against the raw column.
            ids = candidates.to_indices()
            qualifying = ids[
                (self._raw[ids] >= low) & (self._raw[ids] <= high)
            ]
            answer |= BitVector.from_indices(self.num_records, qualifying)
        return answer

    def equality_query(self, value) -> BitVector:
        """Records with ``A == value`` over raw values (exact)."""
        if self._dictionary is not None:
            if not self._dictionary.contains(value):
                return BitVector.zeros(self.num_records)
            code = int(self._dictionary.encode(np.asarray([value]))[0])
            query = IntervalQuery(code, code, self._dictionary.cardinality)
            return self._engine.execute(query).bitmap
        return self.range_query(value, value)

    def membership_query(self, values) -> BitVector:
        """Records with ``A IN values`` over raw values (exact)."""
        if self._dictionary is not None:
            codes = {
                int(self._dictionary.encode(np.asarray([v]))[0])
                for v in values
                if self._dictionary.contains(v)
            }
            if not codes:
                return BitVector.zeros(self.num_records)
            query = MembershipQuery(
                frozenset(codes), self._dictionary.cardinality
            )
            return self._engine.execute(query).bitmap
        answer = BitVector.zeros(self.num_records)
        for value in values:
            answer |= self.range_query(value, value)
        return answer

    def __repr__(self) -> str:
        strategy = "dictionary" if self.is_exact else "binned"
        return (
            f"AttributeIndex({strategy}, records={self.num_records}, "
            f"{self.index.spec.label})"
        )
