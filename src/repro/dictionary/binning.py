"""Binning for continuous / high-cardinality attributes.

When the distinct-value count is too large for a per-value bitmap
index, values are grouped into bins and the index is built over bin
codes.  A raw-value range query then decomposes into

* *inner bins* — bins entirely inside the range: their records qualify
  without looking at the data;
* *edge bins* — at most two bins straddling a range endpoint: their
  records are *candidates* and must be rechecked against the raw
  column (the classic candidate-check of binned bitmap indexes).

Two bin layouts are provided: equi-width (uniform value intervals) and
equi-depth (quantile boundaries, which balance bin populations under
skew and so minimize expected candidate rechecks).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


class Binner:
    """Maps raw values to bin codes via sorted bin boundaries.

    ``boundaries`` holds the *right-open* upper edges of bins 0..B-2;
    bin B-1 is everything above the last boundary.  Values equal to a
    boundary fall into the bin above it (searchsorted ``right``
    convention below keeps bins disjoint and exhaustive).
    """

    def __init__(self, boundaries: np.ndarray):
        arr = np.asarray(boundaries, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ReproError("binner needs a non-empty 1-d boundary array")
        if np.any(np.diff(arr) <= 0):
            raise ReproError("bin boundaries must be strictly increasing")
        self._boundaries = arr

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def equi_width(cls, low: float, high: float, num_bins: int) -> "Binner":
        """Uniform bins over ``[low, high]``."""
        if num_bins < 2:
            raise ReproError(f"need >= 2 bins, got {num_bins}")
        if not low < high:
            raise ReproError(f"need low < high, got [{low}, {high}]")
        return cls(np.linspace(low, high, num_bins + 1)[1:-1])

    @classmethod
    def equi_depth(cls, values: np.ndarray, num_bins: int) -> "Binner":
        """Quantile bins over a sample of the column."""
        if num_bins < 2:
            raise ReproError(f"need >= 2 bins, got {num_bins}")
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            raise ReproError("cannot build equi-depth bins from no data")
        quantiles = np.quantile(arr, np.linspace(0, 1, num_bins + 1)[1:-1])
        # Duplicate quantiles (heavy skew) collapse; the resulting bin
        # count may be below the request but stays >= 2.
        return cls(np.unique(quantiles))

    # ------------------------------------------------------------------

    @property
    def num_bins(self) -> int:
        """Number of bins (the bitmap-index domain size)."""
        return int(self._boundaries.shape[0]) + 1

    @property
    def boundaries(self) -> np.ndarray:
        """The bin upper edges (right-open)."""
        return self._boundaries

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Bin code of each raw value."""
        return np.searchsorted(
            self._boundaries, np.asarray(values, dtype=np.float64), side="right"
        ).astype(np.int64)

    def range_plan(self, low: float, high: float) -> tuple[
        tuple[int, int] | None, list[int]
    ]:
        """Decompose ``low <= A <= high`` into inner bins and edge bins.

        Returns ``(inner, edges)``: ``inner`` is an inclusive bin-code
        interval whose bins lie entirely inside the raw range (or None),
        and ``edges`` lists the (at most two) bins that straddle an
        endpoint and require a candidate recheck.
        """
        if low > high:
            raise ReproError(f"empty raw range [{low!r}, {high!r}]")
        first = int(np.searchsorted(self._boundaries, low, side="right"))
        last = int(np.searchsorted(self._boundaries, high, side="right"))

        # A bin is entirely inside iff its full value interval is within
        # [low, high].
        def bin_low(code: int) -> float:
            return -np.inf if code == 0 else float(self._boundaries[code - 1])

        def bin_high(code: int) -> float:
            if code == self.num_bins - 1:
                return np.inf
            return float(self._boundaries[code])

        # Bin c holds [bin_low(c), bin_high(c)); it is entirely inside
        # the query range iff bin_low(c) >= low and bin_high(c) <= high
        # (the upper edge is exclusive, so equality there is fine).
        low_straddles = bin_low(first) < low
        high_straddles = bin_high(last) > high

        if first == last:
            if low_straddles or high_straddles:
                return None, [first]
            return (first, last), []

        edges: list[int] = []
        inner_first, inner_last = first, last
        if low_straddles:
            edges.append(first)
            inner_first += 1
        if high_straddles:
            edges.append(last)
            inner_last -= 1
        if inner_first > inner_last:
            return None, edges
        return (inner_first, inner_last), edges
