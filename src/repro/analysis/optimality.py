"""Numerical verification of the paper's optimality theorems.

Section 3 defines a scheme S as optimal for (C, Q) iff no *complete*
scheme S' has ``Time(S',C,Q) <= Time(S,C,Q)`` and
``Space(S',C) <= Space(S,C)`` with one inequality strict.  Both
quantities are exactly computable, so for small C the theorems can be
*verified* (not merely illustrated) by exhaustive search over the
design space:

* a scheme is a set of stored bitmaps == a set of subsets of [0, C);
* complementing any bitmap changes neither its scan cost nor the atom
  partition, so WLOG every bitmap excludes value 0 (canonical form) —
  this halves each choice and the empty set is excluded as useless,
  leaving ``2**(C-1) - 1`` candidate bitmaps;
* completeness == all value signatures distinct;
* the scan cost of a query is the size of the smallest sub-catalog
  whose signature partition separates the answer set (see
  :mod:`repro.expr.planner`); expected time averages this over the
  query class.

The search is exponential (that is inherent — the design space is);
:func:`search_dominating_catalog` therefore enforces a cardinality
guard and supports early termination, which suffices to confirm every
small-C statement of Theorems 3.1 and 4.1.  Statements about large C
(e.g. interval encoding's non-optimality for EQ at C >= 14) are checked
by direct scheme-vs-scheme dominance where possible and otherwise
reported as search-infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.encoding.base import EncodingScheme
from repro.encoding.costmodel import expected_scans, query_class_queries, space_cost
from repro.errors import ExperimentError

#: Exhaustive search beyond this cardinality would enumerate more than
#: ~10^6 catalogs; callers must opt in via ``max_cardinality``.
DEFAULT_MAX_CARDINALITY = 6


def scheme_point(
    scheme: EncodingScheme, cardinality: int, query_class: str
) -> tuple[int, float]:
    """(space, expected scans) of a scheme for a class — its field point."""
    return (
        space_cost(scheme, cardinality),
        expected_scans(scheme, cardinality, query_class),
    )


def dominates(
    point_a: tuple[float, float], point_b: tuple[float, float]
) -> bool:
    """True iff field point a dominates b (Section 3's definition)."""
    (space_a, time_a), (space_b, time_b) = point_a, point_b
    return (
        space_a <= space_b
        and time_a <= time_b
        and (space_a < space_b or time_a < time_b)
    )


@dataclass(frozen=True)
class OptimalityResult:
    """Outcome of an optimality verification."""

    scheme: str
    cardinality: int
    query_class: str
    #: True = verified optimal (exhaustive search found no dominator);
    #: False = a dominator was found; None = search infeasible.
    optimal: bool | None
    #: Human-readable dominator description when optimal is False.
    dominator: str | None = None


# ---------------------------------------------------------------------------
# Catalog machinery over integer bitmasks
# ---------------------------------------------------------------------------


def _candidate_masks(cardinality: int) -> list[int]:
    """Canonical candidate bitmaps: non-empty subsets excluding value 0."""
    # Masks over values 1..C-1, i.e. even integers' bit 0 stays clear.
    return [mask << 1 for mask in range(1, 1 << (cardinality - 1))]


def _signatures(catalog: tuple[int, ...], cardinality: int) -> list[int]:
    """Per-value membership signature, packed as an int per value."""
    return [
        sum(((mask >> value) & 1) << i for i, mask in enumerate(catalog))
        for value in range(cardinality)
    ]


def _is_complete(catalog: tuple[int, ...], cardinality: int) -> bool:
    signatures = _signatures(catalog, cardinality)
    return len(set(signatures)) == cardinality


def _min_scans(
    catalog: tuple[int, ...], cardinality: int, target_mask: int
) -> int:
    """Smallest sub-catalog separating the target from its complement."""
    full = (1 << cardinality) - 1
    if target_mask in (0, full):
        return 0
    size = len(catalog)
    inside = [v for v in range(cardinality) if (target_mask >> v) & 1]
    outside = [v for v in range(cardinality) if not (target_mask >> v) & 1]
    for k in range(1, size + 1):
        for subset in combinations(catalog, k):
            sig_in = {
                tuple((m >> v) & 1 for m in subset) for v in inside
            }
            sig_out = {
                tuple((m >> v) & 1 for m in subset) for v in outside
            }
            if not sig_in & sig_out:
                return k
    raise ExperimentError("complete catalog failed to express a target")


def _expected_scans_catalog(
    catalog: tuple[int, ...],
    cardinality: int,
    query_class: str,
    abort_above: float | None = None,
) -> float | None:
    """Expected min-scan cost over a query class; None if it exceeds
    ``abort_above`` early (pruning)."""
    queries = list(query_class_queries(cardinality, query_class))
    if not queries:
        return 0.0
    budget = None if abort_above is None else abort_above * len(queries)
    total = 0.0
    for i, (low, high) in enumerate(queries):
        target = ((1 << (high - low + 1)) - 1) << low
        total += _min_scans(catalog, cardinality, target)
        if budget is not None:
            # Remaining queries cost at least 1 scan each (none of the
            # enumerated classes contain trivial queries).
            remaining = len(queries) - i - 1
            if total + remaining > budget + 1e-9:
                return None
    return total / len(queries)


def search_dominating_catalog(
    cardinality: int,
    query_class: str,
    space_budget: int,
    time_budget: float,
    max_cardinality: int = DEFAULT_MAX_CARDINALITY,
) -> tuple[tuple[int, ...], float] | None:
    """Search for a complete catalog dominating ``(space_budget, time_budget)``.

    Returns ``(catalog masks, expected scans)`` for the first dominator
    found, or None when the exhaustive search finds none (a *proof* of
    optimality for this C and class).  Raises for cardinalities past
    ``max_cardinality`` instead of silently running forever.
    """
    if cardinality > max_cardinality:
        raise ExperimentError(
            f"exhaustive optimality search for C={cardinality} exceeds the "
            f"guard (max_cardinality={max_cardinality}); the design space "
            f"has {(1 << (cardinality - 1)) - 1} canonical bitmaps"
        )
    if cardinality < 2:
        return None
    candidates = _candidate_masks(cardinality)
    max_k = min(space_budget, len(candidates))
    for k in range(1, max_k + 1):
        # With k == space_budget, only strictly better time dominates.
        need_strict_time = k == space_budget
        for catalog in combinations(candidates, k):
            if not _is_complete(catalog, cardinality):
                continue
            limit = time_budget if not need_strict_time else time_budget
            expected = _expected_scans_catalog(
                catalog, cardinality, query_class, abort_above=limit
            )
            if expected is None:
                continue
            if need_strict_time:
                if expected < time_budget - 1e-9:
                    return catalog, expected
            else:
                if expected <= time_budget + 1e-9:
                    return catalog, expected
    return None


def verify_scheme_optimality(
    scheme: EncodingScheme,
    cardinality: int,
    query_class: str,
    max_cardinality: int = DEFAULT_MAX_CARDINALITY,
) -> OptimalityResult:
    """Exhaustively verify whether a scheme is optimal for (C, Q)."""
    space, time = scheme_point(scheme, cardinality, query_class)
    try:
        found = search_dominating_catalog(
            cardinality, query_class, space, time, max_cardinality
        )
    except ExperimentError:
        return OptimalityResult(
            scheme.name, cardinality, query_class, optimal=None
        )
    if found is None:
        return OptimalityResult(
            scheme.name, cardinality, query_class, optimal=True
        )
    catalog, expected = found
    sets = [
        sorted(v for v in range(cardinality) if (mask >> v) & 1)
        for mask in catalog
    ]
    return OptimalityResult(
        scheme.name,
        cardinality,
        query_class,
        optimal=False,
        dominator=(
            f"{len(catalog)} bitmaps {sets} with expected scans "
            f"{expected:.3f} (vs {time:.3f} at space {space})"
        ),
    )
