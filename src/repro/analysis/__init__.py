"""Analysis: space-time measurement, Pareto frontiers, optimality search."""

from repro.analysis.optimality import (
    OptimalityResult,
    dominates,
    scheme_point,
    search_dominating_catalog,
    verify_scheme_optimality,
)
from repro.analysis.pareto import pareto_frontier
from repro.analysis.render_index import render_index
from repro.analysis.report import render_series, render_table
from repro.analysis.spacetime import SpaceTimePoint, measure_design
from repro.analysis.theorems import TheoremCheck, all_theorem_checks

__all__ = [
    "SpaceTimePoint",
    "measure_design",
    "pareto_frontier",
    "render_table",
    "render_series",
    "render_index",
    "scheme_point",
    "dominates",
    "search_dominating_catalog",
    "verify_scheme_optimality",
    "OptimalityResult",
    "TheoremCheck",
    "all_theorem_checks",
]
