"""Rendering bitmap indexes in the paper's figure layout.

Figures 1, 2 and 5 of the paper draw an index as a bit matrix: one row
per record, one column per bitmap, most significant component and
highest slot leftmost.  :func:`render_index` reproduces that layout as
text, which the quickstart example and the documentation use to show
indexes exactly as the paper does.
"""

from __future__ import annotations

from repro.index.bitmap_index import BitmapIndex


def _slot_sort_key(slot):
    """Descending display order: highest slot leftmost, as in Figure 1."""
    if isinstance(slot, tuple):
        family, value = slot
        return (1, str(family), value)
    return (0, "", slot)


def _slot_label(scheme_name: str, component: int, slot, num_components: int) -> str:
    if isinstance(slot, tuple):
        family, value = slot
        label = f"{family}^{value}"
    else:
        label = f"{scheme_name}^{slot}"
    if num_components > 1:
        # Paper numbering: component n is most significant; our
        # component 0 is most significant, so flip.
        paper_component = num_components - component
        label = label.replace("^", f"_{paper_component}^")
    return label


def render_index(index: BitmapIndex, max_records: int = 40) -> str:
    """The index as the paper's record-by-bitmap bit matrix.

    Rows are records (up to ``max_records``); columns are bitmaps in
    paper order — most significant component first, descending slot
    order within a component, exactly like Figures 1(b), 1(c), 2 and 5.
    """
    columns: list[tuple[str, list[bool]]] = []
    num_components = index.num_components
    for component in range(num_components):
        component_keys = [
            key for key in index.store.keys() if key[0] == component
        ]
        component_keys.sort(key=lambda key: _slot_sort_key(key[1]), reverse=True)
        for key in component_keys:
            label = _slot_label(
                index.spec.scheme, component, key[1], num_components
            )
            bits = index.store.get(key).to_bools()[:max_records].tolist()
            columns.append((label, bits))

    shown = min(index.num_records, max_records)
    width = max((len(label) for label, _ in columns), default=1)
    header = "rec  " + " ".join(label.rjust(width) for label, _ in columns)
    lines = [header, "-" * len(header)]
    for row in range(shown):
        cells = " ".join(
            ("1" if bits[row] else "0").rjust(width) for _, bits in columns
        )
        lines.append(f"{row + 1:3d}  {cells}")
    if shown < index.num_records:
        lines.append(f"... ({index.num_records - shown} more records)")
    return "\n".join(lines)
