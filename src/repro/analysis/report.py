"""Plain-text rendering of experiment tables and series.

The benchmark harness prints the paper's figures as aligned text tables
(one row per series point) so runs are directly comparable against the
numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """An aligned ASCII table."""
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in text_rows)) if text_rows else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """A table with one x column and one column per named series."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(values[i] for values in series.values())]
        for i, x in enumerate(x_values)
    ]
    return render_table(headers, rows, title=title)
