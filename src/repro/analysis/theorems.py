"""Named, machine-checkable forms of Theorems 3.1 and 4.1.

Each function verifies one statement of the paper's optimality theorems
and returns a :class:`TheoremCheck` recording what was established and
how: ``search`` (exhaustive over the canonical design space — a proof
for the cardinalities covered), ``dominance`` (a concrete dominating
scheme — a proof of non-optimality at any cardinality tested), or
``infeasible`` (the statement needs the unavailable tech-report proof).

The Table 1 experiment renders these; importing them directly gives
programmatic access, e.g.::

    from repro.analysis.theorems import theorem_3_1_3
    check = theorem_3_1_3()
    assert check.holds
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.optimality import (
    dominates,
    scheme_point,
    verify_scheme_optimality,
)
from repro.encoding import get_scheme

#: Cardinalities covered by exhaustive search (C=6 costs ~a minute for
#: the largest space budgets; the fast default stops at 5).
FAST_SEARCH_CARDINALITIES = (4, 5)
#: Cardinalities used for dominance checks (valid at any C).
DOMINANCE_CARDINALITIES = (6, 10, 50, 200)


@dataclass
class TheoremCheck:
    """Outcome of verifying one theorem statement."""

    statement: str
    #: True = verified, False = refuted, None = not verifiable here.
    holds: bool | None
    method: str
    details: list[str] = field(default_factory=list)


def _search_optimal(
    scheme_name: str, query_class: str, cardinalities, expect: bool
) -> tuple[bool, list[str]]:
    """Exhaustively check (non-)optimality over several cardinalities."""
    details: list[str] = []
    ok = True
    for cardinality in cardinalities:
        outcome = verify_scheme_optimality(
            get_scheme(scheme_name), cardinality, query_class
        )
        details.append(
            f"C={cardinality}: optimal={outcome.optimal}"
            + (f" ({outcome.dominator})" if outcome.dominator else "")
        )
        if outcome.optimal is not expect:
            ok = False
    return ok, details


# ---------------------------------------------------------------------------
# Theorem 3.1
# ---------------------------------------------------------------------------


def theorem_3_1_1(cardinalities=FAST_SEARCH_CARDINALITIES) -> TheoremCheck:
    """Range encoding is optimal for EQ iff C <= 5."""
    ok_small, details = _search_optimal("R", "EQ", cardinalities, expect=True)
    # The "only if" direction needs C = 6, where the search exhibits a
    # concrete dominator.
    flip = verify_scheme_optimality(get_scheme("R"), 6, "EQ")
    details.append(
        f"C=6: optimal={flip.optimal}"
        + (f" ({flip.dominator})" if flip.dominator else "")
    )
    return TheoremCheck(
        "R optimal for EQ iff C <= 5",
        holds=ok_small and flip.optimal is False,
        method="search (exhaustive, C in {4,5,6})",
        details=details,
    )


def theorem_3_1_2(cardinalities=FAST_SEARCH_CARDINALITIES) -> TheoremCheck:
    """Range encoding is optimal for 1RQ for all C (verified small C)."""
    ok, details = _search_optimal("R", "1RQ", cardinalities, expect=True)
    return TheoremCheck(
        "R optimal for 1RQ",
        holds=ok,
        method=f"search (exhaustive, C in {tuple(cardinalities)})",
        details=details,
    )


def theorem_3_1_3(cardinalities=DOMINANCE_CARDINALITIES) -> TheoremCheck:
    """Range encoding is not optimal for 2RQ for any C: I dominates it."""
    details: list[str] = []
    ok = True
    for cardinality in cardinalities:
        interval = scheme_point(get_scheme("I"), cardinality, "2RQ")
        range_point = scheme_point(get_scheme("R"), cardinality, "2RQ")
        dominated = dominates(interval, range_point)
        details.append(
            f"C={cardinality}: I={interval} dominates R={range_point}: "
            f"{dominated}"
        )
        ok = ok and dominated
    return TheoremCheck(
        "R not optimal for 2RQ (dominated by I)",
        holds=ok,
        method="dominance by interval encoding",
        details=details,
    )


def theorem_3_1_4(cardinalities=FAST_SEARCH_CARDINALITIES) -> TheoremCheck:
    """Range encoding is optimal for RQ for all C (verified small C)."""
    ok, details = _search_optimal("R", "RQ", cardinalities, expect=True)
    return TheoremCheck(
        "R optimal for RQ",
        holds=ok,
        method=f"search (exhaustive, C in {tuple(cardinalities)})",
        details=details,
    )


def theorem_3_1_5(cardinalities=FAST_SEARCH_CARDINALITIES) -> TheoremCheck:
    """Equality encoding is optimal for EQ for all C (verified small C)."""
    ok, details = _search_optimal("E", "EQ", cardinalities, expect=True)
    return TheoremCheck(
        "E optimal for EQ",
        holds=ok,
        method=f"search (exhaustive, C in {tuple(cardinalities)})",
        details=details,
    )


def theorem_3_1_6(cardinalities=DOMINANCE_CARDINALITIES) -> TheoremCheck:
    """Equality encoding is not optimal for 1RQ/2RQ/RQ: R dominates it."""
    details: list[str] = []
    ok = True
    for cardinality in cardinalities:
        for query_class in ("1RQ", "2RQ", "RQ"):
            range_point = scheme_point(get_scheme("R"), cardinality, query_class)
            equality_point = scheme_point(
                get_scheme("E"), cardinality, query_class
            )
            dominated = dominates(range_point, equality_point)
            details.append(
                f"C={cardinality} {query_class}: dominated={dominated}"
            )
            ok = ok and dominated
    return TheoremCheck(
        "E not optimal for 1RQ/2RQ/RQ (dominated by R)",
        holds=ok,
        method="dominance by range encoding",
        details=details,
    )


# ---------------------------------------------------------------------------
# Theorem 4.1
# ---------------------------------------------------------------------------


def theorem_4_1_1() -> TheoremCheck:
    """Interval encoding is not optimal for EQ if C >= 14.

    The witness scheme lives in the tech report; the design space at
    C = 14 (2^13 - 1 canonical bitmaps choose up to 7) is out of reach
    for exhaustive search, so this statement is recorded as
    paper-proved rather than verified.
    """
    return TheoremCheck(
        "I not optimal for EQ when C >= 14",
        holds=None,
        method="infeasible (design space ~ 10^20 catalogs at C=14)",
        details=["recorded as paper-proved; see DESIGN.md"],
    )


def theorem_4_1_2(cardinalities=(4, 6)) -> TheoremCheck:
    """Interval encoding is optimal for 1RQ — verified at even C only.

    DEVIATION: at odd C (5 is exhaustively checkable) complete catalogs
    with strictly lower expected 1RQ scans exist under the
    information-theoretic scan measure, so the statement is confirmed
    only for the even cardinalities searched; see EXPERIMENTS.md.
    """
    ok, details = _search_optimal("I", "1RQ", cardinalities, expect=True)
    deviation = verify_scheme_optimality(get_scheme("I"), 5, "1RQ")
    details.append(
        f"C=5 (odd): optimal={deviation.optimal} — known deviation "
        f"({deviation.dominator})"
    )
    return TheoremCheck(
        "I optimal for 1RQ (even C verified; odd-C deviation at C=5)",
        holds=ok,
        method=f"search (exhaustive, C in {tuple(cardinalities)} and 5)",
        details=details,
    )


def theorem_4_1_3(cardinalities=FAST_SEARCH_CARDINALITIES) -> TheoremCheck:
    """Interval encoding is optimal for 2RQ (verified small C)."""
    ok, details = _search_optimal("I", "2RQ", cardinalities, expect=True)
    return TheoremCheck(
        "I optimal for 2RQ",
        holds=ok,
        method=f"search (exhaustive, C in {tuple(cardinalities)})",
        details=details,
    )


def theorem_4_1_4(cardinalities=(4, 6)) -> TheoremCheck:
    """Interval encoding is optimal for RQ — same odd-C caveat as 1RQ."""
    ok, details = _search_optimal("I", "RQ", cardinalities, expect=True)
    return TheoremCheck(
        "I optimal for RQ (even C verified; odd-C deviation at C=5)",
        holds=ok,
        method=f"search (exhaustive, C in {tuple(cardinalities)})",
        details=details,
    )


def all_theorem_checks() -> list[TheoremCheck]:
    """Every statement of Theorems 3.1 and 4.1, in paper order."""
    return [
        theorem_3_1_1(),
        theorem_3_1_2(),
        theorem_3_1_3(),
        theorem_3_1_4(),
        theorem_3_1_5(),
        theorem_3_1_6(),
        theorem_4_1_1(),
        theorem_4_1_2(),
        theorem_4_1_3(),
        theorem_4_1_4(),
    ]
