"""Space-time measurement of index design points (Section 7 harness).

A design point is an :class:`~repro.index.IndexSpec` (encoding x
decomposition x codec).  Measurement mirrors the paper's methodology:

* space is the index's stored size (codec-encoded, page-granular);
* time is the average processing time over the queries of a query set,
  where each query starts from a *cold* buffer (the paper flushed the
  file-system buffer before each query) and the simulated clock charges
  disk positioning + transfer per bitmap read, decompression CPU for
  compressed codecs, and bulk-logic CPU per word operation.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.index.bitmap_index import BitmapIndex, IndexSpec
from repro.queries.model import IntervalQuery, MembershipQuery
from repro.storage import CostClock, DEFAULT_DISK_MODEL, DiskModel

Query = IntervalQuery | MembershipQuery


@dataclass
class SpaceTimePoint:
    """Measured space and time of one index design point."""

    spec: IndexSpec
    num_bitmaps: int
    space_bytes: int
    space_pages: int
    uncompressed_bytes: int
    avg_time_ms: float
    avg_scans: float
    per_set_ms: dict[str, float] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """The spec's display label."""
        return self.spec.label

    @property
    def space_mb(self) -> float:
        """Stored size in MiB."""
        return self.space_bytes / (1024 * 1024)


def measure_design(
    values: np.ndarray,
    spec: IndexSpec,
    query_sets: dict[str, Sequence[Query]],
    disk_model: DiskModel = DEFAULT_DISK_MODEL,
    buffer_pages: int | None = None,
    cold_buffer: bool = True,
    index: BitmapIndex | None = None,
) -> SpaceTimePoint:
    """Build (or reuse) an index for ``spec`` and measure every query set.

    ``query_sets`` maps a set label to its queries; the returned point
    carries the per-set average simulated times plus the grand average
    over all queries in all sets (the quantity plotted in Figure 9).
    """
    if index is None:
        index = BitmapIndex.build(values, spec)
    clock = CostClock(model=disk_model)
    engine = index.engine(buffer_pages=buffer_pages, clock=clock)

    per_set_ms: dict[str, float] = {}
    total_ms = 0.0
    total_scans = 0
    total_queries = 0
    for label, queries in query_sets.items():
        set_ms = 0.0
        for query in queries:
            if cold_buffer:
                engine.pool.clear()
            result = engine.execute(query)
            set_ms += result.simulated_ms
            total_scans += result.stats.scans
        per_set_ms[label] = set_ms / max(1, len(queries))
        total_ms += set_ms
        total_queries += len(queries)

    return SpaceTimePoint(
        spec=spec,
        num_bitmaps=index.num_bitmaps(),
        space_bytes=index.size_bytes(),
        space_pages=index.size_pages(),
        uncompressed_bytes=index.uncompressed_bytes(),
        avg_time_ms=total_ms / max(1, total_queries),
        avg_scans=total_scans / max(1, total_queries),
        per_set_ms=per_set_ms,
    )
