"""Pareto-frontier computation (the Figure 3 performance field).

A point dominates another when it is no worse in both space and time
and strictly better in at least one.  The frontier is the set of
non-dominated points; the paper's optimality definition (Section 3) is
exactly membership in this frontier over the universe of complete
encoding schemes.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TypeVar

T = TypeVar("T")


def dominates_pair(
    space_a: float, time_a: float, space_b: float, time_b: float
) -> bool:
    """True iff point a dominates point b."""
    return (
        space_a <= space_b
        and time_a <= time_b
        and (space_a < space_b or time_a < time_b)
    )


def pareto_frontier(
    points: Sequence[T],
    space: Callable[[T], float],
    time: Callable[[T], float],
) -> list[T]:
    """Non-dominated subset of ``points``, sorted by increasing space.

    Ties (identical space and time) are all kept — they are mutually
    non-dominating.
    """
    frontier: list[T] = []
    ordered = sorted(points, key=lambda p: (space(p), time(p)))
    best_time = float("inf")
    for point in ordered:
        if time(point) < best_time:
            frontier.append(point)
            best_time = time(point)
        elif time(point) == best_time and frontier and (
            space(point) == space(frontier[-1])
        ):
            frontier.append(point)
    return frontier
