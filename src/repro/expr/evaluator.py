"""Expression evaluation with scan and operation accounting.

The evaluator combines stored bitmaps fetched through a caller-supplied
function.  It performs common-subexpression elimination so that a bitmap
referenced several times in one expression is fetched exactly once —
this models the paper's component-wise evaluation strategy where each
bitmap is scanned at most once per query (Section 6.3).

:class:`EvalStats` records what a query costed: distinct bitmaps
fetched (the paper's "number of bitmap scans") and the number of bulk
logical word operations performed (the CPU side of the time model).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass, field

from repro import obs as _obs
from repro.bitmap import BitVector
from repro.compress.multiway import threshold_vectors
from repro.errors import BitmapError
from repro.expr.nodes import And, Const, Expr, Leaf, Not, Or, Xor
from repro.expr.threshold import Threshold

FetchFn = Callable[[Hashable], BitVector]


@dataclass
class EvalStats:
    """Accounting for one or more expression evaluations."""

    #: Distinct stored bitmaps fetched ("bitmap scans").
    scans: int = 0
    #: Bulk logical operations executed (each combines two operands or
    #: complements one).
    operations: int = 0
    #: Keys fetched, in first-fetch order (useful in tests).
    fetched_keys: list[Hashable] = field(default_factory=list)

    def merge(self, other: "EvalStats") -> None:
        """Fold another stats object into this one."""
        self.scans += other.scans
        self.operations += other.operations
        self.fetched_keys.extend(other.fetched_keys)


def expression_scan_count(expr: Expr) -> int:
    """Distinct stored bitmaps an expression needs (its scan cost)."""
    return len(expr.leaf_keys())


def expression_operation_count(expr: Expr) -> int:
    """Bulk logical operations :func:`evaluate` performs on ``expr``.

    Mirrors ``_eval`` exactly, including its memoization: a subtree that
    appears several times (by node equality) is evaluated once, so its
    operations are counted once.  ``Not`` costs 1, an n-ary node costs
    ``n - 1``, a ``Threshold`` over ``n`` children costs ``n`` (one
    counter addition per child; the compare rides the last), leaves and
    constants cost 0.  This is the CPU side of the analytic cost model —
    the engine charges exactly this many bulk ops (times the words per
    operation) to its clock.
    """
    seen: set[Expr] = set()

    def walk(node: Expr) -> int:
        if node in seen:
            return 0
        ops = 0
        if isinstance(node, Not):
            ops = walk(node.child) + 1
        elif isinstance(node, (And, Or, Xor)):
            children = node.children()
            ops = sum(walk(child) for child in children) + len(children) - 1
        elif isinstance(node, Threshold):
            children = node.children()
            ops = sum(walk(child) for child in children) + len(children)
        seen.add(node)
        return ops

    return walk(expr)


def evaluate(
    expr: Expr,
    fetch: FetchFn,
    length: int,
    stats: EvalStats | None = None,
    cache: dict[Hashable, BitVector] | None = None,
) -> BitVector:
    """Evaluate ``expr`` into a bit vector of ``length`` bits.

    Parameters
    ----------
    expr:
        The expression to evaluate.
    fetch:
        Callback mapping a leaf key to its stored bitmap.
    length:
        Length of the result (the relation cardinality); needed for
        constants and validated against every fetched bitmap.
    stats:
        Optional accumulator for scan/operation counts.
    cache:
        Optional bitmap cache shared across several evaluations of the
        same query (the component-wise strategy passes one per query so
        that no bitmap is fetched twice).
    """
    if stats is None:
        stats = EvalStats()
    if cache is None:
        cache = {}
    memo: dict[Expr, BitVector] = {}
    allocs = [0]
    result = _eval(expr, fetch, length, stats, cache, memo, allocs)
    o = _obs.active()
    if o is not None:
        # Full-length intermediate vectors this evaluation allocated —
        # the traffic the fused path (mode="fused", always 0) removes.
        o.count("expr.intermediate_allocs", allocs[0], mode="materialize")
    return result


def _fetch_leaf(
    key: Hashable,
    fetch: FetchFn,
    length: int,
    stats: EvalStats,
    cache: dict[Hashable, BitVector],
) -> BitVector:
    if key in cache:
        return cache[key]
    vector = fetch(key)
    if len(vector) != length:
        raise BitmapError(
            f"bitmap {key!r} has length {len(vector)}, expected {length}"
        )
    cache[key] = vector
    stats.scans += 1
    stats.fetched_keys.append(key)
    return vector


def _eval(
    expr: Expr,
    fetch: FetchFn,
    length: int,
    stats: EvalStats,
    cache: dict[Hashable, BitVector],
    memo: dict[Expr, BitVector],
    allocs: list[int],
) -> BitVector:
    if expr in memo:
        return memo[expr]

    if isinstance(expr, Leaf):
        result = _fetch_leaf(expr.key, fetch, length, stats, cache)
    elif isinstance(expr, Const):
        result = BitVector.ones(length) if expr.value else BitVector.zeros(length)
        allocs[0] += 1
    elif isinstance(expr, Not):
        child = _eval(expr.child, fetch, length, stats, cache, memo, allocs)
        result = ~child
        stats.operations += 1
        allocs[0] += 1
    elif isinstance(expr, (And, Or, Xor)):
        operands = [
            _eval(child, fetch, length, stats, cache, memo, allocs)
            for child in expr.children()
        ]
        result = operands[0].copy()
        allocs[0] += 1
        for other in operands[1:]:
            if isinstance(expr, And):
                result &= other
            elif isinstance(expr, Or):
                result |= other
            else:
                result ^= other
            stats.operations += 1
    elif isinstance(expr, Threshold):
        operands = [
            _eval(child, fetch, length, stats, cache, memo, allocs)
            for child in expr.children()
        ]
        result = threshold_vectors(expr.k, operands)
        stats.operations += len(operands)
        allocs[0] += 1
    else:
        raise TypeError(f"unknown expression node {type(expr).__name__}")

    memo[expr] = result
    return result
