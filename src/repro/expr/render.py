"""Rendering expressions as trees and DOT graphs.

Section 6.1 describes the rewrite output as a "query evaluation graph,
where each internal node ... represents a logical operator and each
leaf node represents a bitmap".  These helpers make that graph visible:
:func:`to_tree` for an indented text rendering, :func:`to_dot` for a
Graphviz document of the evaluation *DAG* (shared subexpressions are
rendered once, which is exactly the sharing the component-wise
evaluator exploits).
"""

from __future__ import annotations

from repro.expr.nodes import And, Const, Expr, Leaf, Not, Or, Xor

_OP_LABELS = {And: "AND", Or: "OR", Xor: "XOR", Not: "NOT"}


def _node_label(expr: Expr) -> str:
    if isinstance(expr, Leaf):
        return f"bitmap {expr.key!r}"
    if isinstance(expr, Const):
        return "ONE" if expr.value else "ZERO"
    return _OP_LABELS[type(expr)]


def to_tree(expr: Expr, indent: str = "  ") -> str:
    """Indented text rendering of the expression tree."""
    lines: list[str] = []

    def walk(node: Expr, depth: int) -> None:
        lines.append(f"{indent * depth}{_node_label(node)}")
        for child in node.children():
            walk(child, depth + 1)

    walk(expr, 0)
    return "\n".join(lines)


def to_dot(expr: Expr, graph_name: str = "evaluation_graph") -> str:
    """Graphviz DOT for the evaluation DAG.

    Structurally equal subexpressions collapse into one node, so the
    output shows the acyclic *graph* of Section 6.3 (with its sharing),
    not merely the syntax tree.  Leaves are drawn as boxes, operators
    as ellipses.
    """
    ids: dict[Expr, str] = {}
    lines = [f"digraph {graph_name} {{", "  rankdir=BT;"]

    def visit(node: Expr) -> str:
        if node in ids:
            return ids[node]
        node_id = f"n{len(ids)}"
        ids[node] = node_id
        label = _node_label(node).replace('"', r"\"")
        shape = "box" if isinstance(node, (Leaf, Const)) else "ellipse"
        lines.append(f'  {node_id} [label="{label}", shape={shape}];')
        for child in node.children():
            child_id = visit(child)
            lines.append(f"  {child_id} -> {node_id};")
        return node_id

    visit(expr)
    lines.append("}")
    return "\n".join(lines)
