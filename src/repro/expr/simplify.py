"""Algebraic simplification of bitmap expressions.

The rewrite phase (Section 6) can generate expressions with constants,
duplicate operands, nested same-operator chains and double negations.
:func:`simplify` normalizes them:

* constant folding (``x AND ZERO -> ZERO``, ``x OR ONE -> ONE``,
  ``x XOR ONE -> NOT x``, ...);
* flattening of nested ``And``/``Or``/``Xor`` chains;
* idempotence for ``And``/``Or`` (duplicate operands dropped) and
  pair-cancellation for ``Xor``;
* annihilation (``x AND NOT x -> ZERO``, ``x OR NOT x -> ONE``);
* double negation elimination;
* threshold folding (constant children absorbed into ``k``, degenerate
  ``k`` bounds collapsed to constants).

Simplification never increases the number of distinct leaves, so the
scan-count accounting of an expression can only improve.

Two deliberate non-rewrites under :class:`~repro.expr.threshold.Threshold`:

* children are **never deduplicated** — threshold operands are a
  multiset, and a duplicated child legitimately counts twice;
* a child containing a ``Not`` anywhere is left **untouched** (not even
  recursively simplified).  Rewriting under a threshold changes which
  NOT nodes the fused evaluator folds into counter inputs, and the
  equivalence of folded complements under counting (rather than
  boolean) combination is guaranteed only for the tree the differential
  suite verified — the conservative rule keeps simplification inside
  that envelope.  See ``tests/expr/test_threshold.py``.
"""

from __future__ import annotations

from collections import Counter, deque

from repro.expr.nodes import And, Const, Expr, Leaf, Not, Or, Xor, not_of
from repro.expr.threshold import Threshold


def simplify(expr: Expr) -> Expr:
    """Return an equivalent, normalized expression."""
    if isinstance(expr, (Leaf, Const)):
        return expr
    if isinstance(expr, Not):
        return not_of(simplify(expr.child))
    if isinstance(expr, And):
        return _simplify_and_or(expr, is_and=True)
    if isinstance(expr, Or):
        return _simplify_and_or(expr, is_and=False)
    if isinstance(expr, Xor):
        return _simplify_xor(expr)
    if isinstance(expr, Threshold):
        return _simplify_threshold(expr)
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _flatten(expr: Expr, cls) -> list[Expr]:
    """Simplify children and flatten same-operator nesting."""
    out: list[Expr] = []
    for child in expr.children():
        child = simplify(child)
        if isinstance(child, cls):
            out.extend(child.children())
        else:
            out.append(child)
    return out


def _simplify_and_or(expr: Expr, is_and: bool) -> Expr:
    cls = And if is_and else Or
    identity = Const(True) if is_and else Const(False)
    annihilator = Const(False) if is_and else Const(True)

    seen: list[Expr] = []
    seen_set: set[Expr] = set()
    for child in _flatten(expr, cls):
        if child == annihilator:
            return annihilator
        if child == identity:
            continue
        if child in seen_set:
            continue  # idempotence
        seen.append(child)
        seen_set.add(child)

    # Annihilation: x op NOT x.
    for child in seen:
        if not_of(child) in seen_set:
            return annihilator

    if not seen:
        return identity
    if len(seen) == 1:
        return seen[0]
    return cls(tuple(seen))


def _simplify_threshold(expr: Threshold) -> Expr:
    """Fold constants into ``k``; keep duplicates and negated children.

    A ``Const(True)`` child always counts, so it drops out and ``k``
    decreases; a ``Const(False)`` child never counts and just drops.
    ``k <= 0`` after folding is always satisfied, ``k`` above the
    surviving arity never.  Children containing a ``Not`` are kept
    verbatim (see the module docstring), and duplicates are preserved
    because threshold counting is multiset semantics.
    """
    k = expr.k
    kept: list[Expr] = []
    for child in expr.operands:
        if any(isinstance(node, Not) for node in child.walk()):
            simplified = child
        else:
            simplified = simplify(child)
        if isinstance(simplified, Const):
            if simplified.value:
                k -= 1
            continue
        kept.append(simplified)
    if k <= 0:
        return Const(True)
    if k > len(kept):
        return Const(False)
    if len(kept) == 1:
        return kept[0]
    return Threshold(k, tuple(kept))


def _simplify_xor(expr: Expr) -> Expr:
    # XOR with ONE toggles an overall complement; pairs cancel.  A
    # worklist is used because stripping a Not can expose another Xor
    # chain that must also be flattened.
    complement = False
    counts: Counter[Expr] = Counter()
    worklist = deque(_flatten(expr, Xor))
    while worklist:
        child = worklist.popleft()
        if isinstance(child, Const):
            if child.value:
                complement = not complement
            continue
        if isinstance(child, Not):
            complement = not complement
            child = child.child
        if isinstance(child, Xor):
            worklist.extend(child.children())
            continue
        counts[child] += 1

    survivors = [node for node, count in counts.items() if count % 2]
    if not survivors:
        result: Expr = Const(False)
    elif len(survivors) == 1:
        result = survivors[0]
    else:
        result = Xor(tuple(survivors))
    return not_of(result) if complement else result
