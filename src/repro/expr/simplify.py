"""Algebraic simplification of bitmap expressions.

The rewrite phase (Section 6) can generate expressions with constants,
duplicate operands, nested same-operator chains and double negations.
:func:`simplify` normalizes them:

* constant folding (``x AND ZERO -> ZERO``, ``x OR ONE -> ONE``,
  ``x XOR ONE -> NOT x``, ...);
* flattening of nested ``And``/``Or``/``Xor`` chains;
* idempotence for ``And``/``Or`` (duplicate operands dropped) and
  pair-cancellation for ``Xor``;
* annihilation (``x AND NOT x -> ZERO``, ``x OR NOT x -> ONE``);
* double negation elimination.

Simplification never increases the number of distinct leaves, so the
scan-count accounting of an expression can only improve.
"""

from __future__ import annotations

from collections import Counter, deque

from repro.expr.nodes import And, Const, Expr, Leaf, Not, Or, Xor, not_of


def simplify(expr: Expr) -> Expr:
    """Return an equivalent, normalized expression."""
    if isinstance(expr, (Leaf, Const)):
        return expr
    if isinstance(expr, Not):
        return not_of(simplify(expr.child))
    if isinstance(expr, And):
        return _simplify_and_or(expr, is_and=True)
    if isinstance(expr, Or):
        return _simplify_and_or(expr, is_and=False)
    if isinstance(expr, Xor):
        return _simplify_xor(expr)
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _flatten(expr: Expr, cls) -> list[Expr]:
    """Simplify children and flatten same-operator nesting."""
    out: list[Expr] = []
    for child in expr.children():
        child = simplify(child)
        if isinstance(child, cls):
            out.extend(child.children())
        else:
            out.append(child)
    return out


def _simplify_and_or(expr: Expr, is_and: bool) -> Expr:
    cls = And if is_and else Or
    identity = Const(True) if is_and else Const(False)
    annihilator = Const(False) if is_and else Const(True)

    seen: list[Expr] = []
    seen_set: set[Expr] = set()
    for child in _flatten(expr, cls):
        if child == annihilator:
            return annihilator
        if child == identity:
            continue
        if child in seen_set:
            continue  # idempotence
        seen.append(child)
        seen_set.add(child)

    # Annihilation: x op NOT x.
    for child in seen:
        if not_of(child) in seen_set:
            return annihilator

    if not seen:
        return identity
    if len(seen) == 1:
        return seen[0]
    return cls(tuple(seen))


def _simplify_xor(expr: Expr) -> Expr:
    # XOR with ONE toggles an overall complement; pairs cancel.  A
    # worklist is used because stripping a Not can expose another Xor
    # chain that must also be flattened.
    complement = False
    counts: Counter[Expr] = Counter()
    worklist = deque(_flatten(expr, Xor))
    while worklist:
        child = worklist.popleft()
        if isinstance(child, Const):
            if child.value:
                complement = not complement
            continue
        if isinstance(child, Not):
            complement = not complement
            child = child.child
        if isinstance(child, Xor):
            worklist.extend(child.children())
            continue
        counts[child] += 1

    survivors = [node for node, count in counts.items() if count % 2]
    if not survivors:
        result: Expr = Const(False)
    elif len(survivors) == 1:
        result = survivors[0]
    else:
        result = Xor(tuple(survivors))
    return not_of(result) if complement else result
