"""Expression AST over stored bitmaps.

Nodes are immutable and hashable; ``And``/``Or``/``Xor`` are n-ary with
children stored as tuples.  Leaves carry an opaque hashable *key* naming
a stored bitmap (the index layer uses ``(component, slot)`` pairs).

Two interpretations are supported:

* *bitmap semantics* — :func:`repro.expr.evaluator.evaluate` combines
  fetched :class:`~repro.bitmap.BitVector` objects;
* *set semantics* — :meth:`Expr.value_set` combines the sets of
  attribute values each bitmap represents (the paper's notational
  overload of ``B``), which is how expressions are verified and planned.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass, field


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()

    # -- structural helpers ------------------------------------------------

    def leaves(self) -> list["Leaf"]:
        """All leaf nodes in depth-first order (with duplicates)."""
        out: list[Leaf] = []
        self._collect_leaves(out)
        return out

    def leaf_keys(self) -> set[Hashable]:
        """The distinct bitmap keys referenced by this expression.

        The size of this set is the expression's *scan count*: the number
        of distinct stored bitmaps that must be read to evaluate it.
        """
        return {node.key for node in self.leaves()}

    def _collect_leaves(self, out: list["Leaf"]) -> None:
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        """Immediate sub-expressions."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """All nodes, depth first, parents before children."""
        yield self
        for child in self.children():
            yield from child.walk()

    # -- set semantics ------------------------------------------------------

    def value_set(
        self, catalog: dict[Hashable, frozenset[int]], domain: frozenset[int]
    ) -> frozenset[int]:
        """Evaluate under set semantics.

        ``catalog`` maps each bitmap key to the set of attribute values
        it represents; ``domain`` is the full attribute domain (needed to
        interpret NOT).
        """
        raise NotImplementedError

    # -- operator sugar ------------------------------------------------------

    def __and__(self, other: "Expr") -> "Expr":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, other))

    def __xor__(self, other: "Expr") -> "Expr":
        return Xor((self, other))

    def __invert__(self) -> "Expr":
        return Not(self)


@dataclass(frozen=True, slots=True)
class Leaf(Expr):
    """Reference to a stored bitmap by key."""

    key: Hashable

    def _collect_leaves(self, out: list["Leaf"]) -> None:
        out.append(self)

    def value_set(self, catalog, domain):
        return catalog[self.key]

    def __str__(self) -> str:
        return str(self.key)

    __and__ = Expr.__and__
    __or__ = Expr.__or__
    __xor__ = Expr.__xor__
    __invert__ = Expr.__invert__


@dataclass(frozen=True, slots=True)
class Const(Expr):
    """The all-ones (True) or all-zeros (False) bitmap."""

    value: bool

    def _collect_leaves(self, out: list["Leaf"]) -> None:
        return

    def value_set(self, catalog, domain):
        return domain if self.value else frozenset()

    def __str__(self) -> str:
        return "ONE" if self.value else "ZERO"

    __and__ = Expr.__and__
    __or__ = Expr.__or__
    __xor__ = Expr.__xor__
    __invert__ = Expr.__invert__


@dataclass(frozen=True, slots=True)
class Not(Expr):
    """Bitwise complement."""

    child: Expr

    def _collect_leaves(self, out: list["Leaf"]) -> None:
        self.child._collect_leaves(out)

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def value_set(self, catalog, domain):
        return domain - self.child.value_set(catalog, domain)

    def __str__(self) -> str:
        return f"NOT({self.child})"

    __and__ = Expr.__and__
    __or__ = Expr.__or__
    __xor__ = Expr.__xor__
    __invert__ = Expr.__invert__


class _Nary(Expr):
    """Shared behaviour for n-ary operators."""

    __slots__ = ()
    _symbol = "?"

    def _collect_leaves(self, out: list["Leaf"]) -> None:
        for child in self.children():
            child._collect_leaves(out)

    def __str__(self) -> str:
        inner = f" {self._symbol} ".join(str(c) for c in self.children())
        return f"({inner})"


@dataclass(frozen=True, slots=True)
class And(_Nary):
    """n-ary AND; requires at least one operand."""

    operands: tuple[Expr, ...]
    _symbol = "AND"

    def children(self) -> tuple[Expr, ...]:
        return self.operands

    def value_set(self, catalog, domain):
        result = domain
        for child in self.operands:
            result = result & child.value_set(catalog, domain)
        return result

    __and__ = Expr.__and__
    __or__ = Expr.__or__
    __xor__ = Expr.__xor__
    __invert__ = Expr.__invert__


@dataclass(frozen=True, slots=True)
class Or(_Nary):
    """n-ary OR; requires at least one operand."""

    operands: tuple[Expr, ...]
    _symbol = "OR"

    def children(self) -> tuple[Expr, ...]:
        return self.operands

    def value_set(self, catalog, domain):
        result: frozenset[int] = frozenset()
        for child in self.operands:
            result = result | child.value_set(catalog, domain)
        return result

    __and__ = Expr.__and__
    __or__ = Expr.__or__
    __xor__ = Expr.__xor__
    __invert__ = Expr.__invert__


@dataclass(frozen=True, slots=True)
class Xor(_Nary):
    """n-ary XOR; requires at least one operand."""

    operands: tuple[Expr, ...]
    _symbol = "XOR"

    def children(self) -> tuple[Expr, ...]:
        return self.operands

    def value_set(self, catalog, domain):
        result: frozenset[int] = frozenset()
        for child in self.operands:
            result = result ^ child.value_set(catalog, domain)
        return result

    __and__ = Expr.__and__
    __or__ = Expr.__or__
    __xor__ = Expr.__xor__
    __invert__ = Expr.__invert__


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def leaf(key: Hashable) -> Leaf:
    """A leaf referencing the stored bitmap named ``key``."""
    return Leaf(key)


def not_of(expr: Expr) -> Expr:
    """Complement, collapsing double negation."""
    if isinstance(expr, Not):
        return expr.child
    if isinstance(expr, Const):
        return Const(not expr.value)
    return Not(expr)


def _nary(cls, exprs: Iterable[Expr], empty: Expr) -> Expr:
    items = tuple(exprs)
    if not items:
        return empty
    if len(items) == 1:
        return items[0]
    return cls(items)


def and_of(exprs: Iterable[Expr]) -> Expr:
    """AND of any number of expressions (empty AND is ONE)."""
    return _nary(And, exprs, Const(True))


def or_of(exprs: Iterable[Expr]) -> Expr:
    """OR of any number of expressions (empty OR is ZERO)."""
    return _nary(Or, exprs, Const(False))


def xor_of(exprs: Iterable[Expr]) -> Expr:
    """XOR of any number of expressions (empty XOR is ZERO)."""
    return _nary(Xor, exprs, Const(False))


def one() -> Const:
    """The all-ones constant."""
    return Const(True)


def zero() -> Const:
    """The all-zeros constant."""
    return Const(False)
