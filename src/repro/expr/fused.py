"""Fused block-at-a-time expression evaluation.

The materializing evaluator (:mod:`repro.expr.evaluator`) allocates a
full-length :class:`~repro.bitmap.BitVector` for every internal node,
so a deep tree over a large relation streams each intermediate through
main memory several times.  This module evaluates the same trees in
word *blocks* (default 2048 words = 16 KiB) small enough that every
intermediate stays in L1/L2:

* the only full-length allocation is the answer itself — internal
  nodes write into block-sized scratch buffers reused across blocks;
* ``Not`` is *folded*: a complement over a leaf flips into the leaf
  load, a complement over an operator node becomes an in-place
  ``bitwise_not`` on that node's block — no NOT intermediate exists at
  any granularity;
* leaves are :class:`~repro.compress.streams.BlockStream` objects, so
  encoded payloads decode per block through the codec kernels
  (:func:`evaluate_fused_streams`) or decoded vectors are sliced
  zero-copy (:func:`evaluate_fused`).

Accounting is *identical* to the materializing evaluator by
construction: ``stats.scans``/``fetched_keys`` follow the same
first-touch depth-first order through the same per-query cache, and
``stats.operations`` is :func:`~repro.expr.evaluator.expression_operation_count`
— the memoized logical op count the analytic cost model predicts —
charged once per evaluation, never per block.  Fusion changes where
bytes move, not what the cost model charges, so
``predict_query_cost == CostClock == obs`` survives the swap.  (The
physical walk re-executes a subtree that appears twice; the logical
charge still counts it once, exactly as the materializing memo does.)

Padding: folded complements set padding bits inside a block, so the
final word is masked once after the last block — intermediates never
need the padding invariant, only the answer does.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable

import numpy as np

from repro import obs as _obs
from repro.bitmap import BitVector
from repro.compress.multiway import ThresholdCounter
from repro.compress.streams import BlockStream, VectorStream
from repro.errors import BitmapError
from repro.expr.evaluator import (
    EvalStats,
    FetchFn,
    _fetch_leaf,
    expression_operation_count,
)
from repro.expr.nodes import And, Const, Expr, Leaf, Not, Or, Xor
from repro.expr.threshold import Threshold

#: Default block size in 64-bit words (16 KiB per block).
DEFAULT_BLOCK_WORDS = 2048
#: Smallest allowed block (4 KiB) — below this the numpy dispatch
#: overhead per block dominates the cache win.
MIN_BLOCK_WORDS = 512
#: Largest allowed block (64 KiB) — beyond this three live blocks
#: (accumulator, operand, scratch) no longer fit typical L2.
MAX_BLOCK_WORDS = 8192

_ONE = np.uint64(1)
_FULL = np.uint64(0xFFFF_FFFF_FFFF_FFFF)

_OPS = {And: np.bitwise_and, Or: np.bitwise_or, Xor: np.bitwise_xor}

StreamFn = Callable[[Hashable], BlockStream]


def clamp_block_words(block_words: int) -> int:
    """Clamp a requested block size into the supported 4–64 KiB band."""
    return max(MIN_BLOCK_WORDS, min(int(block_words), MAX_BLOCK_WORDS))


class _LeafPlan:
    __slots__ = ("stream", "invert")

    def __init__(self, stream: BlockStream, invert: bool):
        self.stream = stream
        self.invert = invert


class _ConstPlan:
    __slots__ = ("fill",)

    def __init__(self, value: bool):
        self.fill = _FULL if value else np.uint64(0)


class _OpPlan:
    __slots__ = ("op", "children", "invert")

    def __init__(self, op, children: list, invert: bool):
        self.op = op
        self.children = children
        self.invert = invert


class _ThresholdPlan:
    """Block-at-a-time k-of-N: children counted, never materialized.

    Each block evaluates every child into the counter (leaf children
    straight off their streams), then extracts ``count >= k`` into the
    output.  A parent ``Not`` folds into :attr:`invert` exactly like an
    :class:`_OpPlan`; child ``Not`` nodes fold into the child plans.
    The bit-sliced counter scratch is per-plan and block-sized, reused
    across blocks.
    """

    __slots__ = ("k", "children", "invert", "counter")

    def __init__(self, k: int, children: list, invert: bool):
        self.k = k
        self.children = children
        self.invert = invert
        self.counter: ThresholdCounter | None = None


def _compile(
    expr: Expr,
    open_leaf: Callable[[Hashable], BlockStream],
    invert: bool,
    counters: list[int],
):
    """Lower ``expr`` to a physical plan, folding Not nodes away.

    ``counters`` accumulates ``[not_folds, threshold_nodes,
    threshold_children]`` for the obs layer.  Leaves are opened in
    depth-first first-touch order — the same order the materializing
    evaluator fetches them, so buffer-pool LRU state evolves identically
    under either physical plan.
    """
    if isinstance(expr, Not):
        counters[0] += 1
        return _compile(expr.child, open_leaf, not invert, counters)
    if isinstance(expr, Leaf):
        return _LeafPlan(open_leaf(expr.key), invert)
    if isinstance(expr, Const):
        return _ConstPlan(expr.value != invert)
    if isinstance(expr, (And, Or, Xor)):
        children = [
            _compile(child, open_leaf, False, counters)
            for child in expr.children()
        ]
        return _OpPlan(_OPS[type(expr)], children, invert)
    if isinstance(expr, Threshold):
        children = [
            _compile(child, open_leaf, False, counters)
            for child in expr.children()
        ]
        counters[1] += 1
        counters[2] += len(children)
        return _ThresholdPlan(expr.k, children, invert)
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _exec_block(plan, lo: int, hi: int, out: np.ndarray, buffers: list, depth: int,
                block_words: int) -> None:
    """Evaluate one block of ``plan`` into ``out`` (length ``hi - lo``)."""
    n = hi - lo
    if isinstance(plan, _LeafPlan):
        block = plan.stream.block(lo, hi)
        if plan.invert:
            np.bitwise_not(block, out=out[:n])
        else:
            out[:n] = block
        return
    if isinstance(plan, _ConstPlan):
        out[:n] = plan.fill
        return
    if isinstance(plan, _ThresholdPlan):
        if plan.k > len(plan.children):
            out[:n] = 0
        else:
            counter = plan.counter
            if counter is None:
                counter = plan.counter = ThresholdCounter(
                    len(plan.children), block_words
                )
            counter.reset(n)
            for child in plan.children:
                if isinstance(child, _LeafPlan) and not child.invert:
                    # Count straight off the stream block — no staging.
                    counter.add(child.stream.block(lo, hi))
                    continue
                if len(buffers) <= depth:
                    buffers.append(np.empty(block_words, dtype=np.uint64))
                scratch = buffers[depth]
                _exec_block(
                    child, lo, hi, scratch, buffers, depth + 1, block_words
                )
                counter.add(scratch[:n])
            counter.compare_ge(plan.k, out[:n])
        if plan.invert:
            np.bitwise_not(out[:n], out=out[:n])
        return
    _exec_block(plan.children[0], lo, hi, out, buffers, depth, block_words)
    acc = out[:n]
    for child in plan.children[1:]:
        if isinstance(child, _LeafPlan) and not child.invert:
            # Operate straight off the stream block — no staging copy.
            plan.op(acc, child.stream.block(lo, hi), out=acc)
            continue
        if len(buffers) <= depth:
            buffers.append(np.empty(block_words, dtype=np.uint64))
        scratch = buffers[depth]
        _exec_block(child, lo, hi, scratch, buffers, depth + 1, block_words)
        plan.op(acc, scratch[:n], out=acc)
    if plan.invert:
        np.bitwise_not(acc, out=acc)


def _run(plan, length: int, block_words: int, counters: list[int]) -> BitVector:
    num_words = (length + 63) // 64
    out_words = np.empty(num_words, dtype=np.uint64)
    buffers: list[np.ndarray] = []
    blocks = 0
    for lo in range(0, num_words, block_words):
        hi = min(lo + block_words, num_words)
        _exec_block(plan, lo, hi, out_words[lo:hi], buffers, 0, block_words)
        blocks += 1
    tail = length % 64
    if tail and num_words:
        out_words[-1] &= (_ONE << np.uint64(tail)) - _ONE
    o = _obs.active()
    if o is not None:
        o.count("expr.fused.blocks", blocks)
        o.count("expr.fused.not_folds", counters[0])
        if counters[1]:
            o.count("expr.threshold.evals", counters[1])
            o.count("expr.threshold.children", counters[2])
        # Register the fused-mode allocation counter even when zero, so
        # the bench allocation gate can read "0" rather than "absent".
        o.count("expr.intermediate_allocs", 0, mode="fused")
    return BitVector(length, out_words)


def evaluate_fused(
    expr: Expr,
    fetch: FetchFn,
    length: int,
    stats: EvalStats | None = None,
    cache: dict[Hashable, BitVector] | None = None,
    block_words: int = DEFAULT_BLOCK_WORDS,
) -> BitVector:
    """Drop-in replacement for :func:`repro.expr.evaluator.evaluate`.

    Same ``fetch``/``cache``/``stats`` contract and the same result,
    scans and operation counts — only the physical plan differs: leaf
    vectors are sliced zero-copy per block and no intermediate
    full-length vector is allocated.
    """
    if stats is None:
        stats = EvalStats()
    if cache is None:
        cache = {}
    block_words = clamp_block_words(block_words)
    streams: dict[Hashable, VectorStream] = {}

    def open_leaf(key: Hashable) -> BlockStream:
        stream = streams.get(key)
        if stream is None:
            vector = _fetch_leaf(key, fetch, length, stats, cache)
            stream = VectorStream(vector)
            streams[key] = stream
        return stream

    counters = [0, 0, 0]
    plan = _compile(expr, open_leaf, False, counters)
    stats.operations += expression_operation_count(expr)
    return _run(plan, length, block_words, counters)


def evaluate_fused_streams(
    expr: Expr,
    open_leaf: StreamFn,
    length: int,
    stats: EvalStats | None = None,
    stream_cache: dict[Hashable, BlockStream] | None = None,
    block_words: int = DEFAULT_BLOCK_WORDS,
) -> BitVector:
    """Fused evaluation with leaves decoded per block from payloads.

    ``open_leaf`` maps a leaf key to a
    :class:`~repro.compress.streams.BlockStream` (usually
    :func:`repro.compress.streams.open_stream` over a stored payload),
    so no leaf is ever decoded whole — encoded runs stream through the
    codec kernels one block at a time.  Scan accounting matches the
    materializing evaluator: each distinct key is opened once per
    ``stream_cache`` and counted as one scan.
    """
    if stats is None:
        stats = EvalStats()
    if stream_cache is None:
        stream_cache = {}
    block_words = clamp_block_words(block_words)

    def cached_open(key: Hashable) -> BlockStream:
        stream = stream_cache.get(key)
        if stream is None:
            stream = open_leaf(key)
            if stream.length != length:
                raise BitmapError(
                    f"bitmap {key!r} has length {stream.length}, "
                    f"expected {length}"
                )
            stream_cache[key] = stream
            stats.scans += 1
            stats.fetched_keys.append(key)
        return stream

    counters = [0, 0, 0]
    plan = _compile(expr, cached_open, False, counters)
    stats.operations += expression_operation_count(expr)
    return _run(plan, length, block_words, counters)
