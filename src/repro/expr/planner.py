"""Brute-force minimal-scan planning over arbitrary bitmap catalogs.

The paper's optimality notion (Section 3) measures time as the expected
number of *bitmap scans* per query.  For a catalog of stored bitmaps
``{key: value-set}`` and a target answer set ``T``, the minimal scan
cost is the size of the smallest sub-catalog from which ``T`` is
expressible by boolean operations.

A set ``T`` is expressible from bitmaps ``B_1..B_k`` iff ``T`` is a
union of the *atoms* of the partition they induce on the domain — i.e.
iff no two values with identical membership signatures straddle the
boundary of ``T``.  This reduces expressibility to a signature check,
which makes exhaustive search over sub-catalogs feasible for the small
cardinalities where we verify the paper's theorems.

:func:`plan_expression` additionally constructs a witness expression
(an OR of signature atoms), which the test-suite evaluates to confirm
the hand-derived per-scheme equations are both correct and scan-minimal.

:func:`plan_physical` is the *physical* counterpart: given a constituent
expression that is already scan-minimal, it decides whether the engine
should evaluate it fused (block-at-a-time, see :mod:`repro.expr.fused`)
or materializing, per subtree.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from itertools import combinations

from repro.errors import PlanningError
from repro.expr.nodes import Expr, and_of, leaf, not_of, or_of, one, zero


def _signatures(
    keys: Sequence[Hashable],
    catalog: dict[Hashable, frozenset[int]],
    domain: Sequence[int],
) -> dict[int, tuple[bool, ...]]:
    """Membership signature of every domain value under ``keys``."""
    return {
        value: tuple(value in catalog[key] for key in keys) for value in domain
    }


def _expressible(
    keys: Sequence[Hashable],
    catalog: dict[Hashable, frozenset[int]],
    domain: Sequence[int],
    target: frozenset[int],
) -> bool:
    """True iff ``target`` is a union of atoms of the keys' partition."""
    sig = _signatures(keys, catalog, domain)
    inside = {sig[v] for v in target}
    outside = {sig[v] for v in domain if v not in target}
    return not (inside & outside)


def minimal_scan_cost(
    catalog: dict[Hashable, frozenset[int]],
    domain: Sequence[int],
    target: frozenset[int],
    max_scans: int | None = None,
) -> int:
    """Smallest number of catalog bitmaps from which ``target`` is expressible.

    Returns 0 when the target is trivial (empty or the whole domain).
    Raises :class:`PlanningError` when the target is not expressible at
    all (the catalog is not complete enough), or when ``max_scans`` is
    exceeded.
    """
    domain_set = frozenset(domain)
    if target in (frozenset(), domain_set):
        return 0
    keys = sorted(catalog, key=repr)
    limit = len(keys) if max_scans is None else min(max_scans, len(keys))
    for k in range(1, limit + 1):
        for subset in combinations(keys, k):
            if _expressible(subset, catalog, domain, target):
                return k
    raise PlanningError(
        f"target {sorted(target)} not expressible from catalog within "
        f"{limit} scans"
    )


def plan_expression(
    catalog: dict[Hashable, frozenset[int]],
    domain: Sequence[int],
    target: frozenset[int],
    max_scans: int | None = None,
) -> Expr:
    """A scan-minimal expression computing ``target`` from the catalog.

    The witness is an OR over signature atoms (each atom an AND of
    bitmaps and complements), so the number of distinct leaves equals
    :func:`minimal_scan_cost`.
    """
    domain_set = frozenset(domain)
    if target == frozenset():
        return zero()
    if target == domain_set:
        return one()

    cost = minimal_scan_cost(catalog, domain, target, max_scans)
    keys = sorted(catalog, key=repr)
    for subset in combinations(keys, cost):
        if not _expressible(subset, catalog, domain, target):
            continue
        sig = _signatures(subset, catalog, domain)
        atoms = {sig[v] for v in target}
        terms = []
        for atom in sorted(atoms):
            parts = [
                leaf(key) if present else not_of(leaf(key))
                for key, present in zip(subset, atom)
            ]
            terms.append(and_of(parts))
        return or_of(terms)
    raise PlanningError("internal error: cost found but no witness subset")


# ---------------------------------------------------------------------------
# Physical planning: fused vs materializing
# ---------------------------------------------------------------------------


def plan_physical(expr: Expr, length: int, block_words: int | None = None) -> str:
    """``"fused"`` or ``"materialize"`` for one constituent subtree.

    Fusion pays off when intermediates would otherwise stream through
    main memory, so it needs (a) a vector long enough to span several
    blocks — short vectors already fit whole in L2, and the per-block
    numpy dispatch would cost more than it saves — and (b) at least two
    logical operations, since with zero or one there is no intermediate
    to eliminate.  Both accounting paths charge identically, so this
    decision is pure physics: it can never change a query's cost-model
    numbers, only its wall-clock.
    """
    from repro.expr.evaluator import expression_operation_count
    from repro.expr.fused import DEFAULT_BLOCK_WORDS, clamp_block_words

    if block_words is None:
        block_words = DEFAULT_BLOCK_WORDS
    block_words = clamp_block_words(block_words)
    words = (length + 63) // 64
    if words < 2 * block_words:
        return "materialize"
    if expression_operation_count(expr) < 2:
        return "materialize"
    return "fused"
