"""Boolean expression engine over stored bitmaps.

Every encoding scheme in the paper answers a query by combining a few
stored bitmaps with AND/OR/XOR/NOT (Equations 1, 2, 4-6).  This
subpackage provides the shared machinery:

* :mod:`repro.expr.nodes` — the expression AST (``Leaf``, ``Not``,
  ``And``, ``Or``, ``Xor``, ``Const``);
* :mod:`repro.expr.simplify` — algebraic simplification;
* :mod:`repro.expr.evaluator` — evaluation against a bitmap fetcher with
  common-subexpression elimination and scan/operation accounting;
* :mod:`repro.expr.planner` — a brute-force planner that finds the
  minimal number of bitmap scans needed to answer a query under an
  arbitrary bitmap catalog (used to validate the hand-derived evaluation
  equations and the optimality theorems).
"""

from repro.expr.evaluator import (
    EvalStats,
    evaluate,
    expression_operation_count,
    expression_scan_count,
)
from repro.expr.fused import (
    DEFAULT_BLOCK_WORDS,
    evaluate_fused,
    evaluate_fused_streams,
)
from repro.expr.nodes import (
    And,
    Const,
    Expr,
    Leaf,
    Not,
    Or,
    Xor,
    and_of,
    leaf,
    not_of,
    one,
    or_of,
    xor_of,
    zero,
)
from repro.expr.planner import minimal_scan_cost, plan_expression, plan_physical
from repro.expr.render import to_dot, to_tree
from repro.expr.simplify import simplify
from repro.expr.threshold import (
    AtLeast,
    Exactly,
    Majority,
    Threshold,
    at_least,
    exactly,
    lower_wide_ors,
    majority,
)

__all__ = [
    "Expr",
    "Leaf",
    "Not",
    "And",
    "Or",
    "Xor",
    "Const",
    "Threshold",
    "AtLeast",
    "Exactly",
    "Majority",
    "at_least",
    "exactly",
    "majority",
    "lower_wide_ors",
    "leaf",
    "not_of",
    "and_of",
    "or_of",
    "xor_of",
    "one",
    "zero",
    "simplify",
    "evaluate",
    "evaluate_fused",
    "evaluate_fused_streams",
    "DEFAULT_BLOCK_WORDS",
    "EvalStats",
    "expression_scan_count",
    "expression_operation_count",
    "minimal_scan_cost",
    "plan_expression",
    "plan_physical",
    "to_tree",
    "to_dot",
]
