"""Threshold (k-of-N) expression nodes and symmetric-function helpers.

``Threshold(k, operands)`` is true at a row exactly when at least ``k``
of its operands are true there — the symmetric boolean function of
Kaser & Lemire's "beyond unions and intersections", generalizing the
paper's wide membership disjunctions: ``Threshold(1, ...)`` is OR,
``Threshold(n, ...)`` is AND, and intermediate ``k`` opens the k-of-N
query class (fraud rules, audience segmentation) that an OR/AND chain
cannot express without exponential blowup.

Counting semantics matter: operands are a *multiset*, so a duplicated
operand contributes twice to the count — ``Threshold(2, (x, x))`` is
``x``, not ``ZERO``.  Simplification therefore never deduplicates
threshold children (see :func:`repro.expr.simplify.simplify`).

Helpers:

* :func:`at_least` (alias ``AtLeast``) — ``count >= k`` with the
  degenerate bounds folded to constants;
* :func:`exactly` (alias ``Exactly``) — ``count == k`` as
  ``at_least(k) AND NOT at_least(k + 1)``;
* :func:`majority` (alias ``Majority``) — strictly more than half;
* :func:`lower_wide_ors` — the planner rewrite turning an OR of many
  equal-cost children into ``Threshold(1, ...)`` so wide membership
  unions evaluate as a single multi-way counting pass.

Evaluation lives with the other node types: the materializing
evaluator counts via :func:`repro.compress.multiway.threshold_vectors`,
the fused evaluator keeps a per-plan
:class:`~repro.compress.multiway.ThresholdCounter` and counts block by
block, and the compressed engine streams payloads through
:func:`repro.compress.multiway.multiway_threshold`.  A threshold over
``n`` children charges ``n`` bulk operations to the cost model
(``n`` counter additions; the compare is folded into the last), keeping
:func:`repro.expr.evaluator.expression_operation_count` exact across
every physical plan.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import BitmapError
from repro.expr.nodes import Const, Expr, Leaf, Or, not_of, one, zero


@dataclass(frozen=True, slots=True)
class Threshold(Expr):
    """True where at least ``k`` of ``operands`` are true (``k >= 1``)."""

    k: int
    operands: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if not self.operands:
            raise BitmapError("threshold needs at least one operand")
        if self.k < 1:
            raise BitmapError(f"threshold k must be >= 1, got {self.k}")

    def _collect_leaves(self, out: list[Leaf]) -> None:
        for child in self.operands:
            child._collect_leaves(out)

    def children(self) -> tuple[Expr, ...]:
        return self.operands

    def value_set(self, catalog, domain):
        counts: Counter = Counter()
        for child in self.operands:
            for value in child.value_set(catalog, domain):
                counts[value] += 1
        return frozenset(v for v, c in counts.items() if c >= self.k)

    def __str__(self) -> str:
        inner = ", ".join(str(c) for c in self.operands)
        return f"AT-LEAST-{self.k}({inner})"

    __and__ = Expr.__and__
    __or__ = Expr.__or__
    __xor__ = Expr.__xor__
    __invert__ = Expr.__invert__


def at_least(k: int, exprs: Iterable[Expr]) -> Expr:
    """``count >= k`` with degenerate bounds folded to constants.

    ``k <= 0`` is always true, ``k > n`` never; a single operand with
    ``k == 1`` is the operand itself.
    """
    items = tuple(exprs)
    k = int(k)
    if k <= 0:
        return one()
    if k > len(items):
        return zero()
    if len(items) == 1:
        return items[0]
    return Threshold(k, items)


def exactly(k: int, exprs: Iterable[Expr]) -> Expr:
    """``count == k``: at least ``k`` but not at least ``k + 1``."""
    items = tuple(exprs)
    k = int(k)
    if k < 0 or k > len(items):
        return zero()
    if k == len(items):
        return at_least(k, items)
    if k == 0:
        return not_of(at_least(1, items))
    return at_least(k, items) & not_of(at_least(k + 1, items))


def majority(exprs: Iterable[Expr]) -> Expr:
    """Strictly more than half of the operands are true."""
    items = tuple(exprs)
    return at_least(len(items) // 2 + 1, items)


#: CamelCase aliases matching the symmetric-function naming of the
#: literature (``AtLeast(2, ...)`` reads like a node constructor).
AtLeast = at_least
Exactly = exactly
Majority = majority


def lower_wide_ors(expr: Expr, min_fanin: int = 4) -> Expr:
    """Rewrite wide ORs of equal-cost children into ``Threshold(1, ...)``.

    An ``Or`` with at least ``min_fanin`` children whose subtrees all
    carry the same operation cost (the common case: a membership
    query's constituents, or an equality scheme's slot disjunction)
    becomes a single threshold node, which every engine evaluates as
    one multi-way counting pass instead of a pairwise fold.  Children
    of unequal cost are left alone — folding those first is cheaper
    than widening the counter.  Applied bottom-up; all other nodes are
    rebuilt unchanged.
    """
    from repro.expr.evaluator import expression_operation_count
    from repro.expr.nodes import And, Not, Xor

    def rebuild(node: Expr) -> Expr:
        if isinstance(node, (Leaf, Const)):
            return node
        if isinstance(node, Not):
            return Not(rebuild(node.child))
        if isinstance(node, Threshold):
            return Threshold(
                node.k, tuple(rebuild(c) for c in node.operands)
            )
        children = tuple(rebuild(c) for c in node.children())
        if isinstance(node, Or) and len(children) >= min_fanin:
            costs = {expression_operation_count(c) for c in children}
            if len(costs) == 1:
                return Threshold(1, children)
        if isinstance(node, And):
            return And(children)
        if isinstance(node, Xor):
            return Xor(children)
        return Or(children)

    return rebuild(expr)
