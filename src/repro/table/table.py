"""Tables: several indexed attributes over one record set.

A :class:`Table` owns one :class:`~repro.index.BitmapIndex` per indexed
column (each with its own encoding/decomposition/codec, chosen per the
column's query mix) plus a long-lived query engine per column so that
repeated dashboard queries hit the buffer pool.  Selections combine
per-attribute predicates with AND or OR, optionally negated per
predicate — the classic bitmap query plan.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.bitmap import BitVector
from repro.errors import QueryError, ReproError
from repro.expr import EvalStats
from repro.index.bitmap_index import BitmapIndex, IndexSpec
from repro.index.evaluation import QueryEngine
from repro.queries.model import IntervalQuery, MembershipQuery

@dataclass(frozen=True)
class IsNull:
    """Predicate marker: the column's value is missing."""


@dataclass(frozen=True)
class IsNotNull:
    """Predicate marker: the column's value is present."""


Query = IntervalQuery | MembershipQuery | IsNull | IsNotNull


@dataclass(frozen=True)
class ColumnConfig:
    """Index configuration for one table column.

    ``reorder`` opts this column's index into the build-time
    row-reordering pass (:mod:`repro.table.reorder`) when the column is
    indexed standalone; a table-level ``reorder=`` on
    :meth:`Table.from_columns` supersedes it with one joint sort shared
    by every column.
    """

    cardinality: int
    scheme: str = "I"
    num_components: int = 1
    codec: str = "raw"
    reorder: str = "none"

    def to_spec(self) -> IndexSpec:
        """The equivalent :class:`~repro.index.IndexSpec`."""
        return IndexSpec(
            cardinality=self.cardinality,
            scheme=self.scheme,
            num_components=self.num_components,
            codec=self.codec,
            reorder=self.reorder,
        )


@dataclass
class SelectionResult:
    """Answer of a multi-attribute selection.

    ``bitmap`` is always in *original* row order: on a reordered build
    each engine translates its answer back through the stored
    permutation at the result boundary, before negation, validity
    masking and cross-column combination happen here — so
    :meth:`row_ids` returns the record ids the caller loaded, never
    sorted-layout positions.
    """

    bitmap: BitVector
    #: Per-attribute scan/operation statistics.
    per_column: dict[str, EvalStats] = field(default_factory=dict)
    #: Total simulated milliseconds across all touched columns.
    simulated_ms: float = 0.0

    @property
    def row_count(self) -> int:
        """Number of qualifying records."""
        return self.bitmap.count()

    def row_ids(self) -> np.ndarray:
        """Sorted qualifying record ids (original row numbering)."""
        return self.bitmap.to_indices()

    @property
    def total_scans(self) -> int:
        """Bitmap scans summed over all predicates."""
        return sum(stats.scans for stats in self.per_column.values())


class Table:
    """A fixed-length record set with per-column bitmap indexes."""

    def __init__(self, num_records: int):
        if num_records < 0:
            raise ReproError(f"num_records must be >= 0, got {num_records}")
        self._num_records = num_records
        self._indexes: dict[str, BitmapIndex] = {}
        self._engines: dict[str, QueryEngine] = {}
        #: Per-column validity bitmap; None means every record is valid.
        self._validity: dict[str, BitVector | None] = {}
        #: Table-level joint row reordering applied at build time, or
        #: None.  Kept in *original* row space alongside validity — the
        #: per-column indexes own (independent copies of) the
        #: permutation and map their answers back before this layer
        #: combines them.
        self._reordering = None

    @classmethod
    def from_columns(
        cls,
        columns: Mapping[str, np.ndarray],
        configs: Mapping[str, ColumnConfig],
        valid_masks: Mapping[str, np.ndarray] | None = None,
        reorder: str = "none",
    ) -> "Table":
        """Build a table from column arrays and per-column configs.

        ``valid_masks`` optionally maps column names to boolean arrays
        marking non-NULL records.

        ``reorder="lexicographic"`` runs the build-time row-reordering
        pass (:mod:`repro.table.reorder`): one joint sort — column order
        chosen histogram-aware, lowest cardinality / most skewed first —
        shared by every column's index, so all of them compress better
        at once.  Query results still report original record ids; the
        permutation is applied inside each engine at the result
        boundary.
        """
        from repro.table.reorder import reorder_rows

        lengths = {name: np.asarray(col).size for name, col in columns.items()}
        if len(set(lengths.values())) > 1:
            raise ReproError(f"column lengths differ: {lengths}")
        num_records = next(iter(lengths.values()), 0)
        table = cls(num_records)
        _, reordering = reorder_rows(columns, strategy=reorder)
        if reordering.is_identity:
            reordering = None
        table._reordering = reordering
        for name, values in columns.items():
            if name not in configs:
                raise ReproError(f"no ColumnConfig for column {name!r}")
            mask = None if valid_masks is None else valid_masks.get(name)
            table.add_column(
                name,
                values,
                configs[name],
                valid_mask=mask,
                reordering=None if reordering is None else reordering.copy(),
            )
        return table

    # ------------------------------------------------------------------

    @property
    def num_records(self) -> int:
        """Number of records in the relation."""
        return self._num_records

    @property
    def column_names(self) -> list[str]:
        """Indexed column names, in insertion order."""
        return list(self._indexes)

    @property
    def reordering(self):
        """The table-level joint row reordering, or None when unsorted."""
        return self._reordering

    def add_column(
        self,
        name: str,
        values: np.ndarray,
        config: ColumnConfig,
        valid_mask: np.ndarray | None = None,
        reordering=None,
    ) -> BitmapIndex:
        """Index a new column; all columns share the record count.

        ``valid_mask`` marks non-NULL records; NULL records' values are
        ignored (they are indexed under value 0 but masked out of every
        answer, per SQL semantics: a NULL matches no predicate and no
        negated predicate).

        ``reordering`` hands the index a precomputed row permutation
        (the table-level joint sort); ``values`` and ``valid_mask`` stay
        in original row order — the index applies the permutation
        itself, and validity stays original-space because engine answers
        are mapped back before this layer touches them.
        """
        vals = np.asarray(values)
        if vals.size != self._num_records:
            raise ReproError(
                f"column {name!r} has {vals.size} records, table has "
                f"{self._num_records}"
            )
        if name in self._indexes:
            raise ReproError(f"column {name!r} already indexed")

        validity: BitVector | None = None
        if valid_mask is not None:
            mask = np.asarray(valid_mask, dtype=bool)
            if mask.size != self._num_records:
                raise ReproError(
                    f"valid_mask for {name!r} has {mask.size} entries, "
                    f"table has {self._num_records}"
                )
            if not mask.all():
                validity = BitVector.from_bools(mask)
                vals = np.where(mask, vals, 0)

        index = BitmapIndex.build(
            vals, config.to_spec(), reordering=reordering
        )
        self._indexes[name] = index
        self._engines[name] = index.engine()
        self._validity[name] = validity
        return index

    def validity_of(self, name: str) -> BitVector:
        """The column's validity bitmap (all ones when NULL-free)."""
        if name not in self._indexes:
            raise QueryError(
                f"no indexed column {name!r}; have {self.column_names}"
            )
        validity = self._validity.get(name)
        if validity is None:
            return BitVector.ones(self._num_records)
        return validity.copy()

    def index_for(self, name: str) -> BitmapIndex:
        """The bitmap index of one column."""
        try:
            return self._indexes[name]
        except KeyError:
            raise QueryError(
                f"no indexed column {name!r}; have {self.column_names}"
            ) from None

    def total_index_bytes(self) -> int:
        """Stored size of all column indexes."""
        return sum(index.size_bytes() for index in self._indexes.values())

    # ------------------------------------------------------------------

    def select(
        self,
        predicates: Mapping[str, Query],
        mode: str = "and",
        negate: frozenset[str] | set[str] = frozenset(),
    ) -> SelectionResult:
        """Evaluate a multi-attribute selection.

        ``predicates`` maps column names to per-attribute queries;
        ``mode`` combines the per-attribute answers with ``"and"`` or
        ``"or"``; columns listed in ``negate`` contribute their
        complement (``NOT (x <= A <= y)``, Section 1's negated interval
        form, generalized to membership predicates).
        """
        if not predicates:
            raise QueryError("selection needs at least one predicate")
        if mode not in ("and", "or"):
            raise QueryError(f"unknown combination mode {mode!r}")
        unknown_negations = set(negate) - set(predicates)
        if unknown_negations:
            raise QueryError(
                f"negated columns without predicates: {sorted(unknown_negations)}"
            )

        combined: BitVector | None = None
        per_column: dict[str, EvalStats] = {}
        simulated = 0.0
        for name, query in predicates.items():
            engine = self._engines.get(name)
            if engine is None:
                raise QueryError(
                    f"no indexed column {name!r}; have {self.column_names}"
                )
            validity = self._validity.get(name)
            if isinstance(query, (IsNull, IsNotNull)):
                if name in negate:
                    raise QueryError(
                        "negate IS [NOT] NULL by using the opposite marker"
                    )
                answer = self.validity_of(name)
                if isinstance(query, IsNull):
                    answer.invert_inplace()
                per_column[name] = EvalStats()
            else:
                result = engine.execute(query)
                answer = result.bitmap
                # ``answer`` is already in original row order: on a
                # reordered index the engine negates/combines in sorted
                # (permuted) space and maps back before returning, so
                # complementing here — and the validity AND below, which
                # is original-space — never mixes row spaces.
                # SQL three-valued logic: NULLs satisfy neither the
                # predicate nor its negation.
                if name in negate:
                    answer = ~answer
                if validity is not None:
                    answer = answer & validity
                per_column[name] = result.stats
                simulated += result.simulated_ms
            if combined is None:
                combined = answer
            elif mode == "and":
                combined &= answer
            else:
                combined |= answer
        assert combined is not None
        return SelectionResult(
            bitmap=combined, per_column=per_column, simulated_ms=simulated
        )

    def count(self, predicates: Mapping[str, Query], mode: str = "and") -> int:
        """Convenience: qualifying-record count of a selection."""
        return self.select(predicates, mode=mode).row_count

    def __repr__(self) -> str:
        return (
            f"Table(records={self._num_records}, "
            f"columns={self.column_names})"
        )
