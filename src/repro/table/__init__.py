"""Multi-attribute relations over bitmap indexes.

The paper motivates bitmap indexes with decision-support queries that
constrain several attributes at once; the per-attribute answers are
combined with bit-wise AND/OR (Section 1).  This subpackage provides
that layer: a :class:`~repro.table.table.Table` holds one bitmap index
per indexed column and evaluates multi-attribute selections.
"""

from repro.table.advisor import TableRecommendation, recommend_table
from repro.table.reorder import (
    REORDER_STRATEGIES,
    RowReordering,
    choose_column_order,
    reorder_rows,
)
from repro.table.table import (
    ColumnConfig,
    IsNotNull,
    IsNull,
    SelectionResult,
    Table,
)

__all__ = [
    "Table",
    "ColumnConfig",
    "SelectionResult",
    "IsNull",
    "IsNotNull",
    "recommend_table",
    "TableRecommendation",
    "RowReordering",
    "reorder_rows",
    "choose_column_order",
    "REORDER_STRATEGIES",
]
