"""Table-level index advisor: split one space budget across columns.

The single-column advisor (:func:`repro.index.recommend`) finds the
per-column space-time frontier.  A table has one budget for *all* its
indexes, which turns design selection into a small knapsack: pick one
design per column so that total size fits the budget and total workload
time is minimal.  Candidate sets per column are tiny (a dozen design
points), so the knapsack is solved exactly by dynamic programming over
a page-discretized budget.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.spacetime import SpaceTimePoint, measure_design
from repro.errors import ExperimentError
from repro.index.advisor import candidate_specs
from repro.queries.model import IntervalQuery, MembershipQuery

Query = IntervalQuery | MembershipQuery

#: Budget discretization for the DP (bytes per knapsack unit).
BUDGET_GRANULARITY = 4096


@dataclass(frozen=True)
class TableRecommendation:
    """Outcome of a table-level advisor run."""

    #: Chosen design per column (None when nothing fits).
    per_column: dict[str, SpaceTimePoint] | None
    #: Total size of the chosen designs, bytes.
    total_bytes: int
    #: Total workload time of the chosen designs, simulated ms.
    total_time_ms: float
    #: All measured candidates, per column.
    candidates: dict[str, tuple[SpaceTimePoint, ...]]


def recommend_table(
    columns: Mapping[str, np.ndarray],
    cardinalities: Mapping[str, int],
    workloads: Mapping[str, Mapping[str, Sequence[Query]]],
    space_budget_bytes: int,
    schemes: Sequence[str] = ("E", "R", "I", "EI*"),
    component_counts: Sequence[int] = (1, 2),
    codecs: Sequence[str] = ("raw", "bbc"),
) -> TableRecommendation:
    """Choose one index design per column under a shared budget.

    ``workloads`` maps column name -> query sets (as in
    :func:`repro.analysis.measure_design`); every column must appear in
    all three mappings.  Raises :class:`ExperimentError` on empty or
    inconsistent inputs.  When no combination fits the budget,
    ``per_column`` is None and the candidate tables are still returned.
    """
    names = list(columns)
    if not names:
        raise ExperimentError("table advisor needs at least one column")
    for name in names:
        if name not in cardinalities or name not in workloads:
            raise ExperimentError(
                f"column {name!r} missing a cardinality or workload"
            )

    # Measure every candidate per column.
    measured: dict[str, list[SpaceTimePoint]] = {}
    for name in names:
        specs = candidate_specs(
            cardinalities[name], schemes, component_counts, codecs
        )
        points = [
            measure_design(np.asarray(columns[name]), spec, workloads[name])
            for spec in specs
        ]
        if not points:
            raise ExperimentError(
                f"no candidate designs for column {name!r}"
            )
        measured[name] = points

    # Exact knapsack over the discretized budget: dp[u] = (time, picks).
    units = max(1, space_budget_bytes // BUDGET_GRANULARITY)
    infinity = float("inf")
    dp: list[tuple[float, dict[str, SpaceTimePoint]]] = [
        (0.0, {})
    ] + [(infinity, {})] * units

    for name in names:
        next_dp: list[tuple[float, dict[str, SpaceTimePoint]]] = [
            (infinity, {})
        ] * (units + 1)
        for used in range(units + 1):
            time_so_far, picks = dp[used]
            if time_so_far == infinity:
                continue
            for point in measured[name]:
                cost_units = -(-point.space_bytes // BUDGET_GRANULARITY)
                total_units = used + cost_units
                if total_units > units:
                    continue
                candidate_time = time_so_far + point.avg_time_ms
                if candidate_time < next_dp[total_units][0]:
                    next_dp[total_units] = (
                        candidate_time,
                        {**picks, name: point},
                    )
        dp = next_dp

    best_time = infinity
    best_picks: dict[str, SpaceTimePoint] = {}
    for time_ms, picks in dp:
        if len(picks) == len(names) and time_ms < best_time:
            best_time = time_ms
            best_picks = picks

    candidates = {
        name: tuple(sorted(points, key=lambda p: p.space_bytes))
        for name, points in measured.items()
    }
    if best_time == infinity:
        return TableRecommendation(
            per_column=None,
            total_bytes=0,
            total_time_ms=0.0,
            candidates=candidates,
        )
    return TableRecommendation(
        per_column=best_picks,
        total_bytes=sum(p.space_bytes for p in best_picks.values()),
        total_time_ms=best_time,
        candidates=candidates,
    )
