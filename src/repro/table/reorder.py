"""Build-time row reordering (extension).

Bitmap codecs are run-length compressors, so the order rows arrive in
is a compression knob: sorting the relation lexicographically turns
each value's scattered occurrences into contiguous runs, which
word-aligned codecs (BBC/WAH/EWAH) collapse into a handful of fill
words and roaring collapses into run containers.  Kaser & Lemire
("Histogram-Aware Sorting for Enhanced Word-Aligned Compression in
Bitmap Indexes") and Lemire, Kaser & Aouiche ("Sorting improves
word-aligned bitmap indexes") show integer-factor size reductions and
proportionally faster compressed-domain operations from exactly this
preprocessing pass.

This module provides that pass:

* :func:`choose_column_order` picks the histogram-aware sort-key order
  — lowest cardinality first, most skewed first among ties — so the
  leading sort keys produce the longest runs across *every* column;
* :func:`reorder_rows` sorts a set of columns by that key order and
  returns the reordered columns plus a :class:`RowReordering`;
* :class:`RowReordering` is the stored permutation: it maps positions
  in the sorted layout back to original record ids, so query answers
  computed in sorted space are translated at the result boundary and
  clients never see reordered ids.  Appended rows land *past* the
  sorted prefix as identity entries (:meth:`RowReordering.extend`), so
  tail-append paths (segments, shards) keep working unchanged.

Everything between build and result mapping — compressed-domain ops,
fused evaluation, thresholds, serving — operates purely in sorted
space and needs no knowledge of the permutation.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.bitmap import BitVector
from repro.errors import ReproError

#: Reordering strategies accepted by specs, configs and the CLI.
REORDER_STRATEGIES = ("none", "lexicographic")


def validate_strategy(strategy: str) -> str:
    """``strategy``, or raise for values outside :data:`REORDER_STRATEGIES`."""
    if strategy not in REORDER_STRATEGIES:
        raise ReproError(
            f"unknown reorder strategy {strategy!r}; "
            f"expected one of {REORDER_STRATEGIES}"
        )
    return strategy


class RowReordering:
    """A stored row permutation mapping sorted positions to original ids.

    ``permutation[p]`` is the original record id of the row stored at
    position ``p``; the array is a permutation of ``0..len-1``.
    ``num_sorted`` is the length of the sorted prefix — rows appended
    after the build sit past it in arrival order (identity entries), so
    the permutation stays a bijection without re-sorting the index.
    """

    __slots__ = ("permutation", "num_sorted", "strategy", "_identity")

    def __init__(
        self,
        permutation: np.ndarray,
        num_sorted: int | None = None,
        strategy: str = "lexicographic",
    ):
        perm = np.ascontiguousarray(permutation, dtype=np.int64)
        if perm.ndim != 1:
            raise ReproError(
                f"permutation must be 1-d, got ndim={perm.ndim}"
            )
        self.permutation = perm
        self.num_sorted = perm.size if num_sorted is None else int(num_sorted)
        if not 0 <= self.num_sorted <= perm.size:
            raise ReproError(
                f"sorted prefix {self.num_sorted} outside "
                f"[0, {perm.size}]"
            )
        self.strategy = strategy
        self._identity: bool | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def identity(cls, size: int, strategy: str = "none") -> "RowReordering":
        """The do-nothing reordering over ``size`` rows."""
        return cls(np.arange(size, dtype=np.int64), size, strategy)

    @classmethod
    def from_sort(
        cls, values: np.ndarray, strategy: str = "lexicographic"
    ) -> "RowReordering":
        """Stable ascending sort of one column (its lexicographic order)."""
        vals = np.asarray(values)
        return cls(
            np.argsort(vals, kind="stable").astype(np.int64),
            vals.size,
            strategy,
        )

    @classmethod
    def validated(
        cls,
        permutation: np.ndarray,
        num_sorted: int,
        strategy: str,
        expected_size: int,
    ) -> "RowReordering":
        """Construct from untrusted input (the persistence loader).

        Checks the array is a true permutation of ``0..expected_size-1``
        — a corrupt or truncated permutation would silently misattribute
        every query answer, which is worse than failing the load.
        """
        perm = np.ascontiguousarray(permutation, dtype=np.int64)
        if perm.size != expected_size:
            raise ReproError(
                f"permutation has {perm.size} entries, index has "
                f"{expected_size} records"
            )
        if perm.size and not np.array_equal(
            np.sort(perm), np.arange(perm.size, dtype=np.int64)
        ):
            raise ReproError(
                "permutation is not a bijection over "
                f"[0, {perm.size}): duplicate or out-of-range entries"
            )
        return cls(perm, num_sorted, strategy)

    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of rows covered."""
        return self.permutation.size

    @property
    def is_identity(self) -> bool:
        """True when mapping through this reordering is a no-op.

        Computed once and cached — :meth:`extend` appends identity
        entries, which never changes the answer, so the cache survives
        appends.
        """
        if self._identity is None:
            self._identity = bool(
                np.array_equal(
                    self.permutation,
                    np.arange(self.permutation.size, dtype=np.int64),
                )
            )
        return self._identity

    def copy(self) -> "RowReordering":
        """An independent copy (indexes mutate theirs on append)."""
        return RowReordering(
            self.permutation.copy(), self.num_sorted, self.strategy
        )

    # ------------------------------------------------------------------
    # The two directions
    # ------------------------------------------------------------------

    def apply(self, values: np.ndarray) -> np.ndarray:
        """A column in sorted row order (what indexes are built over)."""
        vals = np.asarray(values)
        if vals.shape[0] != self.permutation.size:
            raise ReproError(
                f"column has {vals.shape[0]} rows, permutation covers "
                f"{self.permutation.size}"
            )
        return vals[self.permutation]

    def to_original(self, row_ids: np.ndarray) -> np.ndarray:
        """Sorted original record ids for sorted-space ``row_ids``."""
        ids = np.asarray(row_ids, dtype=np.int64)
        if ids.size and (
            ids.min() < 0 or ids.max() >= self.permutation.size
        ):
            raise ReproError(
                f"row ids outside [0, {self.permutation.size})"
            )
        out = self.permutation[ids]
        out.sort()
        return out

    def restore_bitmap(self, bitmap: BitVector) -> BitVector:
        """An answer bitmap translated from sorted to original row order.

        Bit ``permutation[p]`` of the result equals bit ``p`` of the
        input — one vectorized scatter, the only per-query cost of the
        whole reordering scheme.
        """
        if len(bitmap) != self.permutation.size:
            raise ReproError(
                f"bitmap length {len(bitmap)} does not match permutation "
                f"size {self.permutation.size}"
            )
        original = np.zeros(self.permutation.size, dtype=bool)
        original[self.permutation] = bitmap.to_bools()
        return BitVector.from_bools(original)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------

    def extend(self, count: int) -> None:
        """Track ``count`` rows appended past the sorted prefix.

        Appended rows keep their arrival positions (identity entries),
        so only the prefix built at sort time is sorted; ``num_sorted``
        is unchanged and records where the sorted run ends.
        """
        if count < 0:
            raise ReproError(f"append count must be >= 0, got {count}")
        if count == 0:
            return
        start = self.permutation.size
        self.permutation = np.concatenate(
            [
                self.permutation,
                np.arange(start, start + count, dtype=np.int64),
            ]
        )

    def __repr__(self) -> str:
        return (
            f"RowReordering({self.strategy!r}, rows={self.size}, "
            f"sorted={self.num_sorted})"
        )


# ---------------------------------------------------------------------------
# Histogram-aware column ordering
# ---------------------------------------------------------------------------


def _histogram_stats(values: np.ndarray) -> tuple[int, float]:
    """(distinct count, normalized entropy) of one column's histogram.

    Entropy is normalized to ``[0, 1]`` (0 = all mass on one value,
    1 = uniform over the distinct values), so it compares columns of
    different cardinalities; lower entropy = more skewed.
    """
    vals = np.asarray(values)
    if vals.size == 0:
        return 0, 0.0
    _, counts = np.unique(vals, return_counts=True)
    distinct = int(counts.size)
    if distinct <= 1:
        return distinct, 0.0
    p = counts / counts.sum()
    entropy = float(-(p * np.log(p)).sum() / np.log(distinct))
    return distinct, entropy


def choose_column_order(
    columns: Mapping[str, np.ndarray]
) -> list[str]:
    """Histogram-aware sort-key order over ``columns``.

    Lowest distinct count first — a low-cardinality leading key gives
    *every* column long runs within each of its few groups — with ties
    broken toward the more skewed histogram (lower normalized entropy:
    skew concentrates rows into fewer, longer runs), then column name
    for determinism.  This is the Kaser & Lemire heuristic.
    """
    stats = {
        name: _histogram_stats(col) for name, col in columns.items()
    }
    return sorted(
        columns,
        key=lambda name: (stats[name][0], stats[name][1], name),
    )


def lexicographic_permutation(
    columns: Mapping[str, np.ndarray], order: Sequence[str]
) -> np.ndarray:
    """Stable lexicographic sort permutation with ``order[0]`` primary."""
    if not order:
        raise ReproError("lexicographic sort needs at least one column")
    keys = [np.asarray(columns[name]) for name in reversed(list(order))]
    sizes = {key.shape[0] for key in keys}
    if len(sizes) > 1:
        raise ReproError(f"column lengths differ: {sorted(sizes)}")
    return np.lexsort(keys).astype(np.int64)


def reorder_rows(
    columns: Mapping[str, np.ndarray],
    strategy: str = "lexicographic",
    order: Sequence[str] | None = None,
) -> tuple[dict[str, np.ndarray], RowReordering]:
    """Sort a set of columns into their compression-friendly row order.

    Returns ``(reordered columns, reordering)``; with
    ``strategy="none"`` the columns come back unchanged under an
    identity reordering.  ``order`` overrides the histogram-aware
    column ordering (primary key first) when given.
    """
    validate_strategy(strategy)
    names = list(columns)
    if strategy == "none" or not names:
        size = np.asarray(columns[names[0]]).shape[0] if names else 0
        return dict(columns), RowReordering.identity(size, strategy)
    if order is None:
        order = choose_column_order(columns)
    else:
        missing = [name for name in order if name not in columns]
        if missing:
            raise ReproError(f"order names unknown columns: {missing}")
    permutation = lexicographic_permutation(columns, order)
    reordering = RowReordering(permutation, permutation.size, strategy)
    reordered = {
        name: np.asarray(col)[permutation] for name, col in columns.items()
    }
    return reordered, reordering
