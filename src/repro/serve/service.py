"""The concurrent query service.

:class:`QueryService` turns a built :class:`~repro.index.BitmapIndex`
into an online, concurrent service:

* **admission control** — a bounded request queue; a full queue sheds
  the submission with a typed :class:`~repro.errors.Overloaded` instead
  of blocking the submitter, so overload is always visible and the
  service never builds an unbounded backlog;
* **deadlines** — each request may carry a timeout; a request whose
  deadline passes before evaluation starts completes with
  :class:`~repro.errors.DeadlineExceeded` (typed, counted, never a
  hang);
* **shared-scan batching** — workers drain the queue in batches and
  evaluate each batch against one shared fetch of the union of the
  batch's bitmaps (:mod:`repro.serve.batcher`), so a bitmap needed by
  several in-flight queries crosses the buffer pool once per batch
  instead of once per query;
* **result caching** — answers are cached under
  ``(index epoch, canonical expression)``
  (:mod:`repro.serve.cache`); :meth:`QueryService.append` bumps the
  index epoch under the scan lock and sweeps stale entries, so a cached
  answer is never served across an append.

Concurrency model: submitters run admission, query rewrite and cache
probes in parallel; batch evaluation serializes on one *scan lock* —
the simulated disk is a single device, so concurrent scans would not
overlap I/O anyway, and serializing them keeps the (deliberately
lock-free) buffer pool, cost clock and store consistent.  Appends take
the same lock, which is what makes service results linearizable against
a serial oracle.

Worker threads report into :mod:`repro.obs` (when installed) under the
``serve.*`` metric names; emissions are funneled through one lock
because the obs instruments themselves are single-threaded by design.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro import obs as _obs
from repro.bitmap import BitVector
from repro.errors import (
    DeadlineExceeded,
    Overloaded,
    QueryError,
    ServeError,
    ServiceClosed,
)
from repro.expr import EvalStats, Expr
from repro.index.compressed_engine import CompressedQueryEngine
from repro.index.evaluation import QueryEngine
from repro.queries.model import IntervalQuery, MembershipQuery, ThresholdQuery
from repro.serve.batcher import plan_batches
from repro.serve.cache import ResultCache
from repro.storage import CostClock

Query = IntervalQuery | MembershipQuery | ThresholdQuery

#: Evaluation engines the service can run on.
ENGINES = ("decoded", "compressed")


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for one :class:`QueryService`."""

    #: Bound of the request queue; submissions beyond it are shed.
    max_queue: int = 64
    #: Worker threads draining the queue.
    workers: int = 2
    #: Maximum requests evaluated against one shared scan.
    max_batch: int = 16
    #: How long a worker lingers for more requests before scanning a
    #: non-full batch (0 = scan whatever is queued immediately).
    batch_window_s: float = 0.0
    #: Default per-request timeout (None = no deadline).
    default_timeout_s: float | None = None
    #: Result-cache capacity in entries (0 disables caching).
    cache_entries: int = 256
    #: Buffer-pool capacity; None uses the engine's default sizing.
    buffer_pages: int | None = None
    #: ``"decoded"`` (BufferPool + BitVector ops) or ``"compressed"``
    #: (payload pool + compressed-domain ops).
    engine: str = "decoded"
    #: Physical evaluation mode for the decoded engine: ``"auto"``
    #: (planner decides per constituent), ``True`` (always fused) or
    #: ``False`` (always materializing).  See ``docs/zero_copy.md``.
    fused: bool | str = "auto"

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ServeError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.workers < 1:
            raise ServeError(f"workers must be >= 1, got {self.workers}")
        if self.max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.engine not in ENGINES:
            raise ServeError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )


@dataclass
class ServeResult:
    """Answer plus serving metadata for one request."""

    bitmap: BitVector
    stats: EvalStats
    #: Simulated cost of this request: its own evaluation CPU plus an
    #: even share of its batch's shared fetch cost.
    simulated_ms: float
    #: Index epoch the answer reflects (the linearization point).
    epoch: int
    #: True when served from the result cache (zero bitmap reads).
    cached: bool
    #: Number of requests evaluated by the same shared scan (0 for a
    #: cache fast-path hit that never entered a batch).
    batch_size: int
    #: Wall-clock submit-to-completion latency.
    wall_ms: float = 0.0

    @property
    def row_count(self) -> int:
        """Number of qualifying records."""
        return self.bitmap.count()

    def row_ids(self):
        """Sorted record ids of qualifying records."""
        return self.bitmap.to_indices()


@dataclass
class ServiceStats:
    """Always-on counters for one service (obs mirrors these when
    installed)."""

    submitted: int = 0
    completed: int = 0
    shed: int = 0
    timeouts: int = 0
    cancelled: int = 0
    batches: int = 0
    batched_queries: int = 0
    appends: int = 0


class _Request:
    """One queued query plus its completion plumbing."""

    __slots__ = (
        "query",
        "constituents",
        "expression",
        "keys",
        "deadline",
        "submitted_at",
        "event",
        "result",
        "error",
    )

    def __init__(
        self,
        query: Query,
        constituents: list[Expr],
        deadline: float | None,
    ):
        self.query = query
        self.constituents = constituents
        self.expression = tuple(constituents)
        self.keys = frozenset(
            key for expr in constituents for key in expr.leaf_keys()
        )
        self.deadline = deadline
        self.submitted_at = time.monotonic()
        self.event = threading.Event()
        self.result: ServeResult | None = None
        self.error: Exception | None = None


class Ticket:
    """Handle to an in-flight request."""

    def __init__(self, request: _Request):
        self._request = request

    def done(self) -> bool:
        """True once the request completed (successfully or not)."""
        return self._request.event.is_set()

    def result(self, timeout: float | None = None) -> ServeResult:
        """Wait for and return the result.

        Raises the request's typed error
        (:class:`~repro.errors.DeadlineExceeded`,
        :class:`~repro.errors.ServiceClosed`, ...) if it failed, or
        :class:`TimeoutError` if *this wait* (not the request's own
        deadline) timed out.
        """
        if not self._request.event.wait(timeout):
            raise TimeoutError(
                f"request not completed within {timeout}s wait"
            )
        if self._request.error is not None:
            raise self._request.error
        assert self._request.result is not None
        return self._request.result


class QueryService:
    """A concurrent, batching, caching query service over one index.

    Use as a context manager (close() drains the queue and joins the
    workers)::

        with QueryService(index) as service:
            ticket = service.submit(IntervalQuery(3, 17, 200))
            result = ticket.result()
    """

    def __init__(
        self,
        index,
        config: ServiceConfig | None = None,
        clock: CostClock | None = None,
    ):
        self.index = index
        self.config = config if config is not None else ServiceConfig()
        self.clock = clock if clock is not None else CostClock()
        if self.config.engine == "compressed":
            self.engine = CompressedQueryEngine(
                index,
                buffer_pages=self.config.buffer_pages,
                clock=self.clock,
            )
        else:
            self.engine = QueryEngine(
                index,
                buffer_pages=self.config.buffer_pages,
                clock=self.clock,
                fused=self.config.fused,
            )
        self.cache = ResultCache(self.config.cache_entries)
        self.stats = ServiceStats()
        self._queue: deque[_Request] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._scan_lock = threading.Lock()
        self._obs_lock = threading.Lock()
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{i}",
                daemon=True,
            )
            for i in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- context management -------------------------------------------------

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting requests and join the workers.

        With ``drain=True`` (default) queued requests are still
        evaluated; with ``drain=False`` they complete immediately with
        :class:`~repro.errors.ServiceClosed`.
        """
        cancelled: list[_Request] = []
        with self._not_empty:
            if self._closed:
                return
            self._closed = True
            if not drain:
                while self._queue:
                    cancelled.append(self._queue.popleft())
            self._not_empty.notify_all()
        # Fail outside the queue lock: _fail takes it to bump counters.
        for request in cancelled:
            self._fail(
                request,
                ServiceClosed("service closed before evaluation"),
                "cancelled",
            )
        for worker in self._workers:
            worker.join(timeout)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called."""
        return self._closed

    # -- submission ---------------------------------------------------------

    def submit(self, query: Query, timeout_s: float | None = None) -> Ticket:
        """Enqueue ``query``; returns a :class:`Ticket` immediately.

        Raises :class:`~repro.errors.Overloaded` when the queue is full
        and :class:`~repro.errors.ServiceClosed` after :meth:`close`.
        A cached answer (current epoch) completes the ticket without
        queueing — the cache fast path reads no bitmaps and consumes no
        queue slot.
        """
        if self._closed:
            raise ServiceClosed("cannot submit to a closed service")
        request = self._make_request(query, timeout_s)
        with self._lock:
            self.stats.submitted += 1
        self._emit_count("serve.submitted")

        # Opportunistic probe: a miss here is re-probed (and counted,
        # once) when a worker picks the request up, so this probe must
        # not record it — see ResultCache.get(record_miss=...).
        epoch = self.index.epoch
        cached = self.cache.get(epoch, request.expression, record_miss=False)
        if cached is not None:
            self._finish(
                request,
                ServeResult(
                    bitmap=cached,
                    stats=EvalStats(),
                    simulated_ms=0.0,
                    epoch=epoch,
                    cached=True,
                    batch_size=0,
                ),
            )
            self._emit_count("serve.cache.hits")
            return Ticket(request)

        with self._not_empty:
            if self._closed:
                raise ServiceClosed("cannot submit to a closed service")
            if len(self._queue) >= self.config.max_queue:
                self.stats.shed += 1
                self._emit_count("serve.shed")
                raise Overloaded(
                    f"request queue full ({self.config.max_queue} waiting); "
                    f"retry with backoff"
                )
            self._queue.append(request)
            depth = len(self._queue)
            self._not_empty.notify()
        self._emit_gauge("serve.queue_depth", depth)
        return Ticket(request)

    def execute(self, query: Query, timeout_s: float | None = None) -> ServeResult:
        """Submit and wait: blocking convenience wrapper."""
        return self.submit(query, timeout_s).result()

    def execute_many(self, queries: list[Query]) -> list[ServeResult]:
        """Evaluate ``queries`` synchronously in the caller's thread.

        The deterministic serving path: the full list is planned into
        shared-scan batches (grouped by bitmap sharing, capped at
        ``max_batch``) and evaluated in plan order, bypassing the queue
        and worker pool — no admission control, no thread timing.  The
        benchmark gate uses this to compare batched vs. serial page
        counts without scheduling noise.
        """
        if self._closed:
            raise ServiceClosed("cannot submit to a closed service")
        requests = [self._make_request(query, None) for query in queries]
        with self._lock:
            self.stats.submitted += len(requests)
        for batch in plan_batches(
            [request.keys for request in requests], self.config.max_batch
        ):
            self._run_shared_scan([requests[i] for i in batch])
        results = []
        for request in requests:
            if request.error is not None:
                raise request.error
            results.append(request.result)
        return results

    def append(self, values) -> "object":
        """Append a batch to the index, invalidating dependent state.

        Serialized with shared scans via the scan lock; the index epoch
        bump plus :meth:`ResultCache.invalidate_below` guarantee no
        pre-append answer survives, and the buffer pool re-reads
        replaced bitmaps through the store's write versions.  Returns
        the index's :class:`~repro.index.bitmap_index.UpdateReport`.
        """
        with self._scan_lock:
            report = self.index.append(values)
            dropped = self.cache.invalidate_below(self.index.epoch)
            with self._lock:
                self.stats.appends += 1
        self._emit_count("serve.appends")
        if dropped:
            self._emit_count("serve.cache.invalidated", float(dropped))
        return report

    # -- internals ----------------------------------------------------------

    def _make_request(
        self, query: Query, timeout_s: float | None
    ) -> _Request:
        if isinstance(query, IntervalQuery):
            constituents = [self.index.rewriter.rewrite_interval(query)]
        elif isinstance(query, MembershipQuery):
            constituents = self.index.rewriter.rewrite_membership(query)
        elif isinstance(query, ThresholdQuery):
            constituents = [self.index.rewriter.rewrite_threshold(query)]
        else:
            raise QueryError(f"unsupported query type {type(query).__name__}")
        timeout = (
            timeout_s
            if timeout_s is not None
            else self.config.default_timeout_s
        )
        deadline = time.monotonic() + timeout if timeout is not None else None
        return _Request(query, constituents, deadline)

    def _worker_loop(self) -> None:
        config = self.config
        while True:
            with self._not_empty:
                while not self._queue and not self._closed:
                    self._not_empty.wait()
                if not self._queue:
                    return  # closed and drained
                if (
                    config.batch_window_s > 0
                    and len(self._queue) < config.max_batch
                    and not self._closed
                ):
                    self._not_empty.wait(config.batch_window_s)
                taken = [
                    self._queue.popleft()
                    for _ in range(min(len(self._queue), config.max_batch))
                ]
                depth = len(self._queue)
            self._emit_gauge("serve.queue_depth", depth)
            if taken:
                self._run_shared_scan(taken)

    def _run_shared_scan(self, requests: list[_Request]) -> None:
        """Evaluate a batch against one shared fetch of its bitmaps."""
        with self._scan_lock:
            epoch = self.index.epoch
            pending: list[_Request] = []
            now = time.monotonic()
            for request in requests:
                if request.deadline is not None and now > request.deadline:
                    self._fail(
                        request,
                        DeadlineExceeded(
                            f"deadline passed before evaluation of "
                            f"{request.query}"
                        ),
                        "timeouts",
                    )
                    continue
                cached = self.cache.get(epoch, request.expression)
                if cached is not None:
                    self._finish(
                        request,
                        ServeResult(
                            bitmap=cached,
                            stats=EvalStats(),
                            simulated_ms=0.0,
                            epoch=epoch,
                            cached=True,
                            batch_size=0,
                        ),
                    )
                    self._emit_count("serve.cache.hits")
                    continue
                pending.append(request)
            if not pending:
                return
            # These requests are this scan's real cache misses (the
            # submit-path probe was silent); one emission per request
            # keeps obs `serve.cache.hits + serve.cache.misses` equal
            # to completed non-failed requests.
            self._emit_count("serve.cache.misses", float(len(pending)))

            with self._lock:
                self.stats.batches += 1
                self.stats.batched_queries += len(pending)
            self._emit_observe("serve.batch_size", float(len(pending)))

            # One pass over the union of the batch's bitmaps.  The
            # shared cache pins the batch working set for the scan's
            # duration (bounded by max_batch), exactly as the
            # component-wise strategy pins one query's working set.
            keys = sorted(
                {key for request in pending for key in request.keys},
                key=lambda key: (key[0], repr(key[1])),
            )
            fetch_start = self.clock.total_ms
            shared: dict = {}
            for key in keys:
                shared[key] = self.engine.pool.fetch(key)
            fetch_share = (self.clock.total_ms - fetch_start) / len(pending)

            for request in pending:
                eval_start = self.clock.total_ms
                stats = EvalStats()
                try:
                    bitmap = self.engine.evaluate_shared(
                        list(request.constituents), shared, stats
                    )
                except Exception as exc:  # pragma: no cover - defensive
                    self._fail(request, exc, "cancelled")
                    continue
                stats.scans = len(request.keys)
                self.cache.put(epoch, request.expression, bitmap)
                self._finish(
                    request,
                    ServeResult(
                        bitmap=bitmap,
                        stats=stats,
                        simulated_ms=(self.clock.total_ms - eval_start)
                        + fetch_share,
                        epoch=epoch,
                        cached=False,
                        batch_size=len(pending),
                    ),
                )

    def _finish(self, request: _Request, result: ServeResult) -> None:
        result.wall_ms = (time.monotonic() - request.submitted_at) * 1e3
        request.result = result
        request.event.set()
        with self._lock:
            self.stats.completed += 1
        self._emit_count("serve.completed")
        self._emit_observe("serve.latency_ms", result.wall_ms)
        self._emit_observe("serve.simulated_ms", result.simulated_ms)

    def _fail(self, request: _Request, error: Exception, counter: str) -> None:
        request.error = error
        request.event.set()
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        self._emit_count(f"serve.{counter}")

    # -- reporting ----------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Service, cache, clock and pool counters as one flat dict."""
        pool_stats = self.engine.pool.stats
        with self._lock:
            snapshot = {
                "submitted": self.stats.submitted,
                "completed": self.stats.completed,
                "shed": self.stats.shed,
                "timeouts": self.stats.timeouts,
                "cancelled": self.stats.cancelled,
                "batches": self.stats.batches,
                "batched_queries": self.stats.batched_queries,
                "appends": self.stats.appends,
            }
        snapshot.update(
            cache_hits=self.cache.stats.hits,
            cache_misses=self.cache.stats.misses,
            cache_invalidated=self.cache.stats.invalidated,
            pages_read=self.clock.pages_read,
            read_requests=self.clock.read_requests,
            simulated_ms=self.clock.total_ms,
            pool_hits=pool_stats.hits,
            pool_misses=pool_stats.misses,
            pool_evictions=pool_stats.evictions,
        )
        return snapshot

    # -- obs plumbing -------------------------------------------------------
    # The obs instruments are deliberately lock-free (single-threaded
    # simulator); the service is the one multi-threaded producer, so it
    # funnels its emissions through one lock.

    def _emit_count(self, name: str, amount: float = 1.0) -> None:
        o = _obs.active()
        if o is not None:
            with self._obs_lock:
                o.count(name, amount)

    def _emit_observe(self, name: str, value: float) -> None:
        o = _obs.active()
        if o is not None:
            with self._obs_lock:
                o.observe(name, value)

    def _emit_gauge(self, name: str, value: float) -> None:
        o = _obs.active()
        if o is not None:
            with self._obs_lock:
                o.gauge_set(name, value)
