"""Invalidation-correct result cache for the serving layer.

Entries are keyed by ``(index epoch, canonical expression)`` — the
canonical expression is the tuple of rewritten constituent
:class:`~repro.expr.Expr` trees, which are immutable and hashable, so
two textually different queries that rewrite to the same bitmap
expression share one entry.  Including the epoch in the key makes
invalidation a comparison rather than a search: when
:meth:`~repro.index.BitmapIndex.append` bumps the epoch, every entry
minted under an older epoch is unreachable and is swept out eagerly by
:meth:`ResultCache.invalidate_below`.

The cache is thread-safe (one lock around the LRU dict) because cache
probes happen on submitter threads while fills happen on worker
threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.bitmap import BitVector

#: A cache key: (epoch, canonical expression tuple).
CacheKey = tuple[int, tuple]


@dataclass
class CacheStats:
    """Hit/miss/eviction/invalidation counters for one result cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidated: int = 0


class ResultCache:
    """Bounded LRU cache of query answers, keyed by (epoch, expression).

    ``capacity`` counts entries (answers are one decoded bitmap each; a
    serving deployment would size this in bytes, but entry count keeps
    the accounting exact in tests).  A capacity of 0 disables caching:
    every probe misses and nothing is stored.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[CacheKey, BitVector] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    @property
    def capacity(self) -> int:
        """Configured capacity in entries."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, epoch: int, expression: tuple, record_miss: bool = True
    ) -> BitVector | None:
        """The cached answer for ``expression`` at ``epoch``, or None.

        ``record_miss=False`` makes an unsuccessful probe silent: the
        submit fast-path probes the cache opportunistically and, on a
        miss, the *same* request is probed again when a worker picks it
        up — only that second probe is the request's real miss.
        Counting both would double-book misses, breaking the
        ``hits + misses == completed`` invariant the bench reports rely
        on.  Hits are always recorded (a hit ends the request, so it is
        seen exactly once).
        """
        key = (epoch, expression)
        with self._lock:
            answer = self._entries.get(key)
            if answer is None:
                if record_miss:
                    self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return answer

    def put(self, epoch: int, expression: tuple, answer: BitVector) -> None:
        """Store ``answer`` for ``expression`` at ``epoch`` (LRU evicting)."""
        if not self._capacity:
            return
        key = (epoch, expression)
        with self._lock:
            self._entries[key] = answer
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate_below(self, epoch: int) -> int:
        """Drop every entry minted under an epoch older than ``epoch``.

        Called after an append bumps the index epoch; returns the number
        of entries dropped (also accumulated in ``stats.invalidated``).
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] < epoch]
            for key in stale:
                del self._entries[key]
            self.stats.invalidated += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        with self._lock:
            self._entries.clear()
