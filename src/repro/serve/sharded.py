"""Sharded multi-process serving: scatter-gather over row-range shards.

:class:`ShardedQueryService` partitions the indexed column into N
contiguous row-range shards, runs one
:class:`~repro.serve.shard_worker.ShardEngine` per shard, and answers
each query by scatter-gather: fan the query to every shard, evaluate
per shard (each shard reuses the single-process machinery — fused
evaluation, shared-scan batching, an ``(epoch, expression)`` result
cache), and merge the partial bitmaps by concatenation.  Because the
shards' row ranges are disjoint and ordered, concatenation in shard
order *is* the translation back to global row ids — the same seam
:class:`~repro.index.segmented.SegmentedBitmapIndex` exploits between
segments, lifted one level to processes.

Transports
----------
``"inline"`` hosts every shard engine in the router process.  It is
deterministic and cheap to set up — the differential and
linearizability suites run on it — but evaluation serializes on one
lock because the :mod:`repro.obs` instruments and the storage layer's
counters are deliberately lock-free.  ``"process"`` hosts each shard in
a :class:`~repro.parallel.ProcessWorker`: evaluation runs GIL-free in
the children (which have no obs registry, so nothing races), giving
real multi-core scaling, at the price of pickling queries and partial
bitmaps across pipes.

Consistency model
-----------------
Every operation against one shard flows through that shard's dispatcher
thread, so per-shard histories are serial: an append (which bumps only
that shard's epoch and invalidates only that shard's cache) is either
entirely before or entirely after any evaluation on the same shard.  A
scatter pins the current *layout* (the ordered shard list), so a racing
split cannot recompose row ranges under it; a retired (split) shard
keeps serving pinned readers and is shut down only when its last pin
drains.  Each answer therefore reports, per shard, the epoch it
reflects — a composite snapshot the linearizability suite checks
against a per-shard naive-scan oracle.

Failure model
-------------
A dead or hung shard worker surfaces as
:class:`~repro.errors.ShardFailed` (wrapping the typed
:class:`~repro.errors.WorkerCrashed` /
:class:`~repro.errors.WorkerUnresponsive`) for every in-flight query
that needed that shard — never a partial or wrong answer.  The router
keeps each shard's acked rows authoritatively, so recovery rebuilds the
engine from exactly the rows whose appends were acknowledged
(``auto_recover=True`` rebuilds immediately; otherwise
:meth:`ShardedQueryService.recover` does it on demand), fast-forwarding
the epoch so ``(shard, epoch)`` never aliases two different row states.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import obs as _obs
from repro.bitmap import BitVector, concatenate
from repro.errors import (
    DeadlineExceeded,
    Overloaded,
    QueryError,
    ServeError,
    ServiceClosed,
    ShardFailed,
    WorkerCrashed,
    WorkerUnresponsive,
)
from repro.index.bitmap_index import IndexSpec
from repro.parallel import ProcessWorker, WorkerFault
from repro.queries.model import IntervalQuery, MembershipQuery, ThresholdQuery
from repro.serve.service import Ticket
from repro.serve.shard_worker import (
    DEFAULT_SEGMENT_SIZE,
    ShardEngine,
    build_shard_engine,
)

Query = IntervalQuery | MembershipQuery | ThresholdQuery

TRANSPORTS = ("inline", "process")

_CLOSE = "__close__"
_REBUILD = "__rebuild__"


@dataclass(frozen=True)
class ShardedConfig:
    """Tuning knobs for one :class:`ShardedQueryService`."""

    #: Number of initial row-range shards.
    shards: int = 2
    #: ``"inline"`` (deterministic, single-process) or ``"process"``
    #: (one worker process per shard, GIL-free evaluation).
    transport: str = "inline"
    #: Bound of the router's request queue; submissions beyond it shed.
    max_queue: int = 64
    #: Router threads draining the submit queue into scatters.
    workers: int = 2
    #: Maximum requests fanned out in one scatter (each shard further
    #: plans shared-scan batches within it).
    max_batch: int = 16
    #: Per-shard result-cache capacity in entries (0 disables).
    cache_entries: int = 256
    #: Per-segment buffer-pool capacity; None = engine default sizing.
    buffer_pages: int | None = None
    #: ``"decoded"`` or ``"compressed"`` per-shard evaluation engine.
    engine: str = "decoded"
    #: Physical evaluation mode for decoded engines (see ServiceConfig).
    fused: bool | str = "auto"
    #: Rows per segment inside each shard.
    segment_size: int = DEFAULT_SEGMENT_SIZE
    #: Default per-request timeout (None = no deadline).
    default_timeout_s: float | None = None
    #: Per-call answer deadline for process-transport workers; a worker
    #: silent past this is declared unresponsive.
    call_timeout_s: float = 30.0
    #: Rebuild a failed shard from its acked rows immediately (True) or
    #: only via an explicit :meth:`ShardedQueryService.recover` (False).
    auto_recover: bool = True

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ServeError(f"shards must be >= 1, got {self.shards}")
        if self.transport not in TRANSPORTS:
            raise ServeError(
                f"unknown transport {self.transport!r}; "
                f"expected one of {TRANSPORTS}"
            )
        if self.max_queue < 1:
            raise ServeError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.workers < 1:
            raise ServeError(f"workers must be >= 1, got {self.workers}")
        if self.max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.call_timeout_s <= 0:
            raise ServeError(
                f"call_timeout_s must be > 0, got {self.call_timeout_s}"
            )


@dataclass
class ShardedResult:
    """Merged answer plus serving metadata for one request."""

    #: Global-row-id answer (shard partials concatenated in shard order).
    bitmap: BitVector
    #: Per-shard linearization points: ``((shard_id, epoch), ...)`` in
    #: shard order — the composite snapshot this answer reflects.
    epochs: tuple[tuple[int, int], ...]
    #: True only when *every* shard served its partial from cache.
    cached: bool
    #: Requests fanned out in the same scatter.
    batch_size: int
    #: Shards that contributed a partial answer.
    shard_count: int
    #: Sum of the shards' simulated evaluation costs.
    simulated_ms: float
    #: Wall-clock submit-to-completion latency.
    wall_ms: float = 0.0

    @property
    def row_count(self) -> int:
        """Number of qualifying records."""
        return self.bitmap.count()

    def row_ids(self):
        """Sorted global record ids of qualifying records."""
        return self.bitmap.to_indices()


@dataclass(frozen=True)
class ShardAppend:
    """Outcome of one routed append (lands wholly on one shard)."""

    shard: int
    epoch: int
    records_appended: int
    num_records: int


@dataclass(frozen=True)
class ShardSplit:
    """Outcome of one shard split."""

    parent: int
    left: int
    right: int
    row: int


@dataclass
class ShardedStats:
    """Always-on router counters (obs mirrors these when installed)."""

    submitted: int = 0
    completed: int = 0
    shed: int = 0
    timeouts: int = 0
    cancelled: int = 0
    batches: int = 0
    batched_queries: int = 0
    appends: int = 0
    #: Requests answered entirely from shard caches (every partial
    #: cached) — counted once per request, never once per shard.
    cache_hits: int = 0
    cache_misses: int = 0
    splits: int = 0
    shard_failures: int = 0
    shard_recoveries: int = 0


class _Call:
    """One dispatched shard operation and its completion plumbing."""

    __slots__ = ("method", "args", "event", "value", "error")

    def __init__(self, method: str, args: tuple):
        self.method = method
        self.args = args
        self.event = threading.Event()
        self.value = None
        self.error: Exception | None = None

    def resolve(self, value) -> None:
        self.value = value
        self.event.set()

    def reject(self, error: Exception) -> None:
        self.error = error
        self.event.set()

    def wait(self):
        self.event.wait()
        if self.error is not None:
            raise self.error
        return self.value


class _Request:
    """One queued query plus its completion plumbing (Ticket-compatible)."""

    __slots__ = ("query", "deadline", "submitted_at", "event", "result", "error")

    def __init__(self, query: Query, deadline: float | None):
        self.query = query
        self.deadline = deadline
        self.submitted_at = time.monotonic()
        self.event = threading.Event()
        self.result: ShardedResult | None = None
        self.error: Exception | None = None


class _Layout:
    """An immutable ordered shard list, pinned by in-flight scatters."""

    __slots__ = ("shards", "pins", "superseded", "to_retire")

    def __init__(self, shards):
        self.shards: tuple[_Shard, ...] = tuple(shards)
        self.pins = 0
        self.superseded = False
        #: Shards present here but absent from every newer layout; shut
        #: down when the last pin on this layout drains.
        self.to_retire: list[_Shard] = []


class _Shard:
    """One shard: authoritative rows, an engine handle, a dispatcher.

    Every operation is enqueued and executed by the shard's single
    dispatcher thread, which serializes the shard's history (the
    per-shard linearizability guarantee) and — for the process
    transport — keeps exactly one outstanding pipe request per worker.
    """

    def __init__(
        self,
        service: "ShardedQueryService",
        shard_id: int,
        rows: np.ndarray,
        index=None,
        fault: WorkerFault | None = None,
    ):
        self.service = service
        self.id = shard_id
        #: Acked rows — the router's authoritative copy, updated only
        #: after the engine acknowledges an append, so a rebuild from
        #: them reconstructs exactly the acknowledged state.
        self.rows = np.asarray(rows)
        self.failed = False
        self._queue: deque[_Call] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._shutdown_sent = False
        self.handle = self._build_handle(index=index, fault=fault)
        if index is not None:
            self.epoch = index.epoch
        else:
            self.epoch = 1 if self.rows.size else 0
        self._thread = threading.Thread(
            target=self._loop, name=f"shard-{shard_id}-dispatch", daemon=True
        )
        self._thread.start()

    @property
    def pid(self) -> int | None:
        """Worker pid (process transport), for chaos tests."""
        if isinstance(self.handle, ProcessWorker):
            return self.handle.pid
        return None

    # ------------------------------------------------------------------

    def dispatch(self, method: str, args: tuple = ()) -> _Call:
        """Enqueue an operation; returns its :class:`_Call` future."""
        call = _Call(method, args)
        with self._cond:
            if self._closed:
                call.reject(
                    ShardFailed(f"shard {self.id} has been shut down")
                )
                return call
            self._queue.append(call)
            self._cond.notify()
        return call

    def shutdown(self, join: bool = True, timeout: float = 10.0) -> None:
        """Enqueue a close barrier: pending operations finish first."""
        with self._cond:
            if not self._shutdown_sent:
                self._shutdown_sent = True
                self._queue.append(_Call(_CLOSE, ()))
                self._cond.notify()
        if join:
            self._thread.join(timeout)

    # ------------------------------------------------------------------

    def _build_handle(self, index=None, fault: WorkerFault | None = None):
        options = self.service._engine_options()
        if self.service.config.transport == "process":
            return ProcessWorker(
                build_shard_engine,
                args=(self.rows, self.service.spec, options),
                name=f"shard-{self.id}",
                fault=fault,
            )
        if index is not None:
            options = dict(options, index=index)
        return ShardEngine(self.rows, self.service.spec, **options)

    def _invoke(self, method: str, args: tuple):
        if isinstance(self.handle, ProcessWorker):
            return self.handle.call(
                method, *args, timeout=self.service.config.call_timeout_s
            )
        # Inline engines run in the router process, where the storage
        # layer emits into the lock-free obs instruments — serialize
        # with every other emitter via the service's obs lock.
        with self.service._obs_lock:
            return getattr(self.handle, method)(*args)

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue:
                    self._cond.wait()
                call = self._queue.popleft()
            if call.method == _CLOSE:
                self._close_handle()
                with self._cond:
                    self._closed = True
                    stragglers = list(self._queue)
                    self._queue.clear()
                call.resolve(None)
                for straggler in stragglers:
                    straggler.reject(
                        ShardFailed(f"shard {self.id} has been shut down")
                    )
                return
            if call.method == _REBUILD:
                try:
                    self._rebuild()
                    call.resolve(True)
                except Exception as exc:
                    call.reject(exc)
                continue
            if self.failed:
                call.reject(
                    ShardFailed(
                        f"shard {self.id} is awaiting recovery after a "
                        f"worker failure"
                    )
                )
                continue
            try:
                call.resolve(self._invoke(call.method, call.args))
            except (WorkerCrashed, WorkerUnresponsive) as exc:
                self.failed = True
                self.service._note_shard_failure(self, exc)
                call.reject(
                    ShardFailed(
                        f"shard {self.id} could not answer "
                        f"{call.method!r}: {exc}"
                    )
                )
                if self.service.config.auto_recover:
                    try:
                        self._rebuild()
                    except Exception:
                        pass  # stays failed; recover() can retry
            except Exception as exc:
                call.reject(exc)

    def _close_handle(self) -> None:
        try:
            if isinstance(self.handle, ProcessWorker):
                self.handle.close()
            else:
                self.handle.close()
        except Exception:
            pass

    def _rebuild(self) -> None:
        """Rebuild the engine from the acked rows (dispatcher thread).

        The old worker is killed first (it may be merely hung), then a
        fresh engine is built from :attr:`rows` and its epoch is
        fast-forwarded to the acked epoch — same rows, same epoch, so
        answers before and after the rebuild are indistinguishable to
        the oracle.
        """
        old = self.handle
        try:
            if isinstance(old, ProcessWorker):
                old.kill()
                old.close()
            else:
                old.close()
        except Exception:
            pass
        self.handle = self._build_handle()
        target = self.epoch
        fresh = 1 if self.rows.size else 0
        if target > fresh:
            self._invoke("set_epoch", (target,))
        else:
            self.epoch = fresh
        self.failed = False
        self.service._note_shard_recovery(self)


class ShardedQueryService:
    """Scatter-gather router over row-range shards.

    Built from the raw column (each shard builds its own
    :class:`~repro.index.segmented.SegmentedBitmapIndex` over its row
    range)::

        with ShardedQueryService(values, spec, config) as service:
            result = service.execute(IntervalQuery(3, 17, 200))

    The query surface mirrors :class:`~repro.serve.QueryService`
    (``submit``/``execute``/``execute_many``/``append``/
    ``metrics_snapshot``), so the closed- and open-loop drivers run
    against it unchanged; on top of that it adds :meth:`split` (online
    rebalancing) and :meth:`recover` (explicit shard recovery).
    """

    def __init__(
        self,
        values,
        spec: IndexSpec,
        config: ShardedConfig | None = None,
        faults: dict[int, WorkerFault] | None = None,
    ):
        self.spec = spec
        self.config = config if config is not None else ShardedConfig()
        self.stats = ShardedStats()
        self._lock = threading.Lock()
        self._obs_lock = threading.Lock()
        self._layout_lock = threading.Lock()
        self._mutation_lock = threading.Lock()
        self._queue: deque[_Request] = deque()
        self._not_empty = threading.Condition()
        self._closed = False
        self._next_shard_id = 0
        self._all_shards: list[_Shard] = []

        rows = np.asarray(values)
        chunk = max(1, -(-len(rows) // self.config.shards))
        shards = []
        for i in range(self.config.shards):
            shard_rows = rows[i * chunk : (i + 1) * chunk]
            fault = faults.get(i) if faults else None
            shards.append(self._new_shard(shard_rows, fault=fault))
        self._layout = _Layout(shards)
        self._emit_gauge("serve.shard.count", float(len(shards)))

        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"shard-router-{i}",
                daemon=True,
            )
            for i in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- construction helpers ----------------------------------------------

    def _engine_options(self) -> dict:
        config = self.config
        return {
            "engine": config.engine,
            "fused": config.fused,
            "cache_entries": config.cache_entries,
            "buffer_pages": config.buffer_pages,
            "segment_size": config.segment_size,
            "max_batch": config.max_batch,
        }

    def _new_shard(self, rows, index=None, fault=None) -> _Shard:
        shard = _Shard(
            self, self._next_shard_id, rows, index=index, fault=fault
        )
        self._next_shard_id += 1
        self._all_shards.append(shard)
        return shard

    # -- context management -------------------------------------------------

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting requests, drain, and shut every shard down.

        Idempotent, and safe under in-flight scatter-gather: requests
        already queued (or mid-scatter) complete before the shard
        dispatchers see their close barriers, because a barrier queues
        *behind* the operations those requests dispatched.
        """
        cancelled: list[_Request] = []
        with self._not_empty:
            if self._closed:
                return
            self._closed = True
            if not drain:
                while self._queue:
                    cancelled.append(self._queue.popleft())
            self._not_empty.notify_all()
        for request in cancelled:
            self._fail(
                request,
                ServiceClosed("service closed before evaluation"),
                "cancelled",
            )
        for worker in self._workers:
            worker.join(timeout)
        for shard in self._all_shards:
            shard.shutdown(join=True, timeout=timeout)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called."""
        return self._closed

    # -- submission ---------------------------------------------------------

    def submit(self, query: Query, timeout_s: float | None = None) -> Ticket:
        """Enqueue ``query``; returns a ticket immediately.

        Raises :class:`~repro.errors.Overloaded` when the router queue
        is full and :class:`~repro.errors.ServiceClosed` after close.
        """
        if self._closed:
            raise ServiceClosed("cannot submit to a closed service")
        request = self._make_request(query, timeout_s)
        with self._lock:
            self.stats.submitted += 1
        self._emit_count("serve.submitted")
        with self._not_empty:
            if self._closed:
                raise ServiceClosed("cannot submit to a closed service")
            if len(self._queue) >= self.config.max_queue:
                with self._lock:
                    self.stats.shed += 1
                self._emit_count("serve.shed")
                raise Overloaded(
                    f"request queue full ({self.config.max_queue} waiting); "
                    f"retry with backoff"
                )
            self._queue.append(request)
            depth = len(self._queue)
            self._not_empty.notify()
        self._emit_gauge("serve.queue_depth", depth)
        return Ticket(request)

    def execute(
        self, query: Query, timeout_s: float | None = None
    ) -> ShardedResult:
        """Submit and wait: blocking convenience wrapper."""
        return self.submit(query, timeout_s).result()

    def execute_many(self, queries: list[Query]) -> list[ShardedResult]:
        """Evaluate ``queries`` synchronously in the caller's thread.

        One scatter carries the whole list; each shard plans its own
        shared-scan batches within it.  Deterministic (no queue, no
        worker timing), like :meth:`QueryService.execute_many`.
        """
        if self._closed:
            raise ServiceClosed("cannot submit to a closed service")
        requests = [self._make_request(query, None) for query in queries]
        with self._lock:
            self.stats.submitted += len(requests)
        self._evaluate_requests(requests)
        results = []
        for request in requests:
            if request.error is not None:
                raise request.error
            results.append(request.result)
        return results

    def append(self, values) -> ShardAppend:
        """Append rows, routed wholly to the tail shard.

        Only the tail shard's epoch bumps and only its cache
        invalidates; answers from other shards stay cached and valid.
        The router's authoritative row copy is extended only after the
        shard acknowledges, so a crash mid-append leaves the batch
        cleanly un-applied (the caller sees
        :class:`~repro.errors.ShardFailed` and may retry).
        """
        rows = np.asarray(values)
        with self._mutation_lock:
            if self._closed:
                raise ServiceClosed("cannot append to a closed service")
            with self._layout_lock:
                tail = self._layout.shards[-1]
            report = tail.dispatch("append", (rows,)).wait()
            tail.rows = (
                np.concatenate([tail.rows, rows]) if tail.rows.size else rows.copy()
            )
            tail.epoch = report["epoch"]
            with self._lock:
                self.stats.appends += 1
        self._emit_count("serve.appends")
        self._emit_count("serve.shard.appends", 1.0, shard=str(tail.id))
        return ShardAppend(
            shard=tail.id,
            epoch=report["epoch"],
            records_appended=report["records_appended"],
            num_records=report["num_records"],
        )

    # -- rebalancing --------------------------------------------------------

    def split(
        self, shard_id: int | None = None, at_row: int | None = None
    ) -> ShardSplit:
        """Split one shard into two, preserving global row order.

        Defaults to the largest shard, cut at its midpoint.  The new
        layout is swapped in atomically; scatters pinned to the old
        layout keep reading the retired parent (they linearize before
        the split), which is shut down when the last pin drains.  On
        the inline transport a segment-boundary cut hands the left
        child the parent's sealed segments by reference
        (:meth:`SegmentedBitmapIndex.split_at`); all other children
        rebuild from the router's authoritative rows.
        """
        with self._mutation_lock:
            if self._closed:
                raise ServiceClosed("cannot split on a closed service")
            with self._layout_lock:
                shards = list(self._layout.shards)
            if shard_id is None:
                position = max(
                    range(len(shards)), key=lambda i: len(shards[i].rows)
                )
            else:
                ids = [shard.id for shard in shards]
                if shard_id not in ids:
                    raise ServeError(f"no shard with id {shard_id}")
                position = ids.index(shard_id)
            parent = shards[position]
            total = len(parent.rows)
            if total < 2:
                raise ServeError(
                    f"cannot split shard {parent.id} with {total} row(s)"
                )
            row = at_row if at_row is not None else total // 2
            if not 0 < row < total:
                raise ServeError(
                    f"split row {row} outside (0, {total}) for shard "
                    f"{parent.id}"
                )
            left_index = None
            if (
                self.config.transport == "inline"
                and row % self.config.segment_size == 0
            ):
                # Sealed segments shared by reference — no re-encode.
                left_index = parent.dispatch("split_left", (row,)).wait()
            left = self._new_shard(parent.rows[:row], index=left_index)
            right = self._new_shard(parent.rows[row:])
            replacement = shards[:position] + [left, right] + shards[position + 1 :]
            with self._layout_lock:
                old = self._layout
                self._layout = _Layout(replacement)
                old.superseded = True
                old.to_retire.append(parent)
            self._retire_if_drained(old)
            with self._lock:
                self.stats.splits += 1
            shard_count = len(replacement)
        self._emit_count("serve.shard.splits")
        self._emit_gauge("serve.shard.count", float(shard_count))
        return ShardSplit(
            parent=parent.id, left=left.id, right=right.id, row=row
        )

    def recover(self, shard_id: int) -> bool:
        """Rebuild a failed shard from its acked rows, on demand."""
        with self._layout_lock:
            shards = self._layout.shards
        for shard in shards:
            if shard.id == shard_id:
                return bool(shard.dispatch(_REBUILD).wait())
        raise ServeError(f"no shard with id {shard_id}")

    def shard_info(self) -> list[dict]:
        """Router-side view of the current layout (for tests/inspection)."""
        with self._layout_lock:
            shards = self._layout.shards
        return [
            {
                "id": shard.id,
                "num_records": int(len(shard.rows)),
                "epoch": shard.epoch,
                "failed": shard.failed,
                "pid": shard.pid,
            }
            for shard in shards
        ]

    # -- internals ----------------------------------------------------------

    def _make_request(
        self, query: Query, timeout_s: float | None
    ) -> _Request:
        if not isinstance(
            query, (IntervalQuery, MembershipQuery, ThresholdQuery)
        ):
            raise QueryError(f"unsupported query type {type(query).__name__}")
        if query.cardinality != self.spec.cardinality:
            raise QueryError(
                f"query domain C={query.cardinality} does not match "
                f"index domain C={self.spec.cardinality}"
            )
        timeout = (
            timeout_s
            if timeout_s is not None
            else self.config.default_timeout_s
        )
        deadline = time.monotonic() + timeout if timeout is not None else None
        return _Request(query, deadline)

    def _worker_loop(self) -> None:
        config = self.config
        while True:
            with self._not_empty:
                while not self._queue and not self._closed:
                    self._not_empty.wait()
                if not self._queue:
                    return  # closed and drained
                taken = [
                    self._queue.popleft()
                    for _ in range(min(len(self._queue), config.max_batch))
                ]
                depth = len(self._queue)
            self._emit_gauge("serve.queue_depth", depth)
            alive = []
            now = time.monotonic()
            for request in taken:
                if request.deadline is not None and now > request.deadline:
                    self._fail(
                        request,
                        DeadlineExceeded(
                            f"deadline passed before evaluation of "
                            f"{request.query}"
                        ),
                        "timeouts",
                    )
                else:
                    alive.append(request)
            if alive:
                self._evaluate_requests(alive)

    def _evaluate_requests(self, requests: list[_Request]) -> None:
        """Scatter one batch of requests; finish or fail each of them."""
        queries = [request.query for request in requests]
        try:
            shards, per_shard = self._scatter(queries)
        except Exception as exc:
            for request in requests:
                self._fail(request, exc, "cancelled")
            return
        with self._lock:
            self.stats.batches += 1
            self.stats.batched_queries += len(requests)
        self._emit_observe("serve.batch_size", float(len(requests)))
        for j, request in enumerate(requests):
            parts = [answers[j] for answers in per_shard]
            pieces = [part.bitmap for part in parts]
            bitmap = concatenate(pieces) if pieces else BitVector.zeros(0)
            cached = bool(parts) and all(part.cached for part in parts)
            result = ShardedResult(
                bitmap=bitmap,
                epochs=tuple(
                    (shard.id, part.epoch)
                    for shard, part in zip(shards, parts)
                ),
                cached=cached,
                batch_size=len(requests),
                shard_count=len(parts),
                simulated_ms=sum(part.simulated_ms for part in parts),
            )
            with self._lock:
                if cached:
                    self.stats.cache_hits += 1
                else:
                    self.stats.cache_misses += 1
            # Global accounting: one hit or one miss per *request* —
            # per-shard cache behavior lands in the tagged
            # serve.shard.cache.* series below, never here.
            self._emit_count(
                "serve.cache.hits" if cached else "serve.cache.misses"
            )
            self._finish(request, result)
        for shard, answers in zip(shards, per_shard):
            hits = sum(1 for answer in answers if answer.cached)
            self._emit_count(
                "serve.shard.queries", float(len(answers)), shard=str(shard.id)
            )
            if hits:
                self._emit_count(
                    "serve.shard.cache.hits", float(hits), shard=str(shard.id)
                )
            if len(answers) - hits:
                self._emit_count(
                    "serve.shard.cache.misses",
                    float(len(answers) - hits),
                    shard=str(shard.id),
                )

    def _scatter(self, queries: list[Query]):
        """Fan ``queries`` to every shard of the pinned layout."""
        layout = self._pin_layout()
        try:
            calls = [
                shard.dispatch("evaluate_batch", (list(queries),))
                for shard in layout.shards
            ]
            per_shard = []
            error: Exception | None = None
            for call in calls:
                try:
                    per_shard.append(call.wait())
                except Exception as exc:
                    if error is None:
                        error = exc
            if error is not None:
                raise error
            return layout.shards, per_shard
        finally:
            self._unpin_layout(layout)

    def _pin_layout(self) -> _Layout:
        with self._layout_lock:
            layout = self._layout
            layout.pins += 1
            return layout

    def _unpin_layout(self, layout: _Layout) -> None:
        with self._layout_lock:
            layout.pins -= 1
        self._retire_if_drained(layout)

    def _retire_if_drained(self, layout: _Layout) -> None:
        with self._layout_lock:
            if layout.superseded and layout.pins == 0:
                retire, layout.to_retire = layout.to_retire, []
            else:
                retire = []
        for shard in retire:
            shard.shutdown(join=False)

    def _finish(self, request: _Request, result: ShardedResult) -> None:
        result.wall_ms = (time.monotonic() - request.submitted_at) * 1e3
        request.result = result
        request.event.set()
        with self._lock:
            self.stats.completed += 1
        self._emit_count("serve.completed")
        self._emit_observe("serve.latency_ms", result.wall_ms)
        self._emit_observe("serve.simulated_ms", result.simulated_ms)

    def _fail(self, request: _Request, error: Exception, counter: str) -> None:
        request.error = error
        request.event.set()
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        self._emit_count(f"serve.{counter}")

    def _note_shard_failure(self, shard: _Shard, error: Exception) -> None:
        with self._lock:
            self.stats.shard_failures += 1
        self._emit_count("serve.shard.failures", 1.0, shard=str(shard.id))

    def _note_shard_recovery(self, shard: _Shard) -> None:
        with self._lock:
            self.stats.shard_recoveries += 1
        self._emit_count("serve.shard.recoveries", 1.0, shard=str(shard.id))

    # -- reporting ----------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Router and aggregated shard counters as one flat dict.

        Mirrors :meth:`QueryService.metrics_snapshot` keys (the drivers
        diff them), with shard-level sums under ``shard_*`` names —
        deliberately separate from the request-level ``cache_hits`` so
        per-shard hits are never double-counted globally.
        """
        with self._lock:
            snapshot = {
                "submitted": self.stats.submitted,
                "completed": self.stats.completed,
                "shed": self.stats.shed,
                "timeouts": self.stats.timeouts,
                "cancelled": self.stats.cancelled,
                "batches": self.stats.batches,
                "batched_queries": self.stats.batched_queries,
                "appends": self.stats.appends,
                "cache_hits": self.stats.cache_hits,
                "cache_misses": self.stats.cache_misses,
                "splits": self.stats.splits,
                "shard_failures": self.stats.shard_failures,
                "shard_recoveries": self.stats.shard_recoveries,
            }
        with self._layout_lock:
            shards = self._layout.shards
        pages = requests = 0
        simulated = 0.0
        shard_hits = shard_misses = invalidated = 0
        for shard in shards:
            try:
                status = shard.dispatch("status").wait()
            except Exception:
                continue  # failed shard: omit its contribution
            pages += status["pages_read"]
            requests += status["read_requests"]
            simulated += status["simulated_ms"]
            shard_hits += status["cache_hits"]
            shard_misses += status["cache_misses"]
            invalidated += status["cache_invalidated"]
        snapshot.update(
            shards=len(shards),
            pages_read=pages,
            read_requests=requests,
            simulated_ms=simulated,
            shard_cache_hits=shard_hits,
            shard_cache_misses=shard_misses,
            cache_invalidated=invalidated,
        )
        return snapshot

    # -- obs plumbing -------------------------------------------------------
    # Same funnel as QueryService: the obs instruments are lock-free by
    # design, and this service is a multi-threaded producer (router
    # workers, shard dispatchers running inline engines), so every
    # emission — including inline evaluation itself — goes through one
    # lock.

    def _emit_count(self, name: str, amount: float = 1.0, **tags) -> None:
        o = _obs.active()
        if o is not None:
            with self._obs_lock:
                o.count(name, amount, **tags)

    def _emit_observe(self, name: str, value: float, **tags) -> None:
        o = _obs.active()
        if o is not None:
            with self._obs_lock:
                o.observe(name, value, **tags)

    def _emit_gauge(self, name: str, value: float, **tags) -> None:
        o = _obs.active()
        if o is not None:
            with self._obs_lock:
                o.gauge_set(name, value, **tags)
