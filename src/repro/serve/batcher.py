"""Shared-scan batch planning.

A worker drains up to ``max_batch`` queued requests and hands them
here.  The planner groups requests whose rewritten expressions touch
overlapping bitmap sets (union–find over leaf keys), so that one
buffer-pool pass over each distinct bitmap serves every request in the
group — the amortization the paper's component-wise strategy applies
*within* one membership query, lifted across concurrent queries.

Requests that share nothing are still packed together (a batch's
bitmaps are the union of its members' leaf sets, and disjoint sets cost
exactly their own fetches either way), but sharing groups are never
split below ``max_batch``: splitting a group would re-fetch its shared
bitmaps once per fragment.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence


def _find(parent: list[int], i: int) -> int:
    root = i
    while parent[root] != root:
        root = parent[root]
    while parent[i] != root:  # path compression
        parent[i], i = root, parent[i]
    return root


def sharing_groups(keysets: Sequence[frozenset[Hashable]]) -> list[list[int]]:
    """Partition request indices into groups connected by shared keys.

    Two requests are in one group when their leaf-key sets intersect,
    directly or transitively.  Groups are returned in first-appearance
    order and each group lists indices in input order, so the plan is
    deterministic.
    """
    parent = list(range(len(keysets)))
    owner: dict[Hashable, int] = {}
    for i, keys in enumerate(keysets):
        for key in keys:
            if key in owner:
                ra, rb = _find(parent, owner[key]), _find(parent, i)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)
            else:
                owner[key] = i
    groups: dict[int, list[int]] = {}
    for i in range(len(keysets)):
        groups.setdefault(_find(parent, i), []).append(i)
    return [groups[root] for root in sorted(groups)]


def plan_batches(
    keysets: Sequence[frozenset[Hashable]], max_batch: int
) -> list[list[int]]:
    """Batch request indices for shared scans.

    Sharing groups are chunked at ``max_batch`` (a chunk keeps
    consecutive members, which union–find ordered by appearance), then
    chunks smaller than ``max_batch`` are merged first-fit so unrelated
    small groups ride in one scan instead of one scan each.
    """
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    chunks: list[list[int]] = []
    for group in sharing_groups(keysets):
        for start in range(0, len(group), max_batch):
            chunks.append(group[start : start + max_batch])
    merged: list[list[int]] = []
    for chunk in chunks:
        for batch in merged:
            if len(batch) + len(chunk) <= max_batch:
                batch.extend(chunk)
                break
        else:
            merged.append(chunk)
    return merged
