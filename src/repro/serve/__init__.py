"""Concurrent query serving over bitmap indexes (extension).

The paper evaluates one query at a time; a deployment answers many
selection queries concurrently over shared bitmaps.  This package is
the in-process serving layer that closes that gap:

* :class:`~repro.serve.service.QueryService` — bounded queue, worker
  pool, per-request deadlines, typed load shedding
  (:class:`~repro.errors.Overloaded` /
  :class:`~repro.errors.DeadlineExceeded`);
* :mod:`~repro.serve.batcher` — shared-scan batching: one buffer-pool
  pass over the union of a batch's bitmaps serves every query in the
  batch;
* :mod:`~repro.serve.cache` — result cache keyed by ``(index epoch,
  canonical expression)``, invalidated when an append bumps the epoch;
* :mod:`~repro.serve.driver` — closed- and open-loop workload replay
  with throughput and p50/p95/p99 latency reporting from
  :mod:`repro.obs` histograms;
* :mod:`~repro.serve.sharded` — the multi-process tier:
  :class:`~repro.serve.sharded.ShardedQueryService` partitions rows
  into shards (one :class:`~repro.serve.shard_worker.ShardEngine` per
  shard, inline or behind a :class:`~repro.parallel.ProcessWorker`),
  scatter-gathers queries, routes appends to the tail shard, and
  splits shards online.

See ``docs/serving.md`` for the architecture and the ``serve.*``
metric catalog; ``repro serve-bench`` is the CLI entry point.
"""

from repro.errors import (
    DeadlineExceeded,
    Overloaded,
    ServeError,
    ServiceClosed,
    ShardFailed,
)
from repro.serve.batcher import plan_batches, sharing_groups
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.driver import (
    DriverReport,
    paper_mix,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.service import (
    ENGINES,
    QueryService,
    ServeResult,
    ServiceConfig,
    ServiceStats,
    Ticket,
)
from repro.serve.shard_worker import ShardAnswer, ShardEngine
from repro.serve.sharded import (
    TRANSPORTS,
    ShardAppend,
    ShardSplit,
    ShardedConfig,
    ShardedQueryService,
    ShardedResult,
    ShardedStats,
)

__all__ = [
    "QueryService",
    "ServiceConfig",
    "ServiceStats",
    "ServeResult",
    "Ticket",
    "ENGINES",
    "ShardedQueryService",
    "ShardedConfig",
    "ShardedResult",
    "ShardedStats",
    "ShardAppend",
    "ShardSplit",
    "ShardAnswer",
    "ShardEngine",
    "TRANSPORTS",
    "ShardFailed",
    "ResultCache",
    "CacheStats",
    "plan_batches",
    "sharing_groups",
    "DriverReport",
    "paper_mix",
    "run_closed_loop",
    "run_open_loop",
    "ServeError",
    "Overloaded",
    "DeadlineExceeded",
    "ServiceClosed",
]
