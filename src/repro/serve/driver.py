"""Closed- and open-loop workload drivers for :class:`QueryService`.

Two canonical load shapes:

* **closed loop** — ``concurrency`` client threads each submit one
  query, wait for its answer, then submit the next; offered load adapts
  to service speed (no shedding unless the queue is smaller than the
  client count).  This is the paper-style "how fast can it go" shape.
* **open loop** — one submitter thread issues queries on a fixed
  arrival schedule at ``rate_qps`` regardless of completions; when the
  service falls behind, the bounded queue sheds
  (:class:`~repro.errors.Overloaded`) and deadlines expire
  (:class:`~repro.errors.DeadlineExceeded`) — both typed, both counted,
  which is the point of driving past saturation.

Latency percentiles come from the ``serve.latency_ms`` /
``serve.simulated_ms`` :mod:`repro.obs` histograms via the quantile
summaries (no post-processing of raw samples): the driver installs an
:class:`~repro.obs.Observability` instance for the run when none is
active.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro import obs as _obs
from repro.errors import DeadlineExceeded, Overloaded
from repro.queries.generator import generate_query_set, paper_query_sets
from repro.queries.model import MembershipQuery
from repro.serve.service import QueryService


def paper_mix(
    cardinality: int = 200, num_queries: int = 1000, seed: int = 0
) -> list[MembershipQuery]:
    """The paper's default serving mix: ``num_queries`` membership
    queries cycling through the 8 (N_int, N_equ) query-set specs."""
    specs = paper_query_sets()
    per_set = -(-num_queries // len(specs))
    queries: list[MembershipQuery] = []
    for offset, spec in enumerate(specs):
        queries.extend(
            generate_query_set(spec, cardinality, per_set, seed=seed + offset)
        )
    # Interleave the sets so consecutive submissions mix query shapes.
    interleaved = [
        queries[set_index * per_set + i]
        for i in range(per_set)
        for set_index in range(len(specs))
    ]
    return interleaved[:num_queries]


@dataclass
class DriverReport:
    """Outcome of one driver run."""

    mode: str
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    timeouts: int = 0
    duration_s: float = 0.0
    pages_read: int = 0
    read_requests: int = 0
    cache_hits: int = 0
    batches: int = 0
    batched_queries: int = 0
    #: Wall-clock latency percentiles, ms (from serve.latency_ms).
    latency_ms: dict[str, float] = field(default_factory=dict)
    #: Simulated latency percentiles, ms (from serve.simulated_ms).
    simulated_ms: dict[str, float] = field(default_factory=dict)

    @property
    def throughput_qps(self) -> float:
        """Completed queries per wall-clock second."""
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    @property
    def pages_per_query(self) -> float:
        """Buffer-pool pages read per completed query."""
        if not self.completed:
            return 0.0
        return self.pages_read / self.completed

    @property
    def mean_batch_size(self) -> float:
        """Average shared-scan batch size."""
        if not self.batches:
            return 0.0
        return self.batched_queries / self.batches

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"mode:            {self.mode}",
            f"submitted:       {self.submitted}",
            f"completed:       {self.completed}",
            f"shed:            {self.shed}",
            f"timeouts:        {self.timeouts}",
            f"duration:        {self.duration_s:.3f} s "
            f"({self.throughput_qps:.0f} q/s)",
            f"pages read:      {self.pages_read} "
            f"({self.pages_per_query:.2f} pages/query)",
            f"cache hits:      {self.cache_hits}",
            f"batches:         {self.batches} "
            f"(mean size {self.mean_batch_size:.1f})",
        ]
        if self.latency_ms:
            lines.append(
                "latency ms:      p50={p50:.2f} p95={p95:.2f} p99={p99:.2f}"
                .format(**self.latency_ms)
            )
        if self.simulated_ms:
            lines.append(
                "simulated ms:    p50={p50:.2f} p95={p95:.2f} p99={p99:.2f}"
                .format(**self.simulated_ms)
            )
        return "\n".join(lines)


def _histogram_quantiles(o, name: str) -> dict[str, float]:
    histogram = o.metrics.find(name)
    if histogram is None or not histogram.count:
        return {}
    return histogram.summary_quantiles()


def _report(
    service: QueryService,
    mode: str,
    before: dict,
    duration_s: float,
    shed: int,
    timeouts: int,
    o,
) -> DriverReport:
    after = service.metrics_snapshot()
    return DriverReport(
        mode=mode,
        submitted=after["submitted"] - before["submitted"],
        completed=after["completed"] - before["completed"],
        shed=shed,
        timeouts=timeouts,
        duration_s=duration_s,
        pages_read=after["pages_read"] - before["pages_read"],
        read_requests=after["read_requests"] - before["read_requests"],
        cache_hits=after["cache_hits"] - before["cache_hits"],
        batches=after["batches"] - before["batches"],
        batched_queries=after["batched_queries"] - before["batched_queries"],
        latency_ms=_histogram_quantiles(o, "serve.latency_ms"),
        simulated_ms=_histogram_quantiles(o, "serve.simulated_ms"),
    )


def run_closed_loop(
    service: QueryService,
    queries: list,
    concurrency: int = 8,
    timeout_s: float | None = None,
) -> DriverReport:
    """Replay ``queries`` through ``concurrency`` closed-loop clients.

    The query list is split round-robin across clients; each client
    submits its next query as soon as the previous answer (or typed
    error) arrives.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    installed = _obs.active()
    o = installed if installed is not None else _obs.Observability()
    shed = 0
    timeouts = 0
    tally = threading.Lock()

    def client(worker_queries: list) -> None:
        nonlocal shed, timeouts
        for query in worker_queries:
            try:
                service.execute(query, timeout_s=timeout_s)
            except Overloaded:
                with tally:
                    shed += 1
            except DeadlineExceeded:
                with tally:
                    timeouts += 1

    lanes = [queries[i::concurrency] for i in range(concurrency)]
    threads = [
        threading.Thread(target=client, args=(lane,), daemon=True)
        for lane in lanes
        if lane
    ]
    before = service.metrics_snapshot()
    start = time.perf_counter()
    if installed is None:
        with _obs.observed(o):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
    else:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    duration = time.perf_counter() - start
    return _report(service, "closed-loop", before, duration, shed, timeouts, o)


def run_open_loop(
    service: QueryService,
    queries: list,
    rate_qps: float,
    timeout_s: float | None = None,
) -> DriverReport:
    """Submit ``queries`` on a fixed schedule of ``rate_qps`` arrivals/s.

    Arrival times are ``i / rate_qps`` from the start of the run; the
    submitter never waits for completions, so a service slower than the
    arrival rate sheds and times out (typed, counted) rather than
    silently stretching the schedule.
    """
    if rate_qps <= 0:
        raise ValueError(f"rate_qps must be > 0, got {rate_qps}")
    installed = _obs.active()
    o = installed if installed is not None else _obs.Observability()
    shed = 0
    timeouts = 0
    tickets = []

    def drive() -> None:
        nonlocal shed
        start = time.perf_counter()
        for i, query in enumerate(queries):
            due = start + i / rate_qps
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                tickets.append(service.submit(query, timeout_s=timeout_s))
            except Overloaded:
                shed += 1

    before = service.metrics_snapshot()
    start = time.perf_counter()

    def run() -> None:
        nonlocal timeouts
        drive()
        for ticket in tickets:
            try:
                ticket.result()
            except DeadlineExceeded:
                timeouts += 1

    if installed is None:
        with _obs.observed(o):
            run()
    else:
        run()
    duration = time.perf_counter() - start
    return _report(service, "open-loop", before, duration, shed, timeouts, o)
