"""Per-shard engine for the sharded serving tier.

A :class:`ShardEngine` owns one shard's rows as a
:class:`~repro.index.segmented.SegmentedBitmapIndex` plus the serving
machinery the single-process :class:`~repro.serve.QueryService` keeps
per index: a persistent query engine per segment, an
``(epoch, expression)`` result cache, and shared-scan batch planning.
It is deliberately *transport-agnostic*: the router calls the same
methods whether the engine lives in the router process (``"inline"``
transport) or behind a :class:`~repro.parallel.ProcessWorker` pipe
(``"process"`` transport) — which is why every argument and return
value is picklable (queries, numpy rows, :class:`ShardAnswer`).

The engine is single-threaded by contract: the router serializes all
calls to one shard through that shard's dispatcher, so no locking
happens here.  It also emits no :mod:`repro.obs` metrics — in a worker
process there is no registry to emit into, and keeping the inline and
process transports observationally identical means all ``serve.shard.*``
accounting lives in the router.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmap import BitVector, concatenate
from repro.encoding import get_scheme
from repro.errors import QueryError
from repro.expr import EvalStats, Expr
from repro.index.bitmap_index import IndexSpec
from repro.index.compressed_engine import CompressedQueryEngine
from repro.index.evaluation import QueryEngine
from repro.index.rewrite import QueryRewriter
from repro.index.segmented import SegmentedBitmapIndex
from repro.queries.model import IntervalQuery, MembershipQuery, ThresholdQuery
from repro.serve.batcher import plan_batches
from repro.serve.cache import ResultCache
from repro.storage import CostClock

Query = IntervalQuery | MembershipQuery | ThresholdQuery

#: Default rows per segment inside one shard (small relative to shard
#: size so appends seal segments regularly and splits find boundaries).
DEFAULT_SEGMENT_SIZE = 4096


@dataclass
class ShardAnswer:
    """One shard's partial answer to one query.

    ``bitmap`` covers the shard's local row range; the router
    concatenates partial bitmaps in shard order to recover global row
    ids.  ``epoch`` is the shard's index epoch at evaluation time — the
    per-shard linearization point.
    """

    bitmap: BitVector
    epoch: int
    cached: bool
    simulated_ms: float
    scans: int
    operations: int


class ShardEngine:
    """Serving engine for one row-range shard.

    ``values`` are the shard's rows; ``index`` (inline transport only)
    injects a prebuilt :class:`SegmentedBitmapIndex` instead — the
    shard-split path hands the left child its sealed segments by
    reference via :meth:`SegmentedBitmapIndex.split_at`, skipping the
    rebuild.
    """

    def __init__(
        self,
        values,
        spec: IndexSpec,
        engine: str = "decoded",
        fused: bool | str = "auto",
        cache_entries: int = 256,
        buffer_pages: int | None = None,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        max_batch: int = 16,
        index: SegmentedBitmapIndex | None = None,
    ):
        self.spec = spec
        self.engine_kind = engine
        self.fused = fused
        self.buffer_pages = buffer_pages
        self.max_batch = max_batch
        if index is not None:
            self.index = index
        else:
            self.index = SegmentedBitmapIndex(spec, segment_size)
            rows = np.asarray(values)
            if rows.size:
                self.index.append(rows)
        self.cache = ResultCache(cache_entries)
        self.clock = CostClock()
        self.rewriter = QueryRewriter(
            spec.cardinality, spec.resolved_bases(), get_scheme(spec.scheme)
        )
        self._engines: list = []

    # ------------------------------------------------------------------

    @property
    def num_records(self) -> int:
        """Rows in this shard."""
        return self.index.num_records

    @property
    def epoch(self) -> int:
        """The shard's index epoch (bumped by every append)."""
        return self.index.epoch

    def set_epoch(self, epoch: int) -> int:
        """Fast-forward the epoch counter (never backwards).

        Used after a crash recovery rebuilds the engine from the
        router's authoritative rows: the fresh index restarts at a small
        epoch, but per-shard epochs must stay monotonic across rebuilds
        so the ``(epoch, expression)`` cache key and the linearizability
        oracle never see an epoch reused for different rows.
        """
        if epoch > self.index.epoch:
            self.index.epoch = epoch
        return self.index.epoch

    def status(self) -> dict:
        """Picklable counters for the router's metrics snapshot."""
        return {
            "num_records": self.index.num_records,
            "num_segments": self.index.num_segments,
            "epoch": self.index.epoch,
            "cache_hits": self.cache.stats.hits,
            "cache_misses": self.cache.stats.misses,
            "cache_invalidated": self.cache.stats.invalidated,
            "pages_read": self.clock.pages_read,
            "read_requests": self.clock.read_requests,
            "simulated_ms": self.clock.total_ms,
        }

    # ------------------------------------------------------------------

    def append(self, values) -> dict:
        """Append rows to this shard, bumping only this shard's epoch."""
        rows = np.asarray(values)
        report = self.index.append(rows)
        self.cache.invalidate_below(self.index.epoch)
        return {
            "epoch": self.index.epoch,
            "num_records": self.index.num_records,
            "records_appended": report.records_appended,
            "bitmaps_extended": report.bitmaps_extended,
            "bitmaps_touched": report.bitmaps_touched,
        }

    def split_left(self, row: int) -> SegmentedBitmapIndex:
        """The left half of a segment-boundary split, segments shared.

        Only meaningful on the inline transport (the returned index is a
        live object, not a picklable snapshot).  ``self`` keeps serving
        its full row range unchanged — :meth:`SegmentedBitmapIndex.split_at`
        does not mutate — and the shared segments are all sealed (full),
        so nothing the left child ever does can rewrite them.
        """
        left, _ = self.index.split_at(row)
        return left

    def close(self) -> None:
        """Drop per-segment engines (buffer pools)."""
        self._engines = []

    # ------------------------------------------------------------------

    def evaluate_batch(self, queries: list[Query]) -> list[ShardAnswer]:
        """Answer ``queries`` over this shard's rows, batching scans.

        The batch is planned exactly as the single-process service plans
        its worker batches (:func:`~repro.serve.batcher.plan_batches`
        over leaf-key sharing, capped at ``max_batch``), each planned
        batch fetches the union of its bitmaps once per segment, and
        answers land in the shard's ``(epoch, expression)`` cache.
        """
        epoch = self.index.epoch
        answers: list[ShardAnswer | None] = [None] * len(queries)
        expressions: list[tuple] = []
        keysets: list[frozenset] = []
        for query in queries:
            constituents = self._rewrite(query)
            expressions.append(tuple(constituents))
            keysets.append(
                frozenset(
                    key for expr in constituents for key in expr.leaf_keys()
                )
            )
        pending: list[int] = []
        for i, expression in enumerate(expressions):
            cached = self.cache.get(epoch, expression)
            if cached is not None:
                answers[i] = ShardAnswer(
                    bitmap=cached,
                    epoch=epoch,
                    cached=True,
                    simulated_ms=0.0,
                    scans=0,
                    operations=0,
                )
            else:
                pending.append(i)
        for batch in plan_batches(
            [keysets[i] for i in pending], self.max_batch
        ):
            self._shared_scan(
                [pending[j] for j in batch],
                expressions,
                keysets,
                epoch,
                answers,
            )
        return answers  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def _rewrite(self, query: Query) -> list[Expr]:
        if isinstance(query, IntervalQuery):
            return [self.rewriter.rewrite_interval(query)]
        if isinstance(query, MembershipQuery):
            return list(self.rewriter.rewrite_membership(query))
        if isinstance(query, ThresholdQuery):
            # Threshold counting is per row, and shards are row-disjoint:
            # evaluating k-of-N inside each shard and concatenating the
            # partial bitmaps in shard order is exact.
            return [self.rewriter.rewrite_threshold(query)]
        raise QueryError(f"unsupported query type {type(query).__name__}")

    def _segment_engines(self) -> list:
        """Persistent per-segment engines, extended as segments appear.

        Segments are only ever appended (the tail fills in place and its
        store versions make existing buffer pools re-read), so engine
        ``i`` always serves segment ``i``.
        """
        segments = self.index.segments()
        while len(self._engines) < len(segments):
            segment = segments[len(self._engines)]
            if self.engine_kind == "compressed":
                engine = CompressedQueryEngine(
                    segment,
                    buffer_pages=self.buffer_pages,
                    clock=self.clock,
                )
            else:
                engine = QueryEngine(
                    segment,
                    buffer_pages=self.buffer_pages,
                    clock=self.clock,
                    fused=self.fused,
                )
            self._engines.append(engine)
        return self._engines

    def _shared_scan(
        self,
        batch: list[int],
        expressions: list[tuple],
        keysets: list[frozenset],
        epoch: int,
        answers: list,
    ) -> None:
        """One shared fetch of the batch's bitmaps, per segment."""
        engines = self._segment_engines()
        keys = sorted(
            {key for i in batch for key in keysets[i]},
            key=lambda key: (key[0], repr(key[1])),
        )
        fetch_start = self.clock.total_ms
        shared: list[dict] = []
        for engine in engines:
            cache: dict = {}
            for key in keys:
                cache[key] = engine.pool.fetch(key)
            shared.append(cache)
        fetch_share = (self.clock.total_ms - fetch_start) / len(batch)
        for i in batch:
            eval_start = self.clock.total_ms
            stats = EvalStats()
            pieces = [
                engine.evaluate_shared(
                    list(expressions[i]), shared[k], stats
                )
                for k, engine in enumerate(engines)
            ]
            bitmap = (
                concatenate(pieces) if pieces else BitVector.zeros(0)
            )
            self.cache.put(epoch, expressions[i], bitmap)
            answers[i] = ShardAnswer(
                bitmap=bitmap,
                epoch=epoch,
                cached=False,
                simulated_ms=(self.clock.total_ms - eval_start) + fetch_share,
                scans=len(keysets[i]),
                operations=stats.operations,
            )


def build_shard_engine(values, spec: IndexSpec, options: dict) -> ShardEngine:
    """Module-level :class:`ShardEngine` factory.

    This is the picklable constructor handed to
    :class:`~repro.parallel.ProcessWorker` — the engine (index, buffer
    pools, cache) is built *inside* the worker process, so only the raw
    rows and the spec cross the pipe.
    """
    return ShardEngine(values, spec, **options)
