"""Adaptive per-bitmap codec selection: the ``auto`` meta-codec.

The paper's central lesson is that no single encoding wins everywhere —
the best scheme depends on each bitmap's density and run structure.
Roaring applies that lesson *inside* one bitmap, classifying every
2^16-bit chunk as array/bitmap/run by a size rule
(:func:`repro.compress.roaring._classify`).  This module lifts the same
rule to whole bitmaps: ``auto`` measures each vector's shape at encode
time, picks the cheapest concrete codec for *that bitmap*, and records
the choice in a one-byte tag so decode, compressed-domain operations,
block streams and persistence all dispatch transparently.

Payload layout: ``tag byte (CODEC_IDS) + inner payload``.  The tag ids
are part of the on-disk format (the v2 manifest's per-bitmap ``codec``
field cross-checks them) and must never be renumbered.

Decision table (sizes in bytes; ``n`` bits, ``c`` set bits, ``r``
maximal 1-runs, ``w = ceil(n/64)`` words):

======================  =======================================
candidate               size
======================  =======================================
``position_list``       ``4c``             (exact, arithmetic)
``range_list``          ``8r``             (exact, arithmetic)
``raw``                 ``8w``             (exact, arithmetic)
``bbc``/``wah``/        measured by a dry encode, *unless* the
``ewah``/``roaring``    fast path below already rules them out
======================  =======================================

**Fast path** (the lifted classification rule): every run-length codec
has a provable lower bound from the shape statistics alone — BBC
stores each mixed byte literally (``>= dirty_bytes``), WAH each mixed
31-bit group as a 4-byte literal (``>= 4 * dirty_groups``), EWAH each
mixed word verbatim plus one marker (``>= 8 * dirty_words + 8``), and
roaring pays a 7-byte directory entry per non-empty chunk plus
``min(2 * card, 4 * runs, 8 * words)`` inside each chunk.  When the
best arithmetic candidate is no larger than the smallest of those
bounds it is globally optimal and is chosen without encoding anything;
otherwise the four RLE codecs are dry-encoded and the global argmin
wins.  Ties break toward the earlier entry of :data:`PREFERENCE`
(cheaper decode).

Every selection reports ``compress.auto.selected{codec=...}`` to the
installed :mod:`repro.obs` instance.

Operations: same inner codec -> the inner codec's own
compressed-domain op, re-tagged (``raw`` inner uses the raw payload
ops).  Mixed inner codecs -> the two block streams are combined
block-at-a-time and the result re-encoded through selection, so a
mixed-codec index never materializes more than one block of scratch.
NOT and popcount always stay inside the inner codec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs as _obs
from repro.bitmap import BitVector
from repro.compress import kernels
from repro.compress.base import Codec, get_codec, register_codec
from repro.compress.compressed_ops import (
    COUNT_OPS,
    LOGICAL_OPS,
    NOT_OPS,
    register_compressed_ops,
)
from repro.compress.raw import raw_count, raw_logical, raw_not
from repro.compress.roaring import CHUNK_WORDS
from repro.compress.streams import open_stream, register_stream
from repro.errors import CodecError

#: Stable one-byte payload tags (on-disk format; never renumber).
CODEC_IDS = {
    "raw": 0,
    "bbc": 1,
    "wah": 2,
    "ewah": 3,
    "roaring": 4,
    "position_list": 5,
    "range_list": 6,
}
ID_CODECS = {tag: name for name, tag in CODEC_IDS.items()}

#: Candidates whose size is exact arithmetic over the shape statistics.
ARITHMETIC = ("position_list", "range_list", "raw")
#: Candidates sized by a dry encode when the fast path cannot decide.
MEASURED = ("roaring", "ewah", "wah", "bbc")
#: Tie-break order: equal-sized candidates resolve to the earlier name.
PREFERENCE = ARITHMETIC + MEASURED

_ONE = np.uint64(1)
_WAH_GROUP_BITS = 31


@dataclass(frozen=True)
class ShapeStats:
    """Per-bitmap shape measurements driving codec selection."""

    length: int
    count: int
    #: Maximal 1-runs.
    runs: int
    #: 64-bit words that are neither all-0 nor all-1.
    dirty_words: int
    #: Bytes that are neither 0x00 nor 0xFF.
    dirty_bytes: int
    #: 31-bit WAH groups that are neither all-0 nor all-1.
    dirty_groups: int
    #: Lower bound on a roaring encoding (directory + container floors).
    roaring_floor: int

    @property
    def density(self) -> float:
        return self.count / self.length if self.length else 0.0

    @property
    def clustering(self) -> float:
        """Mean 1-run length (the Markov clustering factor)."""
        return self.count / self.runs if self.runs else 0.0


def _dirty_units(per_unit: np.ndarray, unit_bits: int, length: int) -> int:
    """Units with 0 < popcount < capacity (the trailing unit's capacity
    is the logical bits it actually covers)."""
    if per_unit.size == 0:
        return 0
    capacity = np.full(per_unit.size, unit_bits, dtype=np.int64)
    tail = length - (per_unit.size - 1) * unit_bits
    capacity[-1] = tail
    return int(((per_unit > 0) & (per_unit < capacity)).sum())


def measure(vector: BitVector) -> ShapeStats:
    """Measure the shape statistics of ``vector`` (one pass, vectorized)."""
    length = len(vector)
    words = vector.words
    per_word = np.bitwise_count(words).astype(np.int64)
    count = int(per_word.sum())
    if count == 0:
        return ShapeStats(length, 0, 0, 0, 0, 0, 0)
    # 1-runs start at set bits whose predecessor bit is 0.
    carry = np.concatenate(
        (np.zeros(1, dtype=np.uint64), words[:-1] >> np.uint64(63))
    )
    run_start_bits = words & ~((words << _ONE) | carry)
    runs = int(np.bitwise_count(run_start_bits).astype(np.int64).sum())
    dirty_words = _dirty_units(per_word, 64, length)
    as_bytes = words.view(np.uint8)
    dirty_bytes = int(((as_bytes != 0) & (as_bytes != 0xFF)).sum())
    num_groups = -(-length // _WAH_GROUP_BITS)
    bits = np.unpackbits(as_bytes, bitorder="little", count=length)
    padded = np.zeros(num_groups * _WAH_GROUP_BITS, dtype=np.uint8)
    padded[:length] = bits
    per_group = padded.reshape(num_groups, _WAH_GROUP_BITS).sum(
        axis=1, dtype=np.int64
    )
    dirty_groups = _dirty_units(per_group, _WAH_GROUP_BITS, length)
    # Roaring floor: 7 directory bytes per non-empty chunk plus the
    # cheapest conceivable container for that chunk's card/runs.
    chunk_edges = np.arange(0, words.shape[0], CHUNK_WORDS)
    chunk_cards = np.add.reduceat(per_word, chunk_edges)
    chunk_runs = np.add.reduceat(
        np.bitwise_count(run_start_bits).astype(np.int64), chunk_edges
    )
    chunk_words = np.full(chunk_edges.size, CHUNK_WORDS, dtype=np.int64)
    chunk_words[-1] = words.shape[0] - int(chunk_edges[-1])
    occupied = chunk_cards > 0
    container_floor = np.minimum(
        np.minimum(2 * chunk_cards[occupied], 4 * chunk_runs[occupied]),
        8 * chunk_words[occupied],
    )
    roaring_floor = 4 + 7 * int(occupied.sum()) + int(container_floor.sum())
    return ShapeStats(
        length,
        count,
        runs,
        dirty_words,
        dirty_bytes,
        dirty_groups,
        roaring_floor,
    )


def candidate_sizes(stats: ShapeStats) -> dict[str, int]:
    """Exact encoded sizes of the arithmetic candidates."""
    return {
        "position_list": 4 * stats.count,
        "range_list": 8 * stats.runs,
        "raw": 8 * ((stats.length + 63) // 64),
    }


def rle_floor(stats: ShapeStats) -> int:
    """Smallest size any of the measured RLE codecs could reach."""
    ewah_floor = 8 * stats.dirty_words + (8 if stats.length else 0)
    wah_floor = 4 * stats.dirty_groups
    return min(stats.dirty_bytes, wah_floor, ewah_floor, stats.roaring_floor)


def select_codec(vector: BitVector, stats: ShapeStats | None = None) -> str:
    """The inner codec ``auto`` picks for ``vector`` (decision table)."""
    stats = measure(vector) if stats is None else stats
    sizes = candidate_sizes(stats)
    champion = min(ARITHMETIC, key=lambda name: (sizes[name], PREFERENCE.index(name)))
    if sizes[champion] <= rle_floor(stats):
        return champion
    for name in MEASURED:
        sizes[name] = get_codec(name).encoded_size(vector)
    return min(PREFERENCE, key=lambda name: (sizes[name], PREFERENCE.index(name)))


def payload_codec_name(payload) -> str:
    """The inner codec an ``auto`` payload is tagged with."""
    name, _ = split_payload(payload)
    return name


def split_payload(payload) -> tuple[str, object]:
    """(inner codec name, inner payload) of an ``auto`` payload."""
    if len(payload) < 1:
        raise CodecError("auto payload is missing its codec tag byte")
    tag = int(payload[0])
    try:
        name = ID_CODECS[tag]
    except KeyError:
        raise CodecError(
            f"unknown auto codec tag {tag}; known: {sorted(ID_CODECS)}"
        ) from None
    return name, payload[1:]


def _tagged(name: str, inner_payload: bytes) -> bytes:
    return bytes([CODEC_IDS[name]]) + inner_payload


def _inner_ops(name: str):
    """(logical, not_, count) payload ops for an inner codec.

    ``raw`` is not a compressed-domain codec (the compressed engine
    rejects a raw *store*), but as an ``auto`` inner codec its payload
    ops are the plain word operations from :mod:`repro.compress.raw`.
    """
    if name == "raw":
        return raw_logical, raw_not, raw_count
    try:
        return LOGICAL_OPS[name], NOT_OPS[name], COUNT_OPS[name]
    except KeyError:
        raise CodecError(
            f"auto inner codec {name!r} has no compressed-domain ops"
        ) from None


def _combine_blockwise(
    op: str,
    name_a: str,
    body_a,
    name_b: str,
    body_b,
    length: int,
    block_words: int = 2048,
) -> BitVector:
    """Mixed-codec combine: stream both operands block-at-a-time."""
    try:
        op_fn = kernels._NP_OPS[op]
    except KeyError:
        raise CodecError(f"unknown compressed operation {op!r}") from None
    stream_a = open_stream(name_a, body_a, length)
    stream_b = open_stream(name_b, body_b, length)
    words = np.empty(stream_a.num_words, dtype=np.uint64)
    for lo in range(0, stream_a.num_words, block_words):
        hi = min(lo + block_words, stream_a.num_words)
        words[lo:hi] = op_fn(stream_a.block(lo, hi), stream_b.block(lo, hi))
    tail = length % 64
    if tail and words.shape[0]:
        words[-1] &= (_ONE << np.uint64(tail)) - _ONE
    return BitVector(length, words)


def auto_logical(op: str, payload_a, payload_b, length: int) -> bytes:
    """AND/OR/XOR over two ``auto`` payloads.

    Matching inner codecs stay in that codec's compressed domain; a
    mixed pair is combined blockwise and re-encoded through selection.
    """
    name_a, body_a = split_payload(payload_a)
    name_b, body_b = split_payload(payload_b)
    if name_a == name_b:
        logical, _, _ = _inner_ops(name_a)
        return _tagged(name_a, logical(op, body_a, body_b, length))
    result = _combine_blockwise(op, name_a, body_a, name_b, body_b, length)
    return AUTO_CODEC._encode(result)


def auto_not(payload, length: int) -> bytes:
    """Complement of an ``auto`` payload, staying in the inner codec."""
    name, body = split_payload(payload)
    _, not_, _ = _inner_ops(name)
    return _tagged(name, not_(body, length))


def auto_count(payload) -> int:
    """Popcount of an ``auto`` payload via the inner codec's counter."""
    name, body = split_payload(payload)
    _, _, count = _inner_ops(name)
    return count(body)


def _open_auto_stream(payload, length: int):
    """Block stream over an ``auto`` payload: peel the tag, open inner."""
    name, body = split_payload(payload)
    return open_stream(name, body, length)


class AutoCodec(Codec):
    """Meta-codec: per-bitmap selection with a one-byte dispatch tag."""

    name = "auto"

    def _encode(self, vector: BitVector) -> bytes:
        inner = select_codec(vector)
        o = _obs.active()
        if o is not None:
            o.count("compress.auto.selected", 1, codec=inner)
        return _tagged(inner, get_codec(inner)._encode(vector))

    def _decode(self, payload, length: int) -> BitVector:
        name, body = split_payload(payload)
        return get_codec(name)._decode(body, length)

    def _decode_view(self, payload, length: int) -> BitVector | None:
        name, body = split_payload(payload)
        return get_codec(name)._decode_view(body, length)


AUTO_CODEC = AutoCodec()
register_codec(AUTO_CODEC)
register_compressed_ops("auto", auto_logical, auto_not, auto_count)
register_stream("auto", _open_auto_stream)
