"""Range-list codec: the maximal 1-runs as sorted (start, length) pairs.

Where :mod:`repro.compress.position_list` is Roaring's array container
lifted to the whole vector, this is its *run* container lifted the same
way: a sparse-but-clustered bitmap whose set bits form a handful of
long runs is fully described by those runs, at 8 bytes per run with no
per-chunk directory.  The tree-encoded-bitmaps literature benchmarks
exactly this pair of cheap codecs against the RLE family over a
(density, clustering) grid; the ``auto`` meta-codec
(:mod:`repro.compress.adaptive`) picks whichever wins per bitmap.

Payload layout: interleaved little-endian ``uint32`` pairs
``(start, run_length)`` of the maximal 1-runs, strictly ascending and
*non-adjacent* (a gap of at least one 0 bit between runs, so the form
is canonical).  ``run_length`` is at least 1; vectors longer than
2^32 - 1 bits are rejected at encode time.

Compressed-domain AND/OR/XOR use interval algebra over the runs'
boundary arrays: membership of a point ``x`` in a run set with sorted
boundary array ``flat`` is ``searchsorted(flat, x, "right") % 2``, so
an operation evaluates both operands at the union of their boundaries
and re-extracts maximal runs from the result's transitions — no
per-bit work, cost proportional to the run counts.  NOT toggles the
presence of ``0`` and ``length`` in the boundary array.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap import BitVector
from repro.compress import kernels
from repro.compress.base import Codec, register_codec
from repro.compress.compressed_ops import register_compressed_ops
from repro.compress.streams import BlockStream, register_stream
from repro.errors import CodecError

#: Longest encodable vector: starts and run lengths must fit in uint32.
MAX_LENGTH = (1 << 32) - 1

_ONE = np.uint64(1)


def runs_from_payload(payload, length: int) -> tuple[np.ndarray, np.ndarray]:
    """Parse and validate a range-list payload into (starts, run_lengths)."""
    size = len(payload)
    if size % 8:
        raise CodecError(
            f"range-list payload of {size} bytes is not a whole number of "
            f"(start, length) uint32 pairs"
        )
    pairs = np.frombuffer(payload, dtype="<u4").astype(np.int64).reshape(-1, 2)
    starts = pairs[:, 0]
    run_lengths = pairs[:, 1]
    if starts.size:
        if not bool((run_lengths >= 1).all()):
            raise CodecError("range-list run length must be at least 1")
        ends = starts + run_lengths
        if int(ends[-1]) > length:
            raise CodecError(
                f"range-list run [{int(starts[-1])}, {int(ends[-1])}) "
                f"overruns the declared length {length}"
            )
        if not bool((starts[1:] > ends[:-1]).all()):
            raise CodecError(
                "range-list runs must be ascending and non-adjacent "
                "(maximal-run canonical form)"
            )
    return starts, run_lengths


def _runs_to_payload(starts: np.ndarray, run_lengths: np.ndarray) -> bytes:
    pairs = np.empty((starts.size, 2), dtype="<u4")
    pairs[:, 0] = starts
    pairs[:, 1] = run_lengths
    return pairs.tobytes()


def _boundaries(starts: np.ndarray, run_lengths: np.ndarray) -> np.ndarray:
    """Strictly ascending boundary array [s0, e0, s1, e1, ...]."""
    flat = np.empty(starts.size * 2, dtype=np.int64)
    flat[0::2] = starts
    flat[1::2] = starts + run_lengths
    return flat


def _runs_from_marks(points: np.ndarray, inside: np.ndarray) -> bytes:
    """Runs from elementary-interval membership: ``inside[i]`` says
    whether ``[points[i], points[i+1])`` (or past the last point) is set."""
    change = np.diff(np.concatenate((np.zeros(1, dtype=np.int64), inside)))
    starts = points[change == 1]
    ends = points[change == -1]
    return _runs_to_payload(starts, ends - starts)


def range_list_logical(op: str, payload_a, payload_b, length: int) -> bytes:
    """``op`` in {"and", "or", "xor"} over two range-list payloads."""
    flat_a = _boundaries(*runs_from_payload(payload_a, length))
    flat_b = _boundaries(*runs_from_payload(payload_b, length))
    points = np.union1d(flat_a, flat_b)
    in_a = np.searchsorted(flat_a, points, side="right") % 2
    in_b = np.searchsorted(flat_b, points, side="right") % 2
    if op == "and":
        inside = in_a & in_b
    elif op == "or":
        inside = in_a | in_b
    elif op == "xor":
        inside = in_a ^ in_b
    else:
        raise CodecError(f"unknown compressed operation {op!r}")
    return _runs_from_marks(points, inside.astype(np.int64))


def range_list_not(payload, length: int) -> bytes:
    """Complement over ``[0, length)``: toggle the 0/length boundaries."""
    flat = _boundaries(*runs_from_payload(payload, length))
    if flat.size and flat[0] == 0:
        flat = flat[1:]
    else:
        flat = np.concatenate((np.zeros(1, dtype=np.int64), flat))
    if flat.size and flat[-1] == length:
        flat = flat[:-1]
    else:
        flat = np.concatenate((flat, np.asarray([length], dtype=np.int64)))
    starts = flat[0::2]
    return _runs_to_payload(starts, flat[1::2] - starts)


def range_list_count(payload) -> int:
    """Set-bit count: the sum of the run lengths."""
    size = len(payload)
    if size % 8:
        raise CodecError(
            f"range-list payload of {size} bytes is not a whole number of "
            f"(start, length) uint32 pairs"
        )
    pairs = np.frombuffer(payload, dtype="<u4").reshape(-1, 2)
    return int(pairs[:, 1].astype(np.int64).sum())


class RangeListStream(BlockStream):
    """Window-clipped run expansion + bit scatter."""

    def __init__(self, payload, length: int):
        super().__init__(length)
        starts, run_lengths = runs_from_payload(payload, length)
        self._starts = starts
        self._ends = starts + run_lengths

    def block(self, start: int, stop: int) -> np.ndarray:
        out = np.zeros(stop - start, dtype=np.uint64)
        bit_lo, bit_hi = start * 64, stop * 64
        lo = int(np.searchsorted(self._ends, bit_lo, side="right"))
        hi = int(np.searchsorted(self._starts, bit_hi, side="left"))
        starts = np.maximum(self._starts[lo:hi], bit_lo) - bit_lo
        ends = np.minimum(self._ends[lo:hi], bit_hi) - bit_lo
        rel = kernels.expand_ranges(starts, ends - starts)
        if rel.size:
            np.bitwise_or.at(out, rel >> 6, _ONE << (rel & 63).astype(np.uint64))
        return out


class RangeListCodec(Codec):
    """Maximal 1-runs as interleaved (start, length) uint32 pairs."""

    name = "range_list"

    def _encode(self, vector: BitVector) -> bytes:
        if len(vector) > MAX_LENGTH:
            raise CodecError(
                f"range-list codec holds at most {MAX_LENGTH} bits, "
                f"got {len(vector)}"
            )
        positions = vector.to_indices()
        if positions.size == 0:
            return b""
        breaks = np.flatnonzero(np.diff(positions) != 1)
        starts = positions[np.concatenate(([0], breaks + 1))]
        ends = positions[np.concatenate((breaks, [positions.size - 1]))] + 1
        return _runs_to_payload(starts, ends - starts)

    def _decode(self, payload, length: int) -> BitVector:
        starts, run_lengths = runs_from_payload(payload, length)
        positions = kernels.expand_ranges(starts, run_lengths)
        vector = BitVector(length)
        if positions.size:
            np.bitwise_or.at(
                vector.words,
                positions >> 6,
                _ONE << (positions & 63).astype(np.uint64),
            )
        return vector


register_codec(RangeListCodec())
register_compressed_ops(
    "range_list", range_list_logical, range_list_not, range_list_count
)
register_stream("range_list", RangeListStream)
