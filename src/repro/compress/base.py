"""Codec interface and registry.

A codec turns a :class:`~repro.bitmap.BitVector` into bytes and back.
Codecs are stateless; the registry maps short names (``"raw"``, ``"bbc"``,
``"wah"``, ``"ewah"``) to singleton instances so that experiment configs
can refer to codecs by name.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.bitmap import BitVector
from repro.errors import CodecError


class Codec(ABC):
    """Stateless bitmap compressor/decompressor."""

    #: Short registry name; subclasses must override.
    name: str = ""

    @abstractmethod
    def encode(self, vector: BitVector) -> bytes:
        """Compress ``vector`` into a self-contained byte string."""

    @abstractmethod
    def decode(self, payload: bytes, length: int) -> BitVector:
        """Decompress ``payload`` back into a vector of ``length`` bits."""

    def encoded_size(self, vector: BitVector) -> int:
        """Size in bytes of the encoded form (default: encode and measure)."""
        return len(self.encode(vector))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, Codec] = {}


def register_codec(codec: Codec) -> Codec:
    """Register ``codec`` under ``codec.name``; returns the codec."""
    if not codec.name:
        raise CodecError(f"codec {codec!r} has no name")
    _REGISTRY[codec.name] = codec
    return codec


def get_codec(name: str) -> Codec:
    """Look up a codec by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_codecs() -> list[str]:
    """Sorted names of all registered codecs."""
    return sorted(_REGISTRY)
