"""Codec interface and registry.

A codec turns a :class:`~repro.bitmap.BitVector` into bytes and back.
Codecs are stateless; the registry maps short names (``"raw"``, ``"bbc"``,
``"wah"``, ``"ewah"``) to singleton instances so that experiment configs
can refer to codecs by name.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro import obs as _obs
from repro.bitmap import BitVector
from repro.errors import CodecError


class Codec(ABC):
    """Stateless bitmap compressor/decompressor.

    Subclasses implement :meth:`_encode` / :meth:`_decode`; the public
    :meth:`encode` / :meth:`decode` wrappers additionally report
    ``codec.encode.*`` / ``codec.decode.*`` counters to the installed
    :mod:`repro.obs` instance (tagged by codec name), so every byte that
    crosses the codec boundary is attributable to the span that caused
    it.
    """

    #: Short registry name; subclasses must override.
    name: str = ""

    #: Cached ``(obs_instance, counter_handles)`` pair.  Codecs sit on
    #: the hottest instrumented path (every page fetch decodes), so the
    #: registry lookups are done once per installed instance and the
    #: handles reused until a different instance is installed.
    _obs_handles: tuple = (None, None)

    @abstractmethod
    def _encode(self, vector: BitVector) -> bytes:
        """Compress ``vector`` into a self-contained byte string."""

    @abstractmethod
    def _decode(self, payload: bytes, length: int) -> BitVector:
        """Decompress ``payload`` back into a vector of ``length`` bits."""

    def _decode_view(self, payload, length: int) -> BitVector | None:
        """Zero-copy decode over ``payload``'s buffer, or None.

        Subclasses whose decoded form can alias the payload (raw)
        return a vector whose words *view* the payload memory; the
        default says no such form exists and :meth:`decode_view` falls
        back to a copying decode.
        """
        return None

    def _counters(self, o):
        owner, handles = self._obs_handles
        if owner is not o:
            handles = (
                o.metrics.counter("codec.encode.calls", codec=self.name),
                o.metrics.counter("codec.encode.bits_in", codec=self.name),
                o.metrics.counter("codec.encode.bytes_out", codec=self.name),
                o.metrics.counter("codec.decode.calls", codec=self.name),
                o.metrics.counter("codec.decode.bytes_in", codec=self.name),
            )
            self._obs_handles = (o, handles)
        return handles

    def encode(self, vector: BitVector) -> bytes:
        """Compress ``vector``, reporting to the installed obs sink."""
        payload = self._encode(vector)
        o = _obs.active()
        if o is not None:
            calls, bits_in, bytes_out, _, _ = self._counters(o)
            calls.inc(1)
            bits_in.inc(len(vector))
            bytes_out.inc(len(payload))
            tracer = o.tracer
            tracer.attribute("codec.encode.calls", 1)
            tracer.attribute("codec.encode.bits_in", len(vector))
            tracer.attribute("codec.encode.bytes_out", len(payload))
        return payload

    def decode(self, payload: bytes, length: int) -> BitVector:
        """Decompress ``payload``, reporting to the installed obs sink."""
        vector = self._decode(payload, length)
        o = _obs.active()
        if o is not None:
            _, _, _, calls, bytes_in = self._counters(o)
            calls.inc(1)
            bytes_in.inc(len(payload))
            tracer = o.tracer
            tracer.attribute("codec.decode.calls", 1)
            tracer.attribute("codec.decode.bytes_in", len(payload))
        return vector

    def decode_view(self, payload, length: int) -> BitVector:
        """Like :meth:`decode`, zero-copy when the codec supports it.

        ``payload`` may be any byte buffer (``bytes`` or a read-only
        ``numpy`` view of an mmap).  When the codec has a zero-copy
        decoded form the returned vector's words alias the payload
        memory — treat it as read-only.  Reports the *same*
        ``codec.decode.*`` counters as :meth:`decode`, so zero-copy and
        copying fetch paths stay byte-for-byte identical in obs.
        """
        vector = self._decode_view(payload, length)
        if vector is None:
            vector = self._decode(payload, length)
        o = _obs.active()
        if o is not None:
            _, _, _, calls, bytes_in = self._counters(o)
            calls.inc(1)
            bytes_in.inc(len(payload))
            tracer = o.tracer
            tracer.attribute("codec.decode.calls", 1)
            tracer.attribute("codec.decode.bytes_in", len(payload))
        return vector

    def decode_blockwise(
        self, payload, length: int, block_words: int = 2048
    ) -> BitVector:
        """Decode through the codec's block stream (block-sized scratch).

        Identical output and ``codec.decode.*`` accounting to
        :meth:`decode`; only the decode temporaries shrink from
        vector-sized to block-sized.
        """
        from repro.compress import streams as _streams

        vector = _streams.decode_blockwise(self.name, payload, length, block_words)
        o = _obs.active()
        if o is not None:
            _, _, _, calls, bytes_in = self._counters(o)
            calls.inc(1)
            bytes_in.inc(len(payload))
            tracer = o.tracer
            tracer.attribute("codec.decode.calls", 1)
            tracer.attribute("codec.decode.bytes_in", len(payload))
        return vector

    def encoded_size(self, vector: BitVector) -> int:
        """Size in bytes of the encoded form (default: encode and measure).

        Goes through :meth:`_encode` directly so pure size measurement
        (``stats.measure_codec``) does not inflate the encode counters.
        """
        return len(self._encode(vector))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, Codec] = {}


def register_codec(codec: Codec) -> Codec:
    """Register ``codec`` under ``codec.name``; returns the codec."""
    if not codec.name:
        raise CodecError(f"codec {codec!r} has no name")
    _REGISTRY[codec.name] = codec
    return codec


def get_codec(name: str) -> Codec:
    """Look up a codec by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_codecs() -> list[str]:
    """Sorted names of all registered codecs."""
    return sorted(_REGISTRY)
