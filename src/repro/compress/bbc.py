"""Byte-aligned run-length codec (BBC).

The paper compresses bitmaps with "a byte-aligned run-length encoding
scheme proposed by Antoshenkov [Ant93] which is used in Oracle8".  The
patent text is not reproduced in the paper, so this module implements a
codec with the same structure and asymptotics as BBC:

* the bitmap is viewed as a byte sequence;
* the stream is a sequence of *atoms*; each atom is a one-byte header
  optionally followed by variable-length counters and literal bytes;
* an atom encodes a *fill* (a run of identical ``0x00`` or ``0xFF``
  bytes) followed by a *tail* of literal (verbatim) bytes.

Header layout (one byte)::

    bit 7      fill value (0 = zero fill, 1 = one fill)
    bits 6..4  fill length in bytes; 0..6 stored inline, 7 means an
               unsigned LEB128 extension follows (value 7 + ext)
    bits 3..0  literal tail length in bytes; 0..14 stored inline, 15
               means an unsigned LEB128 extension follows (value 15 + ext)

Long runs of equal bits therefore cost O(log run) bytes while
incompressible regions cost one extra header byte per 14 literal bytes —
exactly the behaviour the paper's Figures 6(b), 6(c), 7 and 9 depend on.

Encode and decode run on the vectorized kernels in
:mod:`repro.compress.kernels`: byte runs are segmented with one
``np.flatnonzero`` pass and atoms (headers, LEB128 extensions, literal
tails) are emitted by bulk scatter; only the atom *walk* on decode is
sequential, and that loop is per-atom, not per-byte.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap import BitVector
from repro.compress import kernels
from repro.compress.base import Codec, register_codec
from repro.compress.kernels import DIRTY, FILL_ONE, FILL_ZERO, Runs
from repro.errors import CodecError

_FILL_INLINE_MAX = 6  # 3-bit field, 7 = extended
_LIT_INLINE_MAX = 14  # 4-bit field, 15 = extended
_FULL_BYTE = 0xFF
#: Minimum length for a 0x00/0xFF byte run to be encoded as a fill
#: rather than folded into a literal tail.  A run of one fill byte
#: saves nothing over a literal, so the threshold is two.
_MIN_FILL_RUN = 2


def _write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 integer."""
    if value < 0:
        raise CodecError(f"varint value must be >= 0, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(payload: bytes, pos: int) -> tuple[int, int]:
    """Read an unsigned LEB128 integer; returns ``(value, new_pos)``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(payload):
            raise CodecError("truncated varint in BBC stream")
        # int() so numpy buffer payloads (zero-copy store views) don't
        # poison the shift arithmetic with wrapping uint8 scalars.
        byte = int(payload[pos])
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _leb128_nbytes(values: np.ndarray) -> np.ndarray:
    """Encoded size in bytes of each unsigned LEB128 value."""
    nbytes = np.ones(values.shape[0], dtype=np.int64)
    rest = values >> 7
    while bool((rest > 0).any()):
        nbytes += rest > 0
        rest >>= 7
    return nbytes


def _leb128_scatter(
    out: np.ndarray, pos: np.ndarray, values: np.ndarray, nbytes: np.ndarray
) -> None:
    """Write each value's LEB128 bytes at ``out[pos[i] : pos[i]+nbytes[i]]``.

    Loops over byte *position* (at most 10 iterations for 64-bit
    values), scattering one byte of every value per pass.
    """
    if values.shape[0] == 0:
        return
    for k in range(int(nbytes.max())):
        mask = nbytes > k
        byte = (values[mask] >> (7 * k)) & 0x7F
        cont = np.where(nbytes[mask] > k + 1, 0x80, 0)
        out[pos[mask] + k] = (byte | cont).astype(np.uint8)


def runs_from_bbc(payload: bytes) -> Runs:
    """Parse a BBC atom stream into byte runs.

    The walk is per *atom* (positions chain through the variable-length
    counters), but literal tails are sliced in bulk.
    """
    n = len(payload)
    data = np.frombuffer(payload, dtype=np.uint8)
    # The walk keeps the loop body minimal — four plain appends per
    # atom; run arrays and literal bytes are assembled in bulk below.
    at_bits: list[int] = []
    at_fills: list[int] = []
    at_lits: list[int] = []
    at_starts: list[int] = []
    pos = 0
    while pos < n:
        header = int(payload[pos])
        pos += 1
        fill_len = (header >> 4) & 0x7
        lit_len = header & 0xF
        if fill_len == _FILL_INLINE_MAX + 1:
            ext, pos = _read_varint(payload, pos)
            fill_len += ext
        if lit_len == _LIT_INLINE_MAX + 1:
            ext, pos = _read_varint(payload, pos)
            lit_len += ext
        at_bits.append(header >> 7)
        at_fills.append(fill_len)
        at_lits.append(lit_len)
        at_starts.append(pos)
        pos += lit_len
    if pos > n:
        # Only the final atom can overrun: every earlier one had its
        # header byte read successfully past its literal tail.
        raise CodecError("truncated literal tail in BBC stream")

    bits = np.asarray(at_bits, dtype=np.int64)
    fills = np.asarray(at_fills, dtype=np.int64)
    lits = np.asarray(at_lits, dtype=np.int64)
    starts = np.asarray(at_starts, dtype=np.int64)
    has_fill = fills > 0
    has_lit = lits > 0
    slots = has_fill.astype(np.int64) + has_lit
    offsets = np.cumsum(slots) - slots
    total = int(slots.sum())
    types = np.empty(total, dtype=np.int8)
    lengths = np.empty(total, dtype=np.int64)
    fill_pos = offsets[has_fill]
    types[fill_pos] = np.where(bits[has_fill] != 0, FILL_ONE, FILL_ZERO)
    lengths[fill_pos] = fills[has_fill]
    lit_pos = offsets[has_lit] + has_fill[has_lit]
    types[lit_pos] = DIRTY
    lengths[lit_pos] = lits[has_lit]
    # One bulk gather of every literal tail beats per-atom slicing.
    values = data[kernels.expand_ranges(starts[has_lit], lits[has_lit])]
    return Runs(types, lengths, values)


def bbc_from_runs(runs: Runs) -> bytes:
    """Emit the canonical BBC atom stream for ``runs`` via bulk scatter.

    Fill runs shorter than :data:`_MIN_FILL_RUN` are demoted into the
    literal tail (a one-byte fill saves nothing over a literal), then
    each surviving fill run becomes one atom carrying the dirty run
    that follows it — the same stream the reference encoder produces.
    """
    if runs.num_runs == 0:
        return b""
    types, lengths, values = runs.types, runs.lengths, runs.values
    if bool((types[1:] == types[:-1]).any()) or bool((lengths <= 0).any()):
        runs = kernels.normalize(types, lengths, values, _FULL_BYTE)
        types, lengths, values = runs.types, runs.lengths, runs.values
        if types.shape[0] == 0:
            return b""

    # Demote short fills to literal bytes, keeping stream order.
    is_fill = types != DIRTY
    demote = is_fill & (lengths < _MIN_FILL_RUN)
    if bool(demote.any()):
        contrib = np.where(types == DIRTY, lengths, np.where(demote, lengths, 0))
        new_values = np.empty(int(contrib.sum()), dtype=np.uint8)
        val_off = np.cumsum(contrib) - contrib
        dirty = types == DIRTY
        if dirty.any():
            new_values[
                kernels.expand_ranges(val_off[dirty], lengths[dirty])
            ] = values
        new_values[
            kernels.expand_ranges(val_off[demote], lengths[demote])
        ] = np.repeat(
            np.where(types[demote] == FILL_ONE, _FULL_BYTE, 0).astype(np.uint8),
            lengths[demote],
        )
        types = np.where(demote, np.int8(DIRTY), types)
        values = new_values
        # Merge dirty runs that became adjacent.
        change = np.flatnonzero(types[1:] != types[:-1]) + 1
        starts = np.concatenate(([0], change))
        types = types[starts]
        lengths = np.add.reduceat(lengths, starts)

    # One atom per fill run, carrying the dirty run that follows it,
    # plus a leading fill-free atom when the stream starts dirty.
    num_runs = types.shape[0]
    is_fill = types != DIRTY
    fill_idx = np.flatnonzero(is_fill)
    nxt = np.minimum(fill_idx + 1, num_runs - 1)
    has_lit = (fill_idx + 1 < num_runs) & (types[nxt] == DIRTY)
    at_bit = (types[fill_idx] == FILL_ONE).astype(np.int64)
    at_fill = lengths[fill_idx]
    at_lit = np.where(has_lit, lengths[nxt], 0)
    if num_runs and types[0] == DIRTY:
        at_bit = np.concatenate(([0], at_bit))
        at_fill = np.concatenate(([0], at_fill))
        at_lit = np.concatenate(([lengths[0]], at_lit))

    fill_field = np.minimum(at_fill, _FILL_INLINE_MAX + 1)
    lit_field = np.minimum(at_lit, _LIT_INLINE_MAX + 1)
    fill_extended = fill_field == _FILL_INLINE_MAX + 1
    lit_extended = lit_field == _LIT_INLINE_MAX + 1
    fill_ext_val = np.where(fill_extended, at_fill - (_FILL_INLINE_MAX + 1), 0)
    lit_ext_val = np.where(lit_extended, at_lit - (_LIT_INLINE_MAX + 1), 0)
    fill_ext_len = np.where(fill_extended, _leb128_nbytes(fill_ext_val), 0)
    lit_ext_len = np.where(lit_extended, _leb128_nbytes(lit_ext_val), 0)

    atom_len = 1 + fill_ext_len + lit_ext_len + at_lit
    offsets = np.cumsum(atom_len) - atom_len
    out = np.zeros(int(atom_len.sum()), dtype=np.uint8)
    out[offsets] = ((at_bit << 7) | (fill_field << 4) | lit_field).astype(np.uint8)
    _leb128_scatter(
        out,
        (offsets + 1)[fill_extended],
        fill_ext_val[fill_extended],
        fill_ext_len[fill_extended],
    )
    _leb128_scatter(
        out,
        (offsets + 1 + fill_ext_len)[lit_extended],
        lit_ext_val[lit_extended],
        lit_ext_len[lit_extended],
    )
    if values.size:
        lit_pos = offsets + 1 + fill_ext_len + lit_ext_len
        out[kernels.expand_ranges(lit_pos, at_lit)] = values
    return out.tobytes()


class BbcCodec(Codec):
    """Byte-aligned run-length codec in the style of Antoshenkov's BBC."""

    name = "bbc"

    _MIN_FILL_RUN = _MIN_FILL_RUN

    def _encode(self, vector: BitVector) -> bytes:
        data = np.frombuffer(vector.to_bytes(), dtype=np.uint8)
        # Trim trailing padding bytes that are entirely past the logical
        # length; they are zero by the padding invariant and the decoder
        # regenerates them.
        logical_bytes = (len(vector) + 7) // 8
        data = data[:logical_bytes]
        return bbc_from_runs(kernels.runs_from_elements(data, _FULL_BYTE))

    def _decode(self, payload: bytes, length: int) -> BitVector:
        logical_bytes = (length + 7) // 8
        runs = runs_from_bbc(payload)
        produced = runs.total
        if produced > logical_bytes:
            raise CodecError(
                f"BBC stream decodes to {produced} bytes but length {length} "
                f"allows only {logical_bytes}"
            )
        body = kernels.elements_from_runs(runs, _FULL_BYTE, np.uint8).tobytes()
        # Trailing zero bytes may have been trimmed at encode time.
        body += b"\x00" * (logical_bytes - produced)
        # Pad out to whole 64-bit words for BitVector.from_bytes.
        word_bytes = ((length + 63) // 64) * 8
        return BitVector.from_bytes(length, body + b"\x00" * (word_bytes - logical_bytes))


register_codec(BbcCodec())
